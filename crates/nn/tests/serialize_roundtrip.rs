//! Property-based round-trip suite for `nn::serialize`.
//!
//! The `charon-net 1` text format is the interchange point between the
//! trainer, the model zoo's on-disk cache, the CLI, and the
//! verification server's model registry — all of which assume that
//! `from_text(to_text(net))` reproduces `net` *bit-identically*, and
//! that `content_hash` distinguishes any two networks whose behaviour
//! could differ. These properties exercise that contract on randomly
//! parameterized convolutional (lowered to affine) and max-pool
//! architectures, the two layer families the unit tests cover only at
//! fixed sizes.

use nn::conv::{max_pool_groups, Conv2d, Shape3};
use nn::serialize::{content_hash, fnv1a, from_text, to_text};
use nn::{AffineLayer, Layer, Network};
use proptest::prelude::*;
use tensor::Matrix;

/// Deterministic "awkward float" stream: mixes exact dyadics, numbers
/// with no short decimal form, huge and tiny magnitudes, and negatives,
/// so the round-trip is tested against values where naive `{}`
/// formatting would lose bits.
fn float_stream(seed: u64) -> impl FnMut() -> f64 {
    let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(1);
    move || {
        // xorshift64*
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        let bits = state.wrapping_mul(0x2545_f491_4f6c_dd1d);
        let unit = (bits >> 11) as f64 / (1u64 << 53) as f64 - 0.5;
        match bits % 7 {
            0 => unit,                      // plain value in [-0.5, 0.5)
            1 => unit / 3.0,                // repeating binary expansion
            2 => unit * 1e12,               // large magnitude
            3 => unit * 1e-12,              // small magnitude
            4 => (unit * 8.0).round() / 8.0, // exact dyadic
            5 => unit + 0.1,                // classic 0.1-family value
            _ => -unit,
        }
    }
}

fn conv_network(
    channels: usize,
    height: usize,
    width: usize,
    out_channels: usize,
    kernel: usize,
    seed: u64,
) -> Network {
    conv_network_nudged(channels, height, width, out_channels, kernel, seed, 0.0)
}

/// Same as [`conv_network`], with `nudge` added to the first conv bias —
/// a minimal single-parameter retraining stand-in.
fn conv_network_nudged(
    channels: usize,
    height: usize,
    width: usize,
    out_channels: usize,
    kernel: usize,
    seed: u64,
    nudge: f64,
) -> Network {
    let input = Shape3::new(channels, height, width);
    let mut next = float_stream(seed);
    let weights: Vec<f64> = (0..out_channels * channels * kernel * kernel)
        .map(|_| next())
        .collect();
    let mut bias: Vec<f64> = (0..out_channels).map(|_| next()).collect();
    if nudge != 0.0 {
        // Relative + absolute so the nudge survives any bias magnitude.
        bias[0] = bias[0] * (1.0 + nudge) + nudge;
    }
    let conv = Conv2d::new(input, out_channels, (kernel, kernel), (1, 1), weights, bias);
    let lowered = conv.to_affine();
    let hidden = lowered.output_dim();
    // Small affine head so the network has the realistic conv -> relu ->
    // dense shape rather than a single layer.
    let head_rows: Vec<Vec<f64>> = (0..2)
        .map(|_| (0..hidden).map(|_| next()).collect())
        .collect();
    let head_refs: Vec<&[f64]> = head_rows.iter().map(Vec::as_slice).collect();
    let head = AffineLayer::new(Matrix::from_rows(&head_refs), vec![next(), next()]);
    Network::new(
        input.len(),
        vec![Layer::Affine(lowered), Layer::Relu, Layer::Affine(head)],
    )
    .unwrap()
}

fn maxpool_network(channels: usize, side: usize, pool: usize, seed: u64) -> Network {
    let input = Shape3::new(channels, side * pool, side * pool);
    let groups = max_pool_groups(input, pool);
    let pooled = groups.output_dim();
    let mut next = float_stream(seed);
    let rows: Vec<Vec<f64>> = (0..3)
        .map(|_| (0..pooled).map(|_| next()).collect())
        .collect();
    let refs: Vec<&[f64]> = rows.iter().map(Vec::as_slice).collect();
    let head = AffineLayer::new(Matrix::from_rows(&refs), vec![next(), next(), next()]);
    Network::new(
        input.len(),
        vec![Layer::MaxPool(groups), Layer::Affine(head)],
    )
    .unwrap()
}

fn probe_point(dim: usize, seed: u64) -> Vec<f64> {
    let mut next = float_stream(seed ^ 0xdead_beef);
    (0..dim).map(|_| next()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Conv-lowered networks survive the text round trip bit-for-bit:
    /// structural equality and identical evaluation on a probe input.
    #[test]
    fn conv_roundtrip_is_bit_identical(
        channels in 1usize..3,
        height in 2usize..5,
        width in 2usize..5,
        out_channels in 1usize..4,
        seed in 0u64..1000,
    ) {
        let kernel = 2.min(height).min(width);
        let net = conv_network(channels, height, width, out_channels, kernel, seed);
        let parsed = from_text(&to_text(&net)).unwrap();
        prop_assert_eq!(&parsed, &net);
        let x = probe_point(net.input_dim(), seed);
        prop_assert_eq!(net.eval(&x), parsed.eval(&x));
        prop_assert_eq!(content_hash(&parsed), content_hash(&net));
    }

    /// Max-pool networks (index groups, not weights) round trip exactly.
    #[test]
    fn maxpool_roundtrip_is_bit_identical(
        channels in 1usize..3,
        side in 1usize..4,
        pool in 1usize..4,
        seed in 0u64..1000,
    ) {
        let net = maxpool_network(channels, side, pool, seed);
        let parsed = from_text(&to_text(&net)).unwrap();
        prop_assert_eq!(&parsed, &net);
        let x = probe_point(net.input_dim(), seed);
        prop_assert_eq!(net.eval(&x), parsed.eval(&x));
        prop_assert_eq!(content_hash(&parsed), content_hash(&net));
    }

    /// A single-weight perturbation changes the content hash: the hash
    /// pins exact parameters, so a cache keyed by it can never serve a
    /// stale artifact for a retrained network.
    #[test]
    fn content_hash_detects_single_weight_change(
        channels in 1usize..3,
        height in 2usize..4,
        width in 2usize..4,
        seed in 0u64..1000,
    ) {
        let net = conv_network(channels, height, width, 2, 2, seed);
        let perturbed = conv_network_nudged(channels, height, width, 2, 2, seed, 1e-9);
        prop_assert!(content_hash(&perturbed) != content_hash(&net));
    }
}

#[test]
fn fnv1a_matches_reference_vectors() {
    // Published FNV-1a 64 test vectors.
    assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
    assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
    assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
}

#[test]
fn content_hash_is_stable_across_calls_and_copies() {
    let net = conv_network(1, 3, 3, 2, 2, 7);
    let copy = from_text(&to_text(&net)).unwrap();
    assert_eq!(content_hash(&net), content_hash(&net));
    assert_eq!(content_hash(&net), content_hash(&copy));
}
