//! The example networks used throughout the paper.
//!
//! These small hand-written networks back the worked examples in §2 and §3
//! and are used heavily by unit and integration tests across the workspace.

use tensor::Matrix;

use crate::{AffineLayer, Layer, Network};

/// The XOR network of Figure 3: a two-layer feed-forward network that
/// classifies `[0,0]` and `[1,1]` as class 0 and `[0,1]`, `[1,0]` as
/// class 1.
///
/// ```
/// let net = nn::samples::xor_network();
/// assert_eq!(net.classify(&[1.0, 1.0]), 0);
/// ```
pub fn xor_network() -> Network {
    Network::new(
        2,
        vec![
            Layer::Affine(AffineLayer::new(
                Matrix::from_rows(&[&[1.0, 1.0], &[1.0, 1.0]]),
                vec![0.0, -1.0],
            )),
            Layer::Relu,
            Layer::Affine(AffineLayer::new(
                Matrix::from_rows(&[&[-1.0, 2.0], &[1.0, -2.0]]),
                vec![1.0, 0.0],
            )),
        ],
    )
    .expect("XOR network shapes are consistent")
}

/// The single-input network of Example 2.2.
///
/// Robust on `I = [-1, 1]` for class 1 but not on `I' = [-1, 2]`.
pub fn example_2_2_network() -> Network {
    Network::new(
        1,
        vec![
            Layer::Affine(AffineLayer::new(
                Matrix::from_rows(&[&[1.0], &[2.0]]),
                vec![-1.0, 1.0],
            )),
            Layer::Relu,
            Layer::Affine(AffineLayer::new(
                Matrix::from_rows(&[&[2.0, 1.0], &[-1.0, 1.0]]),
                vec![1.0, 2.0],
            )),
        ],
    )
    .expect("example 2.2 network shapes are consistent")
}

/// The two-input network of Example 2.3.
///
/// On `[0, 1]^2` with target class 1 (class "B"), the plain zonotope domain
/// fails to verify robustness but the 2-disjunct powerset of zonotopes
/// succeeds.
pub fn example_2_3_network() -> Network {
    Network::new(
        2,
        vec![
            Layer::Affine(AffineLayer::new(
                Matrix::from_rows(&[&[1.0, -3.0], &[0.0, 3.0]]),
                vec![1.0, 1.0],
            )),
            Layer::Relu,
            Layer::Affine(AffineLayer::new(
                Matrix::from_rows(&[&[1.0, 1.1], &[-1.0, 1.0]]),
                vec![-3.0, 1.2],
            )),
        ],
    )
    .expect("example 2.3 network shapes are consistent")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xor_truth_table() {
        let net = xor_network();
        assert_eq!(net.classify(&[0.0, 0.0]), 0);
        assert_eq!(net.classify(&[0.0, 1.0]), 1);
        assert_eq!(net.classify(&[1.0, 0.0]), 1);
        assert_eq!(net.classify(&[1.0, 1.0]), 0);
    }

    #[test]
    fn xor_is_robust_near_center_points() {
        // The robustness property of Example 3.1: [0.3, 0.7]^2 -> class 1.
        let net = xor_network();
        for &x0 in &[0.3, 0.5, 0.7] {
            for &x1 in &[0.3, 0.5, 0.7] {
                assert_eq!(net.classify(&[x0, x1]), 1, "at ({x0}, {x1})");
            }
        }
    }

    #[test]
    fn example_2_2_robust_on_unit_interval() {
        let net = example_2_2_network();
        let mut x = -1.0;
        while x <= 1.0 {
            assert_eq!(net.classify(&[x]), 1, "at {x}");
            x += 0.05;
        }
        assert_eq!(net.classify(&[2.0]), 0);
    }

    #[test]
    fn example_2_3_robust_for_class_b() {
        // The property holds (concretely) over [0, 1]^2 even though plain
        // zonotopes cannot prove it.
        let net = example_2_3_network();
        for i in 0..=10 {
            for j in 0..=10 {
                let x = [i as f64 / 10.0, j as f64 / 10.0];
                assert_eq!(net.classify(&x), 1, "at {x:?}");
            }
        }
    }
}
