//! ReLU neural networks for the Charon reproduction.
//!
//! A [`Network`] is a sequence of [`Layer`]s: affine transformations
//! (`y = W x + b`), element-wise ReLU activations, and max-pooling layers
//! expressed as index groups. Both fully-connected and convolutional layers
//! are represented as affine transformations, following the paper (§2.1);
//! the [`conv`] module lowers a convolution specification into an
//! [`AffineLayer`].
//!
//! The crate also provides exact input gradients via backpropagation
//! ([`Network::gradient`]), a softmax cross-entropy SGD trainer ([`train`]),
//! a plain-text serialization format ([`serialize`]), and the example
//! networks used in the paper's figures ([`samples`]).
//!
//! # API invariants
//!
//! * Layer shapes always chain: constructors check that each layer's
//!   input dimension equals the previous layer's output dimension, so a
//!   built [`Network`] can evaluate any input of `input_dim()` length.
//! * Evaluation is pure and deterministic; `classify` breaks score ties
//!   toward the lower class index.
//! * Weights loaded through [`serialize`] may contain any parseable
//!   float, including NaN — structural validation happens at parse time,
//!   *numeric* validation (rejecting non-finite weights) is the
//!   verifier's job, so a malformed model surfaces as a data error
//!   rather than a crash deep inside a transformer.
//!
//! # Examples
//!
//! ```
//! use nn::samples;
//!
//! // The XOR network from Figure 3 of the paper.
//! let net = samples::xor_network();
//! assert_eq!(net.classify(&[0.0, 0.0]), 0);
//! assert_eq!(net.classify(&[1.0, 0.0]), 1);
//! assert_eq!(net.classify(&[0.0, 1.0]), 1);
//! assert_eq!(net.classify(&[1.0, 1.0]), 0);
//! ```

#![warn(missing_docs)]

mod batch;
mod grad;
mod layer;
mod network;

pub mod conv;
pub mod samples;
pub mod serialize;
pub mod train;

pub use layer::{AffineLayer, Layer, MaxPoolLayer};
pub use network::{margin, Network};

/// Error produced when assembling or deserializing a network fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetworkError {
    /// Two adjacent layers have incompatible dimensions.
    ShapeMismatch {
        /// Index of the offending layer.
        layer: usize,
        /// Dimension produced by the preceding layer.
        expected: usize,
        /// Dimension the offending layer consumes.
        actual: usize,
    },
    /// A serialized network could not be parsed.
    Parse(String),
}

impl std::fmt::Display for NetworkError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetworkError::ShapeMismatch {
                layer,
                expected,
                actual,
            } => write!(
                f,
                "layer {layer} consumes dimension {actual} but receives {expected}"
            ),
            NetworkError::Parse(msg) => write!(f, "parse error: {msg}"),
        }
    }
}

impl std::error::Error for NetworkError {}
