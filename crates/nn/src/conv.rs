//! Convolution and spatial pooling lowered to the core layer set.
//!
//! The paper (§2.1) treats convolutional layers as affine transformations;
//! [`Conv2d::to_affine`] materializes the sparse convolution matrix, and
//! [`max_pool_groups`] builds the index groups consumed by
//! [`crate::MaxPoolLayer`]. Tensors are laid out channel-major:
//! `index = c * h * w + y * w + x`.

use tensor::Matrix;

use crate::{AffineLayer, MaxPoolLayer};

/// Shape of a channel-major 3-D activation tensor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Shape3 {
    /// Number of channels.
    pub channels: usize,
    /// Spatial height.
    pub height: usize,
    /// Spatial width.
    pub width: usize,
}

impl Shape3 {
    /// Creates a shape.
    pub fn new(channels: usize, height: usize, width: usize) -> Self {
        Shape3 {
            channels,
            height,
            width,
        }
    }

    /// Total number of scalar entries.
    pub fn len(&self) -> usize {
        self.channels * self.height * self.width
    }

    /// Whether the shape is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Flat index of `(channel, y, x)`.
    ///
    /// # Panics
    ///
    /// Panics if any coordinate is out of range.
    pub fn index(&self, channel: usize, y: usize, x: usize) -> usize {
        assert!(channel < self.channels && y < self.height && x < self.width);
        channel * self.height * self.width + y * self.width + x
    }
}

/// A 2-D convolution specification (valid padding, unit stride unless set).
#[derive(Debug, Clone, PartialEq)]
pub struct Conv2d {
    /// Input tensor shape.
    pub input: Shape3,
    /// Number of output channels.
    pub out_channels: usize,
    /// Kernel height and width.
    pub kernel: (usize, usize),
    /// Stride in y and x.
    pub stride: (usize, usize),
    /// Kernel weights indexed `[out_c][in_c][ky][kx]`, flattened
    /// `out_c * (in_c * kh * kw) + in_c * (kh * kw) + ky * kw + kx`.
    pub weights: Vec<f64>,
    /// Per-output-channel bias.
    pub bias: Vec<f64>,
}

impl Conv2d {
    /// Creates a convolution layer specification.
    ///
    /// # Panics
    ///
    /// Panics if the weight or bias buffer sizes do not match the
    /// configuration, or if the kernel does not fit in the input.
    pub fn new(
        input: Shape3,
        out_channels: usize,
        kernel: (usize, usize),
        stride: (usize, usize),
        weights: Vec<f64>,
        bias: Vec<f64>,
    ) -> Self {
        assert!(kernel.0 <= input.height && kernel.1 <= input.width);
        assert!(stride.0 > 0 && stride.1 > 0, "stride must be positive");
        assert_eq!(
            weights.len(),
            out_channels * input.channels * kernel.0 * kernel.1,
            "weight buffer size mismatch"
        );
        assert_eq!(bias.len(), out_channels, "bias size mismatch");
        Conv2d {
            input,
            out_channels,
            kernel,
            stride,
            weights,
            bias,
        }
    }

    /// Shape of the output tensor.
    pub fn output_shape(&self) -> Shape3 {
        let oh = (self.input.height - self.kernel.0) / self.stride.0 + 1;
        let ow = (self.input.width - self.kernel.1) / self.stride.1 + 1;
        Shape3::new(self.out_channels, oh, ow)
    }

    fn weight(&self, oc: usize, ic: usize, ky: usize, kx: usize) -> f64 {
        let (kh, kw) = self.kernel;
        let per_oc = self.input.channels * kh * kw;
        self.weights[oc * per_oc + ic * (kh * kw) + ky * kw + kx]
    }

    /// Lowers the convolution to a dense [`AffineLayer`].
    ///
    /// The resulting matrix has one row per output entry and one column per
    /// input entry; applying it is equivalent to the convolution.
    pub fn to_affine(&self) -> AffineLayer {
        let out = self.output_shape();
        let mut w = Matrix::zeros(out.len(), self.input.len());
        let mut b = vec![0.0; out.len()];
        for oc in 0..out.channels {
            for oy in 0..out.height {
                for ox in 0..out.width {
                    let row = out.index(oc, oy, ox);
                    b[row] = self.bias[oc];
                    for ic in 0..self.input.channels {
                        for ky in 0..self.kernel.0 {
                            for kx in 0..self.kernel.1 {
                                let iy = oy * self.stride.0 + ky;
                                let ix = ox * self.stride.1 + kx;
                                let col = self.input.index(ic, iy, ix);
                                w.set(row, col, self.weight(oc, ic, ky, kx));
                            }
                        }
                    }
                }
            }
        }
        AffineLayer::new(w, b)
    }

    /// Directly evaluates the convolution on a flat channel-major input.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.input.len()`.
    pub fn apply(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.input.len(), "conv input size mismatch");
        let out = self.output_shape();
        let mut y = vec![0.0; out.len()];
        for oc in 0..out.channels {
            for oy in 0..out.height {
                for ox in 0..out.width {
                    let mut acc = self.bias[oc];
                    for ic in 0..self.input.channels {
                        for ky in 0..self.kernel.0 {
                            for kx in 0..self.kernel.1 {
                                let iy = oy * self.stride.0 + ky;
                                let ix = ox * self.stride.1 + kx;
                                acc +=
                                    self.weight(oc, ic, ky, kx) * x[self.input.index(ic, iy, ix)];
                            }
                        }
                    }
                    y[out.index(oc, oy, ox)] = acc;
                }
            }
        }
        y
    }
}

/// Builds an [`AffineLayer`] performing non-overlapping `size x size`
/// *average* pooling on a channel-major tensor.
///
/// Average pooling is linear, so it lowers directly to an affine layer
/// (weight `1/size²` on each pooled input) — unlike max pooling, it needs
/// no dedicated abstract transformer.
///
/// # Panics
///
/// Panics if the spatial dimensions are not divisible by `size`.
pub fn avg_pool_affine(input: Shape3, size: usize) -> AffineLayer {
    assert!(size > 0, "pool size must be positive");
    assert_eq!(input.height % size, 0, "height not divisible by pool size");
    assert_eq!(input.width % size, 0, "width not divisible by pool size");
    let oh = input.height / size;
    let ow = input.width / size;
    let out_len = input.channels * oh * ow;
    let weight = 1.0 / (size * size) as f64;
    let mut w = Matrix::zeros(out_len, input.len());
    let mut row = 0;
    for c in 0..input.channels {
        for oy in 0..oh {
            for ox in 0..ow {
                for dy in 0..size {
                    for dx in 0..size {
                        w.set(row, input.index(c, oy * size + dy, ox * size + dx), weight);
                    }
                }
                row += 1;
            }
        }
    }
    AffineLayer::new(w, vec![0.0; out_len])
}

/// Builds a [`MaxPoolLayer`] performing non-overlapping `size x size`
/// spatial pooling on a channel-major tensor.
///
/// # Panics
///
/// Panics if the spatial dimensions are not divisible by `size`.
pub fn max_pool_groups(input: Shape3, size: usize) -> MaxPoolLayer {
    assert!(size > 0, "pool size must be positive");
    assert_eq!(input.height % size, 0, "height not divisible by pool size");
    assert_eq!(input.width % size, 0, "width not divisible by pool size");
    let oh = input.height / size;
    let ow = input.width / size;
    let mut groups = Vec::with_capacity(input.channels * oh * ow);
    for c in 0..input.channels {
        for oy in 0..oh {
            for ox in 0..ow {
                let mut group = Vec::with_capacity(size * size);
                for dy in 0..size {
                    for dx in 0..size {
                        group.push(input.index(c, oy * size + dy, ox * size + dx));
                    }
                }
                groups.push(group);
            }
        }
    }
    MaxPoolLayer::new(input.len(), groups)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn small_conv() -> Conv2d {
        // 1 input channel 3x3, 2 output channels, 2x2 kernel, stride 1.
        Conv2d::new(
            Shape3::new(1, 3, 3),
            2,
            (2, 2),
            (1, 1),
            vec![
                1.0, 0.0, 0.0, 1.0, // oc 0: identity-ish diagonal kernel
                0.0, 1.0, 1.0, 0.0, // oc 1: anti-diagonal kernel
            ],
            vec![0.5, -0.5],
        )
    }

    #[test]
    fn output_shape() {
        let c = small_conv();
        assert_eq!(c.output_shape(), Shape3::new(2, 2, 2));
    }

    #[test]
    fn apply_known_values() {
        let c = small_conv();
        #[rustfmt::skip]
        let x = vec![
            1.0, 2.0, 3.0,
            4.0, 5.0, 6.0,
            7.0, 8.0, 9.0,
        ];
        let y = c.apply(&x);
        // oc0 at (0,0): 1*1 + 5*1 + 0.5 = 6.5
        assert_eq!(y[0], 6.5);
        // oc1 at (0,0): 2 + 4 - 0.5 = 5.5
        assert_eq!(y[4], 5.5);
    }

    #[test]
    fn to_affine_matches_apply() {
        let c = small_conv();
        let affine = c.to_affine();
        let x: Vec<f64> = (0..9).map(|i| (i as f64) * 0.37 - 1.2).collect();
        let direct = c.apply(&x);
        let lowered = affine.apply(&x);
        for (a, b) in direct.iter().zip(lowered.iter()) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn strided_conv_shape_and_equivalence() {
        let c = Conv2d::new(
            Shape3::new(2, 4, 4),
            3,
            (2, 2),
            (2, 2),
            (0..3 * 2 * 4).map(|i| (i as f64) * 0.1 - 1.0).collect(),
            vec![0.1, 0.2, 0.3],
        );
        assert_eq!(c.output_shape(), Shape3::new(3, 2, 2));
        let x: Vec<f64> = (0..32).map(|i| ((i * 7) % 5) as f64 - 2.0).collect();
        let direct = c.apply(&x);
        let lowered = c.to_affine().apply(&x);
        for (a, b) in direct.iter().zip(lowered.iter()) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn avg_pool_averages() {
        let pool = avg_pool_affine(Shape3::new(1, 2, 2), 2);
        assert_eq!(pool.apply(&[1.0, 2.0, 3.0, 6.0]), vec![3.0]);
        // Two channels pool independently.
        let pool2 = avg_pool_affine(Shape3::new(2, 2, 2), 2);
        let y = pool2.apply(&[1.0, 1.0, 1.0, 1.0, 4.0, 4.0, 4.0, 4.0]);
        assert_eq!(y, vec![1.0, 4.0]);
    }

    #[test]
    fn avg_pool_matches_manual_average() {
        let shape = Shape3::new(1, 4, 4);
        let pool = avg_pool_affine(shape, 2);
        let x: Vec<f64> = (0..16).map(|i| i as f64).collect();
        let y = pool.apply(&x);
        // Top-left block: (0 + 1 + 4 + 5) / 4 = 2.5
        assert_eq!(y[0], 2.5);
        assert_eq!(y.len(), 4);
    }

    #[test]
    fn pool_groups_partition_input() {
        let pool = max_pool_groups(Shape3::new(2, 4, 4), 2);
        assert_eq!(pool.output_dim(), 2 * 2 * 2);
        let mut seen = [false; 32];
        for group in &pool.groups {
            assert_eq!(group.len(), 4);
            for &i in group {
                assert!(!seen[i], "index {i} pooled twice");
                seen[i] = true;
            }
        }
        assert!(seen.iter().all(|&s| s), "pool groups must cover the input");
    }

    proptest! {
        #[test]
        fn conv_is_linear_in_input(
            x in proptest::collection::vec(-2.0f64..2.0, 9),
            y in proptest::collection::vec(-2.0f64..2.0, 9),
        ) {
            // conv(x + y) + bias_correction == conv(x) + conv(y) - conv(0)
            let c = small_conv();
            let zero = c.apply(&[0.0; 9]);
            let sum: Vec<f64> = x.iter().zip(y.iter()).map(|(a, b)| a + b).collect();
            let lhs = c.apply(&sum);
            let cx = c.apply(&x);
            let cy = c.apply(&y);
            for i in 0..lhs.len() {
                prop_assert!((lhs[i] - (cx[i] + cy[i] - zero[i])).abs() < 1e-9);
            }
        }
    }
}
