//! Training: random initialization and softmax cross-entropy SGD.
//!
//! The original evaluation used networks trained offline on MNIST/CIFAR;
//! this module lets the `data` crate train equivalent (smaller) networks
//! from scratch, deterministically from a seed.

use rand::prelude::*;
use rand::rngs::StdRng;
use tensor::Matrix;

use crate::{AffineLayer, Layer, Network};

/// Hyper-parameters for [`train_classifier`].
#[derive(Debug, Clone)]
pub struct TrainConfig {
    /// Number of passes over the training set.
    pub epochs: usize,
    /// SGD learning rate.
    pub learning_rate: f64,
    /// Mini-batch size.
    pub batch_size: usize,
    /// L2 weight decay coefficient.
    pub weight_decay: f64,
    /// RNG seed for shuffling and initialization.
    pub seed: u64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            epochs: 30,
            learning_rate: 0.05,
            batch_size: 16,
            weight_decay: 1e-4,
            seed: 0,
        }
    }
}

/// Creates a fully-connected ReLU network with He-style random
/// initialization.
///
/// `hidden` lists the widths of the hidden layers; the final affine layer
/// maps to `classes` outputs. With `N` hidden layers this is the paper's
/// "`N+1 x M`" family.
///
/// # Panics
///
/// Panics if `input_dim == 0` or `classes < 2`.
pub fn random_mlp(input_dim: usize, hidden: &[usize], classes: usize, seed: u64) -> Network {
    assert!(input_dim > 0, "input dimension must be positive");
    assert!(classes >= 2, "need at least two classes");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut layers = Vec::new();
    let mut prev = input_dim;
    for &width in hidden {
        layers.push(Layer::Affine(random_affine(&mut rng, width, prev)));
        layers.push(Layer::Relu);
        prev = width;
    }
    layers.push(Layer::Affine(random_affine(&mut rng, classes, prev)));
    Network::new(input_dim, layers).expect("generated shapes are consistent")
}

fn random_affine(rng: &mut StdRng, out: usize, inp: usize) -> AffineLayer {
    let scale = (2.0 / inp as f64).sqrt();
    let w = Matrix::from_fn(out, inp, |_, _| {
        // Box-Muller style normal sample from two uniforms.
        let u1: f64 = rng.gen_range(1e-12..1.0);
        let u2: f64 = rng.gen_range(0.0..1.0);
        scale * (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    });
    AffineLayer::new(w, vec![0.0; out])
}

fn softmax(y: &[f64]) -> Vec<f64> {
    let max = y.iter().fold(f64::NEG_INFINITY, |m, v| m.max(*v));
    let exps: Vec<f64> = y.iter().map(|v| (v - max).exp()).collect();
    let sum: f64 = exps.iter().sum();
    exps.iter().map(|e| e / sum).collect()
}

/// Trains `net` in place with mini-batch SGD on softmax cross-entropy.
///
/// Returns the final training accuracy in `[0, 1]`.
///
/// # Panics
///
/// Panics if `inputs` and `labels` have different lengths, the set is
/// empty, or any label is out of range.
pub fn train_classifier(
    net: &mut Network,
    inputs: &[Vec<f64>],
    labels: &[usize],
    config: &TrainConfig,
) -> f64 {
    assert_eq!(inputs.len(), labels.len(), "inputs/labels length mismatch");
    assert!(!inputs.is_empty(), "empty training set");
    let classes = net.output_dim();
    assert!(
        labels.iter().all(|&l| l < classes),
        "label out of range for {classes} classes"
    );

    let mut rng = StdRng::seed_from_u64(config.seed.wrapping_add(0x5eed));
    let mut order: Vec<usize> = (0..inputs.len()).collect();

    for _ in 0..config.epochs {
        order.shuffle(&mut rng);
        for batch in order.chunks(config.batch_size.max(1)) {
            let grads = batch_gradients(net, inputs, labels, batch);
            apply_gradients(net, &grads, config, batch.len());
        }
    }
    accuracy(net, inputs, labels)
}

/// Classification accuracy of `net` on a labelled set.
///
/// # Panics
///
/// Panics if `inputs` and `labels` have different lengths.
pub fn accuracy(net: &Network, inputs: &[Vec<f64>], labels: &[usize]) -> f64 {
    assert_eq!(inputs.len(), labels.len(), "inputs/labels length mismatch");
    if inputs.is_empty() {
        return 0.0;
    }
    let correct = inputs
        .iter()
        .zip(labels.iter())
        .filter(|(x, &l)| net.classify(x) == l)
        .count();
    correct as f64 / inputs.len() as f64
}

/// Per-affine-layer gradient accumulators.
struct LayerGrads {
    /// Indices into `net.layers()` of the affine layers.
    indices: Vec<usize>,
    weight_grads: Vec<Matrix>,
    bias_grads: Vec<Vec<f64>>,
}

fn batch_gradients(
    net: &Network,
    inputs: &[Vec<f64>],
    labels: &[usize],
    batch: &[usize],
) -> LayerGrads {
    let mut indices = Vec::new();
    let mut weight_grads = Vec::new();
    let mut bias_grads = Vec::new();
    for (i, layer) in net.layers().iter().enumerate() {
        if let Layer::Affine(a) = layer {
            indices.push(i);
            weight_grads.push(Matrix::zeros(a.weights.rows(), a.weights.cols()));
            bias_grads.push(vec![0.0; a.bias.len()]);
        }
    }

    for &sample in batch {
        let x = &inputs[sample];
        let label = labels[sample];
        let trace = net.eval_trace(x);
        let probs = softmax(trace.last().expect("trace non-empty"));
        // dL/dy for cross entropy with softmax: p - onehot(label)
        let mut g: Vec<f64> = probs;
        g[label] -= 1.0;

        let mut affine_slot = indices.len();
        for (idx, layer) in net.layers().iter().enumerate().rev() {
            let input = &trace[idx];
            match layer {
                Layer::Affine(a) => {
                    affine_slot -= 1;
                    // dL/dW = g x^T, dL/db = g
                    let wg = &mut weight_grads[affine_slot];
                    for (r, gr) in g.iter().enumerate() {
                        if *gr == 0.0 {
                            continue;
                        }
                        let row = wg.row_mut(r);
                        for (c, xv) in input.iter().enumerate() {
                            row[c] += gr * xv;
                        }
                    }
                    for (b, gr) in bias_grads[affine_slot].iter_mut().zip(g.iter()) {
                        *b += gr;
                    }
                    g = a.weights.matvec_transpose(&g);
                }
                Layer::Relu => {
                    for (gi, pre) in g.iter_mut().zip(input.iter()) {
                        if *pre <= 0.0 {
                            *gi = 0.0;
                        }
                    }
                }
                Layer::MaxPool(p) => {
                    let mut back = vec![0.0; p.input_dim];
                    for (out_idx, group) in p.groups.iter().enumerate() {
                        let winner = group
                            .iter()
                            .copied()
                            .max_by(|&a, &b| {
                                input[a]
                                    .partial_cmp(&input[b])
                                    .unwrap_or(std::cmp::Ordering::Equal)
                                    .then(b.cmp(&a))
                            })
                            .expect("non-empty group");
                        back[winner] += g[out_idx];
                    }
                    g = back;
                }
            }
        }
    }

    LayerGrads {
        indices,
        weight_grads,
        bias_grads,
    }
}

fn apply_gradients(net: &mut Network, grads: &LayerGrads, config: &TrainConfig, batch: usize) {
    let lr = config.learning_rate / batch.max(1) as f64;
    // Rebuild the layer list with updated affine layers.
    let mut layers: Vec<Layer> = net.layers().to_vec();
    for (slot, &idx) in grads.indices.iter().enumerate() {
        if let Layer::Affine(a) = &mut layers[idx] {
            let wg = &grads.weight_grads[slot];
            for r in 0..a.weights.rows() {
                let row = a.weights.row_mut(r);
                let grow = wg.row(r);
                for c in 0..row.len() {
                    row[c] -= lr * (grow[c] + config.weight_decay * row[c]);
                }
            }
            for (b, g) in a.bias.iter_mut().zip(grads.bias_grads[slot].iter()) {
                *b -= lr * g;
            }
        }
    }
    *net = Network::new(net.input_dim(), layers).expect("shapes unchanged by SGD step");
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two linearly separable blobs in 2-D.
    fn blobs(n: usize, seed: u64) -> (Vec<Vec<f64>>, Vec<usize>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for i in 0..n {
            let label = i % 2;
            let cx = if label == 0 { -1.0 } else { 1.0 };
            xs.push(vec![
                cx + rng.gen_range(-0.4..0.4),
                cx + rng.gen_range(-0.4..0.4),
            ]);
            ys.push(label);
        }
        (xs, ys)
    }

    #[test]
    fn learns_linearly_separable_blobs() {
        let (xs, ys) = blobs(120, 7);
        let mut net = random_mlp(2, &[8], 2, 3);
        let acc = train_classifier(&mut net, &xs, &ys, &TrainConfig::default());
        assert!(acc > 0.95, "training accuracy too low: {acc}");
    }

    #[test]
    fn learns_xor_pattern() {
        // XOR is not linearly separable; requires the hidden layer to work.
        let mut rng = StdRng::seed_from_u64(11);
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for _ in 0..200 {
            let a = rng.gen_bool(0.5);
            let b = rng.gen_bool(0.5);
            let mut x = vec![if a { 1.0 } else { 0.0 }, if b { 1.0 } else { 0.0 }];
            x[0] += rng.gen_range(-0.15..0.15);
            x[1] += rng.gen_range(-0.15..0.15);
            xs.push(x);
            ys.push(usize::from(a != b));
        }
        let mut net = random_mlp(2, &[16], 2, 5);
        let config = TrainConfig {
            epochs: 200,
            learning_rate: 0.1,
            ..TrainConfig::default()
        };
        let acc = train_classifier(&mut net, &xs, &ys, &config);
        assert!(acc > 0.9, "XOR training accuracy too low: {acc}");
    }

    #[test]
    fn training_is_deterministic() {
        let (xs, ys) = blobs(60, 3);
        let mut a = random_mlp(2, &[6], 2, 1);
        let mut b = random_mlp(2, &[6], 2, 1);
        let config = TrainConfig {
            epochs: 5,
            ..TrainConfig::default()
        };
        train_classifier(&mut a, &xs, &ys, &config);
        train_classifier(&mut b, &xs, &ys, &config);
        assert_eq!(a, b);
    }

    #[test]
    fn random_mlp_architecture() {
        let net = random_mlp(10, &[20, 30], 4, 0);
        assert_eq!(net.input_dim(), 10);
        assert_eq!(net.output_dim(), 4);
        assert_eq!(net.depth(), 3);
    }

    #[test]
    fn softmax_normalizes() {
        let p = softmax(&[1.0, 2.0, 3.0]);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(p[2] > p[1] && p[1] > p[0]);
    }
}
