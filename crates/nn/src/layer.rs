use serde::{Deserialize, Serialize};
use tensor::Matrix;

/// An affine transformation `y = W x + b`.
///
/// Fully-connected layers are affine directly; convolutional layers are
/// lowered to this form by [`crate::conv::Conv2d::to_affine`], following the
/// paper's observation (§2.1) that both can be expressed as affine maps.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AffineLayer {
    /// Weight matrix with shape `output_dim x input_dim`.
    pub weights: Matrix,
    /// Bias vector with length `output_dim`.
    pub bias: Vec<f64>,
}

impl AffineLayer {
    /// Creates an affine layer.
    ///
    /// # Panics
    ///
    /// Panics if `bias.len() != weights.rows()`.
    pub fn new(weights: Matrix, bias: Vec<f64>) -> Self {
        assert_eq!(
            bias.len(),
            weights.rows(),
            "bias length must equal weight rows"
        );
        AffineLayer { weights, bias }
    }

    /// Input dimension consumed by the layer.
    pub fn input_dim(&self) -> usize {
        self.weights.cols()
    }

    /// Output dimension produced by the layer.
    pub fn output_dim(&self) -> usize {
        self.weights.rows()
    }

    /// Applies the layer: `W x + b`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.input_dim()`.
    pub fn apply(&self, x: &[f64]) -> Vec<f64> {
        let mut y = self.weights.matvec(x);
        for (yi, bi) in y.iter_mut().zip(self.bias.iter()) {
            *yi += bi;
        }
        y
    }
}

/// A max-pooling layer expressed as disjoint index groups.
///
/// Output neuron `i` is `max` over the input indices in `groups[i]`. The
/// index-group representation is layout-agnostic: [`crate::conv`] builds the
/// groups for 2-D spatial pooling, and abstract transformers can consume the
/// groups without knowing about image shapes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MaxPoolLayer {
    /// Input dimension the layer consumes.
    pub input_dim: usize,
    /// For each output neuron, the input indices pooled into it.
    pub groups: Vec<Vec<usize>>,
}

impl MaxPoolLayer {
    /// Creates a max-pooling layer from index groups.
    ///
    /// # Panics
    ///
    /// Panics if any group is empty or references an index `>= input_dim`.
    pub fn new(input_dim: usize, groups: Vec<Vec<usize>>) -> Self {
        for group in &groups {
            assert!(!group.is_empty(), "empty max-pool group");
            for &idx in group {
                assert!(idx < input_dim, "max-pool index {idx} out of range");
            }
        }
        MaxPoolLayer { input_dim, groups }
    }

    /// Output dimension produced by the layer.
    pub fn output_dim(&self) -> usize {
        self.groups.len()
    }

    /// Applies the layer.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.input_dim`.
    pub fn apply(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.input_dim, "max-pool dimension mismatch");
        self.groups
            .iter()
            .map(|g| g.iter().map(|&i| x[i]).fold(f64::NEG_INFINITY, f64::max))
            .collect()
    }
}

/// One layer of a [`crate::Network`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Layer {
    /// Affine transformation `y = W x + b`.
    Affine(AffineLayer),
    /// Element-wise rectified linear unit `y_i = max(x_i, 0)`.
    Relu,
    /// Max pooling over index groups.
    MaxPool(MaxPoolLayer),
}

impl Layer {
    /// Output dimension given the dimension of the incoming vector.
    ///
    /// `Relu` preserves dimension; the other layers have fixed shapes.
    pub fn output_dim(&self, input_dim: usize) -> usize {
        match self {
            Layer::Affine(a) => a.output_dim(),
            Layer::Relu => input_dim,
            Layer::MaxPool(p) => p.output_dim(),
        }
    }

    /// Dimension the layer consumes, if it is fixed by the layer itself.
    pub fn required_input_dim(&self) -> Option<usize> {
        match self {
            Layer::Affine(a) => Some(a.input_dim()),
            Layer::Relu => None,
            Layer::MaxPool(p) => Some(p.input_dim),
        }
    }

    /// Applies the layer to a concrete vector.
    pub fn apply(&self, x: &[f64]) -> Vec<f64> {
        match self {
            Layer::Affine(a) => a.apply(x),
            Layer::Relu => x.iter().map(|v| v.max(0.0)).collect(),
            Layer::MaxPool(p) => p.apply(x),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn affine_apply() {
        let l = AffineLayer::new(
            Matrix::from_rows(&[&[1.0, 2.0], &[0.0, -1.0]]),
            vec![1.0, 0.5],
        );
        assert_eq!(l.apply(&[1.0, 1.0]), vec![4.0, -0.5]);
    }

    #[test]
    #[should_panic(expected = "bias length")]
    fn affine_bias_mismatch_panics() {
        AffineLayer::new(Matrix::zeros(2, 2), vec![0.0]);
    }

    #[test]
    fn relu_clamps_negatives() {
        assert_eq!(Layer::Relu.apply(&[-1.0, 0.0, 2.5]), vec![0.0, 0.0, 2.5]);
    }

    #[test]
    fn maxpool_groups() {
        let p = MaxPoolLayer::new(4, vec![vec![0, 1], vec![2, 3]]);
        assert_eq!(p.apply(&[1.0, 5.0, -2.0, -3.0]), vec![5.0, -2.0]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn maxpool_bad_index_panics() {
        MaxPoolLayer::new(2, vec![vec![0, 2]]);
    }

    #[test]
    fn layer_output_dims() {
        let affine = Layer::Affine(AffineLayer::new(Matrix::zeros(3, 2), vec![0.0; 3]));
        assert_eq!(affine.output_dim(2), 3);
        assert_eq!(Layer::Relu.output_dim(7), 7);
        let pool = Layer::MaxPool(MaxPoolLayer::new(4, vec![vec![0, 1], vec![2, 3]]));
        assert_eq!(pool.output_dim(4), 2);
    }
}
