//! Backpropagation: exact input gradients for piecewise-linear networks.

use crate::{Layer, Network};

impl Network {
    /// Gradient of the scalar `seed . N(x)` with respect to the input `x`.
    ///
    /// `seed` weights the output components; passing a one-hot vector gives
    /// the gradient of a single output score. At ReLU kinks (pre-activation
    /// exactly zero) the subgradient `0` is used; at max-pool ties the
    /// lowest-index winner receives the gradient.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.input_dim()` or
    /// `seed.len() != self.output_dim()`.
    pub fn gradient(&self, x: &[f64], seed: &[f64]) -> Vec<f64> {
        assert_eq!(
            seed.len(),
            self.output_dim(),
            "seed dimension must equal output dimension"
        );
        let trace = self.eval_trace(x);
        let mut g = seed.to_vec();
        for (idx, layer) in self.layers().iter().enumerate().rev() {
            let input = &trace[idx];
            g = match layer {
                Layer::Affine(a) => a.weights.matvec_transpose(&g),
                Layer::Relu => input
                    .iter()
                    .zip(g.iter())
                    .map(|(pre, gi)| if *pre > 0.0 { *gi } else { 0.0 })
                    .collect(),
                Layer::MaxPool(p) => {
                    let mut back = vec![0.0; p.input_dim];
                    for (out_idx, group) in p.groups.iter().enumerate() {
                        let winner = group
                            .iter()
                            .copied()
                            .max_by(|&a, &b| {
                                input[a]
                                    .partial_cmp(&input[b])
                                    .unwrap_or(std::cmp::Ordering::Equal)
                                    // Prefer the lower index on ties.
                                    .then(b.cmp(&a))
                            })
                            .expect("max-pool groups are non-empty");
                        back[winner] += g[out_idx];
                    }
                    back
                }
            };
        }
        g
    }

    /// Gradient of the robustness objective `F` (Eq. 2) at `x` for class
    /// `target`.
    ///
    /// `F(x) = N(x)_target - N(x)_j*` where `j*` is the strongest other
    /// class at `x`; the gradient seeds `+1` at `target` and `-1` at `j*`.
    ///
    /// # Panics
    ///
    /// Panics if `target >= self.output_dim()`.
    pub fn objective_gradient(&self, x: &[f64], target: usize) -> Vec<f64> {
        let y = self.eval(x);
        assert!(target < y.len(), "target class out of range");
        let rival = y
            .iter()
            .enumerate()
            .filter(|(j, _)| *j != target)
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
            .map(|(j, _)| j)
            .expect("network must have at least two outputs");
        let mut seed = vec![0.0; y.len()];
        seed[target] = 1.0;
        seed[rival] = -1.0;
        self.gradient(x, &seed)
    }
}

#[cfg(test)]
mod tests {
    use crate::{AffineLayer, Layer, MaxPoolLayer, Network};
    use tensor::Matrix;

    fn finite_difference(net: &Network, x: &[f64], seed: &[f64]) -> Vec<f64> {
        let h = 1e-6;
        (0..x.len())
            .map(|i| {
                let mut xp = x.to_vec();
                let mut xm = x.to_vec();
                xp[i] += h;
                xm[i] -= h;
                let fp = tensor::ops::dot(seed, &net.eval(&xp));
                let fm = tensor::ops::dot(seed, &net.eval(&xm));
                (fp - fm) / (2.0 * h)
            })
            .collect()
    }

    fn small_net() -> Network {
        Network::new(
            3,
            vec![
                Layer::Affine(AffineLayer::new(
                    Matrix::from_rows(&[
                        &[0.5, -1.0, 0.25],
                        &[1.5, 0.75, -0.5],
                        &[-0.25, 0.5, 1.0],
                        &[2.0, -0.3, 0.1],
                    ]),
                    vec![0.1, -0.2, 0.3, 0.0],
                )),
                Layer::Relu,
                Layer::Affine(AffineLayer::new(
                    Matrix::from_rows(&[&[1.0, -1.0, 0.5, 0.2], &[0.3, 0.7, -0.9, 1.1]]),
                    vec![0.0, 0.5],
                )),
            ],
        )
        .unwrap()
    }

    #[test]
    fn gradient_matches_finite_difference() {
        let net = small_net();
        let x = vec![0.3, -0.7, 0.9];
        for seed in [vec![1.0, 0.0], vec![0.0, 1.0], vec![0.5, -1.5]] {
            let g = net.gradient(&x, &seed);
            let fd = finite_difference(&net, &x, &seed);
            for (a, b) in g.iter().zip(fd.iter()) {
                assert!((a - b).abs() < 1e-4, "analytic {a} vs fd {b}");
            }
        }
    }

    #[test]
    fn objective_gradient_matches_finite_difference() {
        let net = small_net();
        // Pick a point where no ReLU pre-activation is near its kink, so
        // the finite difference sees a single linear piece.
        let x = (0..50)
            .map(|i| {
                let t = i as f64 * 0.071;
                vec![t.sin() * 0.8, (t * 1.7).cos() * 0.8, (t * 0.9).sin() * 0.8]
            })
            .find(|x| {
                let trace = net.eval_trace(x);
                trace[1].iter().all(|pre| pre.abs() > 0.05)
            })
            .expect("some probe point avoids all kinks");
        let g = net.objective_gradient(&x, 0);
        let h = 1e-6;
        for i in 0..3 {
            let mut xp = x.clone();
            let mut xm = x.clone();
            xp[i] += h;
            xm[i] -= h;
            let fd = (net.objective(&xp, 0) - net.objective(&xm, 0)) / (2.0 * h);
            assert!((g[i] - fd).abs() < 1e-4, "analytic {} vs fd {fd}", g[i]);
        }
    }

    #[test]
    fn maxpool_gradient_routes_to_winner() {
        let net = Network::new(
            4,
            vec![
                Layer::MaxPool(MaxPoolLayer::new(4, vec![vec![0, 1], vec![2, 3]])),
                Layer::Affine(AffineLayer::new(Matrix::identity(2), vec![0.0, 0.0])),
            ],
        )
        .unwrap();
        let g = net.gradient(&[1.0, 5.0, -2.0, -3.0], &[1.0, 1.0]);
        assert_eq!(g, vec![0.0, 1.0, 1.0, 0.0]);
    }

    #[test]
    fn relu_blocks_gradient_for_inactive_units() {
        let net = Network::new(
            1,
            vec![
                Layer::Affine(AffineLayer::new(Matrix::from_rows(&[&[1.0]]), vec![-10.0])),
                Layer::Relu,
                Layer::Affine(AffineLayer::new(
                    Matrix::from_rows(&[&[1.0], &[-1.0]]),
                    vec![0.0, 0.0],
                )),
            ],
        )
        .unwrap();
        // Pre-activation is x - 10 < 0 at x = 0, so gradient is zero.
        assert_eq!(net.gradient(&[0.0], &[1.0, 0.0]), vec![0.0]);
    }
}
