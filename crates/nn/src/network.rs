use serde::{Deserialize, Serialize};

use crate::{Layer, NetworkError};

/// A feed-forward ReLU network `N : R^n -> R^m`.
///
/// The network is a validated sequence of [`Layer`]s. Outputs are
/// interpreted as per-class scores; [`Network::classify`] returns the index
/// of the maximal score.
///
/// # Examples
///
/// ```
/// use nn::{AffineLayer, Layer, Network};
/// use tensor::Matrix;
///
/// // N(x) = ReLU(x) followed by a 2-class readout.
/// let net = Network::new(1, vec![
///     Layer::Affine(AffineLayer::new(Matrix::from_rows(&[&[1.0], &[-1.0]]), vec![0.0, 0.0])),
///     Layer::Relu,
///     Layer::Affine(AffineLayer::new(Matrix::identity(2), vec![0.0, 0.0])),
/// ])?;
/// assert_eq!(net.classify(&[2.0]), 0);
/// assert_eq!(net.classify(&[-2.0]), 1);
/// # Ok::<(), nn::NetworkError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Network {
    input_dim: usize,
    output_dim: usize,
    layers: Vec<Layer>,
}

impl Network {
    /// Creates a network, validating that adjacent layer shapes agree.
    ///
    /// # Errors
    ///
    /// Returns [`NetworkError::ShapeMismatch`] if some layer consumes a
    /// different dimension than the preceding layer produces.
    pub fn new(input_dim: usize, layers: Vec<Layer>) -> Result<Self, NetworkError> {
        let mut dim = input_dim;
        for (idx, layer) in layers.iter().enumerate() {
            if let Some(required) = layer.required_input_dim() {
                if required != dim {
                    return Err(NetworkError::ShapeMismatch {
                        layer: idx,
                        expected: dim,
                        actual: required,
                    });
                }
            }
            dim = layer.output_dim(dim);
        }
        Ok(Network {
            input_dim,
            output_dim: dim,
            layers,
        })
    }

    /// Dimension of the input space.
    pub fn input_dim(&self) -> usize {
        self.input_dim
    }

    /// Dimension of the output space (number of classes).
    pub fn output_dim(&self) -> usize {
        self.output_dim
    }

    /// The layers of the network, in application order.
    pub fn layers(&self) -> &[Layer] {
        &self.layers
    }

    /// Number of affine layers (the paper's notion of depth).
    pub fn depth(&self) -> usize {
        self.layers
            .iter()
            .filter(|l| matches!(l, Layer::Affine(_)))
            .count()
    }

    /// Total number of neurons across intermediate representations.
    pub fn neuron_count(&self) -> usize {
        let mut dim = self.input_dim;
        let mut total = 0;
        for layer in &self.layers {
            dim = layer.output_dim(dim);
            total += dim;
        }
        total
    }

    /// Whether every weight and bias in the network is finite.
    ///
    /// A network with NaN or infinite parameters poisons both concrete
    /// evaluation and every abstract transformer, so verifiers reject
    /// such models up front instead of producing unsound verdicts.
    pub fn params_finite(&self) -> bool {
        self.layers.iter().all(|layer| match layer {
            Layer::Affine(a) => {
                a.weights.as_slice().iter().all(|w| w.is_finite())
                    && a.bias.iter().all(|b| b.is_finite())
            }
            Layer::Relu | Layer::MaxPool(_) => true,
        })
    }

    /// Evaluates the network on an input point.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.input_dim()`.
    pub fn eval(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.input_dim, "input dimension mismatch");
        let mut v = x.to_vec();
        for layer in &self.layers {
            v = layer.apply(&v);
        }
        v
    }

    /// Evaluates the network, returning the vector after every layer.
    ///
    /// `result[0]` is the input itself and `result[i + 1]` is the output of
    /// layer `i`. Used by backpropagation.
    pub fn eval_trace(&self, x: &[f64]) -> Vec<Vec<f64>> {
        assert_eq!(x.len(), self.input_dim, "input dimension mismatch");
        let mut trace = Vec::with_capacity(self.layers.len() + 1);
        trace.push(x.to_vec());
        for layer in &self.layers {
            let next = layer.apply(trace.last().expect("trace is non-empty"));
            trace.push(next);
        }
        trace
    }

    /// Returns the class (index of the highest score) assigned to `x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.input_dim()` or the network has no output.
    pub fn classify(&self, x: &[f64]) -> usize {
        tensor::ops::argmax(&self.eval(x))
    }

    /// The robustness objective of the paper (Eq. 2):
    /// `F(x) = N(x)_K - max_{j != K} N(x)_j`.
    ///
    /// `F(x) <= 0` means `x` is an adversarial counterexample for target
    /// class `target`.
    ///
    /// # Panics
    ///
    /// Panics if `target >= self.output_dim()` or the network has fewer
    /// than two outputs.
    pub fn objective(&self, x: &[f64], target: usize) -> f64 {
        let y = self.eval(x);
        margin(&y, target)
    }

    /// An upper bound on the network's Lipschitz constant (L2 operator
    /// norm), computed as the product of per-layer bounds.
    ///
    /// ReLU and max-pool are 1-Lipschitz; affine layers contribute their
    /// spectral norm (estimated by power iteration).
    pub fn lipschitz_bound(&self) -> f64 {
        let mut bound = 1.0;
        for layer in &self.layers {
            if let Layer::Affine(a) = layer {
                bound *= tensor::linalg::spectral_norm(&a.weights, 60).max(f64::MIN_POSITIVE);
            }
        }
        bound
    }
}

/// Score margin of class `target` over the best other class:
/// `y_target - max_{j != target} y_j`.
///
/// # Panics
///
/// Panics if `target >= y.len()` or `y.len() < 2`.
pub fn margin(y: &[f64], target: usize) -> f64 {
    assert!(target < y.len(), "target class out of range");
    assert!(y.len() >= 2, "margin requires at least two classes");
    let best_other = y
        .iter()
        .enumerate()
        .filter(|(j, _)| *j != target)
        .map(|(_, v)| *v)
        .fold(f64::NEG_INFINITY, f64::max);
    y[target] - best_other
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AffineLayer;
    use tensor::Matrix;

    fn example_2_2() -> Network {
        // The two-layer network from Example 2.2 of the paper.
        Network::new(
            1,
            vec![
                Layer::Affine(AffineLayer::new(
                    Matrix::from_rows(&[&[1.0], &[2.0]]),
                    vec![-1.0, 1.0],
                )),
                Layer::Relu,
                Layer::Affine(AffineLayer::new(
                    Matrix::from_rows(&[&[2.0, 1.0], &[-1.0, 1.0]]),
                    vec![1.0, 2.0],
                )),
            ],
        )
        .unwrap()
    }

    #[test]
    fn example_2_2_outputs() {
        let net = example_2_2();
        // The paper prints N(0) = [1 3], but its own closed form
        // [a+1, a+2] with a = ReLU(2*0+1) = 1 gives [2 3]; the class is 1
        // either way.
        assert_eq!(net.eval(&[0.0]), vec![2.0, 3.0]);
        assert_eq!(net.classify(&[0.0]), 1);
        // N(2) = [8, 6]: not robust at x = 2 for class 1.
        assert_eq!(net.eval(&[2.0]), vec![8.0, 6.0]);
        assert_eq!(net.classify(&[2.0]), 0);
    }

    #[test]
    fn objective_sign_tracks_robustness() {
        let net = example_2_2();
        assert!(net.objective(&[0.0], 1) > 0.0);
        assert!(net.objective(&[2.0], 1) < 0.0);
    }

    #[test]
    fn shape_mismatch_detected() {
        let err = Network::new(
            3,
            vec![Layer::Affine(AffineLayer::new(
                Matrix::zeros(2, 2),
                vec![0.0; 2],
            ))],
        )
        .unwrap_err();
        assert!(matches!(err, NetworkError::ShapeMismatch { layer: 0, .. }));
    }

    #[test]
    fn eval_trace_layers() {
        let net = example_2_2();
        let trace = net.eval_trace(&[0.0]);
        assert_eq!(trace.len(), 4);
        assert_eq!(trace[0], vec![0.0]);
        assert_eq!(trace[1], vec![-1.0, 1.0]);
        assert_eq!(trace[2], vec![0.0, 1.0]);
        assert_eq!(trace[3], vec![2.0, 3.0]);
    }

    #[test]
    fn margin_known_values() {
        assert_eq!(margin(&[3.0, 1.0, 2.0], 0), 1.0);
        assert_eq!(margin(&[3.0, 1.0, 2.0], 1), -2.0);
    }

    #[test]
    fn depth_and_neuron_count() {
        let net = example_2_2();
        assert_eq!(net.depth(), 2);
        assert_eq!(net.neuron_count(), 2 + 2 + 2);
    }

    #[test]
    fn lipschitz_bound_is_positive_and_bounds_behavior() {
        let net = example_2_2();
        let m = net.lipschitz_bound();
        assert!(m > 0.0);
        // |N(x1) - N(x2)| <= M |x1 - x2| on a few sampled pairs.
        for (a, b) in [(0.0, 0.5), (-1.0, 1.0), (0.3, 0.31)] {
            let ya = net.eval(&[a]);
            let yb = net.eval(&[b]);
            let dy = tensor::ops::distance(&ya, &yb);
            assert!(dy <= m * (a - b).abs() + 1e-9, "{dy} > {m} * |{a}-{b}|");
        }
    }
}
