//! Plain-text (de)serialization of networks.
//!
//! The format is line-oriented and human-inspectable, replacing the
//! TensorFlow protobuf files consumed by the original tool:
//!
//! ```text
//! charon-net 1
//! input <dim>
//! affine <out> <in>
//! <row 0 of W, whitespace separated>
//! ...
//! <bias row>
//! relu
//! maxpool <out> <in>
//! <group 0: indices>
//! ...
//! end
//! ```

use std::fmt::Write as _;
use std::path::Path;

use tensor::Matrix;

use crate::{AffineLayer, Layer, MaxPoolLayer, Network, NetworkError};

/// Serializes a network to the plain-text format.
pub fn to_text(net: &Network) -> String {
    let mut out = String::new();
    writeln!(out, "charon-net 1").unwrap();
    writeln!(out, "input {}", net.input_dim()).unwrap();
    for layer in net.layers() {
        match layer {
            Layer::Affine(a) => {
                writeln!(out, "affine {} {}", a.output_dim(), a.input_dim()).unwrap();
                for r in 0..a.weights.rows() {
                    let row: Vec<String> =
                        a.weights.row(r).iter().map(|v| format!("{v:?}")).collect();
                    writeln!(out, "{}", row.join(" ")).unwrap();
                }
                let bias: Vec<String> = a.bias.iter().map(|v| format!("{v:?}")).collect();
                writeln!(out, "{}", bias.join(" ")).unwrap();
            }
            Layer::Relu => writeln!(out, "relu").unwrap(),
            Layer::MaxPool(p) => {
                writeln!(out, "maxpool {} {}", p.output_dim(), p.input_dim).unwrap();
                for group in &p.groups {
                    let idx: Vec<String> = group.iter().map(|i| i.to_string()).collect();
                    writeln!(out, "{}", idx.join(" ")).unwrap();
                }
            }
        }
    }
    writeln!(out, "end").unwrap();
    out
}

/// Parses a network from the plain-text format.
///
/// # Errors
///
/// Returns [`NetworkError::Parse`] on any syntactic problem and
/// [`NetworkError::ShapeMismatch`] if the parsed layers do not compose.
pub fn from_text(text: &str) -> Result<Network, NetworkError> {
    let mut lines = text.lines().map(str::trim).filter(|l| !l.is_empty());
    let parse_err = |msg: &str| NetworkError::Parse(msg.to_string());

    let header = lines.next().ok_or_else(|| parse_err("empty input"))?;
    if header != "charon-net 1" {
        return Err(parse_err("bad header"));
    }
    let input_line = lines
        .next()
        .ok_or_else(|| parse_err("missing input line"))?;
    let input_dim = input_line
        .strip_prefix("input ")
        .and_then(|s| s.parse::<usize>().ok())
        .ok_or_else(|| parse_err("bad input line"))?;

    let mut layers = Vec::new();
    loop {
        let line = lines
            .next()
            .ok_or_else(|| parse_err("missing end marker"))?;
        if line == "end" {
            break;
        }
        if line == "relu" {
            layers.push(Layer::Relu);
            continue;
        }
        let mut parts = line.split_whitespace();
        match parts.next() {
            Some("affine") => {
                let rows: usize = parts
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| parse_err("bad affine rows"))?;
                let cols: usize = parts
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| parse_err("bad affine cols"))?;
                let mut w = Matrix::zeros(rows, cols);
                for r in 0..rows {
                    let row_line = lines
                        .next()
                        .ok_or_else(|| parse_err("missing weight row"))?;
                    let vals = parse_f64_row(row_line, cols)?;
                    w.row_mut(r).copy_from_slice(&vals);
                }
                let bias_line = lines.next().ok_or_else(|| parse_err("missing bias row"))?;
                let bias = parse_f64_row(bias_line, rows)?;
                layers.push(Layer::Affine(AffineLayer::new(w, bias)));
            }
            Some("maxpool") => {
                let out: usize = parts
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| parse_err("bad maxpool out"))?;
                let input: usize = parts
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| parse_err("bad maxpool in"))?;
                let mut groups = Vec::with_capacity(out);
                for _ in 0..out {
                    let group_line = lines
                        .next()
                        .ok_or_else(|| parse_err("missing pool group"))?;
                    let group: Result<Vec<usize>, _> = group_line
                        .split_whitespace()
                        .map(|s| s.parse::<usize>())
                        .collect();
                    groups.push(group.map_err(|_| parse_err("bad pool index"))?);
                }
                layers.push(Layer::MaxPool(MaxPoolLayer::new(input, groups)));
            }
            other => return Err(NetworkError::Parse(format!("unknown layer kind {other:?}"))),
        }
    }
    Network::new(input_dim, layers)
}

/// FNV-1a 64-bit hash of a byte string.
///
/// Used to content-address serialized networks ([`content_hash`]) and
/// raw model files (the server's model registry, the zoo's on-disk
/// cache). Not cryptographic — it keys caches, it does not authenticate
/// anything.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut hash = OFFSET;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(PRIME);
    }
    hash
}

/// Content hash of a network: FNV-1a over its canonical text form.
///
/// Two networks hash equal iff their [`to_text`] serializations are
/// byte-identical, so the hash pins exact weights (floats are printed
/// shortest-round-trip), not just architecture. This is the shared cache
/// key between the server's model registry and `data::zoo`'s on-disk
/// network cache.
pub fn content_hash(net: &Network) -> u64 {
    fnv1a(to_text(net).as_bytes())
}

fn parse_f64_row(line: &str, expected: usize) -> Result<Vec<f64>, NetworkError> {
    let vals: Result<Vec<f64>, _> = line.split_whitespace().map(|s| s.parse::<f64>()).collect();
    let vals = vals.map_err(|e| NetworkError::Parse(format!("bad float: {e}")))?;
    if vals.len() != expected {
        return Err(NetworkError::Parse(format!(
            "expected {expected} values, got {}",
            vals.len()
        )));
    }
    Ok(vals)
}

/// Saves a network to a file in the plain-text format.
///
/// # Errors
///
/// Returns any I/O error from writing the file.
pub fn save(net: &Network, path: &Path) -> std::io::Result<()> {
    std::fs::write(path, to_text(net))
}

/// Loads a network from a plain-text file.
///
/// # Errors
///
/// Returns an I/O error wrapped as [`NetworkError::Parse`] if the file
/// cannot be read, or a parse error if the contents are malformed.
pub fn load(path: &Path) -> Result<Network, NetworkError> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| NetworkError::Parse(format!("cannot read {}: {e}", path.display())))?;
    from_text(&text)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conv::{max_pool_groups, Shape3};
    use crate::samples;

    #[test]
    fn roundtrip_xor() {
        let net = samples::xor_network();
        let text = to_text(&net);
        let parsed = from_text(&text).unwrap();
        assert_eq!(parsed, net);
    }

    #[test]
    fn roundtrip_with_maxpool() {
        let pool = max_pool_groups(Shape3::new(1, 2, 2), 2);
        let net = Network::new(
            4,
            vec![
                Layer::MaxPool(pool),
                Layer::Affine(AffineLayer::new(
                    Matrix::from_rows(&[&[1.5], &[-2.5]]),
                    vec![0.125, -0.25],
                )),
            ],
        )
        .unwrap();
        let parsed = from_text(&to_text(&net)).unwrap();
        assert_eq!(parsed, net);
    }

    #[test]
    fn roundtrip_preserves_exact_floats() {
        let net = Network::new(
            1,
            vec![Layer::Affine(AffineLayer::new(
                Matrix::from_rows(&[&[0.1 + 0.2], &[1.0 / 3.0]]),
                vec![f64::MIN_POSITIVE, 1e300],
            ))],
        )
        .unwrap();
        let parsed = from_text(&to_text(&net)).unwrap();
        assert_eq!(parsed, net);
    }

    #[test]
    fn roundtrip_random_trained_networks() {
        for seed in 0..5 {
            let net = crate::train::random_mlp(4, &[6, 3], 2, seed);
            let parsed = from_text(&to_text(&net)).unwrap();
            assert_eq!(parsed, net);
            // Behaviour is bit-identical, not just structurally equal.
            let x = [0.1, -0.5, 0.9, 0.0];
            assert_eq!(net.eval(&x), parsed.eval(&x));
        }
    }

    #[test]
    fn rejects_bad_header() {
        assert!(matches!(
            from_text("bogus\ninput 2\nend"),
            Err(NetworkError::Parse(_))
        ));
    }

    #[test]
    fn rejects_truncated_affine() {
        let text = "charon-net 1\ninput 2\naffine 2 2\n1 0\n";
        assert!(matches!(from_text(text), Err(NetworkError::Parse(_))));
    }

    #[test]
    fn rejects_wrong_row_width() {
        let text = "charon-net 1\ninput 2\naffine 1 2\n1 2 3\n0\nend";
        assert!(matches!(from_text(text), Err(NetworkError::Parse(_))));
    }

    /// Table of malformed inputs the parser must reject with a typed
    /// error — a malformed model file must never panic the loader or
    /// produce a silently wrong network.
    #[test]
    fn rejects_malformed_inputs_with_typed_errors() {
        let cases: &[(&str, &str)] = &[
            ("", "empty file"),
            ("charon-net 2\ninput 2\nend", "unknown version"),
            ("charon-net 1\nend", "missing input line"),
            ("charon-net 1\ninput two\nend", "non-numeric input dim"),
            (
                "charon-net 1\ninput 2\naffine 2 2\n1 0\n0 1\n",
                "truncated matrix (missing bias and end)",
            ),
            (
                "charon-net 1\ninput 2\naffine 2 2\n1 0\n0 x\n0 0\nend",
                "non-numeric weight token",
            ),
            (
                "charon-net 1\ninput 2\naffine 2 2\n1 0 0\n0 1\n0 0\nend",
                "wrong row arity",
            ),
            (
                "charon-net 1\ninput 2\naffine 2 2\n1 0\n0 1\n0 0",
                "missing end marker",
            ),
            (
                "charon-net 1\ninput 2\nteleport 3\nend",
                "unknown layer kind",
            ),
        ];
        for (text, why) in cases {
            match from_text(text) {
                Err(NetworkError::Parse(msg)) => {
                    assert!(!msg.is_empty(), "{why}: empty diagnostic")
                }
                other => panic!("{why}: expected Parse error, got {other:?}"),
            }
        }
    }

    #[test]
    fn load_missing_file_reports_path_in_error() {
        let err = load(std::path::Path::new("/nonexistent/charon-net.txt")).unwrap_err();
        match err {
            NetworkError::Parse(msg) => assert!(msg.contains("nonexistent"), "msg: {msg}"),
            other => panic!("expected Parse error, got {other:?}"),
        }
    }
}
