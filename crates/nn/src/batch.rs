//! Batched evaluation and backpropagation: many input points at once.
//!
//! Each row of the input [`Matrix`] is one point. Affine layers apply to
//! the whole batch as a single `X·Wᵀ` kernel call ([`Matrix::matmul_transb`])
//! and the backward pass as one `G·W` ([`Matrix::matmul`]), so a batch of
//! PGD restarts pays one blocked matrix product per layer instead of one
//! strided matrix-vector product per point.

use tensor::Matrix;

use crate::{Layer, Network};

impl Layer {
    /// Applies the layer to every row of `xs` at once.
    ///
    /// Row `i` of the result equals `self.apply(xs.row(i))` for finite
    /// inputs (the batched affine kernel accumulates in the same ascending
    /// column order as the per-point path).
    ///
    /// # Panics
    ///
    /// Panics if `xs.cols()` differs from the layer's input dimension.
    pub fn apply_batch(&self, xs: &Matrix) -> Matrix {
        match self {
            Layer::Affine(a) => xs.matmul_transb_bias(&a.weights, &a.bias),
            Layer::Relu => {
                let mut out = xs.clone();
                for v in out.as_mut_slice() {
                    *v = v.max(0.0);
                }
                out
            }
            Layer::MaxPool(p) => {
                assert_eq!(xs.cols(), p.input_dim, "max-pool dimension mismatch");
                let mut out = Matrix::zeros(xs.rows(), p.output_dim());
                for (x, o) in xs.rows_iter().zip(out.rows_iter_mut()) {
                    for (g, slot) in p.groups.iter().zip(o.iter_mut()) {
                        *slot = g.iter().map(|&i| x[i]).fold(f64::NEG_INFINITY, f64::max);
                    }
                }
                out
            }
        }
    }
}

impl Network {
    /// Evaluates the network on every row of `xs` at once.
    ///
    /// # Panics
    ///
    /// Panics if `xs.cols() != self.input_dim()`.
    pub fn eval_batch(&self, xs: &Matrix) -> Matrix {
        assert_eq!(xs.cols(), self.input_dim(), "input dimension mismatch");
        let mut v = xs.clone();
        for layer in self.layers() {
            v = layer.apply_batch(&v);
        }
        v
    }

    /// Batched [`Network::eval_trace`]: `result[0]` is the input batch and
    /// `result[i + 1]` the batch after layer `i`.
    pub fn eval_trace_batch(&self, xs: &Matrix) -> Vec<Matrix> {
        assert_eq!(xs.cols(), self.input_dim(), "input dimension mismatch");
        let mut trace = Vec::with_capacity(self.layers().len() + 1);
        trace.push(xs.clone());
        for layer in self.layers() {
            let next = layer.apply_batch(trace.last().expect("trace is non-empty"));
            trace.push(next);
        }
        trace
    }

    /// The robustness objective `F` (Eq. 2) for every row of `xs`.
    ///
    /// # Panics
    ///
    /// Panics if `target >= self.output_dim()` or the network has fewer
    /// than two outputs.
    pub fn objective_batch(&self, xs: &Matrix, target: usize) -> Vec<f64> {
        let ys = self.eval_batch(xs);
        ys.rows_iter().map(|y| crate::margin(y, target)).collect()
    }

    /// Gradient of the robustness objective for every row of `xs`, as a
    /// matrix whose row `i` is the gradient at `xs.row(i)`.
    ///
    /// Semantics per row match [`Network::objective_gradient`]: the seed is
    /// `+1` at `target` and `-1` at that row's strongest rival class, ReLU
    /// kinks use the `0` subgradient, and max-pool ties route to the lowest
    /// winning index.
    ///
    /// # Panics
    ///
    /// Panics if `target >= self.output_dim()`.
    pub fn objective_gradient_batch(&self, xs: &Matrix, target: usize) -> Matrix {
        assert!(target < self.output_dim(), "target class out of range");
        let trace = self.eval_trace_batch(xs);
        let ys = trace.last().expect("trace is non-empty");

        // Seed batch: one ±1 pair per row. Rival ties keep the last
        // maximum, as the per-point path does.
        let mut g = Matrix::zeros(xs.rows(), self.output_dim());
        for (y, seed) in ys.rows_iter().zip(g.rows_iter_mut()) {
            let mut rival = usize::MAX;
            for (j, v) in y.iter().enumerate() {
                if j != target && (rival == usize::MAX || *v >= y[rival]) {
                    rival = j;
                }
            }
            assert!(
                rival != usize::MAX,
                "network must have at least two outputs"
            );
            seed[target] = 1.0;
            seed[rival] = -1.0;
        }

        for (idx, layer) in self.layers().iter().enumerate().rev() {
            let input = &trace[idx];
            g = match layer {
                // d(g·(Wx + b))/dx = Wᵀg, batched: G_prev = G · W.
                Layer::Affine(a) => g.matmul(&a.weights),
                Layer::Relu => {
                    let mut back = g;
                    for (pre, gr) in input.rows_iter().zip(back.rows_iter_mut()) {
                        for (p, gi) in pre.iter().zip(gr.iter_mut()) {
                            if *p <= 0.0 {
                                *gi = 0.0;
                            }
                        }
                    }
                    back
                }
                Layer::MaxPool(p) => {
                    let mut back = Matrix::zeros(xs.rows(), p.input_dim);
                    for ((pre, gr), br) in
                        input.rows_iter().zip(g.rows_iter()).zip(back.rows_iter_mut())
                    {
                        for (group, gi) in p.groups.iter().zip(gr.iter()) {
                            let winner = group
                                .iter()
                                .copied()
                                .reduce(|a, b| if pre[b] > pre[a] { b } else { a })
                                .expect("max-pool groups are non-empty");
                            br[winner] += gi;
                        }
                    }
                    back
                }
            };
        }
        g
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{samples, AffineLayer, MaxPoolLayer};

    fn batch_of(points: &[&[f64]]) -> Matrix {
        Matrix::from_rows(points)
    }

    #[test]
    fn eval_batch_matches_eval_per_row() {
        let net = crate::train::random_mlp(3, &[8, 6], 4, 21);
        let points: Vec<Vec<f64>> = (0..5)
            .map(|i| (0..3).map(|j| (i as f64 * 0.3 - j as f64 * 0.7).sin()).collect())
            .collect();
        let refs: Vec<&[f64]> = points.iter().map(Vec::as_slice).collect();
        let ys = net.eval_batch(&batch_of(&refs));
        for (x, y) in points.iter().zip(ys.rows_iter()) {
            // Not bitwise: the batched path runs through the register-tiled
            // matmul, whose summation association differs from matvec's.
            for (a, b) in y.iter().zip(net.eval(x).iter()) {
                assert!((a - b).abs() <= 1e-12 * b.abs().max(1.0), "{a} vs {b}");
            }
        }
    }

    #[test]
    fn eval_batch_handles_maxpool() {
        let net = Network::new(
            4,
            vec![
                Layer::MaxPool(MaxPoolLayer::new(4, vec![vec![0, 1], vec![2, 3]])),
                Layer::Affine(AffineLayer::new(Matrix::identity(2), vec![0.5, -0.5])),
            ],
        )
        .unwrap();
        let xs = batch_of(&[&[1.0, 5.0, -2.0, -3.0], &[0.0, 0.0, 7.0, 7.0]]);
        let ys = net.eval_batch(&xs);
        assert_eq!(ys.row(0), &[5.5, -2.5]);
        assert_eq!(ys.row(1), &[0.5, 6.5]);
    }

    #[test]
    fn objective_batch_matches_objective() {
        let net = samples::xor_network();
        let xs = batch_of(&[&[0.1, 0.9], &[0.5, 0.5], &[0.95, 0.95]]);
        let f = net.objective_batch(&xs, 1);
        for (x, fi) in xs.rows_iter().zip(f.iter()) {
            assert_eq!(*fi, net.objective(x, 1));
        }
    }

    #[test]
    fn gradient_batch_matches_gradient_per_row() {
        let net = crate::train::random_mlp(4, &[10, 8], 3, 33);
        let points: Vec<Vec<f64>> = (0..6)
            .map(|i| {
                (0..4)
                    .map(|j| ((i * 7 + j * 3) as f64 * 0.17).cos() * 0.8)
                    .collect()
            })
            .collect();
        let refs: Vec<&[f64]> = points.iter().map(Vec::as_slice).collect();
        let gs = net.objective_gradient_batch(&batch_of(&refs), 2);
        for (x, g) in points.iter().zip(gs.rows_iter()) {
            let reference = net.objective_gradient(x, 2);
            for (a, b) in g.iter().zip(reference.iter()) {
                assert!(
                    (a - b).abs() <= 1e-12,
                    "batched gradient {a} vs per-point {b}"
                );
            }
        }
    }

    #[test]
    fn gradient_batch_routes_maxpool_ties_to_lowest_index() {
        let net = Network::new(
            4,
            vec![
                Layer::MaxPool(MaxPoolLayer::new(4, vec![vec![0, 1], vec![2, 3]])),
                Layer::Affine(AffineLayer::new(
                    Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0]]),
                    vec![0.0, 0.0],
                )),
            ],
        )
        .unwrap();
        // Both pool groups tie; the per-point path sends gradient to the
        // lowest index of each group.
        let xs = batch_of(&[&[2.0, 2.0, -1.0, -1.0]]);
        let g = net.objective_gradient_batch(&xs, 0);
        assert_eq!(g.row(0), net.objective_gradient(&[2.0, 2.0, -1.0, -1.0], 0));
    }
}
