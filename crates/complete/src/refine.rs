//! LP-based pre-activation bound refinement (RefineZono-style).
//!
//! The paper's conclusion proposes combining "solvers and traditional
//! numerical domains in the most efficient way". One practical instance
//! of that idea is bound refinement: before running an abstract domain,
//! solve small LPs over the triangle relaxation to tighten the
//! pre-activation bounds of the most unstable neurons. Tighter bounds
//! mean fewer unstable ReLUs and smaller λ-relaxation error downstream.
//!
//! [`refined_relu_bounds`] walks the network layer by layer, maintaining
//! the same LP encoding as the complete solver, and returns for each ReLU
//! layer the (possibly tightened) pre-activation bounds.

use std::time::Instant;

use domains::{AbstractElement, Bounds, Interval};
use lp::{Constraint, LpOutcome, LpProblem};
use nn::{Layer, Network};

/// Result of bound refinement: for each ReLU layer (in network order),
/// the refined pre-activation bounds.
#[derive(Debug, Clone)]
pub struct RefinedBounds {
    /// `bounds[k]` are the pre-activation bounds of the k-th ReLU layer.
    pub relu_inputs: Vec<Bounds>,
    /// Number of LPs solved.
    pub lp_count: usize,
    /// Number of neurons whose interval width strictly decreased.
    pub improved: usize,
}

/// Computes LP-refined pre-activation bounds for every ReLU layer.
///
/// At each ReLU layer, up to `max_lp_per_layer` unstable neurons (widest
/// zero straddle first) get their bounds tightened by a pair of LPs over
/// the triangle-relaxed encoding of the network prefix. Returns `None` if
/// the deadline expires mid-way (callers fall back to interval bounds).
///
/// # Panics
///
/// Panics if the network contains max-pooling layers (check
/// [`crate::supports`]) or the region dimension mismatches.
pub fn refined_relu_bounds(
    net: &Network,
    region: &Bounds,
    deadline: Instant,
    max_lp_per_layer: usize,
) -> Option<RefinedBounds> {
    assert!(crate::supports(net), "max-pooling not supported");
    assert_eq!(region.dim(), net.input_dim(), "region dimension mismatch");

    // Incrementally grown LP data, mirroring `encode` in the parent
    // module but with refinement between layers.
    let mut var_bounds: Vec<(f64, f64)> = region
        .lower()
        .iter()
        .zip(region.upper().iter())
        .map(|(l, u)| (*l, *u))
        .collect();
    // Dense rows; small networks only (refinement is budgeted anyway).
    let mut rows: Vec<Constraint> = Vec::new();
    let mut current: Vec<usize> = (0..net.input_dim()).collect();
    let mut interval = Interval::from_bounds(region);

    let mut relu_inputs = Vec::new();
    let mut lp_count = 0usize;
    let mut improved = 0usize;

    for layer in net.layers() {
        if Instant::now() >= deadline {
            return None;
        }
        match layer {
            Layer::Affine(a) => {
                let next_interval = interval.affine(a);
                let nb = next_interval.bounds();
                let first = var_bounds.len();
                for r in 0..a.output_dim() {
                    var_bounds.push((nb.lower()[r], nb.upper()[r]));
                }
                for r in 0..a.output_dim() {
                    // z_r - W_r . prev = b_r  (built dense at final size
                    // later; store sparse for now via (idx, coeff)).
                    let mut entries = vec![(first + r, 1.0)];
                    for (c, w) in a.weights.row(r).iter().enumerate() {
                        if *w != 0.0 {
                            entries.push((current[c], -*w));
                        }
                    }
                    rows.push(sparse_eq(entries, a.bias[r]));
                }
                current = (first..first + a.output_dim()).collect();
                interval = next_interval;
            }
            Layer::Relu => {
                // Refine the most unstable pre-activations with LPs.
                let pre = interval.bounds();
                let mut lo = pre.lower().to_vec();
                let mut hi = pre.upper().to_vec();

                let mut unstable: Vec<(usize, f64)> = (0..current.len())
                    .filter(|&slot| lo[slot] < 0.0 && hi[slot] > 0.0)
                    .map(|slot| (slot, hi[slot].min(-lo[slot])))
                    .collect();
                unstable.sort_by(|a, b| b.1.total_cmp(&a.1));

                for &(slot, _) in unstable.iter().take(max_lp_per_layer) {
                    if Instant::now() >= deadline {
                        return None;
                    }
                    let var = current[slot];
                    for maximize in [false, true] {
                        lp_count += 1;
                        let mut p = build_problem(&var_bounds, &rows);
                        let mut obj = vec![0.0; var_bounds.len()];
                        obj[var] = if maximize { -1.0 } else { 1.0 };
                        p.set_objective(obj);
                        match p.solve_until(deadline) {
                            LpOutcome::Optimal { value, .. } => {
                                if maximize {
                                    let new_hi = -value;
                                    if new_hi < hi[slot] - 1e-12 {
                                        hi[slot] = new_hi.max(lo[slot]);
                                        improved += 1;
                                    }
                                } else if value > lo[slot] + 1e-12 {
                                    lo[slot] = value.min(hi[slot]);
                                    improved += 1;
                                }
                            }
                            LpOutcome::Infeasible => {
                                // Over-approximated system infeasible can
                                // only be numerical noise; ignore.
                            }
                            LpOutcome::IterationLimit => return None,
                        }
                    }
                    var_bounds[var] = (lo[slot], hi[slot]);
                }
                let refined = Bounds::new(lo.clone(), hi.clone());
                relu_inputs.push(refined.clone());
                interval = Interval::from_bounds(&refined);

                // Post-activation variables with triangle relaxation for
                // the (still) unstable neurons.
                let first = var_bounds.len();
                let post = interval.relu();
                let post_bounds = post.bounds();
                for (slot, &z_var) in current.iter().enumerate() {
                    let a_var = first + slot;
                    let (l, u) = (lo[slot], hi[slot]);
                    var_bounds.push((post_bounds.lower()[slot], post_bounds.upper()[slot]));
                    if u <= 0.0 {
                        // a is fixed to zero via its bounds.
                    } else if l >= 0.0 {
                        rows.push(sparse_eq(vec![(a_var, 1.0), (z_var, -1.0)], 0.0));
                    } else {
                        // a >= z and (u-l) a - u z <= -u l.
                        rows.push(sparse_ge(vec![(a_var, 1.0), (z_var, -1.0)], 0.0));
                        rows.push(sparse_le(vec![(a_var, u - l), (z_var, -u)], -u * l));
                    }
                }
                current = (first..first + current.len()).collect();
                interval = post;
            }
            Layer::MaxPool(_) => unreachable!("max-pool rejected before refinement"),
        }
    }

    Some(RefinedBounds {
        relu_inputs,
        lp_count,
        improved,
    })
}

/// Sparse constraint stashes: `(index, coefficient)` pairs materialized
/// into dense rows once the final variable count is known.
fn sparse_eq(entries: Vec<(usize, f64)>, rhs: f64) -> Constraint {
    Constraint::eq(stash(entries), rhs)
}

fn sparse_ge(entries: Vec<(usize, f64)>, rhs: f64) -> Constraint {
    Constraint::ge(stash(entries), rhs)
}

fn sparse_le(entries: Vec<(usize, f64)>, rhs: f64) -> Constraint {
    Constraint::le(stash(entries), rhs)
}

fn stash(entries: Vec<(usize, f64)>) -> Vec<f64> {
    entries
        .into_iter()
        .flat_map(|(i, v)| [i as f64, v])
        .collect()
}

fn build_problem(var_bounds: &[(f64, f64)], rows: &[Constraint]) -> LpProblem {
    let n = var_bounds.len();
    let mut p = LpProblem::new(n);
    for (v, (lo, hi)) in var_bounds.iter().enumerate() {
        p.set_bounds(v, *lo, *hi);
    }
    for row in rows {
        let mut coeffs = vec![0.0; n];
        for pair in row.coeffs.chunks_exact(2) {
            coeffs[pair[0] as usize] = pair[1];
        }
        p.add_constraint(Constraint {
            coeffs,
            relation: row.relation,
            rhs: row.rhs,
        });
    }
    p
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn far_deadline() -> Instant {
        Instant::now() + Duration::from_secs(30)
    }

    #[test]
    fn refinement_never_loosens_interval_bounds() {
        let net = nn::train::random_mlp(3, &[8, 8], 3, 5);
        let region = Bounds::linf_ball(&[0.1, -0.2, 0.3], 0.3, None);
        let refined = refined_relu_bounds(&net, &region, far_deadline(), 8).unwrap();

        // Recompute the plain interval pre-activation bounds.
        let mut interval = Interval::from_bounds(&region);
        let mut k = 0;
        for layer in net.layers() {
            match layer {
                Layer::Affine(a) => interval = interval.affine(a),
                Layer::Relu => {
                    let plain = interval.bounds();
                    let tight = &refined.relu_inputs[k];
                    for i in 0..plain.dim() {
                        assert!(tight.lower()[i] >= plain.lower()[i] - 1e-7);
                        assert!(tight.upper()[i] <= plain.upper()[i] + 1e-7);
                    }
                    k += 1;
                    // Continue the interval propagation from the *refined*
                    // bounds like the implementation does.
                    interval = Interval::from_bounds(tight).relu();
                }
                Layer::MaxPool(_) => unreachable!(),
            }
        }
        assert_eq!(k, refined.relu_inputs.len());
    }

    #[test]
    fn refined_bounds_contain_true_preactivations() {
        let net = nn::train::random_mlp(2, &[6, 6], 2, 9);
        let region = Bounds::linf_ball(&[0.2, -0.1], 0.25, None);
        let refined = refined_relu_bounds(&net, &region, far_deadline(), 6).unwrap();

        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..100 {
            let x = region.sample(&mut rng);
            let trace = net.eval_trace(&x);
            let mut k = 0;
            for (idx, layer) in net.layers().iter().enumerate() {
                if matches!(layer, Layer::Relu) {
                    let pre = &trace[idx];
                    let b = &refined.relu_inputs[k];
                    for (i, v) in pre.iter().enumerate() {
                        assert!(
                            *v >= b.lower()[i] - 1e-7 && *v <= b.upper()[i] + 1e-7,
                            "pre-activation {v} outside refined [{}, {}]",
                            b.lower()[i],
                            b.upper()[i]
                        );
                    }
                    k += 1;
                }
            }
        }
    }

    #[test]
    fn refinement_actually_improves_something() {
        // On a deep-enough network the interval bounds are loose and the
        // LP must be able to improve at least one neuron.
        let net = nn::train::random_mlp(3, &[10, 10, 10], 3, 1);
        let region = Bounds::linf_ball(&[0.0, 0.1, -0.1], 0.3, None);
        let refined = refined_relu_bounds(&net, &region, far_deadline(), 10).unwrap();
        assert!(refined.lp_count > 0);
        assert!(
            refined.improved > 0,
            "expected at least one tightened neuron ({} LPs)",
            refined.lp_count
        );
    }

    #[test]
    fn expired_deadline_returns_none() {
        let net = nn::train::random_mlp(2, &[5], 2, 0);
        let region = Bounds::linf_ball(&[0.0, 0.0], 0.5, None);
        let past = Instant::now() - Duration::from_secs(1);
        assert!(refined_relu_bounds(&net, &region, past, 4).is_none());
    }
}
