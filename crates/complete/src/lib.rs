//! A complete decision procedure for local robustness of fully-connected
//! ReLU networks: LP relaxation plus ReLU case splitting.
//!
//! The paper's conclusion (§9) observes that "one can view solver-based
//! techniques as a perfectly precise abstract domain" and proposes letting
//! the verification policy *learn when to apply solvers*. This crate is
//! that solver, factored out of the Reluplex baseline so that both
//! `baselines::reluplex` (as a standalone tool) and `charon` (as a
//! policy-selectable exact domain) can use it:
//!
//! 1. Every neuron becomes an LP variable; interval analysis provides
//!    finite bounds and fixes stable ReLUs.
//! 2. For each rival class `j != K`, the procedure searches for a point
//!    with `y_j >= y_K` by depth-first case splitting on the unstable
//!    ReLUs, pruning branches whose *triangle relaxation* LP already
//!    proves `max(y_j - y_K) < 0` or is infeasible.
//! 3. A fully-fixed feasible leaf yields an exact LP solution, which is a
//!    concrete counterexample.
//!
//! The procedure is sound and complete but exponential in the number of
//! unstable neurons. The [`refine`] module reuses the same LP encoding
//! for *bound refinement* (tightening pre-activation intervals before an
//! abstract domain runs), the paper's "combine solvers and numerical
//! domains" idea.
//!
//! # Examples
//!
//! ```
//! use complete::{CompleteSolver, Decision};
//! use domains::Bounds;
//!
//! let net = nn::samples::example_2_2_network();
//! let solver = CompleteSolver::default();
//! let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
//! // Robust on [-1, 1]:
//! assert!(matches!(
//!     solver.decide(&net, &Bounds::new(vec![-1.0], vec![1.0]), 1, deadline),
//!     Decision::Proved
//! ));
//! // Violated on [-1, 2]:
//! assert!(matches!(
//!     solver.decide(&net, &Bounds::new(vec![-1.0], vec![2.0]), 1, deadline),
//!     Decision::Violated(_)
//! ));
//! ```

pub mod refine;

use std::time::Instant;

use domains::{AbstractElement, Bounds, Interval};
use lp::{Constraint, LpOutcome, LpProblem};
use nn::{Layer, Network};

/// Result of the complete decision procedure.
#[derive(Debug, Clone, PartialEq)]
pub enum Decision {
    /// The property holds: every point in the region is classified as the
    /// target class.
    Proved,
    /// A concrete counterexample (a point with non-positive margin).
    Violated(Vec<f64>),
    /// The node or time budget ran out before a decision.
    Budget,
}

/// Configuration of the complete solver.
#[derive(Debug, Clone)]
pub struct CompleteSolver {
    /// Maximum number of search nodes (LP solves) per rival class.
    pub max_nodes: usize,
    /// Numerical tolerance for pruning (`min(y_K - y_j) > tol` prunes).
    pub tolerance: f64,
}

impl Default for CompleteSolver {
    fn default() -> Self {
        CompleteSolver {
            max_nodes: 100_000,
            tolerance: 1e-9,
        }
    }
}

/// Whether the solver supports this architecture (no max-pooling).
pub fn supports(net: &Network) -> bool {
    !net.layers().iter().any(|l| matches!(l, Layer::MaxPool(_)))
}

impl CompleteSolver {
    /// Creates a solver with a node budget per rival class.
    pub fn with_node_budget(max_nodes: usize) -> Self {
        CompleteSolver {
            max_nodes,
            ..CompleteSolver::default()
        }
    }

    /// Decides whether every point of `region` is classified as `target`.
    ///
    /// # Panics
    ///
    /// Panics if the network contains max-pooling layers (check
    /// [`supports`] first), if dimensions mismatch, or if `target` is out
    /// of range.
    pub fn decide(
        &self,
        net: &Network,
        region: &Bounds,
        target: usize,
        deadline: Instant,
    ) -> Decision {
        assert!(supports(net), "max-pooling not supported; call supports()");
        assert!(target < net.output_dim(), "target class out of range");
        assert_eq!(region.dim(), net.input_dim(), "region dimension mismatch");
        let encoding = encode(net, region);

        for rival in 0..net.output_dim() {
            if rival == target {
                continue;
            }
            match self.search_rival(net, region, &encoding, target, rival, deadline) {
                RivalOutcome::NoViolation => continue,
                RivalOutcome::Falsified(x) => return Decision::Violated(x),
                RivalOutcome::Budget => return Decision::Budget,
            }
        }
        Decision::Proved
    }

    /// DFS over ReLU phases, looking for `y_rival >= y_target`.
    fn search_rival(
        &self,
        net: &Network,
        region: &Bounds,
        enc: &Encoding,
        target: usize,
        rival: usize,
        deadline: Instant,
    ) -> RivalOutcome {
        let mut stack: Vec<Vec<Phase>> = vec![vec![Phase::Undecided; enc.unstable.len()]];
        let mut nodes = 0usize;

        while let Some(phases) = stack.pop() {
            if Instant::now() >= deadline {
                return RivalOutcome::Budget;
            }
            nodes += 1;
            if nodes > self.max_nodes {
                return RivalOutcome::Budget;
            }

            let problem = build_lp(enc, &phases, target, rival);
            match problem.solve_until(deadline) {
                LpOutcome::Infeasible => continue,
                LpOutcome::IterationLimit => {
                    // Either the deadline passed mid-solve or the LP is
                    // numerically stuck; both end the search for this
                    // rival without a proof.
                    return RivalOutcome::Budget;
                }
                LpOutcome::Optimal { x, value } => {
                    if value > self.tolerance {
                        // min(y_target - y_rival) > 0: no violation here.
                        continue;
                    }
                    match pick_undecided(enc, &phases) {
                        Some(split) => push_branches(&mut stack, &phases, split),
                        None => {
                            // Exact leaf: the LP point is a real input.
                            let mut input: Vec<f64> = x[..net.input_dim()].to_vec();
                            region.clamp(&mut input);
                            let margin = net.objective(&input, target);
                            if margin <= 0.0 {
                                return RivalOutcome::Falsified(input);
                            }
                            // Tolerance artifact; not a real violation.
                            continue;
                        }
                    }
                }
            }
        }
        RivalOutcome::NoViolation
    }
}

enum RivalOutcome {
    NoViolation,
    Falsified(Vec<f64>),
    Budget,
}

/// Phase assignment for one unstable ReLU during search.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Undecided,
    Active,
    Inactive,
}

/// LP encoding of a network over an input region.
struct Encoding {
    /// Total number of LP variables.
    num_vars: usize,
    /// Per-variable finite bounds.
    bounds: Vec<(f64, f64)>,
    /// Constraints shared by every branch (affine equalities, stable
    /// ReLU equalities), stored sparsely.
    base: Vec<SparseEq>,
    /// Unstable ReLU connections `(z_var, a_var, z_lo, z_hi)`.
    unstable: Vec<(usize, usize, f64, f64)>,
    /// Variable indices of the output block.
    outputs: Vec<usize>,
}

/// A sparse linear equality `sum entries . x = rhs`.
struct SparseEq {
    entries: Vec<(usize, f64)>,
    rhs: f64,
}

impl SparseEq {
    fn densify(&self, num_vars: usize) -> Constraint {
        let mut coeffs = vec![0.0; num_vars];
        for &(i, v) in &self.entries {
            coeffs[i] = v;
        }
        Constraint::eq(coeffs, self.rhs)
    }
}

/// Chooses the undecided ReLU with the widest zero straddle.
fn pick_undecided(enc: &Encoding, phases: &[Phase]) -> Option<usize> {
    phases
        .iter()
        .enumerate()
        .filter(|(_, p)| **p == Phase::Undecided)
        .max_by(|(a, _), (b, _)| {
            let wa = enc.unstable[*a].3.min(-enc.unstable[*a].2);
            let wb = enc.unstable[*b].3.min(-enc.unstable[*b].2);
            wa.total_cmp(&wb)
        })
        .map(|(i, _)| i)
}

fn push_branches(stack: &mut Vec<Vec<Phase>>, phases: &[Phase], split: usize) {
    let mut active = phases.to_vec();
    active[split] = Phase::Active;
    let mut inactive = phases.to_vec();
    inactive[split] = Phase::Inactive;
    stack.push(active);
    stack.push(inactive);
}

/// Builds the LP variable layout and base constraints for a network.
fn encode(net: &Network, region: &Bounds) -> Encoding {
    let mut bounds: Vec<(f64, f64)> = region
        .lower()
        .iter()
        .zip(region.upper().iter())
        .map(|(l, u)| (*l, *u))
        .collect();
    let mut base: Vec<SparseEq> = Vec::new();
    let mut unstable: Vec<(usize, usize, f64, f64)> = Vec::new();

    // `current` holds the variable indices of the live block; `interval`
    // tracks its concrete bounds for stability analysis.
    let mut current: Vec<usize> = (0..net.input_dim()).collect();
    let mut interval = Interval::from_bounds(region);

    for layer in net.layers() {
        match layer {
            Layer::Affine(a) => {
                let next_interval = interval.affine(a);
                let nb = next_interval.bounds();
                let first = bounds.len();
                for r in 0..a.output_dim() {
                    bounds.push((nb.lower()[r], nb.upper()[r]));
                }
                // z_r - sum_c W[r][c] * prev_c = b_r
                for r in 0..a.output_dim() {
                    let mut entries: Vec<(usize, f64)> = vec![(first + r, 1.0)];
                    for (c, w) in a.weights.row(r).iter().enumerate() {
                        if *w != 0.0 {
                            entries.push((current[c], -*w));
                        }
                    }
                    base.push(SparseEq {
                        entries,
                        rhs: a.bias[r],
                    });
                }
                current = (first..first + a.output_dim()).collect();
                interval = next_interval;
            }
            Layer::Relu => {
                let next_interval = interval.relu();
                let pre = interval.bounds();
                let first = bounds.len();
                for (slot, &z_var) in current.iter().enumerate() {
                    let (l, u) = (pre.lower()[slot], pre.upper()[slot]);
                    let a_var = first + slot;
                    if u <= 0.0 {
                        bounds.push((0.0, 0.0));
                    } else if l >= 0.0 {
                        bounds.push((l, u));
                        // a = z
                        base.push(SparseEq {
                            entries: vec![(a_var, 1.0), (z_var, -1.0)],
                            rhs: 0.0,
                        });
                    } else {
                        bounds.push((0.0, u));
                        unstable.push((z_var, a_var, l, u));
                    }
                }
                current = (first..first + current.len()).collect();
                interval = next_interval;
            }
            Layer::MaxPool(_) => unreachable!("max-pool rejected before encoding"),
        }
    }

    Encoding {
        num_vars: bounds.len(),
        bounds,
        base,
        unstable,
        outputs: current,
    }
}

/// Builds the LP for a specific phase assignment and rival class.
fn build_lp(enc: &Encoding, phases: &[Phase], target: usize, rival: usize) -> LpProblem {
    let n = enc.num_vars;
    let mut p = LpProblem::new(n);
    for (v, (lo, hi)) in enc.bounds.iter().enumerate() {
        p.set_bounds(v, *lo, *hi);
    }
    for c in &enc.base {
        p.add_constraint(c.densify(n));
    }
    for (slot, &(z, a, l, u)) in enc.unstable.iter().enumerate() {
        match phases[slot] {
            Phase::Active => {
                let mut coeffs = vec![0.0; n];
                coeffs[a] = 1.0;
                coeffs[z] = -1.0;
                p.add_constraint(Constraint::eq(coeffs, 0.0));
                // z >= 0
                let mut coeffs = vec![0.0; n];
                coeffs[z] = 1.0;
                p.add_constraint(Constraint::ge(coeffs, 0.0));
            }
            Phase::Inactive => {
                // a = 0
                let mut coeffs = vec![0.0; n];
                coeffs[a] = 1.0;
                p.add_constraint(Constraint::eq(coeffs, 0.0));
                // z <= 0
                let mut coeffs = vec![0.0; n];
                coeffs[z] = 1.0;
                p.add_constraint(Constraint::le(coeffs, 0.0));
            }
            Phase::Undecided => {
                // Triangle relaxation: a >= z, a >= 0 (bound), and
                // (u - l) a - u z <= -u l.
                let mut coeffs = vec![0.0; n];
                coeffs[a] = 1.0;
                coeffs[z] = -1.0;
                p.add_constraint(Constraint::ge(coeffs, 0.0));
                let mut coeffs = vec![0.0; n];
                coeffs[a] = u - l;
                coeffs[z] = -u;
                p.add_constraint(Constraint::le(coeffs, -u * l));
            }
        }
    }
    // Violation search: y_rival >= y_target, i.e. y_target - y_rival <= 0.
    let mut coeffs = vec![0.0; n];
    coeffs[enc.outputs[target]] = 1.0;
    coeffs[enc.outputs[rival]] = -1.0;
    p.add_constraint(Constraint::le(coeffs.clone(), 0.0));
    // Objective: minimize y_target - y_rival (most violating point).
    p.set_objective(coeffs);
    p
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn far_deadline() -> Instant {
        Instant::now() + Duration::from_secs(30)
    }

    #[test]
    fn proves_xor_example_3_1() {
        let net = nn::samples::xor_network();
        let region = Bounds::new(vec![0.3, 0.3], vec![0.7, 0.7]);
        assert_eq!(
            CompleteSolver::default().decide(&net, &region, 1, far_deadline()),
            Decision::Proved
        );
    }

    #[test]
    fn violates_xor_unit_square() {
        let net = nn::samples::xor_network();
        let region = Bounds::new(vec![0.0, 0.0], vec![1.0, 1.0]);
        match CompleteSolver::default().decide(&net, &region, 1, far_deadline()) {
            Decision::Violated(x) => {
                assert!(region.contains(&x));
                assert!(net.objective(&x, 1) <= 0.0);
            }
            other => panic!("expected violation, got {other:?}"),
        }
    }

    #[test]
    fn proves_example_2_3() {
        let net = nn::samples::example_2_3_network();
        let region = Bounds::new(vec![0.0, 0.0], vec![1.0, 1.0]);
        assert_eq!(
            CompleteSolver::default().decide(&net, &region, 1, far_deadline()),
            Decision::Proved
        );
    }

    #[test]
    fn budget_zero_nodes() {
        let net = nn::samples::xor_network();
        let region = Bounds::new(vec![0.0, 0.0], vec![1.0, 1.0]);
        let solver = CompleteSolver::with_node_budget(0);
        assert_eq!(
            solver.decide(&net, &region, 1, far_deadline()),
            Decision::Budget
        );
    }

    #[test]
    fn expired_deadline_returns_budget() {
        let net = nn::samples::xor_network();
        let region = Bounds::new(vec![0.0, 0.0], vec![1.0, 1.0]);
        let past = Instant::now() - Duration::from_secs(1);
        assert_eq!(
            CompleteSolver::default().decide(&net, &region, 1, past),
            Decision::Budget
        );
    }

    #[test]
    fn supports_rejects_maxpool() {
        let pool = nn::conv::max_pool_groups(nn::conv::Shape3::new(1, 2, 2), 2);
        let net = Network::new(
            4,
            vec![
                Layer::MaxPool(pool),
                Layer::Affine(nn::AffineLayer::new(
                    tensor::Matrix::from_rows(&[&[1.0], &[-1.0]]),
                    vec![0.0, 0.0],
                )),
            ],
        )
        .unwrap();
        assert!(!supports(&net));
        assert!(supports(&nn::samples::xor_network()));
    }

    #[test]
    fn agrees_with_exhaustive_sampling_on_random_nets() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(99);
        for seed in 0..5 {
            let net = nn::train::random_mlp(2, &[5], 2, seed);
            let center = [rng.gen_range(-0.3..0.3), rng.gen_range(-0.3..0.3)];
            let target = net.classify(&center);
            let region = Bounds::linf_ball(&center, 0.4, None);
            let decision = CompleteSolver::default().decide(&net, &region, target, far_deadline());
            // Dense grid sampling as an (incomplete) oracle.
            let mut sample_violation = false;
            for i in 0..=30 {
                for j in 0..=30 {
                    let x = [
                        region.lower()[0]
                            + (region.upper()[0] - region.lower()[0]) * i as f64 / 30.0,
                        region.lower()[1]
                            + (region.upper()[1] - region.lower()[1]) * j as f64 / 30.0,
                    ];
                    if net.classify(&x) != target {
                        sample_violation = true;
                    }
                }
            }
            match decision {
                Decision::Proved => assert!(
                    !sample_violation,
                    "seed {seed}: proved but grid found a violation"
                ),
                Decision::Violated(_) => {}
                Decision::Budget => panic!("seed {seed}: tiny net hit budget"),
            }
        }
    }
}
