//! Robustness-property generation for the benchmark suite.
//!
//! The evaluation (§7.1) uses *brightening attacks* (ref. 41 of the paper): pixels above a
//! threshold τ may be perturbed anywhere between their original value and
//! 1, all other pixels stay fixed. We also provide L∞-ball properties for
//! the ACAS-style training problems.

use charon::RobustnessProperty;
use domains::Bounds;
use nn::Network;

use crate::images::Dataset;

/// Builds the brightening-attack input region for an image: each pixel
/// `x_i >= tau` may move within `[x_i, 1]`, all others are fixed.
///
/// # Panics
///
/// Panics if any pixel lies outside `[0, 1]`.
pub fn brightening_region(image: &[f64], tau: f64) -> Bounds {
    assert!(
        image.iter().all(|v| (0.0..=1.0).contains(v)),
        "image pixels must lie in [0, 1]"
    );
    let lower = image.to_vec();
    let upper = image
        .iter()
        .map(|&v| if v >= tau { 1.0 } else { v })
        .collect();
    Bounds::new(lower, upper)
}

/// A generated benchmark: a property plus provenance for reporting.
#[derive(Debug, Clone)]
pub struct Benchmark {
    /// The property to verify.
    pub property: RobustnessProperty,
    /// Index of the source image in the dataset.
    pub image_index: usize,
    /// The brightening threshold used.
    pub tau: f64,
}

/// Generates a suite of brightening-attack benchmarks for a network.
///
/// For each evaluation image the network classifies correctly, one
/// property per threshold in `taus` is emitted, asking the predicted
/// class to be stable under the attack. Generation stops after `limit`
/// benchmarks.
///
/// # Panics
///
/// Panics if `data` images do not match the network input dimension.
pub fn brightening_suite(
    net: &Network,
    data: &Dataset,
    taus: &[f64],
    limit: usize,
) -> Vec<Benchmark> {
    let mut out = Vec::new();
    for (idx, (image, &label)) in data.images.iter().zip(data.labels.iter()).enumerate() {
        if out.len() >= limit {
            break;
        }
        let predicted = net.classify(image);
        if predicted != label {
            // Following the paper we only verify points the network gets
            // right; robustness of a misclassification is meaningless.
            continue;
        }
        for &tau in taus {
            if out.len() >= limit {
                break;
            }
            out.push(Benchmark {
                property: RobustnessProperty::new(brightening_region(image, tau), predicted),
                image_index: idx,
                tau,
            });
        }
    }
    out
}

/// An L∞-ball property around a point, clipped to `[0, 1]`, targeting the
/// network's own prediction at the center.
pub fn linf_property(net: &Network, center: &[f64], eps: f64) -> RobustnessProperty {
    RobustnessProperty::new(
        Bounds::linf_ball(center, eps, Some((0.0, 1.0))),
        net.classify(center),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::images::mnist_like;
    use crate::zoo::{build, ZooConfig, ZooNetwork};
    use nn::train::TrainConfig;

    fn quick_zoo() -> (Network, Dataset) {
        let config = ZooConfig {
            train_size: 200,
            train: TrainConfig {
                epochs: 20,
                ..TrainConfig::default()
            },
            cache_dir: None,
            ..ZooConfig::default()
        };
        let (net, _) = build(ZooNetwork::Mnist3x32, &config);
        let data = mnist_like(40, 999);
        (net, data)
    }

    #[test]
    fn brightening_region_geometry() {
        let image = vec![0.9, 0.2, 0.55, 1.0];
        let region = brightening_region(&image, 0.5);
        assert_eq!(region.lower(), image.as_slice());
        assert_eq!(region.upper(), &[1.0, 0.2, 1.0, 1.0]);
        // Dim pixels are fixed (zero width).
        assert_eq!(region.widths()[1], 0.0);
    }

    #[test]
    fn region_contains_original_image() {
        let image = vec![0.3, 0.8];
        let region = brightening_region(&image, 0.5);
        assert!(region.contains(&image));
    }

    #[test]
    fn suite_targets_correct_predictions_only() {
        let (net, data) = quick_zoo();
        let suite = brightening_suite(&net, &data, &[0.6], 50);
        assert!(!suite.is_empty());
        for b in &suite {
            let image = &data.images[b.image_index];
            assert_eq!(net.classify(image), b.property.target());
            assert_eq!(data.labels[b.image_index], b.property.target());
            assert!(b.property.region().contains(image));
        }
    }

    #[test]
    fn suite_respects_limit() {
        let (net, data) = quick_zoo();
        let suite = brightening_suite(&net, &data, &[0.4, 0.6, 0.8], 7);
        assert_eq!(suite.len(), 7);
    }

    #[test]
    fn higher_tau_gives_smaller_region() {
        let (_, data) = quick_zoo();
        let img = &data.images[0];
        let loose = brightening_region(img, 0.3);
        let tight = brightening_region(img, 0.8);
        assert!(tight.diameter() <= loose.diameter());
    }

    #[test]
    fn linf_property_centers_on_prediction() {
        let (net, data) = quick_zoo();
        let p = linf_property(&net, &data.images[0], 0.05);
        assert_eq!(p.target(), net.classify(&data.images[0]));
        assert!(p.region().contains(&data.images[0]));
    }
}
