//! Seeded synthetic image distributions.
//!
//! Each class is defined by a smooth random template; samples are the
//! template plus pixel noise and a random brightness shift, clipped to
//! `[0, 1]`. The resulting classification tasks are learnable by small
//! MLPs yet non-trivial (classes overlap under noise), which is what the
//! verification benchmarks need: networks with a mix of robust and
//! non-robust local neighborhoods.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A labelled image dataset with known geometry.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// Flat channel-major images, each of length
    /// `channels * height * width`, with values in `[0, 1]`.
    pub images: Vec<Vec<f64>>,
    /// Class labels in `0..num_classes`.
    pub labels: Vec<usize>,
    /// Number of channels (1 for MNIST-like, 3 for CIFAR-like).
    pub channels: usize,
    /// Image height.
    pub height: usize,
    /// Image width.
    pub width: usize,
    /// Number of classes.
    pub num_classes: usize,
}

impl Dataset {
    /// Input dimension of each image.
    pub fn input_dim(&self) -> usize {
        self.channels * self.height * self.width
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.images.len()
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.images.is_empty()
    }

    /// Splits the dataset into a training prefix and evaluation suffix.
    ///
    /// # Panics
    ///
    /// Panics if `train > self.len()`.
    pub fn split(&self, train: usize) -> (Dataset, Dataset) {
        assert!(train <= self.len(), "split point beyond dataset");
        let mut a = self.clone();
        let mut b = self.clone();
        a.images.truncate(train);
        a.labels.truncate(train);
        b.images.drain(..train);
        b.labels.drain(..train);
        (a, b)
    }
}

/// Smooth per-class template: low-frequency cosine mixture, distinct per
/// class and channel.
fn template_value(class: usize, channel: usize, y: usize, x: usize, h: usize, w: usize) -> f64 {
    let fy = (class % 3 + 1) as f64;
    let fx = (class / 3 + 1) as f64;
    let phase = class as f64 * 0.9 + channel as f64 * 1.7;
    let ny = y as f64 / h as f64;
    let nx = x as f64 / w as f64;
    0.5 + 0.32
        * ((fy * std::f64::consts::PI * ny + phase).cos()
            * (fx * std::f64::consts::PI * nx + 0.5 * phase).cos())
}

/// Generates a synthetic dataset.
///
/// Deterministic in all arguments. `noise` controls per-pixel uniform
/// noise amplitude (around 0.2: learnable but not trivially
/// robust everywhere).
///
/// # Panics
///
/// Panics if any size parameter is zero.
pub fn generate(
    n: usize,
    channels: usize,
    height: usize,
    width: usize,
    num_classes: usize,
    noise: f64,
    seed: u64,
) -> Dataset {
    assert!(channels > 0 && height > 0 && width > 0, "empty geometry");
    assert!(num_classes >= 2, "need at least two classes");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut images = Vec::with_capacity(n);
    let mut labels = Vec::with_capacity(n);
    for i in 0..n {
        let class = i % num_classes;
        let brightness: f64 = rng.gen_range(-0.08..0.08);
        let mut img = Vec::with_capacity(channels * height * width);
        for c in 0..channels {
            for y in 0..height {
                for x in 0..width {
                    let v = template_value(class, c, y, x, height, width)
                        + brightness
                        + rng.gen_range(-noise..noise);
                    img.push(v.clamp(0.0, 1.0));
                }
            }
        }
        images.push(img);
        labels.push(class);
    }
    Dataset {
        images,
        labels,
        channels,
        height,
        width,
        num_classes,
    }
}

/// A two-class spiral dataset in the plane (not an image distribution,
/// but shares the [`Dataset`] shape with `channels = height = 1`,
/// `width = 2`). Spirals are a classic non-linearly-separable task and
/// give small networks many unstable ReLUs — useful for stress-testing
/// refinement strategies.
pub fn spiral(n: usize, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5917a1);
    let mut images = Vec::with_capacity(n);
    let mut labels = Vec::with_capacity(n);
    for i in 0..n {
        let class = i % 2;
        let t = rng.gen_range(0.25..1.0) * 3.0 * std::f64::consts::PI;
        let dir = if class == 0 {
            0.0
        } else {
            std::f64::consts::PI
        };
        let r = 0.04 * t;
        let x = (r * (t + dir).cos() + rng.gen_range(-0.02..0.02) + 0.5).clamp(0.0, 1.0);
        let y = (r * (t + dir).sin() + rng.gen_range(-0.02..0.02) + 0.5).clamp(0.0, 1.0);
        images.push(vec![x, y]);
        labels.push(class);
    }
    Dataset {
        images,
        labels,
        channels: 1,
        height: 1,
        width: 2,
        num_classes: 2,
    }
}

/// MNIST-like dataset: 1-channel 8x8 images, 10 classes.
pub fn mnist_like(n: usize, seed: u64) -> Dataset {
    generate(n, 1, 8, 8, 10, 0.22, seed ^ 0x6d6e6973)
}

/// CIFAR-like dataset: 3-channel 6x6 images, 10 classes.
pub fn cifar_like(n: usize, seed: u64) -> Dataset {
    generate(n, 3, 6, 6, 10, 0.22, seed ^ 0x63696661)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn images_are_in_unit_range() {
        let d = mnist_like(50, 0);
        assert_eq!(d.input_dim(), 64);
        for img in &d.images {
            assert_eq!(img.len(), 64);
            assert!(img.iter().all(|v| (0.0..=1.0).contains(v)));
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = cifar_like(20, 7);
        let b = cifar_like(20, 7);
        assert_eq!(a.images, b.images);
        assert_eq!(a.labels, b.labels);
    }

    #[test]
    fn different_seeds_differ() {
        let a = mnist_like(5, 1);
        let b = mnist_like(5, 2);
        assert_ne!(a.images, b.images);
    }

    #[test]
    fn labels_cycle_through_classes() {
        let d = mnist_like(25, 3);
        assert_eq!(d.labels[0], 0);
        assert_eq!(d.labels[10], 0);
        assert_eq!(d.labels[13], 3);
        assert!(d.labels.iter().all(|&l| l < 10));
    }

    #[test]
    fn split_partitions() {
        let d = mnist_like(30, 4);
        let (train, test) = d.split(20);
        assert_eq!(train.len(), 20);
        assert_eq!(test.len(), 10);
        assert_eq!(test.images[0], d.images[20]);
    }

    #[test]
    fn spiral_is_two_dimensional_and_balanced() {
        let d = spiral(100, 0);
        assert_eq!(d.input_dim(), 2);
        assert_eq!(d.num_classes, 2);
        let ones = d.labels.iter().filter(|&&l| l == 1).count();
        assert_eq!(ones, 50);
        for img in &d.images {
            assert!(img.iter().all(|v| (0.0..=1.0).contains(v)));
        }
    }

    #[test]
    fn spiral_is_learnable_with_enough_capacity() {
        let d = spiral(400, 1);
        let mut net = nn::train::random_mlp(2, &[24, 24], 2, 2);
        let config = nn::train::TrainConfig {
            epochs: 150,
            learning_rate: 0.1,
            ..nn::train::TrainConfig::default()
        };
        let acc = nn::train::train_classifier(&mut net, &d.images, &d.labels, &config);
        assert!(acc > 0.85, "spiral accuracy {acc}");
    }

    #[test]
    fn classes_are_learnable() {
        // An MLP must reach high accuracy, otherwise the verification
        // benchmarks would be meaningless.
        let d = mnist_like(400, 5);
        let mut net = nn::train::random_mlp(d.input_dim(), &[32], d.num_classes, 0);
        let acc = nn::train::train_classifier(
            &mut net,
            &d.images,
            &d.labels,
            &nn::train::TrainConfig::default(),
        );
        assert!(acc > 0.9, "accuracy {acc} too low");
    }
}
