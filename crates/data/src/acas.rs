//! An ACAS-Xu-like policy network and the 12 training properties of §6.
//!
//! The real ACAS Xu networks (aircraft collision avoidance, ref. 24 of the paper) are not
//! available; this module trains a small policy network on a synthetic
//! collision-avoidance geometry that preserves what matters for policy
//! training: a low-dimensional input space (5 inputs), a small number of
//! advisory classes (5), and properties of varying difficulty over
//! box-shaped input regions.

use charon::train::TrainingProblem;
use charon::RobustnessProperty;
use domains::Bounds;
use nn::train::{random_mlp, train_classifier, TrainConfig};
use nn::Network;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Number of inputs of the policy network (distance, bearing, heading,
/// own speed, intruder speed — all normalized to `[0, 1]`).
pub const INPUTS: usize = 5;

/// Number of advisories (clear-of-conflict, weak left/right, strong
/// left/right).
pub const ADVISORIES: usize = 5;

/// The ground-truth advisory function the network is trained to imitate.
///
/// A hand-written rule with the qualitative structure of the ACAS Xu
/// tables: far-away intruders are clear-of-conflict; close intruders
/// trigger turns whose direction follows the bearing and whose strength
/// grows as distance shrinks and closing speed rises.
pub fn advisory(x: &[f64]) -> usize {
    assert_eq!(x.len(), INPUTS, "advisory expects {INPUTS} inputs");
    let (rho, theta, _psi, v_own, v_int) = (x[0], x[1], x[2], x[3], x[4]);
    let closing = 0.5 * (v_own + v_int);
    let danger = (1.0 - rho) * (0.6 + 0.4 * closing);
    if danger < 0.45 {
        return 0; // clear of conflict
    }
    let left = theta < 0.5;
    let strong = danger > 0.75;
    match (left, strong) {
        (true, false) => 1,  // weak left
        (false, false) => 2, // weak right
        (true, true) => 3,   // strong left
        (false, true) => 4,  // strong right
    }
}

/// Trains the ACAS-like policy network, returning it with its training
/// accuracy.
pub fn build_network(seed: u64) -> (Network, f64) {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xaca5);
    let n = 1500;
    let mut inputs = Vec::with_capacity(n);
    let mut labels = Vec::with_capacity(n);
    for _ in 0..n {
        let x: Vec<f64> = (0..INPUTS).map(|_| rng.gen_range(0.0..1.0)).collect();
        labels.push(advisory(&x));
        inputs.push(x);
    }
    let mut net = random_mlp(INPUTS, &[16, 16, 16], ADVISORIES, seed);
    let config = TrainConfig {
        epochs: 60,
        learning_rate: 0.08,
        seed,
        ..TrainConfig::default()
    };
    let acc = train_classifier(&mut net, &inputs, &labels, &config);
    (net, acc)
}

/// The 12 policy-training properties (§6 trains on 12 ACAS Xu
/// properties).
///
/// Each asks the network's own advisory at a region center to be stable
/// across the region. To make the corpus *discriminative* for policy
/// learning, centers are picked near decision boundaries (small but
/// positive advisory margin): trivially robust properties verify in one
/// abstract-interpretation call under any policy, and falsifiable ones
/// fall to PGD immediately — neither produces a training signal.
pub fn training_properties(net: &Network, seed: u64) -> Vec<TrainingProblem> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x12bf);
    let minimizer = attack::Minimizer::new(seed).with_restarts(3);
    let mut problems = Vec::with_capacity(12);
    let radii = [0.04, 0.07, 0.1];
    let mut attempts = 0;
    while problems.len() < 12 {
        attempts += 1;
        let relaxed = attempts > 3000;
        let center: Vec<f64> = (0..INPUTS).map(|_| rng.gen_range(0.1..0.9)).collect();
        let target = net.classify(&center);
        let eps = radii[problems.len() % radii.len()];
        let region = Bounds::linf_ball(&center, eps, Some((0.0, 1.0)));
        if !relaxed {
            // (a) Not easily falsifiable: gradient attack fails.
            let best = minimizer.minimize(net, &region, target);
            if best.objective <= 0.02 {
                continue;
            }
            // (b) Not trivially verifiable: a single zonotope call fails,
            // so the refinement strategy actually matters.
            if domains::analyze(net, &region, target, domains::DomainChoice::zonotope()) {
                continue;
            }
        }
        problems.push(TrainingProblem {
            net: net.clone(),
            property: RobustnessProperty::new(region, target),
        });
    }
    problems
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn advisory_rules_are_sane() {
        // Far away: clear of conflict regardless of other inputs.
        assert_eq!(advisory(&[0.95, 0.2, 0.5, 0.5, 0.5]), 0);
        // Very close, intruder on the left, fast closing: strong left.
        assert_eq!(advisory(&[0.02, 0.1, 0.5, 0.9, 0.9]), 3);
        // Very close on the right: strong right.
        assert_eq!(advisory(&[0.02, 0.9, 0.5, 0.9, 0.9]), 4);
    }

    #[test]
    fn advisory_covers_all_classes() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..2000 {
            let x: Vec<f64> = (0..INPUTS).map(|_| rng.gen_range(0.0..1.0)).collect();
            seen.insert(advisory(&x));
        }
        assert_eq!(seen.len(), ADVISORIES, "saw {seen:?}");
    }

    #[test]
    fn network_learns_the_policy() {
        let (_, acc) = build_network(0);
        assert!(acc > 0.85, "policy accuracy {acc}");
    }

    #[test]
    fn twelve_training_properties() {
        let (net, _) = build_network(0);
        let problems = training_properties(&net, 0);
        assert_eq!(problems.len(), 12);
        for p in &problems {
            assert_eq!(p.property.region().dim(), INPUTS);
            assert!(p.property.target() < ADVISORIES);
            // The center really is classified as the target.
            let center = p.property.region().center();
            assert_eq!(p.net.classify(&center), p.property.target());
        }
    }
}
