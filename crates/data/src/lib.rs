//! Synthetic datasets, a trained network zoo, and benchmark generation.
//!
//! The paper evaluates on MNIST/CIFAR networks and trains its policy on
//! ACAS Xu properties. Neither dataset nor the aircraft networks are
//! available here, so this crate builds deterministic synthetic
//! equivalents (see DESIGN.md for the substitution rationale):
//!
//! * [`images`] — seeded MNIST-like (1-channel) and CIFAR-like
//!   (3-channel) image distributions with 10 classes.
//! * [`zoo`] — the seven evaluation networks of §7 (scaled down), trained
//!   from scratch and cached on disk.
//! * [`properties`] — brightening-attack robustness properties (§7.1) and
//!   L∞-ball properties.
//! * [`acas`] — an ACAS-Xu-like collision-avoidance policy network and
//!   the 12 training properties of §6.

pub mod acas;
pub mod images;
pub mod properties;
pub mod zoo;
