//! The network zoo: the seven evaluation networks of §7, scaled down.
//!
//! The paper's benchmark suite spans fully-connected MNIST networks
//! (3x100, 6x100, 9x200), fully-connected CIFAR networks (3x100, 6x100,
//! 9x100), and one LeNet-style convolutional network. The zoo keeps the
//! architecture *families* but scales widths and input sizes so the whole
//! evaluation runs on one machine (see DESIGN.md).
//!
//! Networks are trained deterministically from a seed and cached on disk
//! (plain-text format) so repeated benchmark runs skip training.

use std::path::PathBuf;

use nn::conv::{max_pool_groups, Conv2d, Shape3};
use nn::train::{random_mlp, train_classifier, TrainConfig};
use nn::{Layer, Network};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::images::{cifar_like, mnist_like, Dataset};

/// Identifier of a zoo network, mirroring the paper's seven networks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ZooNetwork {
    /// MNIST-like 3-layer MLP (paper: 3x100 MNIST).
    Mnist3x32,
    /// MNIST-like 6-layer MLP (paper: 6x100 MNIST).
    Mnist6x32,
    /// MNIST-like 9-layer wide MLP (paper: 9x200 MNIST).
    Mnist9x64,
    /// CIFAR-like 3-layer MLP (paper: 3x100 CIFAR).
    Cifar3x32,
    /// CIFAR-like 6-layer MLP (paper: 6x100 CIFAR).
    Cifar6x32,
    /// CIFAR-like 9-layer MLP (paper: 9x100 CIFAR).
    Cifar9x32,
    /// LeNet-style convolutional network on MNIST-like data (paper:
    /// conv + max-pool LeNet).
    ConvSmall,
}

impl ZooNetwork {
    /// All seven networks, in the paper's presentation order.
    pub const ALL: [ZooNetwork; 7] = [
        ZooNetwork::Mnist3x32,
        ZooNetwork::Mnist6x32,
        ZooNetwork::Mnist9x64,
        ZooNetwork::Cifar3x32,
        ZooNetwork::Cifar6x32,
        ZooNetwork::Cifar9x32,
        ZooNetwork::ConvSmall,
    ];

    /// The fully-connected networks (the subset §7.2 evaluates the
    /// complete tools on, which do not support convolution/pooling).
    pub const FULLY_CONNECTED: [ZooNetwork; 6] = [
        ZooNetwork::Mnist3x32,
        ZooNetwork::Mnist6x32,
        ZooNetwork::Mnist9x64,
        ZooNetwork::Cifar3x32,
        ZooNetwork::Cifar6x32,
        ZooNetwork::Cifar9x32,
    ];

    /// Stable name used for cache files and report rows.
    pub fn name(&self) -> &'static str {
        match self {
            ZooNetwork::Mnist3x32 => "mnist-3x32",
            ZooNetwork::Mnist6x32 => "mnist-6x32",
            ZooNetwork::Mnist9x64 => "mnist-9x64",
            ZooNetwork::Cifar3x32 => "cifar-3x32",
            ZooNetwork::Cifar6x32 => "cifar-6x32",
            ZooNetwork::Cifar9x32 => "cifar-9x32",
            ZooNetwork::ConvSmall => "conv-small",
        }
    }

    /// The paper's network this one stands in for.
    pub fn paper_name(&self) -> &'static str {
        match self {
            ZooNetwork::Mnist3x32 => "3x100 MNIST",
            ZooNetwork::Mnist6x32 => "6x100 MNIST",
            ZooNetwork::Mnist9x64 => "9x200 MNIST",
            ZooNetwork::Cifar3x32 => "3x100 CIFAR",
            ZooNetwork::Cifar6x32 => "6x100 CIFAR",
            ZooNetwork::Cifar9x32 => "9x100 CIFAR",
            ZooNetwork::ConvSmall => "LeNet conv",
        }
    }

    /// The dataset family this network is trained on.
    pub fn dataset(&self, n: usize, seed: u64) -> Dataset {
        match self {
            ZooNetwork::Cifar3x32 | ZooNetwork::Cifar6x32 | ZooNetwork::Cifar9x32 => {
                cifar_like(n, seed)
            }
            _ => mnist_like(n, seed),
        }
    }

    /// Hidden-layer widths for the MLP members.
    fn hidden(&self) -> Vec<usize> {
        match self {
            ZooNetwork::Mnist3x32 | ZooNetwork::Cifar3x32 => vec![32; 2],
            ZooNetwork::Mnist6x32 | ZooNetwork::Cifar6x32 => vec![32; 5],
            ZooNetwork::Cifar9x32 => vec![32; 8],
            ZooNetwork::Mnist9x64 => vec![64; 8],
            ZooNetwork::ConvSmall => vec![],
        }
    }
}

/// Training setup shared by the zoo.
#[derive(Debug, Clone)]
pub struct ZooConfig {
    /// Training-set size.
    pub train_size: usize,
    /// Seed for both data generation and training.
    pub seed: u64,
    /// Training hyper-parameters.
    pub train: TrainConfig,
    /// Optional on-disk cache directory (`None` disables caching).
    pub cache_dir: Option<PathBuf>,
}

impl Default for ZooConfig {
    fn default() -> Self {
        ZooConfig {
            train_size: 400,
            seed: 0,
            train: TrainConfig {
                epochs: 40,
                ..TrainConfig::default()
            },
            cache_dir: Some(default_cache_dir()),
        }
    }
}

/// The default cache directory (`target/charon-zoo` under the workspace,
/// falling back to the system temp directory).
pub fn default_cache_dir() -> PathBuf {
    let base = std::env::var_os("CARGO_TARGET_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(std::env::temp_dir);
    base.join("charon-zoo")
}

/// Builds (or loads from cache) a zoo network, returning the network and
/// its held-out evaluation accuracy.
pub fn build(which: ZooNetwork, config: &ZooConfig) -> (Network, f64) {
    let data = which.dataset(config.train_size + 100, config.seed);
    let (train, test) = data.split(config.train_size);
    let fingerprint = training_fingerprint(&train, config);
    let cache_path = config.cache_dir.as_ref().map(|dir| {
        dir.join(format!(
            "{}-s{}-n{}-d{:016x}.net",
            which.name(),
            config.seed,
            config.train_size,
            fingerprint
        ))
    });

    if let Some(path) = &cache_path {
        if let Ok(net) = nn::serialize::load(path) {
            let acc = nn::train::accuracy(&net, &test.images, &test.labels);
            return (net, acc);
        }
    }

    let mut net = match which {
        ZooNetwork::ConvSmall => conv_small_skeleton(config.seed),
        _ => random_mlp(
            train.input_dim(),
            &which.hidden(),
            train.num_classes,
            config.seed,
        ),
    };
    let mut tc = config.train.clone();
    tc.seed = config.seed;
    train_classifier(&mut net, &train.images, &train.labels, &tc);
    let acc = nn::train::accuracy(&net, &test.images, &test.labels);

    if let Some(path) = &cache_path {
        if let Some(dir) = path.parent() {
            let _ = std::fs::create_dir_all(dir);
        }
        let _ = nn::serialize::save(&net, path);
    }
    (net, acc)
}

/// Content hash of everything that determines the trained network
/// besides the architecture (which the cache file name already pins):
/// every training image and label, the class count, and the training
/// hyper-parameters.
///
/// Uses the same FNV-1a hash as [`nn::serialize::content_hash`] (and the
/// verification server's model registry), so *any* change to the
/// synthetic data generators or to a retraining configuration produces a
/// different cache key. The previous scheme fingerprinted only the first
/// training image, which let a retrained network with the same name
/// silently serve a stale cached artifact.
fn training_fingerprint(train: &Dataset, config: &ZooConfig) -> u64 {
    let mut bytes = Vec::with_capacity(
        train.images.len() * train.input_dim().max(1) * 8 + train.labels.len() * 8 + 64,
    );
    for img in &train.images {
        for v in img {
            bytes.extend_from_slice(&v.to_bits().to_le_bytes());
        }
    }
    for &label in &train.labels {
        bytes.extend_from_slice(&(label as u64).to_le_bytes());
    }
    bytes.extend_from_slice(&(train.num_classes as u64).to_le_bytes());
    bytes.extend_from_slice(&(config.train.epochs as u64).to_le_bytes());
    bytes.extend_from_slice(&config.train.learning_rate.to_bits().to_le_bytes());
    bytes.extend_from_slice(&(config.train.batch_size as u64).to_le_bytes());
    bytes.extend_from_slice(&config.train.weight_decay.to_bits().to_le_bytes());
    bytes.extend_from_slice(&config.seed.to_le_bytes());
    nn::serialize::fnv1a(&bytes)
}

/// The untrained LeNet-style skeleton: conv -> relu -> max-pool ->
/// conv -> relu -> fully-connected head.
///
/// Convolutions are lowered to affine layers before training (the paper
/// makes the same representation choice for *analysis*; we additionally
/// train in the lowered form, so kernels are not weight-tied during
/// training — see DESIGN.md).
fn conv_small_skeleton(seed: u64) -> Network {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xc0417);
    let mut normal = move |scale: f64| -> f64 {
        let u1: f64 = rng.gen_range(1e-12..1.0);
        let u2: f64 = rng.gen_range(0.0..1.0);
        scale * (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    };

    let input = Shape3::new(1, 8, 8);
    let c1 = Conv2d::new(
        input,
        4,
        (3, 3),
        (1, 1),
        (0..4 * 9).map(|_| normal(0.3)).collect(),
        vec![0.0; 4],
    );
    let c1_out = c1.output_shape(); // 4x6x6
    let pool = max_pool_groups(c1_out, 2); // 4x3x3 = 36
    let pooled = 36;
    let c2 = {
        // 1x1-style mixing conv over the pooled map, expressed directly
        // as an affine layer over the 36 pooled activations.
        let rows = 24;
        let w = tensor::Matrix::from_fn(rows, pooled, |_, _| normal((2.0 / pooled as f64).sqrt()));
        nn::AffineLayer::new(w, vec![0.0; rows])
    };
    let head = {
        let w = tensor::Matrix::from_fn(10, 24, |_, _| normal((2.0f64 / 24.0).sqrt()));
        nn::AffineLayer::new(w, vec![0.0; 10])
    };

    Network::new(
        input.len(),
        vec![
            Layer::Affine(c1.to_affine()),
            Layer::Relu,
            Layer::MaxPool(pool),
            Layer::Affine(c2),
            Layer::Relu,
            Layer::Affine(head),
        ],
    )
    .expect("conv skeleton shapes are consistent")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_config() -> ZooConfig {
        ZooConfig {
            train_size: 200,
            train: TrainConfig {
                epochs: 20,
                ..TrainConfig::default()
            },
            cache_dir: None,
            ..ZooConfig::default()
        }
    }

    #[test]
    fn mlp_zoo_members_train_accurately() {
        let (net, acc) = build(ZooNetwork::Mnist3x32, &quick_config());
        assert_eq!(net.input_dim(), 64);
        assert_eq!(net.output_dim(), 10);
        assert_eq!(net.depth(), 3);
        assert!(acc > 0.8, "mnist-3x32 accuracy {acc}");
    }

    #[test]
    fn cifar_member_has_three_channels() {
        let (net, acc) = build(ZooNetwork::Cifar3x32, &quick_config());
        assert_eq!(net.input_dim(), 3 * 6 * 6);
        assert!(acc > 0.7, "cifar-3x32 accuracy {acc}");
    }

    #[test]
    fn conv_member_contains_maxpool() {
        let (net, acc) = build(ZooNetwork::ConvSmall, &quick_config());
        assert!(net.layers().iter().any(|l| matches!(l, Layer::MaxPool(_))));
        assert!(acc > 0.7, "conv accuracy {acc}");
    }

    #[test]
    fn deep_member_architecture() {
        let config = quick_config();
        let (net, _) = build(ZooNetwork::Mnist9x64, &config);
        assert_eq!(net.depth(), 9);
    }

    #[test]
    fn cache_roundtrip() {
        let dir = std::env::temp_dir().join(format!("zoo-test-{}", std::process::id()));
        let config = ZooConfig {
            cache_dir: Some(dir.clone()),
            ..quick_config()
        };
        let (a, _) = build(ZooNetwork::Mnist3x32, &config);
        let (b, _) = build(ZooNetwork::Mnist3x32, &config);
        assert_eq!(a, b, "cached reload must be identical");
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn retraining_config_change_invalidates_cache() {
        // Regression: the cache key once fingerprinted only the first
        // training image, so retraining with different hyper-parameters
        // (same name, seed, and train size) served the stale cached
        // network. The key must cover the full training inputs.
        let dir = std::env::temp_dir().join(format!("zoo-stale-{}", std::process::id()));
        let config = ZooConfig {
            cache_dir: Some(dir.clone()),
            ..quick_config()
        };
        let (original, _) = build(ZooNetwork::Mnist3x32, &config);

        let mut retrained_config = config.clone();
        retrained_config.train.epochs += 5;
        let (retrained, _) = build(ZooNetwork::Mnist3x32, &retrained_config);
        assert_ne!(
            original, retrained,
            "a retrained network must not be served from the stale cache"
        );

        // And the retrained artifact is itself cached correctly.
        let (again, _) = build(ZooNetwork::Mnist3x32, &retrained_config);
        assert_eq!(retrained, again);
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn builds_are_deterministic_without_cache() {
        let (a, _) = build(ZooNetwork::Mnist6x32, &quick_config());
        let (b, _) = build(ZooNetwork::Mnist6x32, &quick_config());
        assert_eq!(a, b);
    }
}
