//! Criterion micro-benchmarks for the hot kernels: abstract transformers,
//! PGD, GP posterior updates, and simplex solves.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

use attack::Minimizer;
use bayesopt::{GaussianProcess, GpConfig};
use domains::{propagate, AbstractElement, Bounds, Interval, Powerset, Zonotope};
use lp::{Constraint, LpProblem};

fn bench_net() -> nn::Network {
    nn::train::random_mlp(32, &[48, 48, 48], 10, 7)
}

fn bench_region() -> Bounds {
    Bounds::linf_ball(&vec![0.25; 32], 0.08, Some((0.0, 1.0)))
}

fn abstract_transformers(c: &mut Criterion) {
    let net = bench_net();
    let region = bench_region();
    let mut group = c.benchmark_group("propagate");
    group.bench_function("interval", |b| {
        b.iter(|| propagate(&net, Interval::from_bounds(&region)).margin_lower_bound(0))
    });
    group.bench_function("zonotope", |b| {
        b.iter(|| propagate(&net, Zonotope::from_bounds(&region)).margin_lower_bound(0))
    });
    group.bench_function("powerset_zonotope_4", |b| {
        b.iter(|| {
            propagate(&net, Powerset::<Zonotope>::with_budget(&region, 4)).margin_lower_bound(0)
        })
    });
    group.bench_function("symbolic_interval", |b| {
        b.iter(|| domains::symbolic::propagate_symbolic(&net, &region).margin_lower_bound(0))
    });
    group.bench_function("deeppoly", |b| {
        b.iter(|| domains::deeppoly::DeepPoly::analyze(&net, &region).margin_lower_bound(0))
    });
    group.finish();
}

fn pgd_attack(c: &mut Criterion) {
    let net = bench_net();
    let region = bench_region();
    c.bench_function("pgd_minimize", |b| {
        b.iter(|| Minimizer::new(3).minimize(&net, &region, 0).objective)
    });
}

fn gp_posterior(c: &mut Criterion) {
    let xs: Vec<Vec<f64>> = (0..40)
        .map(|i| {
            (0..10)
                .map(|j| ((i * 7 + j * 3) % 11) as f64 / 11.0)
                .collect()
        })
        .collect();
    let ys: Vec<f64> = xs.iter().map(|x| x.iter().sum::<f64>().sin()).collect();
    let config = GpConfig::default();
    c.bench_function("gp_fit_predict", |b| {
        b.iter_batched(
            || (xs.clone(), ys.clone()),
            |(xs, ys)| {
                let gp = GaussianProcess::fit(&xs, &ys, &config).unwrap();
                gp.predict(&[0.4; 10])
            },
            BatchSize::SmallInput,
        )
    });
}

fn simplex_solve(c: &mut Criterion) {
    c.bench_function("simplex_30x20", |b| {
        b.iter(|| {
            let n = 20;
            let mut p = LpProblem::new(n);
            for v in 0..n {
                p.set_bounds(v, -1.0, 1.0);
            }
            p.set_objective((0..n).map(|i| ((i % 5) as f64) - 2.0).collect());
            for r in 0..30 {
                let coeffs: Vec<f64> = (0..n)
                    .map(|i| (((r * 13 + i * 7) % 9) as f64 - 4.0) / 4.0)
                    .collect();
                p.add_constraint(Constraint::le(coeffs, 2.0));
            }
            p.solve()
        })
    });
}

criterion_group! {
    name = kernels;
    config = Criterion::default().sample_size(20);
    targets = abstract_transformers, pgd_attack, gp_posterior, simplex_solve
}
criterion_main!(kernels);
