//! Figures 7–13: per-network cactus plots (cumulative time vs. benchmarks
//! solved) for Charon, AI2-Zonotope, and AI2-Bounded64.
//!
//! Each figure in the paper covers one network; this binary prints one
//! cactus series per tool per network. A series extending further to the
//! right (more entries) means more benchmarks solved; lower cumulative
//! values mean faster solving.

use bench::{build_suite, print_cactus, run_suite, Scale, Tool, ToolKind};
use data::zoo::ZooNetwork;

fn main() {
    let scale = Scale::from_env();
    println!(
        "== Figures 7-13: cactus plots per network ({} props, {:?} timeout) ==",
        scale.props_per_network, scale.timeout
    );

    let figures = [
        (7, ZooNetwork::Mnist3x32),
        (8, ZooNetwork::Mnist6x32),
        (9, ZooNetwork::Mnist9x64),
        (10, ZooNetwork::Cifar3x32),
        (11, ZooNetwork::Cifar6x32),
        (12, ZooNetwork::Cifar9x32),
        (13, ZooNetwork::ConvSmall),
    ];

    for (fig, which) in figures {
        let suite = build_suite(which, &scale);
        println!(
            "\n[Figure {fig}] {} ({}; {} benchmarks)",
            suite.which.name(),
            suite.which.paper_name(),
            suite.benchmarks.len()
        );
        for kind in [
            ToolKind::Charon,
            ToolKind::Ai2Zonotope,
            ToolKind::Ai2Bounded64,
        ] {
            // Paper: AI2-Bounded64 times out on every conv benchmark and
            // is omitted from Figure 13; we still run it and let the
            // series come out (near-)empty.
            let runs = run_suite(&Tool::new(kind), &suite, &scale);
            print_cactus(kind.name(), &runs);
        }
    }
}
