//! Figure 14: comparison with the complete tools (ReluVal, Reluplex) on
//! the fully-connected benchmarks.
//!
//! Headline numbers in the paper: Charon solves 2.6x more benchmarks than
//! ReluVal and 16.6x more than Reluplex, and the set of benchmarks solved
//! by Charon is a strict superset of ReluVal's.

use baselines::ToolVerdict;
use bench::{build_suite, print_cactus, run_suite, Scale, Summary, Tool, ToolKind, ToolRun};
use data::zoo::ZooNetwork;

fn main() {
    let scale = Scale::from_env();
    println!(
        "== Figure 14: complete tools on fully-connected networks ({} props, {:?} timeout) ==",
        scale.props_per_network, scale.timeout
    );

    let tools = [ToolKind::Charon, ToolKind::ReluVal, ToolKind::Reluplex];
    let mut all_runs: Vec<Vec<ToolRun>> = vec![Vec::new(); tools.len()];

    for which in ZooNetwork::FULLY_CONNECTED {
        let suite = build_suite(which, &scale);
        println!(
            "\n[{}] ({} benchmarks)",
            suite.which.name(),
            suite.benchmarks.len()
        );
        for (t, kind) in tools.iter().enumerate() {
            let runs = run_suite(&Tool::new(*kind), &suite, &scale);
            print_cactus(kind.name(), &runs);
            all_runs[t].extend(runs);
        }
    }

    println!("\n== Aggregate cactus (paper Figure 14) ==");
    let mut solved = vec![0usize; tools.len()];
    for (t, kind) in tools.iter().enumerate() {
        print_cactus(kind.name(), &all_runs[t]);
        solved[t] = Summary::from_runs(&all_runs[t]).solved();
    }
    if solved[1] > 0 {
        println!(
            "\nCharon solves {:.2}x the benchmarks of ReluVal  (paper: 2.6x)",
            solved[0] as f64 / solved[1] as f64
        );
    }
    if solved[2] > 0 {
        println!(
            "Charon solves {:.2}x the benchmarks of Reluplex (paper: 16.6x)",
            solved[0] as f64 / solved[2] as f64
        );
    }

    // Superset check: every benchmark ReluVal solves, Charon solves too.
    let mut reluval_only = 0usize;
    for (c, r) in all_runs[0].iter().zip(all_runs[1].iter()) {
        if r.verdict.is_decided() && !c.verdict.is_decided() {
            reluval_only += 1;
        }
    }
    println!(
        "Benchmarks solved by ReluVal but not Charon: {reluval_only} (paper: 0 — strict superset)"
    );

    // Sanity: ReluVal should never falsify.
    let reluval_falsified = all_runs[1]
        .iter()
        .filter(|r| matches!(r.verdict, ToolVerdict::Falsified(_)))
        .count();
    println!("ReluVal falsifications: {reluval_falsified} (expected 0)");
}
