//! Ablation study: isolating each ingredient of Charon's synergy.
//!
//! Four configurations on the same suite:
//! * full Charon (policy-selected domains + gradient counterexample search),
//! * Charon without counterexample search (RQ2),
//! * Charon with a fixed plain-zonotope domain (no domain selection, RQ3),
//! * Charon with a fixed interval domain.

use bench::{build_suite, print_summary_row, run_suite, Scale, Summary, Tool, ToolKind};
use data::zoo::ZooNetwork;

fn main() {
    let scale = Scale::from_env();
    println!(
        "== Ablation study ({} props/network, {:?} timeout) ==",
        scale.props_per_network, scale.timeout
    );

    let configs = [
        ToolKind::Charon,
        ToolKind::CharonNoCex,
        ToolKind::CharonFixedZonotope,
        ToolKind::CharonFixedInterval,
        ToolKind::CharonDeepPoly,
        ToolKind::CharonLipschitz,
    ];

    for which in [
        ZooNetwork::Mnist3x32,
        ZooNetwork::Mnist6x32,
        ZooNetwork::Cifar3x32,
    ] {
        let suite = build_suite(which, &scale);
        println!(
            "\n[{}] ({} benchmarks)",
            suite.which.name(),
            suite.benchmarks.len()
        );
        for kind in configs {
            let runs = run_suite(&Tool::new(kind), &suite, &scale);
            print_summary_row(kind.name(), &Summary::from_runs(&runs));
        }
    }

    println!("\nReading guide:");
    println!("  Charon-DeepPoly: the §9 'broader domains' extension as a fixed choice.");
    println!("  Charon-NoCex:  falsified count should drop sharply (RQ2).");
    println!("  Charon-FixedI: verified count should drop / timeouts rise (RQ3).");
}
