//! §6 training: learn a verification policy on ACAS-Xu-like properties
//! with Bayesian optimization, then evaluate the learned policy against
//! the hand-initialized default on an unseen benchmark suite.

use std::sync::Arc;
use std::time::Duration;

use bench::{build_suite, run_suite, Scale, Summary, Tool, ToolKind};
use charon::train::{train_policy, TrainConfig};
use data::zoo::ZooNetwork;

fn main() {
    let scale = Scale::from_env();
    println!("== Policy training on ACAS-like properties (§6) ==");

    let (acas_net, acc) = data::acas::build_network(scale.seed);
    println!("ACAS-like policy network trained (accuracy {acc:.2})");
    let problems = data::acas::training_properties(&acas_net, scale.seed);
    println!(
        "Training problems: {} (paper: 12 ACAS Xu properties)",
        problems.len()
    );

    let config = TrainConfig {
        time_limit: Duration::from_millis(400),
        seed: scale.seed,
        ..TrainConfig::default()
    };
    let outcome = train_policy(&problems, &config);
    println!(
        "Bayesian optimization: {} evaluations, best score {:.3}s vs default {:.3}s",
        outcome.evaluations, outcome.score, outcome.baseline_score
    );

    // Deployment: compare learned vs default policy on an unseen suite.
    println!("\n== Deployment on an unseen network (mnist-3x32 brightening suite) ==");
    let suite = build_suite(ZooNetwork::Mnist3x32, &scale);
    let learned = Tool::charon_with_policy(Arc::new(outcome.policy));
    let default = Tool::new(ToolKind::Charon);

    let learned_runs = run_suite(&learned, &suite, &scale);
    let default_runs = run_suite(&default, &suite, &scale);
    let ls = Summary::from_runs(&learned_runs);
    let ds = Summary::from_runs(&default_runs);
    println!(
        "  learned policy:  solved {}/{} in {:.2}s",
        ls.solved(),
        ls.total(),
        ls.solved_time.as_secs_f64()
    );
    println!(
        "  default policy:  solved {}/{} in {:.2}s",
        ds.solved(),
        ds.total(),
        ds.solved_time.as_secs_f64()
    );
}
