//! Performance-regression harness for the matrix-kernel hot path.
//!
//! Times the flat blocked kernels against naive per-generator references
//! and measures end-to-end region throughput, then emits machine-readable
//! `BENCH_kernels.json`. The committed baseline at the repo root is the
//! reference; regenerate it with `cargo run --release --bin perf_kernels`
//! after intentional kernel changes (see DESIGN.md, "Performance
//! architecture").
//!
//! Flags:
//! - `--smoke`: tiny shapes, one repetition — validates that the harness
//!   runs and the JSON schema is intact (used by `scripts/ci.sh`).
//! - `--out <path>`: write the JSON somewhere other than
//!   `BENCH_kernels.json` in the current directory.

use std::fmt::Write as _;
use std::time::Instant;

use domains::{AbstractElement, Bounds, Workspace, Zonotope};
use nn::AffineLayer;
use tensor::kernels;
use tensor::Matrix;

/// One named measurement: times are medians over `reps` runs.
struct Sample {
    name: &'static str,
    /// Naive-reference median seconds (0 when no reference exists).
    naive_s: f64,
    /// Fast-path median seconds.
    fast_s: f64,
    /// Work-rate context (elements, regions, …) for human readers.
    note: String,
}

impl Sample {
    fn speedup(&self) -> f64 {
        if self.fast_s > 0.0 && self.naive_s > 0.0 {
            self.naive_s / self.fast_s
        } else {
            0.0
        }
    }
}

fn median(mut times: Vec<f64>) -> f64 {
    times.sort_by(f64::total_cmp);
    times[times.len() / 2]
}

/// Times `f` `reps` times and returns the median seconds; a `sink`
/// accumulator defeats dead-code elimination.
fn time_median<F: FnMut() -> f64>(reps: usize, mut f: F) -> f64 {
    let mut times = Vec::with_capacity(reps);
    let mut sink = 0.0f64;
    for _ in 0..reps {
        let start = Instant::now();
        sink += f();
        times.push(start.elapsed().as_secs_f64());
    }
    assert!(sink.is_finite(), "benchmark computation poisoned");
    median(times)
}

fn deterministic_matrix(rows: usize, cols: usize, seed: u64) -> Matrix {
    Matrix::from_fn(rows, cols, |r, c| {
        (((r * 31 + c * 17) as f64 + seed as f64) * 0.193).sin()
    })
}

fn deterministic_layer(out_dim: usize, in_dim: usize, seed: u64) -> AffineLayer {
    AffineLayer::new(
        deterministic_matrix(out_dim, in_dim, seed),
        (0..out_dim).map(|r| (r as f64 * 0.53).cos()).collect(),
    )
}

/// Naive per-generator affine: the pre-flat `Vec<Vec<f64>>` hot path.
fn naive_zonotope_affine(
    center: &[f64],
    gens: &[Vec<f64>],
    layer: &AffineLayer,
) -> (Vec<f64>, Vec<Vec<f64>>) {
    let mut new_center = layer.weights.matvec(center);
    for (c, b) in new_center.iter_mut().zip(layer.bias.iter()) {
        *c += b;
    }
    let new_gens = gens
        .iter()
        .map(|g| layer.weights.matvec(g))
        .collect();
    (new_center, new_gens)
}

/// The tentpole target: one zonotope affine layer, 1024 neurons × 256
/// generators, naive per-generator matvecs vs one blocked matmul.
fn bench_zonotope_affine(neurons: usize, generators: usize, reps: usize) -> Sample {
    let layer = deterministic_layer(neurons, neurons, 3);
    // A `generators`-dim box has one noise symbol per coordinate; lifting
    // it through a `generators -> neurons` affine map yields a dense
    // zonotope with exactly the requested shape.
    let region = Bounds::new(vec![-1.0; generators], vec![1.0; generators]);
    let z = Zonotope::from_bounds(&region).affine(&deterministic_layer(neurons, generators, 5));
    let gens: Vec<Vec<f64>> = z.generator_rows().map(<[f64]>::to_vec).collect();
    let center = z.center().to_vec();

    let naive_s = time_median(reps, || {
        let (c, g) = naive_zonotope_affine(&center, &gens, &layer);
        c[0] + g.last().map_or(0.0, |r| r[0])
    });
    let mut ws = Workspace::new();
    let fast_s = time_median(reps, || {
        let out = z.affine_ws(&layer, &mut ws);
        let probe = out.center()[0];
        out.recycle(&mut ws);
        probe
    });
    Sample {
        name: "zonotope_affine",
        naive_s,
        fast_s,
        note: format!("{neurons} neurons x {} generators", z.num_generators()),
    }
}

/// Raw kernel: blocked `A·Bᵀ` vs the naive triple loop.
fn bench_matmul_transb(m: usize, k: usize, n: usize, reps: usize) -> Sample {
    let a = deterministic_matrix(m, k, 1);
    let b = deterministic_matrix(n, k, 2);
    let naive_s = time_median(reps, || {
        let mut acc = 0.0;
        for i in 0..m {
            for j in 0..n {
                let mut dot = 0.0;
                for kk in 0..k {
                    dot += a.row(i)[kk] * b.row(j)[kk];
                }
                acc += dot;
            }
        }
        acc
    });
    let fast_s = time_median(reps, || a.matmul_transb(&b).as_slice().iter().sum());
    Sample {
        name: "matmul_transb",
        naive_s,
        fast_s,
        note: format!("{m}x{k} . ({n}x{k})^T"),
    }
}

/// Fused center transform vs separate matvec + bias loop.
fn bench_matvec_bias(n: usize, reps: usize) -> Sample {
    let layer = deterministic_layer(n, n, 9);
    let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.17).sin()).collect();
    let naive_s = time_median(reps, || {
        let mut y = layer.weights.matvec(&x);
        for (yi, bi) in y.iter_mut().zip(layer.bias.iter()) {
            *yi += bi;
        }
        y[0]
    });
    let fast_s = time_median(reps, || layer.weights.matvec_bias(&x, &layer.bias)[0]);
    Sample {
        name: "matvec_bias",
        naive_s,
        fast_s,
        note: format!("{n}x{n} matrix"),
    }
}

/// The runtime-dispatched SIMD arm vs the portable scalar arm on the
/// fused zonotope-affine kernel, timed at the raw dispatch-table level
/// (no element allocation in the loop). On hosts without a vector arm —
/// or under `CHARON_FORCE_SCALAR` — both sides time the scalar kernel
/// and the speedup sits at 1x by construction.
fn bench_simd_affine(neurons: usize, generators: usize, reps: usize) -> Sample {
    let weights = deterministic_matrix(neurons, neurons, 21);
    let bias: Vec<f64> = (0..neurons).map(|r| (r as f64 * 0.71).cos()).collect();
    let center: Vec<f64> = (0..neurons).map(|i| (i as f64 * 0.29).sin()).collect();
    let gens = deterministic_matrix(generators, neurons, 23);
    let mut out_c = vec![0.0; neurons];
    let mut out_g = vec![0.0; generators * neurons];
    let scalar = kernels::scalar();
    let active = kernels::active();
    let naive_s = time_median(reps, || {
        scalar.zonotope_affine(
            weights.as_slice(),
            &bias,
            &center,
            gens.as_slice(),
            &mut out_c,
            &mut out_g,
        );
        out_c[0] + out_g[out_g.len() - 1]
    });
    let fast_s = time_median(reps, || {
        active.zonotope_affine(
            weights.as_slice(),
            &bias,
            &center,
            gens.as_slice(),
            &mut out_c,
            &mut out_g,
        );
        out_c[0] + out_g[out_g.len() - 1]
    });
    Sample {
        name: "simd_affine",
        naive_s,
        fast_s,
        note: format!("{} arm vs scalar, {neurons} neurons x {generators} generators", active.name()),
    }
}

/// Region throughput under the two scheduling disciplines: the same
/// refinement-heavy verification run on the shared-queue fallback
/// (naive) and the work-stealing scheduler (fast). On a single-core
/// host the two coincide; the row exists so scheduler regressions are
/// visible wherever the baseline was recorded.
fn bench_scheduler_throughput(reps: usize) -> Sample {
    use std::sync::Arc;
    let net = nn::samples::xor_network();
    let prop = charon::RobustnessProperty::new(Bounds::new(vec![0.3, 0.3], vec![0.7, 0.7]), 1);
    let threads = 4;
    let timed = |mode: charon::SchedulerMode| {
        let verifier = charon::parallel::ParallelVerifier::new(
            Arc::new(charon::policy::FixedPolicy::new(domains::DomainChoice::interval())),
            charon::VerifierConfig::default(),
            threads,
        )
        .with_scheduler(mode);
        let net = &net;
        let prop = &prop;
        move || {
            let run = verifier.try_verify_run(net, prop).expect("bench verification");
            assert!(run.verdict.is_verified(), "bench property must verify");
            run.stats.regions as f64
        }
    };
    let naive_s = time_median(reps, timed(charon::SchedulerMode::SharedQueue));
    let fast_s = time_median(reps, timed(charon::SchedulerMode::WorkStealing));
    Sample {
        name: "scheduler_throughput",
        naive_s,
        fast_s,
        note: format!("xor interval refinement, {threads} workers, shared queue vs work stealing"),
    }
}

/// End-to-end: full zonotope propagation through a deep MLP, fresh
/// allocations vs the Workspace-recycled path.
fn bench_region_throughput(width: usize, depth: usize, reps: usize) -> Sample {
    let hidden = vec![width; depth];
    let net = nn::train::random_mlp(8, &hidden, 4, 42);
    let region = Bounds::linf_ball(&[0.05; 8], 0.1, None);

    let naive_s = time_median(reps, || {
        let mut e = Zonotope::from_bounds(&region);
        for layer in net.layers() {
            e = match layer {
                nn::Layer::Affine(a) => e.affine(a),
                nn::Layer::Relu => e.relu(),
                nn::Layer::MaxPool(p) => e.max_pool(p),
            };
        }
        e.margin_lower_bound(0)
    });
    let mut ws = Workspace::new();
    let fast_s = time_median(reps, || {
        let mut e = Zonotope::from_bounds(&region);
        for layer in net.layers() {
            let next = match layer {
                nn::Layer::Affine(a) => e.affine_ws(a, &mut ws),
                nn::Layer::Relu => e.relu(),
                nn::Layer::MaxPool(p) => e.max_pool(p),
            };
            let old = std::mem::replace(&mut e, next);
            old.recycle(&mut ws);
        }
        let margin = e.margin_lower_bound(0);
        e.recycle(&mut ws);
        margin
    });
    Sample {
        name: "region_propagation",
        naive_s,
        fast_s,
        note: format!("8 -> {depth}x{width} -> 4 MLP"),
    }
}

/// One small end-to-end verification, returning the engine's per-phase
/// metrics so kernel-level numbers sit next to where the verifier
/// actually spends its time. Tracing stays off (the default `NullSink`);
/// only the always-on metrics counters are exercised.
fn phase_metrics() -> charon::Metrics {
    let net = nn::samples::xor_network();
    let property =
        charon::RobustnessProperty::new(Bounds::new(vec![0.3, 0.3], vec![0.7, 0.7]), 1);
    match charon::Verifier::default().try_verify_run(&net, &property) {
        Ok(run) => run.stats.metrics,
        Err(_) => charon::Metrics::default(),
    }
}

/// Hand-rolled JSON (the workspace deliberately has no serde_json).
fn render_json(samples: &[Sample], smoke: bool, phases: &charon::Metrics) -> String {
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"schema\": \"bench-kernels-v1\",");
    let _ = writeln!(out, "  \"smoke\": {smoke},");
    let _ = writeln!(out, "  \"phases\": {},", phases.to_json());
    out.push_str("  \"samples\": [\n");
    for (i, s) in samples.iter().enumerate() {
        let comma = if i + 1 < samples.len() { "," } else { "" };
        let _ = writeln!(
            out,
            "    {{\"name\": \"{}\", \"naive_s\": {:.9}, \"fast_s\": {:.9}, \
             \"speedup\": {:.3}, \"note\": \"{}\"}}{comma}",
            s.name,
            s.naive_s,
            s.fast_s,
            s.speedup(),
            s.note,
        );
    }
    out.push_str("  ]\n}\n");
    out
}

/// Minimal structural check that the emitted JSON honours the schema the
/// CI smoke run relies on.
fn validate_json(json: &str) {
    for needle in [
        "\"schema\": \"bench-kernels-v1\"",
        "\"samples\": [",
        "\"name\": \"zonotope_affine\"",
        "\"name\": \"simd_affine\"",
        "\"name\": \"scheduler_throughput\"",
        "\"speedup\":",
        "\"phases\":",
    ] {
        assert!(json.contains(needle), "JSON schema lost field: {needle}");
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map_or_else(|| "BENCH_kernels.json".to_string(), String::clone);

    let (neurons, generators, mm, reps) = if smoke {
        (64, 16, 48, 3)
    } else {
        (1024, 256, 512, 9)
    };

    let samples = vec![
        bench_zonotope_affine(neurons, generators, reps),
        bench_simd_affine(neurons, generators, reps),
        bench_matmul_transb(generators.max(8), mm, neurons.min(mm), reps),
        bench_matvec_bias(neurons, reps),
        bench_region_throughput(if smoke { 24 } else { 96 }, 4, reps),
        bench_scheduler_throughput(reps),
    ];

    println!("kernel perf ({}):", if smoke { "smoke" } else { "full" });
    for s in &samples {
        println!(
            "  {:<20} naive {:>10.3e}s  fast {:>10.3e}s  speedup {:>6.2}x  [{}]",
            s.name,
            s.naive_s,
            s.fast_s,
            s.speedup(),
            s.note,
        );
    }

    let json = render_json(&samples, smoke, &phase_metrics());
    validate_json(&json);
    std::fs::write(&out_path, &json).expect("write benchmark JSON");
    println!("wrote {out_path}");

    if !smoke {
        // The naive reference (per-generator matvec) dispatches through
        // the same backend as the fast path, so the expected ratio
        // depends on the active arm: with a vector arm the fast path's
        // blocked matmul gains more from SIMD than the matvec reference;
        // scalar-only the two share the row-quad matvec and the margin
        // is just the blocking.
        let affine = &samples[0];
        let affine_floor = if kernels::active().name() == "scalar" {
            1.5
        } else {
            3.0
        };
        assert!(
            affine.speedup() >= affine_floor,
            "zonotope affine speedup regressed below {affine_floor}x: {:.2}x",
            affine.speedup()
        );
        // The SIMD acceptance gate applies only where a vector arm is
        // actually dispatched (skipped under CHARON_FORCE_SCALAR and on
        // hosts with no detected vector unit).
        if kernels::active().name() != "scalar" {
            let simd = samples
                .iter()
                .find(|s| s.name == "simd_affine")
                .expect("simd_affine sample present");
            assert!(
                simd.speedup() >= 2.0,
                "SIMD zonotope-affine arm regressed below 2x over scalar: {:.2}x",
                simd.speedup()
            );
        }
    }
}
