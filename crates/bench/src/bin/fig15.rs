//! Figure 15: ReluVal on the benchmarks Charon verifies.
//!
//! This isolates the value of the *learned* refinement strategy (RQ3):
//! on the subset of benchmarks where the property holds and Charon proves
//! it, what fraction can ReluVal (static, hand-crafted strategy) also
//! prove? The paper reports 35–70% depending on the network.

use baselines::ToolVerdict;
use bench::{build_suite, run_suite, Scale, Tool, ToolKind};
use data::zoo::ZooNetwork;

fn main() {
    let scale = Scale::from_env();
    println!(
        "== Figure 15: ReluVal on Charon-verified benchmarks ({} props, {:?} timeout) ==",
        scale.props_per_network, scale.timeout
    );

    let mut grand_charon = 0usize;
    let mut grand_reluval = 0usize;

    for which in ZooNetwork::FULLY_CONNECTED {
        let suite = build_suite(which, &scale);
        let charon_runs = run_suite(&Tool::new(ToolKind::Charon), &suite, &scale);
        let reluval_runs = run_suite(&Tool::new(ToolKind::ReluVal), &suite, &scale);

        let mut charon_verified = 0usize;
        let mut reluval_also = 0usize;
        for (c, r) in charon_runs.iter().zip(reluval_runs.iter()) {
            if c.verdict == ToolVerdict::Verified {
                charon_verified += 1;
                if r.verdict == ToolVerdict::Verified {
                    reluval_also += 1;
                }
            }
        }
        grand_charon += charon_verified;
        grand_reluval += reluval_also;
        let pct = if charon_verified > 0 {
            100.0 * reluval_also as f64 / charon_verified as f64
        } else {
            f64::NAN
        };
        println!(
            "  {:<12} Charon-verified={:>3}  ReluVal-also={:>3}  ({pct:.0}%)",
            suite.which.name(),
            charon_verified,
            reluval_also,
        );
    }

    if grand_charon > 0 {
        println!(
            "\nOverall: ReluVal solves {:.0}% of Charon-verified benchmarks (paper: 35-70% per network)",
            100.0 * grand_reluval as f64 / grand_charon as f64
        );
    } else {
        println!(
            "\nNo benchmarks verified by Charon at this scale; increase CHARON_BENCH_TIMEOUT_MS."
        );
    }
}
