//! Load generator for the verification daemon: replays a synthetic
//! query stream (a hot/cold mix of repeated and distinct robustness
//! queries) against an in-process server and against one-shot CLI runs,
//! then emits machine-readable `BENCH_server.json`.
//!
//! The committed baseline at the repo root is the reference; regenerate
//! it with `cargo run --release --bin loadgen` after intentional server
//! changes (see DESIGN.md, "Service architecture").
//!
//! The warm path amortizes model parsing through the daemon's registry
//! and serves repeated queries from the result cache; the cold baseline
//! reloads and re-verifies everything per query, which is exactly what a
//! shell loop over `charon-cli verify` does.
//!
//! Flags:
//! - `--smoke`: tiny stream, no throughput assertion — validates that
//!   the harness runs and the JSON schema is intact (used by
//!   `scripts/ci.sh`).
//! - `--faults`: run the warm stream against a journaled daemon with a
//!   deterministic worker-kill schedule; every query must still answer,
//!   the supervisor must log the deaths and requeues, and the drain
//!   must lose nothing. Implies no throughput assertion.
//! - `--cluster`: benchmark the multi-node tier instead — a budget-bound
//!   stream (shards that exhaust their wall-clock timeout) against a
//!   coordinator with one node and then two nodes, emitting
//!   `BENCH_cluster.json` and asserting (full mode only) that two nodes
//!   deliver at least 1.5x the throughput of one.
//! - `--cert`: submit the warm stream with protocol-v4 certificate
//!   requests and assert every verdict (fresh or cached) delivers a
//!   proof certificate, measuring the emission overhead in the warm
//!   numbers; the `certified` count lands in the JSON.
//! - `--overload`: benchmark the overload surface instead — measure the
//!   sustainable plateau with a closed-loop stream of budget-bound
//!   queries, then offer 4x that rate open-loop with `deadline_ms` set
//!   and the shed controller armed, emitting `BENCH_overload.json` and
//!   asserting that nothing is lost, the controller shed something, the
//!   p99 of answered jobs stays within the deadline, and (full mode
//!   only) goodput holds within 20% of the plateau.
//! - `--out <path>`: write the JSON somewhere other than
//!   `BENCH_server.json` (or `BENCH_cluster.json`, or
//!   `BENCH_overload.json`) in the current directory.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

use charon::json::ObjectBuilder;
use charon::RobustnessProperty;
use domains::Bounds;
use server::{
    Client, Coordinator, CoordinatorConfig, Server, ServerAddr, ServerConfig, ServerFaultPlan,
    ServerFaultPlanBuilder, VerifyRequest,
};

/// Shape of one benchmark run.
struct Plan {
    /// Distinct (network, property) queries in the stream.
    distinct: usize,
    /// Times each distinct query appears (1 cold + `repeats - 1` hot).
    repeats: usize,
    /// Daemon worker threads.
    workers: usize,
    /// Concurrent client connections replaying the warm stream.
    clients: usize,
}

impl Plan {
    fn queries(&self) -> usize {
        self.distinct * self.repeats
    }
}

/// A small MLP whose tiny-ε robustness queries verify in a handful of
/// regions: enough work that verification dominates a one-shot run, but
/// fast enough for a full sweep in seconds.
fn bench_network() -> nn::Network {
    nn::train::random_mlp(6, &[24, 24], 4, 42)
}

/// Distinct properties: small L∞ balls around distinct anchor points,
/// each targeting the network's own classification of the anchor (so
/// the expected verdict is "verified" and therefore cacheable).
fn bench_properties(net: &nn::Network, count: usize) -> Vec<RobustnessProperty> {
    (0..count)
        .map(|i| {
            let point: Vec<f64> = (0..6)
                .map(|d| 0.05 + 0.013 * ((i * 7 + d * 3) % 11) as f64)
                .collect();
            let region = Bounds::linf_ball(&point, 0.01, None);
            RobustnessProperty::new(region, net.classify(&point))
        })
        .collect()
}

/// The query stream: index `k` uses property `k % distinct`, so every
/// property appears once cold and `repeats - 1` times hot, interleaved
/// the way independent clients would interleave them.
fn stream_order(plan: &Plan) -> Vec<usize> {
    (0..plan.queries()).map(|k| k % plan.distinct).collect()
}

/// Warm path: every query goes through the daemon. Client `j` replays
/// queries `j, j + clients, j + 2·clients, …` on its own connection.
/// Returns the elapsed seconds and how many verdicts carried a proof
/// certificate (always 0 unless `cert` asks for them).
fn run_warm(
    addr: &ServerAddr,
    net_path: &Path,
    properties: &[RobustnessProperty],
    plan: &Plan,
    cert: bool,
) -> (f64, usize) {
    let order = stream_order(plan);
    let certified = AtomicUsize::new(0);
    let start = Instant::now();
    std::thread::scope(|scope| {
        for j in 0..plan.clients {
            let order = &order;
            let certified = &certified;
            scope.spawn(move || {
                let mut client = Client::connect(addr).expect("loadgen client connect");
                for (k, &prop_idx) in order.iter().enumerate().skip(j).step_by(plan.clients) {
                    let request = VerifyRequest {
                        id: k as u64 + 1,
                        network: net_path.display().to_string(),
                        property: properties[prop_idx].to_text(),
                        timeout_ms: 60_000,
                        cert,
                        ..VerifyRequest::default()
                    };
                    let reply = client.request(&request.to_line()).expect("loadgen reply");
                    let kind = reply.str_field("response").expect("response kind");
                    assert_eq!(kind, "verdict", "unexpected response: {kind}");
                    if reply.opt_str("cert").expect("cert field").is_some() {
                        certified.fetch_add(1, Ordering::Relaxed);
                    }
                }
            });
        }
    });
    (start.elapsed().as_secs_f64(), certified.into_inner())
}

/// Cold baseline: the same stream as one-shot `charon-cli verify` runs,
/// each reloading the network and building a fresh verifier.
fn run_cold(net_path: &Path, prop_paths: &[PathBuf], plan: &Plan) -> f64 {
    let order = stream_order(plan);
    let start = Instant::now();
    for &prop_idx in &order {
        let argv = vec![
            "verify".to_string(),
            "--network".to_string(),
            net_path.display().to_string(),
            "--property".to_string(),
            prop_paths[prop_idx].display().to_string(),
        ];
        let mut sink = Vec::new();
        let code = cli::run(&argv, &mut sink);
        assert_eq!(
            code.code(),
            0,
            "cold run did not verify: {}",
            String::from_utf8_lossy(&sink)
        );
    }
    start.elapsed().as_secs_f64()
}

fn render_json(
    plan: &Plan,
    smoke: bool,
    warm_s: f64,
    cold_s: f64,
    certified: usize,
    stats: &charon::json::Fields,
) -> String {
    let queries = plan.queries() as f64;
    ObjectBuilder::new()
        .str("schema", "bench-server-v1")
        .int("smoke", u64::from(smoke))
        .int("queries", plan.queries() as u64)
        .int("distinct", plan.distinct as u64)
        .int("repeats", plan.repeats as u64)
        .int("workers", plan.workers as u64)
        .int("clients", plan.clients as u64)
        .num("warm_s", warm_s)
        .num("cold_s", cold_s)
        .num("speedup", cold_s / warm_s)
        .num("warm_qps", queries / warm_s)
        .num("cold_qps", queries / cold_s)
        .int("certified", certified as u64)
        .int("completed", stats.usize_field("completed").expect("completed") as u64)
        .int("cache_hits", stats.usize_field("cache_hits").expect("cache_hits") as u64)
        .int(
            "cache_misses",
            stats.usize_field("cache_misses").expect("cache_misses") as u64,
        )
        .num(
            "cache_hit_rate",
            stats.f64_field("cache_hit_rate").expect("cache_hit_rate"),
        )
        .build()
}

/// Minimal structural check that the emitted JSON honours the schema the
/// CI smoke run relies on.
fn validate_json(json: &str) {
    for needle in [
        "\"schema\": \"bench-server-v1\"",
        "\"speedup\":",
        "\"cache_hits\":",
        "\"warm_qps\":",
    ] {
        assert!(json.contains(needle), "JSON schema lost field: {needle}");
    }
}

/// A network no attack can refute and no split schedule can verify
/// quickly: two outputs `relu(z) + 0.05` and `relu(z)` for a nonlinear
/// `z(x)`, so the margin is a constant 0.05 and closing the abstraction
/// error of the twice-relaxed ReLU needs astronomically fine splits.
/// Every shard of such a property runs its full wall-clock budget —
/// the workload class where cluster scaling is about consuming budgets
/// concurrently.
fn budget_network() -> nn::Network {
    use tensor::Matrix;
    let dim = 6;
    let hidden = 8;
    let mut state = 0x1234_5678_u64;
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((state >> 33) as f64 / (1u64 << 31) as f64) - 0.5
    };
    let w1 = Matrix::from_fn(hidden, dim, |_, _| 2.0 * next());
    let l1 = nn::AffineLayer::new(w1, (0..hidden).map(|_| next()).collect());
    let row: Vec<f64> = (0..hidden).map(|_| 2.0 * next()).collect();
    let w2 = Matrix::from_rows(&[row.as_slice(), row.as_slice()]);
    let l2 = nn::AffineLayer::new(w2, vec![0.0, 0.0]);
    let head = nn::AffineLayer::new(
        Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0]]),
        vec![0.05, 0.0],
    );
    nn::Network::new(
        dim,
        vec![
            nn::Layer::Affine(l1),
            nn::Layer::Relu,
            nn::Layer::Affine(l2),
            nn::Layer::Relu,
            nn::Layer::Affine(head),
        ],
    )
    .unwrap()
}

/// One pass of the cluster benchmark: a coordinator over `node_count`
/// nodes, the given stream of distinct queries submitted sequentially.
/// Returns (elapsed seconds, shards completed).
fn run_cluster_pass(
    dir: &Path,
    net_path: &Path,
    properties: &[RobustnessProperty],
    timeout_ms: u64,
    expect: &str,
    node_count: usize,
    shards: usize,
) -> (f64, usize) {
    let nodes: Vec<server::ServerHandle> = (0..node_count)
        .map(|i| {
            Server::start(ServerConfig {
                addr: ServerAddr::Unix(dir.join(format!("cluster-{node_count}-node{i}.sock"))),
                workers: 1,
                journal: None,
                ..ServerConfig::default()
            })
            .expect("start node")
        })
        .collect();
    let coordinator = Coordinator::start(CoordinatorConfig {
        addr: ServerAddr::Unix(dir.join(format!("cluster-{node_count}-coord.sock"))),
        nodes: nodes.iter().map(|n| n.addr().clone()).collect(),
        shards,
        // One shard in flight per node: the two-node pass gets exactly
        // twice the execution lanes of the one-node pass.
        connections_per_node: 1,
        ..CoordinatorConfig::default()
    })
    .expect("start coordinator");

    let start = Instant::now();
    let mut client = Client::connect(coordinator.addr()).expect("cluster client connect");
    for (k, property) in properties.iter().enumerate() {
        let request = VerifyRequest {
            id: k as u64 + 1,
            network: net_path.display().to_string(),
            property: property.to_text(),
            timeout_ms,
            ..VerifyRequest::default()
        };
        let reply = client.request(&request.to_line()).expect("cluster reply");
        assert_eq!(
            reply.str_field("verdict").expect("verdict"),
            expect,
            "cluster bench query {k}"
        );
    }
    let elapsed = start.elapsed().as_secs_f64();

    let stats = client
        .request("{\"request\": \"stats\"}")
        .expect("cluster stats");
    let shards_completed = stats
        .usize_field("shards_completed")
        .expect("shards_completed");
    let drained = client
        .request("{\"request\": \"drain\"}")
        .expect("cluster drain");
    assert_eq!(
        drained.f64_field("lost").expect("lost") as i64,
        0,
        "coordinator lost jobs during drain"
    );
    coordinator.join();
    for node in nodes {
        let mut control = Client::connect(node.addr()).expect("node control");
        let _ = control.request("{\"request\": \"drain\"}").expect("node drain");
        node.join();
    }
    (elapsed, shards_completed)
}

/// The `--cluster` benchmark: same stream, one node vs two nodes.
///
/// The full workload is *budget-bound*: properties too hard to decide
/// whose every shard runs its full wall-clock timeout, which is the
/// regime where adding nodes pays (shards consume their budgets
/// concurrently instead of one after another). Smoke mode swaps in a
/// tiny all-verified stream with no scaling assertion — it only proves
/// the harness runs end to end.
fn run_cluster(smoke: bool, out_path: &str) {
    let shards = 4;
    let dir = std::env::temp_dir().join(format!("charon-loadgen-cluster-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("loadgen temp dir");
    let net = if smoke { bench_network() } else { budget_network() };
    let net_path = dir.join("bench.net");
    nn::serialize::save(&net, &net_path).expect("write bench network");
    let (distinct, timeout_ms, expect) = if smoke {
        (2, 60_000, "verified")
    } else {
        (4, 150, "resource_limit")
    };
    let properties: Vec<RobustnessProperty> = (0..distinct)
        .map(|i| {
            if smoke {
                let point: Vec<f64> = (0..6)
                    .map(|d| 0.05 + 0.013 * ((i * 7 + d * 3) % 11) as f64)
                    .collect();
                let region = Bounds::linf_ball(&point, 0.01, None);
                RobustnessProperty::new(region, net.classify(&point))
            } else {
                // Slightly different boxes per query so no two jobs are
                // byte-identical on the wire.
                let lo = -2.0 + 0.01 * i as f64;
                RobustnessProperty::new(Bounds::new(vec![lo; 6], vec![2.0; 6]), 0)
            }
        })
        .collect();

    let (one_node_s, one_shards) =
        run_cluster_pass(&dir, &net_path, &properties, timeout_ms, expect, 1, shards);
    let (two_node_s, two_shards) =
        run_cluster_pass(&dir, &net_path, &properties, timeout_ms, expect, 2, shards);
    let speedup = one_node_s / two_node_s;

    println!("cluster loadgen ({}):", if smoke { "smoke" } else { "full" });
    println!(
        "  {distinct} queries x {shards} shards: 1 node {one_node_s:.3}s ({one_shards} shards), 2 nodes {two_node_s:.3}s ({two_shards} shards), speedup {speedup:.2}x"
    );

    let json = ObjectBuilder::new()
        .str("schema", "bench-cluster-v1")
        .int("smoke", u64::from(smoke))
        .int("queries", distinct as u64)
        .int("shards_per_job", shards as u64)
        .num("one_node_s", one_node_s)
        .num("two_node_s", two_node_s)
        .num("speedup", speedup)
        .num("one_node_qps", distinct as f64 / one_node_s)
        .num("two_node_qps", distinct as f64 / two_node_s)
        .int("one_node_shards", one_shards as u64)
        .int("two_node_shards", two_shards as u64)
        .build();
    for needle in ["\"schema\": \"bench-cluster-v1\"", "\"speedup\":", "\"two_node_qps\":"] {
        assert!(json.contains(needle), "JSON schema lost field: {needle}");
    }
    std::fs::write(out_path, &json).expect("write benchmark JSON");
    println!("wrote {out_path}");
    let _ = std::fs::remove_dir_all(&dir);

    // Smoke mode only proves the harness runs end to end; the scaling
    // bar applies to the full benchmark.
    if !smoke {
        assert!(
            speedup >= 1.5,
            "two-node throughput regressed below 1.5x one-node: {speedup:.2}x"
        );
    }
}

/// One response observed by the overload reader thread.
struct OverloadOutcome {
    id: u64,
    kind: OverloadKind,
    at: Instant,
}

enum OverloadKind {
    Verdict,
    Shed,
    Expired,
}

/// The property every overload query verifies: a region the budget
/// network makes undecidable, so service time is deterministically the
/// wall-clock budget (resource-limit verdicts are never cached).
fn overload_property() -> RobustnessProperty {
    RobustnessProperty::new(Bounds::new(vec![-2.0; 6], vec![2.0; 6]), 0)
}

fn overload_config(dir: &Path, name: &str, workers: usize) -> ServerConfig {
    ServerConfig {
        addr: ServerAddr::Unix(dir.join(name)),
        workers,
        queue_capacity: 64,
        // Shed once queue sojourn stays above 40 ms for 60 ms: with
        // ~30 ms service on 2 workers that keeps the backlog to a
        // handful of jobs, far inside the 600 ms client deadline.
        shed_target: Some(std::time::Duration::from_millis(40)),
        shed_interval: std::time::Duration::from_millis(60),
        journal: None,
        ..ServerConfig::default()
    }
}

/// Sustainable plateau: `workers` closed-loop clients (one in-flight
/// job each) over `total` budget-bound queries. Returns goodput in q/s.
fn overload_plateau(
    dir: &Path,
    net_path: &Path,
    timeout_ms: u64,
    workers: usize,
    total: usize,
) -> f64 {
    let handle = Server::start(overload_config(dir, "overload-plateau.sock", workers))
        .expect("start plateau daemon");
    let addr = handle.addr().clone();
    let property = overload_property().to_text();
    let start = Instant::now();
    std::thread::scope(|scope| {
        for j in 0..workers {
            let addr = &addr;
            let property = &property;
            scope.spawn(move || {
                let mut client = Client::connect(addr).expect("plateau client");
                for k in (j..total).step_by(workers) {
                    let request = VerifyRequest {
                        id: k as u64 + 1,
                        network: net_path.display().to_string(),
                        property: property.clone(),
                        timeout_ms,
                        ..VerifyRequest::default()
                    };
                    let reply = client.request(&request.to_line()).expect("plateau reply");
                    assert_eq!(
                        reply.str_field("verdict").expect("verdict"),
                        "resource_limit",
                        "plateau query {k} must be budget-bound"
                    );
                }
            });
        }
    });
    let elapsed = start.elapsed().as_secs_f64();
    let mut control = Client::connect(&addr).expect("plateau control");
    let drained = control.request("{\"request\": \"drain\"}").expect("plateau drain");
    assert_eq!(
        drained.f64_field("lost").expect("lost") as i64,
        0,
        "plateau drain lost jobs"
    );
    handle.join();
    total as f64 / elapsed
}

/// The `--overload` benchmark: plateau first, then 4x that rate offered
/// open-loop (paced submissions pipelined on one connection) against a
/// daemon with the shed controller armed, every job carrying an
/// end-to-end deadline.
fn run_overload(smoke: bool, out_path: &str) {
    use std::io::Write as _;

    let workers = 2;
    let timeout_ms = 30;
    let deadline_ms = 600;
    let dir = std::env::temp_dir().join(format!("charon-loadgen-overload-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("loadgen temp dir");
    let net = budget_network();
    let net_path = dir.join("bench.net");
    nn::serialize::save(&net, &net_path).expect("write bench network");

    let plateau_total = if smoke { 30 } else { 150 };
    let plateau_qps = overload_plateau(&dir, &net_path, timeout_ms, workers, plateau_total);

    // Overload phase: one writer paces submissions at 4x the plateau
    // (open loop: the send schedule never waits for answers), one
    // reader matches the single response every job gets back — an
    // immediate `busy`, a `deadline_expired` error, or a verdict.
    let offered_qps = 4.0 * plateau_qps;
    let duration_s = if smoke { 1.5 } else { 5.0 };
    let total = (offered_qps * duration_s) as usize;
    let handle = Server::start(overload_config(&dir, "overload.sock", workers))
        .expect("start overload daemon");
    let addr = handle.addr().clone();
    let sock_path = match &addr {
        ServerAddr::Unix(path) => path.clone(),
        other => panic!("overload bench needs a unix socket, got {other}"),
    };
    let property = overload_property().to_text();

    let stream = std::os::unix::net::UnixStream::connect(&sock_path).expect("overload connect");
    stream
        .set_read_timeout(Some(std::time::Duration::from_secs(30)))
        .expect("read timeout");
    let mut writer = stream.try_clone().expect("overload writer clone");
    let started = Instant::now();
    let reader_thread = std::thread::spawn(move || {
        let mut reader = std::io::BufReader::new(stream);
        let mut outcomes = Vec::with_capacity(total);
        let mut line = String::new();
        while outcomes.len() < total {
            line.clear();
            let n = std::io::BufRead::read_line(&mut reader, &mut line).expect("overload read");
            assert!(n > 0, "daemon closed the overload connection early");
            if line.trim().is_empty() {
                continue;
            }
            let fields = charon::json::parse_flat_object(&line).expect("overload response");
            let id = fields.usize_field("id").expect("response id") as u64;
            let kind = match fields.str_field("response").expect("kind").as_str() {
                "verdict" => OverloadKind::Verdict,
                "busy" => {
                    let hint = fields.usize_field("retry_after_ms").expect("retry_after_ms");
                    assert!(hint >= 25, "busy must carry a usable retry hint, got {hint}");
                    OverloadKind::Shed
                }
                "error" => {
                    let code = fields.str_field("error").expect("error code");
                    assert_eq!(code, "deadline_expired", "unexpected overload error {code}");
                    OverloadKind::Expired
                }
                other => panic!("unexpected overload response kind {other}"),
            };
            outcomes.push(OverloadOutcome {
                id,
                kind,
                at: Instant::now(),
            });
        }
        outcomes
    });

    let tick = std::time::Duration::from_secs_f64(1.0 / offered_qps);
    let mut sent_at = Vec::with_capacity(total);
    for k in 0..total {
        let next = started + tick.mul_f64(k as f64);
        if let Some(wait) = next.checked_duration_since(Instant::now()) {
            std::thread::sleep(wait);
        }
        let request = VerifyRequest {
            id: k as u64 + 1,
            network: net_path.display().to_string(),
            property: property.clone(),
            timeout_ms,
            deadline_ms: Some(deadline_ms),
            ..VerifyRequest::default()
        };
        sent_at.push(Instant::now());
        writer
            .write_all(format!("{}\n", request.to_line()).as_bytes())
            .expect("overload send");
    }
    writer.flush().expect("overload flush");
    let outcomes = reader_thread.join().expect("overload reader");
    let elapsed = started.elapsed().as_secs_f64();

    let mut completed = 0_u64;
    let mut shed = 0_u64;
    let mut expired = 0_u64;
    let mut latencies_ms: Vec<f64> = Vec::new();
    for outcome in &outcomes {
        match outcome.kind {
            OverloadKind::Verdict => {
                completed += 1;
                let sent = sent_at[(outcome.id - 1) as usize];
                latencies_ms.push(outcome.at.duration_since(sent).as_secs_f64() * 1e3);
            }
            OverloadKind::Shed => shed += 1,
            OverloadKind::Expired => expired += 1,
        }
    }
    latencies_ms.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let p99_ms = latencies_ms
        .get((latencies_ms.len().saturating_sub(1)) * 99 / 100)
        .copied()
        .unwrap_or(0.0);
    let goodput_qps = completed as f64 / elapsed;

    let mut control = Client::connect(&addr).expect("overload control");
    let stats = control.request("{\"request\": \"stats\"}").expect("overload stats");
    let stats_shed = stats.usize_field("shed").expect("shed counter");
    let stats_expired = stats.usize_field("deadline_expired").expect("deadline_expired");
    let drained = control.request("{\"request\": \"drain\"}").expect("overload drain");
    let lost = drained.f64_field("lost").expect("lost") as i64;
    handle.join();

    println!("overload loadgen ({}):", if smoke { "smoke" } else { "full" });
    println!(
        "  plateau {plateau_qps:.1} q/s; offered {offered_qps:.1} q/s for {duration_s:.1}s ({total} jobs, deadline {deadline_ms} ms)"
    );
    println!(
        "  goodput {goodput_qps:.1} q/s ({completed} verdicts), shed {shed}, expired {expired}, p99 {p99_ms:.1} ms, lost {lost}"
    );

    let json = ObjectBuilder::new()
        .str("schema", "bench-overload-v1")
        .int("smoke", u64::from(smoke))
        .int("workers", workers as u64)
        .int("service_ms", timeout_ms)
        .int("deadline_ms", deadline_ms)
        .num("plateau_qps", plateau_qps)
        .num("offered_qps", offered_qps)
        .num("goodput_qps", goodput_qps)
        .int("submitted", total as u64)
        .int("completed", completed)
        .int("shed", shed)
        .int("expired", expired)
        .int("shed_controller", stats_shed as u64)
        .int("expired_in_queue", stats_expired as u64)
        .num("p99_ms", p99_ms)
        .int("lost", lost.unsigned_abs())
        .build();
    for needle in [
        "\"schema\": \"bench-overload-v1\"",
        "\"plateau_qps\":",
        "\"goodput_qps\":",
        "\"shed\":",
        "\"p99_ms\":",
    ] {
        assert!(json.contains(needle), "JSON schema lost field: {needle}");
    }
    std::fs::write(out_path, &json).expect("write benchmark JSON");
    println!("wrote {out_path}");
    let _ = std::fs::remove_dir_all(&dir);

    assert_eq!(lost, 0, "accepted overload jobs were lost");
    assert!(shed > 0, "4x offered load must shed something");
    assert!(
        p99_ms <= deadline_ms as f64,
        "p99 of answered jobs blew the deadline: {p99_ms:.1} ms > {deadline_ms} ms"
    );
    assert_eq!(
        completed + shed + expired,
        total as u64,
        "every submission must be answered exactly once"
    );
    // Smoke mode only proves the harness runs; the goodput bar applies
    // to the full benchmark.
    if !smoke {
        assert!(
            goodput_qps >= 0.8 * plateau_qps,
            "overload goodput collapsed below 80% of the plateau: {goodput_qps:.1} vs {plateau_qps:.1}"
        );
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let faults_on = args.iter().any(|a| a == "--faults");
    let cluster = args.iter().any(|a| a == "--cluster");
    let overload = args.iter().any(|a| a == "--overload");
    let cert_on = args.iter().any(|a| a == "--cert");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map_or_else(
            || {
                if cluster {
                    "BENCH_cluster.json".to_string()
                } else if overload {
                    "BENCH_overload.json".to_string()
                } else {
                    "BENCH_server.json".to_string()
                }
            },
            String::clone,
        );
    if cluster {
        run_cluster(smoke, &out_path);
        return;
    }
    if overload {
        run_overload(smoke, &out_path);
        return;
    }

    let plan = if smoke {
        Plan {
            distinct: 2,
            repeats: 2,
            workers: 1,
            clients: 1,
        }
    } else {
        Plan {
            distinct: 8,
            repeats: 6,
            workers: 2,
            clients: 4,
        }
    };

    let dir = std::env::temp_dir().join(format!("charon-loadgen-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("loadgen temp dir");
    let net = bench_network();
    let net_path = dir.join("bench.net");
    nn::serialize::save(&net, &net_path).expect("write bench network");
    let properties = bench_properties(&net, plan.distinct);
    let prop_paths: Vec<PathBuf> = properties
        .iter()
        .enumerate()
        .map(|(i, p)| {
            let path = dir.join(format!("bench-{i}.prop"));
            std::fs::write(&path, p.to_text()).expect("write bench property");
            path
        })
        .collect();

    // Under --faults the daemon journals and a deterministic schedule
    // panics two workers mid-stream; every query must still come back.
    let fault_plan: Option<Arc<ServerFaultPlan>> = faults_on.then(|| {
        Arc::new(
            ServerFaultPlanBuilder::new()
                .kill_worker_at_pop(1)
                .kill_worker_at_pop(3)
                .build(),
        )
    });
    let handle = Server::start(ServerConfig {
        addr: ServerAddr::Unix(dir.join("loadgen.sock")),
        workers: plan.workers,
        queue_capacity: 64,
        cache_capacity: 256,
        journal: faults_on.then(|| dir.join("loadgen.wal")),
        faults: fault_plan.clone(),
        ..ServerConfig::default()
    })
    .expect("start daemon");
    let addr = handle.addr().clone();

    let (warm_s, certified) = run_warm(&addr, &net_path, &properties, &plan, cert_on);
    if cert_on {
        // Every property in the stream is decisively verified and the
        // computing jobs certified, so fresh runs and cache hits alike
        // must deliver a certificate.
        assert_eq!(
            certified,
            plan.queries(),
            "certified submissions must all carry a certificate"
        );
    } else {
        assert_eq!(certified, 0, "unrequested certificates were delivered");
    }
    let mut control = Client::connect(&addr).expect("control connect");
    let stats = control
        .request("{\"request\": \"stats\"}")
        .expect("stats request");
    let drained = control
        .request("{\"request\": \"drain\"}")
        .expect("drain request");
    assert_eq!(
        drained.f64_field("lost").expect("lost") as i64,
        0,
        "daemon lost jobs during drain"
    );
    handle.join();

    let cold_s = run_cold(&net_path, &prop_paths, &plan);
    let speedup = cold_s / warm_s;

    println!("server loadgen ({}):", if smoke { "smoke" } else { "full" });
    println!(
        "  {} queries ({} distinct x {} repeats), {} workers, {} clients",
        plan.queries(),
        plan.distinct,
        plan.repeats,
        plan.workers,
        plan.clients,
    );
    println!(
        "  warm {:.3}s ({:.1} q/s)   cold {:.3}s ({:.1} q/s)   speedup {:.2}x",
        warm_s,
        plan.queries() as f64 / warm_s,
        cold_s,
        plan.queries() as f64 / cold_s,
        speedup,
    );
    println!(
        "  cache: {} hits / {} misses",
        stats.usize_field("cache_hits").expect("cache_hits"),
        stats.usize_field("cache_misses").expect("cache_misses"),
    );
    if let Some(fault_plan) = &fault_plan {
        let deaths = stats.usize_field("worker_deaths").expect("worker_deaths");
        let requeued = stats.usize_field("requeued").expect("requeued");
        assert_eq!(
            fault_plan.worker_kills_fired(),
            2,
            "both scheduled worker kills must fire"
        );
        assert!(
            deaths >= 2 && requeued >= 2,
            "supervisor must log the injected deaths: deaths={deaths} requeued={requeued}"
        );
        println!(
            "  faults: {deaths} worker deaths, {requeued} requeued, every query answered"
        );
    }

    if cert_on {
        println!("  certificates: {certified}/{} verdicts certified", plan.queries());
    }

    let json = render_json(&plan, smoke, warm_s, cold_s, certified, &stats);
    validate_json(&json);
    std::fs::write(&out_path, &json).expect("write benchmark JSON");
    println!("wrote {out_path}");
    let _ = std::fs::remove_dir_all(&dir);

    // Fault runs pay for journal fsyncs and worker respawns; only the
    // clean configuration is held to the throughput bar.
    if !smoke && !faults_on {
        assert!(
            speedup >= 2.0,
            "warm/cold speedup regressed below 2x: {speedup:.2}x"
        );
    }
}
