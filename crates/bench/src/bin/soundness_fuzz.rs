//! Randomized soundness fuzzing: cross-check Charon against concrete
//! sampling, gradient attack, and the complete solver on random networks
//! and properties. A reproduction of a verifier is only as good as its
//! soundness story; this binary is the confidence tool.
//!
//! Environment: `CHARON_FUZZ_CASES` (default 50), `CHARON_BENCH_SEED`.

use std::time::{Duration, Instant};

use charon::{RobustnessProperty, Verdict, Verifier};
use complete::{CompleteSolver, Decision};
use domains::Bounds;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let cases: usize = std::env::var("CHARON_FUZZ_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(50);
    let seed: u64 = std::env::var("CHARON_BENCH_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0);
    println!("== soundness fuzz: {cases} random cases (seed {seed}) ==");

    let mut rng = StdRng::seed_from_u64(seed);
    let mut verified = 0usize;
    let mut refuted = 0usize;
    let mut budget = 0usize;
    let mut solver_checked = 0usize;
    let mut discrepancies = 0usize;
    let start = Instant::now();

    for case in 0..cases {
        let inputs = rng.gen_range(2..5);
        let width = rng.gen_range(4..10);
        let depth = rng.gen_range(1..4);
        let classes = rng.gen_range(2..5);
        let net = nn::train::random_mlp(inputs, &vec![width; depth], classes, seed ^ case as u64);
        let center: Vec<f64> = (0..inputs).map(|_| rng.gen_range(-0.7..0.7)).collect();
        let eps = rng.gen_range(0.02..0.6);
        let region = Bounds::linf_ball(&center, eps, None);
        let target = net.classify(&center);
        let property = RobustnessProperty::new(region.clone(), target);

        let mut verifier = Verifier::default();
        verifier.config_mut().timeout = Duration::from_secs(10);
        let verdict = verifier.verify(&net, &property);

        match &verdict {
            Verdict::Verified => {
                verified += 1;
                // 1. Dense sampling must find no violation.
                for _ in 0..500 {
                    let x = region.sample(&mut rng);
                    if net.classify(&x) != target {
                        discrepancies += 1;
                        println!("case {case}: UNSOUND — sampled violation in verified region");
                        break;
                    }
                }
                // 2. Independent attack with a different seed.
                let attack = attack::Minimizer::new(!seed ^ case as u64)
                    .with_restarts(4)
                    .minimize(&net, &region, target);
                if attack.objective <= 0.0 {
                    discrepancies += 1;
                    println!("case {case}: UNSOUND — attack found violation after Verified");
                }
                // 3. Complete solver agreement (when it finishes).
                let deadline = Instant::now() + Duration::from_secs(5);
                match CompleteSolver::default().decide(&net, &region, target, deadline) {
                    Decision::Proved => solver_checked += 1,
                    Decision::Violated(_) => {
                        discrepancies += 1;
                        println!("case {case}: UNSOUND — solver refutes a Verified property");
                    }
                    Decision::Budget => {}
                }
            }
            Verdict::Refuted(cex) => {
                refuted += 1;
                if !region.contains(&cex.point) {
                    discrepancies += 1;
                    println!("case {case}: BAD CEX — point outside region");
                }
                if net.objective(&cex.point, target) > 1e-9 {
                    discrepancies += 1;
                    println!("case {case}: BAD CEX — not a δ-counterexample");
                }
            }
            Verdict::ResourceLimit => budget += 1,
        }
    }

    println!(
        "\nverified={verified} refuted={refuted} budget={budget} solver_confirmed={solver_checked}"
    );
    println!("discrepancies={discrepancies} in {:?}", start.elapsed());
    if discrepancies > 0 {
        std::process::exit(1);
    }
    println!("all checks passed");
}
