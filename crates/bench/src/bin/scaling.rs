//! Scaling study: how solve time and decision rate change with network
//! depth for each tool.
//!
//! The paper's Figures 7–13 show this indirectly (3x100 vs 6x100 vs
//! 9x200); this binary isolates the trend on a single dataset family by
//! sweeping depth at fixed width. The expected shape: AI2's single-pass
//! cost grows mildly but its precision collapses with depth; Reluplex's
//! cost explodes with unstable-neuron count; Charon degrades gracefully
//! because counterexample search is depth-insensitive and splitting
//! regains precision.

use std::time::Instant;

use bench::{run_suite, NetworkSuite, Scale, Summary, Tool, ToolKind};
use data::properties::brightening_suite;
use data::zoo::ZooNetwork;
use nn::train::{random_mlp, train_classifier, TrainConfig};

fn main() {
    let scale = Scale::from_env();
    println!(
        "== Scaling study: depth sweep at width 32 ({} props, {:?} timeout) ==",
        scale.props_per_network, scale.timeout
    );

    let data = data::images::mnist_like(500, scale.seed);
    let (train, eval) = data.split(400);

    for depth in [2usize, 4, 6, 8] {
        let t = Instant::now();
        let mut net = random_mlp(train.input_dim(), &vec![32; depth - 1], 10, scale.seed);
        let tc = TrainConfig {
            epochs: 40,
            seed: scale.seed,
            ..TrainConfig::default()
        };
        let acc = train_classifier(&mut net, &train.images, &train.labels, &tc);
        let benchmarks =
            brightening_suite(&net, &eval, &[0.75, 0.6, 0.45], scale.props_per_network);
        println!(
            "\n[depth {depth}] trained in {:.1?} (acc {acc:.2}); {} benchmarks",
            t.elapsed(),
            benchmarks.len()
        );
        let suite = NetworkSuite {
            which: ZooNetwork::Mnist3x32, // label only; net is custom
            net,
            accuracy: acc,
            benchmarks,
        };
        for kind in [
            ToolKind::Charon,
            ToolKind::Ai2Zonotope,
            ToolKind::ReluVal,
            ToolKind::Reluplex,
        ] {
            let runs = run_suite(&Tool::new(kind), &suite, &scale);
            let s = Summary::from_runs(&runs);
            println!(
                "  {:<14} solved={:>3}/{:<3} (verified {:>3} falsified {:>3}) solved_time={:.2}s",
                kind.name(),
                s.solved(),
                s.total(),
                s.verified,
                s.falsified,
                s.solved_time.as_secs_f64()
            );
        }
    }
}
