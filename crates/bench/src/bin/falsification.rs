//! §7.3: impact of counterexample search — falsification counts.
//!
//! The paper reports that of 585 fully-connected benchmarks, Charon
//! falsifies 123, Reluplex falsifies 1, and ReluVal falsifies 0. This
//! binary reproduces the comparison (plus the Charon-NoCex ablation,
//! which shows how much of Charon's falsification power comes from the
//! gradient-based search).

use baselines::ToolVerdict;
use bench::{build_suite, run_suite, Scale, Tool, ToolKind};
use data::zoo::ZooNetwork;

fn main() {
    let scale = Scale::from_env();
    println!(
        "== Falsification comparison (§7.3) ({} props, {:?} timeout) ==",
        scale.props_per_network, scale.timeout
    );

    let tools = [
        ToolKind::Charon,
        ToolKind::CharonNoCex,
        ToolKind::Reluplex,
        ToolKind::ReluVal,
    ];
    let mut falsified = vec![0usize; tools.len()];
    let mut total = 0usize;

    for which in ZooNetwork::FULLY_CONNECTED {
        let suite = build_suite(which, &scale);
        total += suite.benchmarks.len();
        for (t, kind) in tools.iter().enumerate() {
            let runs = run_suite(&Tool::new(*kind), &suite, &scale);
            falsified[t] += runs
                .iter()
                .filter(|r| matches!(r.verdict, ToolVerdict::Falsified(_)))
                .count();
        }
    }

    println!("\nBenchmarks: {total}");
    println!(
        "  {:<14} falsified={:>4}  (paper: 123/585)",
        "Charon", falsified[0]
    );
    println!(
        "  {:<14} falsified={:>4}  (ablation: no gradient search)",
        "Charon-NoCex", falsified[1]
    );
    println!(
        "  {:<14} falsified={:>4}  (paper: 1/585)",
        "Reluplex", falsified[2]
    );
    println!(
        "  {:<14} falsified={:>4}  (paper: 0/585)",
        "ReluVal", falsified[3]
    );
}
