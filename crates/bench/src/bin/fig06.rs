//! Figure 6: summary of results for AI2 and Charon across all benchmarks.
//!
//! Reproduces the aggregate verified / falsified / timeout / unknown
//! percentages over the full 7-network suite for Charon, AI2-Zonotope,
//! and AI2-Bounded64.

use bench::{build_suite, print_summary_row, run_suite, write_csv, Scale, Summary, Tool, ToolKind};
use data::zoo::ZooNetwork;

fn main() {
    let scale = Scale::from_env();
    println!(
        "== Figure 6: summary over all networks ({} props/network, {:?} timeout) ==",
        scale.props_per_network, scale.timeout
    );

    let tools = [
        ToolKind::Charon,
        ToolKind::Ai2Zonotope,
        ToolKind::Ai2Bounded64,
    ];
    let mut totals: Vec<Summary> = vec![Summary::default(); tools.len()];
    let mut csv_rows: Vec<(String, usize, bench::ToolRun)> = Vec::new();
    // Aggregate per-phase engine metrics over every Charon run so the
    // figure also answers *where* the time went (see EXPERIMENTS.md,
    // "Profiling the gap").
    let mut charon_metrics = charon::Metrics::default();

    for which in ZooNetwork::ALL {
        let suite = build_suite(which, &scale);
        println!(
            "\n[{}] ({}; {} benchmarks, test accuracy {:.2})",
            suite.which.name(),
            suite.which.paper_name(),
            suite.benchmarks.len(),
            suite.accuracy
        );
        for (t, kind) in tools.iter().enumerate() {
            let runs = run_suite(&Tool::new(*kind), &suite, &scale);
            let summary = Summary::from_runs(&runs);
            print_summary_row(kind.name(), &summary);
            merge(&mut totals[t], &summary);
            for (i, run) in runs.into_iter().enumerate() {
                if *kind == ToolKind::Charon {
                    if let Some(m) = &run.metrics {
                        charon_metrics.merge(m);
                    }
                }
                csv_rows.push((format!("{}/{}", kind.name(), which.name()), i, run));
            }
        }
    }
    let borrowed: Vec<(String, usize, &bench::ToolRun)> = csv_rows
        .iter()
        .map(|(t, i, r)| (t.clone(), *i, r))
        .collect();
    if let Some(path) = write_csv("fig06", &borrowed) {
        println!("\n(raw results written to {})", path.display());
    }
    if let Some(path) = write_metrics_json(&charon_metrics) {
        println!("(charon phase metrics written to {})", path.display());
    }

    println!("\n== Aggregate (paper Figure 6) ==");
    for (t, kind) in tools.iter().enumerate() {
        print_summary_row(kind.name(), &totals[t]);
    }
    let charon = &totals[0];
    let bounded = &totals[1 + 1];
    let zonotope = &totals[1];
    if bounded.solved() > 0 {
        println!(
            "\nCharon solves {:.2}x the benchmarks of AI2-Bounded64 (paper: +59.7%)",
            charon.solved() as f64 / bounded.solved() as f64
        );
    }
    if zonotope.solved() > 0 {
        println!(
            "Charon solves {:.2}x the benchmarks of AI2-Zonotope (paper: +84.7%)",
            charon.solved() as f64 / zonotope.solved() as f64
        );
    }
}

/// Writes the aggregated Charon metrics as JSON under `bench_out/`,
/// using the same hand-rolled encoding as the trace events. Returns
/// `None` instead of aborting when the filesystem is read-only.
fn write_metrics_json(metrics: &charon::Metrics) -> Option<std::path::PathBuf> {
    let dir = std::path::Path::new("bench_out");
    std::fs::create_dir_all(dir).ok()?;
    let path = dir.join("fig06_metrics.json");
    let json = format!(
        "{{\"schema\": \"fig06-metrics-v1\", \"tool\": \"Charon\", \"metrics\": {}}}\n",
        metrics.to_json()
    );
    std::fs::write(&path, json).ok()?;
    Some(path)
}

fn merge(into: &mut Summary, from: &Summary) {
    into.verified += from.verified;
    into.falsified += from.falsified;
    into.timeout += from.timeout;
    into.unknown += from.unknown;
    into.unsupported += from.unsupported;
    into.total_time += from.total_time;
    into.solved_time += from.solved_time;
}
