//! Robustness-radius sweep: verified / falsified fractions as the L∞
//! perturbation budget ε grows.
//!
//! This is the classic "robustness curve" view of a verifier: at tiny ε
//! everything verifies, at large ε everything falsifies, and the
//! interesting band in between is where tools differentiate. The paper
//! uses brightening attacks instead of ε-balls (§7.1); this binary adds
//! the ε-ball view over the same networks as an extension experiment.

use bench::{run_suite, NetworkSuite, Scale, Summary, Tool, ToolKind};
use data::properties::linf_property;
use data::zoo::{build, ZooConfig, ZooNetwork};

fn main() {
    let scale = Scale::from_env();
    println!(
        "== epsilon sweep on mnist-3x32 ({} props per epsilon, {:?} timeout) ==",
        scale.props_per_network, scale.timeout
    );

    let config = ZooConfig {
        seed: scale.seed,
        ..ZooConfig::default()
    };
    let (net, accuracy) = build(ZooNetwork::Mnist3x32, &config);
    println!("network accuracy: {accuracy:.2}\n");
    let eval = ZooNetwork::Mnist3x32.dataset(scale.props_per_network + 20, 4242);

    println!(
        "{:>8} | {:>22} | {:>22}",
        "epsilon", "Charon (ver/fal/to)", "AI2-Zonotope (ver/unk)"
    );
    for eps in [0.005, 0.01, 0.02, 0.04, 0.08, 0.16] {
        let benchmarks: Vec<data::properties::Benchmark> = eval
            .images
            .iter()
            .zip(eval.labels.iter())
            .filter(|(img, &label)| net.classify(img) == label)
            .take(scale.props_per_network)
            .enumerate()
            .map(|(i, (img, _))| data::properties::Benchmark {
                property: linf_property(&net, img, eps),
                image_index: i,
                tau: eps, // reuse the provenance slot for ε
            })
            .collect();
        let suite = NetworkSuite {
            which: ZooNetwork::Mnist3x32,
            net: net.clone(),
            accuracy,
            benchmarks,
        };
        let charon = Summary::from_runs(&run_suite(&Tool::new(ToolKind::Charon), &suite, &scale));
        let ai2 = Summary::from_runs(&run_suite(
            &Tool::new(ToolKind::Ai2Zonotope),
            &suite,
            &scale,
        ));
        println!(
            "{eps:>8.3} | {:>7}/{:>3}/{:>3}        | {:>7}/{:>3}",
            charon.verified, charon.falsified, charon.timeout, ai2.verified, ai2.unknown
        );
    }
    println!("\nExpected shape: verified monotonically falls and falsified rises");
    println!("with epsilon; the AI2 gap is widest in the transition band.");
}
