//! Shared harness for the experiment binaries.
//!
//! Each figure of the paper's evaluation (§7) has a binary in `src/bin/`
//! that builds benchmark suites from the [`data`] crate, drives the tools
//! through the uniform [`Tool`] interface, and prints the table/series the
//! paper reports. Scale knobs are environment variables so the default run
//! finishes in minutes while `CHARON_BENCH_PROPS`/`CHARON_BENCH_TIMEOUT_MS`
//! can push towards paper-sized runs.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use baselines::ai2::Ai2;
use baselines::reluplex::Reluplex;
use baselines::reluval::ReluVal;
use baselines::ToolVerdict;
use charon::policy::{FixedPolicy, LinearPolicy, Policy};
use charon::{Verdict, Verifier, VerifierConfig};
use data::properties::{brightening_suite, Benchmark};
use data::zoo::{build, ZooConfig, ZooNetwork};
use nn::Network;
use parking_lot::Mutex;

/// Benchmark-scale configuration, read from the environment.
#[derive(Debug, Clone)]
pub struct Scale {
    /// Properties per network (paper: ~100; default here: 10).
    pub props_per_network: usize,
    /// Per-benchmark time limit (paper: 1000 s; default here: 1 s).
    pub timeout: Duration,
    /// Worker threads for running benchmarks in parallel.
    pub threads: usize,
    /// Seed for everything.
    pub seed: u64,
}

impl Scale {
    /// Reads the scale from `CHARON_BENCH_PROPS`,
    /// `CHARON_BENCH_TIMEOUT_MS`, `CHARON_BENCH_THREADS`, and
    /// `CHARON_BENCH_SEED`.
    pub fn from_env() -> Self {
        let get = |k: &str, d: u64| -> u64 {
            std::env::var(k)
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(d)
        };
        Scale {
            props_per_network: get("CHARON_BENCH_PROPS", 10) as usize,
            timeout: Duration::from_millis(get("CHARON_BENCH_TIMEOUT_MS", 1000)),
            threads: get("CHARON_BENCH_THREADS", 0) as usize,
            seed: get("CHARON_BENCH_SEED", 0),
        }
    }

    /// Resolved thread count.
    pub fn effective_threads(&self) -> usize {
        if self.threads == 0 {
            std::thread::available_parallelism().map_or(4, |n| n.get())
        } else {
            self.threads
        }
    }
}

/// The tools under comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ToolKind {
    /// Charon with the default (hand-initialized) linear policy.
    Charon,
    /// Charon with counterexample search disabled (RQ2 ablation).
    CharonNoCex,
    /// Charon with a fixed plain-zonotope domain (RQ3 ablation).
    CharonFixedZonotope,
    /// Charon with a fixed interval domain (RQ3 ablation).
    CharonFixedInterval,
    /// Charon with a fixed DeepPoly domain (§9 extension ablation).
    CharonDeepPoly,
    /// Charon with the Lipschitz pre-filter enabled (extension ablation).
    CharonLipschitz,
    /// AI2 with the plain zonotope domain.
    Ai2Zonotope,
    /// AI2 with the 64-disjunct powerset of zonotopes.
    Ai2Bounded64,
    /// ReluVal (symbolic intervals + bisection).
    ReluVal,
    /// The Reluplex-style complete solver.
    Reluplex,
}

impl ToolKind {
    /// Display name matching the paper's figures.
    pub fn name(&self) -> &'static str {
        match self {
            ToolKind::Charon => "Charon",
            ToolKind::CharonNoCex => "Charon-NoCex",
            ToolKind::CharonFixedZonotope => "Charon-FixedZ",
            ToolKind::CharonFixedInterval => "Charon-FixedI",
            ToolKind::CharonDeepPoly => "Charon-DeepPoly",
            ToolKind::CharonLipschitz => "Charon-Lipschitz",
            ToolKind::Ai2Zonotope => "AI2-Zonotope",
            ToolKind::Ai2Bounded64 => "AI2-Bounded64",
            ToolKind::ReluVal => "ReluVal",
            ToolKind::Reluplex => "Reluplex",
        }
    }
}

/// A tool instance ready to run benchmarks.
#[derive(Clone)]
pub struct Tool {
    kind: ToolKind,
    policy: Arc<dyn Policy>,
}

impl Tool {
    /// Creates a tool of the given kind with Charon's default policy
    /// where applicable.
    pub fn new(kind: ToolKind) -> Self {
        Tool {
            kind,
            policy: Arc::new(LinearPolicy::default()),
        }
    }

    /// Creates a Charon tool with an explicit (e.g. learned) policy.
    pub fn charon_with_policy(policy: Arc<dyn Policy>) -> Self {
        Tool {
            kind: ToolKind::Charon,
            policy,
        }
    }

    /// The tool's kind.
    pub fn kind(&self) -> ToolKind {
        self.kind
    }

    /// Runs the tool on one benchmark with a timeout, returning the
    /// verdict and elapsed wall-clock time. Charon variants also surface
    /// the engine's per-phase [`charon::Metrics`]; baselines report
    /// `None`.
    pub fn run(&self, net: &Network, benchmark: &Benchmark, timeout: Duration) -> ToolRun {
        let start = Instant::now();
        let (verdict, metrics) = match self.kind {
            ToolKind::Charon => self.run_charon(net, benchmark, timeout, true, None),
            ToolKind::CharonNoCex => self.run_charon(net, benchmark, timeout, false, None),
            ToolKind::CharonFixedZonotope => self.run_charon(
                net,
                benchmark,
                timeout,
                true,
                Some(domains::DomainChoice::zonotope()),
            ),
            ToolKind::CharonFixedInterval => self.run_charon(
                net,
                benchmark,
                timeout,
                true,
                Some(domains::DomainChoice::interval()),
            ),
            ToolKind::CharonLipschitz => {
                let config = VerifierConfig {
                    timeout,
                    lipschitz_prefilter: true,
                    ..VerifierConfig::default()
                };
                let verifier = Verifier::new(Arc::clone(&self.policy), config);
                run_verifier(&verifier, net, benchmark)
            }
            ToolKind::CharonDeepPoly => {
                let config = VerifierConfig {
                    timeout,
                    ..VerifierConfig::default()
                };
                let policy = Arc::new(charon::policy::FixedPolicy::with_selection(
                    charon::policy::DomainSelection::DeepPoly,
                ));
                run_verifier(&Verifier::new(policy, config), net, benchmark)
            }
            ToolKind::Ai2Zonotope => {
                (Ai2::zonotope().analyze(net, &benchmark.property, timeout), None)
            }
            ToolKind::Ai2Bounded64 => {
                (Ai2::bounded64().analyze(net, &benchmark.property, timeout), None)
            }
            ToolKind::ReluVal => (ReluVal::default().analyze(net, &benchmark.property, timeout), None),
            ToolKind::Reluplex => {
                (Reluplex::default().analyze(net, &benchmark.property, timeout), None)
            }
        };
        ToolRun {
            verdict,
            elapsed: start.elapsed(),
            metrics,
        }
    }

    fn run_charon(
        &self,
        net: &Network,
        benchmark: &Benchmark,
        timeout: Duration,
        cex_search: bool,
        fixed_domain: Option<domains::DomainChoice>,
    ) -> (ToolVerdict, Option<charon::Metrics>) {
        let config = VerifierConfig {
            timeout,
            counterexample_search: cex_search,
            ..VerifierConfig::default()
        };
        let policy: Arc<dyn Policy> = match fixed_domain {
            Some(choice) => Arc::new(FixedPolicy::new(choice)),
            None => Arc::clone(&self.policy),
        };
        run_verifier(&Verifier::new(policy, config), net, benchmark)
    }
}

/// Drives one verifier run and maps the outcome to the uniform tool
/// verdict, keeping the engine metrics alongside. An engine failure is a
/// non-answer for comparison purposes, not a harness abort.
fn run_verifier(
    verifier: &Verifier,
    net: &Network,
    benchmark: &Benchmark,
) -> (ToolVerdict, Option<charon::Metrics>) {
    match verifier.try_verify_run(net, &benchmark.property) {
        Ok(run) => {
            let verdict = match run.verdict {
                Verdict::Verified => ToolVerdict::Verified,
                Verdict::Refuted(cex) => ToolVerdict::Falsified(cex.point),
                Verdict::ResourceLimit => ToolVerdict::Timeout,
            };
            (verdict, Some(run.stats.metrics))
        }
        Err(_) => (ToolVerdict::Unknown, None),
    }
}

/// One benchmark execution result.
#[derive(Debug, Clone)]
pub struct ToolRun {
    /// The tool's verdict.
    pub verdict: ToolVerdict,
    /// Wall-clock time taken.
    pub elapsed: Duration,
    /// Engine metrics for Charon variants, `None` for baselines.
    pub metrics: Option<charon::Metrics>,
}

/// A network with its benchmark suite.
pub struct NetworkSuite {
    /// Which zoo network this is.
    pub which: ZooNetwork,
    /// The trained network.
    pub net: Network,
    /// Held-out accuracy (for reporting).
    pub accuracy: f64,
    /// The generated benchmarks.
    pub benchmarks: Vec<Benchmark>,
}

/// Builds the benchmark suite for one zoo network, following §7.1:
/// brightening attacks at several thresholds over correctly-classified
/// evaluation images.
pub fn build_suite(which: ZooNetwork, scale: &Scale) -> NetworkSuite {
    let config = ZooConfig {
        seed: scale.seed,
        ..ZooConfig::default()
    };
    let (net, accuracy) = build(which, &config);
    let eval = which.dataset(200, scale.seed.wrapping_add(101));
    let taus = [0.75, 0.6, 0.45];
    let benchmarks = brightening_suite(&net, &eval, &taus, scale.props_per_network);
    NetworkSuite {
        which,
        net,
        accuracy,
        benchmarks,
    }
}

/// Runs one tool over a whole suite in parallel, returning per-benchmark
/// results in order.
pub fn run_suite(tool: &Tool, suite: &NetworkSuite, scale: &Scale) -> Vec<ToolRun> {
    let next = AtomicUsize::new(0);
    let results: Mutex<Vec<Option<ToolRun>>> = Mutex::new(vec![None; suite.benchmarks.len()]);
    let threads = scale.effective_threads().min(suite.benchmarks.len().max(1));
    crossbeam::scope(|scope| {
        for _ in 0..threads {
            let next = &next;
            let results = &results;
            let tool = tool.clone();
            scope.spawn(move |_| loop {
                let idx = next.fetch_add(1, Ordering::Relaxed);
                if idx >= suite.benchmarks.len() {
                    return;
                }
                let run = tool.run(&suite.net, &suite.benchmarks[idx], scale.timeout);
                results.lock()[idx] = Some(run);
            });
        }
    })
    .expect("bench worker panicked");
    results
        .into_inner()
        .into_iter()
        .map(|r| r.expect("all benchmarks processed"))
        .collect()
}

/// Aggregated outcome counts for one tool on one suite.
#[derive(Debug, Clone, Default)]
pub struct Summary {
    /// Benchmarks verified.
    pub verified: usize,
    /// Benchmarks falsified.
    pub falsified: usize,
    /// Benchmarks that hit the time budget.
    pub timeout: usize,
    /// Benchmarks finished without a decision.
    pub unknown: usize,
    /// Benchmarks the tool does not support.
    pub unsupported: usize,
    /// Total time across all benchmarks.
    pub total_time: Duration,
    /// Total time across *solved* benchmarks only.
    pub solved_time: Duration,
}

impl Summary {
    /// Builds a summary from raw runs.
    pub fn from_runs(runs: &[ToolRun]) -> Self {
        let mut s = Summary::default();
        for run in runs {
            s.total_time += run.elapsed;
            match &run.verdict {
                ToolVerdict::Verified => {
                    s.verified += 1;
                    s.solved_time += run.elapsed;
                }
                ToolVerdict::Falsified(_) => {
                    s.falsified += 1;
                    s.solved_time += run.elapsed;
                }
                ToolVerdict::Timeout => s.timeout += 1,
                ToolVerdict::Unknown => s.unknown += 1,
                ToolVerdict::Unsupported => s.unsupported += 1,
            }
        }
        s
    }

    /// Number of solved (decided) benchmarks.
    pub fn solved(&self) -> usize {
        self.verified + self.falsified
    }

    /// Total number of benchmarks.
    pub fn total(&self) -> usize {
        self.solved() + self.timeout + self.unknown + self.unsupported
    }
}

/// Prints a cactus series (the Figures 7–14 format): for the k-th fastest
/// solved benchmark, the cumulative time spent so far.
pub fn print_cactus(label: &str, runs: &[ToolRun]) {
    let mut times: Vec<f64> = runs
        .iter()
        .filter(|r| r.verdict.is_decided())
        .map(|r| r.elapsed.as_secs_f64())
        .collect();
    times.sort_by(f64::total_cmp);
    let mut cumulative = 0.0;
    print!("  {label:<14} ");
    if times.is_empty() {
        println!("(no benchmarks solved)");
        return;
    }
    let series: Vec<String> = times
        .iter()
        .map(|t| {
            cumulative += t;
            format!("{cumulative:.2}")
        })
        .collect();
    println!(
        "solved={:<3} cumulative_s=[{}]",
        times.len(),
        series.join(", ")
    );
}

/// Writes per-benchmark results as CSV (`tool,index,verdict,seconds`)
/// under `bench_out/<name>.csv`, creating the directory as needed.
/// Returns the path written, or `None` if writing failed (benchmarks
/// should not abort over a read-only filesystem).
pub fn write_csv(name: &str, rows: &[(String, usize, &ToolRun)]) -> Option<std::path::PathBuf> {
    let dir = std::path::Path::new("bench_out");
    std::fs::create_dir_all(dir).ok()?;
    let path = dir.join(format!("{name}.csv"));
    let mut out = String::from("tool,benchmark,verdict,seconds\n");
    for (tool, idx, run) in rows {
        out.push_str(&format!(
            "{tool},{idx},{},{:.6}\n",
            run.verdict,
            run.elapsed.as_secs_f64()
        ));
    }
    std::fs::write(&path, out).ok()?;
    Some(path)
}

/// Prints a summary row (the Figure 6 format).
pub fn print_summary_row(label: &str, summary: &Summary) {
    let total = summary.total().max(1) as f64;
    println!(
        "  {label:<14} verified={:>3} ({:>5.1}%)  falsified={:>3} ({:>5.1}%)  timeout={:>3} ({:>5.1}%)  unknown={:>3} ({:>5.1}%)  solved_time={:.2}s",
        summary.verified,
        100.0 * summary.verified as f64 / total,
        summary.falsified,
        100.0 * summary.falsified as f64 / total,
        summary.timeout,
        100.0 * summary.timeout as f64 / total,
        summary.unknown,
        100.0 * summary.unknown as f64 / total,
        summary.solved_time.as_secs_f64(),
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_scale() -> Scale {
        Scale {
            props_per_network: 3,
            timeout: Duration::from_millis(800),
            threads: 2,
            seed: 0,
        }
    }

    #[test]
    fn suite_builds_with_requested_size() {
        let suite = build_suite(ZooNetwork::Mnist3x32, &tiny_scale());
        assert_eq!(suite.benchmarks.len(), 3);
        assert!(suite.accuracy > 0.7);
    }

    #[test]
    fn charon_and_ai2_run_on_suite() {
        let scale = tiny_scale();
        let suite = build_suite(ZooNetwork::Mnist3x32, &scale);
        let charon_runs = run_suite(&Tool::new(ToolKind::Charon), &suite, &scale);
        let ai2_runs = run_suite(&Tool::new(ToolKind::Ai2Zonotope), &suite, &scale);
        assert_eq!(charon_runs.len(), 3);
        assert_eq!(ai2_runs.len(), 3);
        // Charon is δ-complete: it never reports Unknown.
        let s = Summary::from_runs(&charon_runs);
        assert_eq!(s.unknown, 0);
        // AI2 never falsifies.
        let a = Summary::from_runs(&ai2_runs);
        assert_eq!(a.falsified, 0);
    }

    #[test]
    fn summary_counts_add_up() {
        let runs = vec![
            ToolRun {
                verdict: ToolVerdict::Verified,
                elapsed: Duration::from_millis(10),
                metrics: None,
            },
            ToolRun {
                verdict: ToolVerdict::Falsified(vec![]),
                elapsed: Duration::from_millis(20),
                metrics: None,
            },
            ToolRun {
                verdict: ToolVerdict::Timeout,
                elapsed: Duration::from_millis(30),
                metrics: None,
            },
        ];
        let s = Summary::from_runs(&runs);
        assert_eq!(s.solved(), 2);
        assert_eq!(s.total(), 3);
        assert_eq!(s.solved_time, Duration::from_millis(30));
        assert_eq!(s.total_time, Duration::from_millis(60));
    }

    #[test]
    fn write_csv_emits_rows() {
        let runs = [
            ToolRun {
                verdict: ToolVerdict::Verified,
                elapsed: Duration::from_millis(5),
                metrics: None,
            },
            ToolRun {
                verdict: ToolVerdict::Timeout,
                elapsed: Duration::from_millis(7),
                metrics: None,
            },
        ];
        let rows: Vec<(String, usize, &ToolRun)> = runs
            .iter()
            .enumerate()
            .map(|(i, r)| ("tool/net".to_string(), i, r))
            .collect();
        if let Some(path) = write_csv("test-csv", &rows) {
            let text = std::fs::read_to_string(&path).unwrap();
            assert!(text.starts_with("tool,benchmark,verdict,seconds"));
            assert!(text.contains("tool/net,0,verified,0.005"));
            assert!(text.contains("tool/net,1,timeout,0.007"));
            let _ = std::fs::remove_file(path);
        }
    }

    #[test]
    fn scale_env_defaults() {
        let s = Scale::from_env();
        assert!(s.props_per_network >= 1);
        assert!(s.timeout >= Duration::from_millis(1));
    }
}
