//! Dense vector and matrix math for the Charon reproduction.
//!
//! This crate provides the small amount of linear algebra the rest of the
//! workspace needs: a row-major [`Matrix`] type, slice-based vector
//! operations in [`ops`], and the dense factorizations ([`linalg`]) used by
//! the Gaussian-process surrogate in the Bayesian-optimization crate.
//!
//! # Examples
//!
//! ```
//! use tensor::Matrix;
//!
//! let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
//! let x = vec![1.0, 1.0];
//! assert_eq!(a.matvec(&x), vec![3.0, 7.0]);
//! ```

#![warn(missing_docs)]
// Numeric kernels in this crate co-index several arrays at once; index
// loops are clearer than zipped iterator chains there.
#![allow(clippy::needless_range_loop)]

mod matrix;

pub mod kernels;
pub mod linalg;
pub mod ops;
pub mod round;

pub use kernels::Backend;
pub use matrix::Matrix;

/// Error produced by fallible linear-algebra routines in this crate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LinalgError {
    /// The matrix was not (numerically) positive definite.
    NotPositiveDefinite,
    /// Operand dimensions were incompatible for the requested operation.
    DimensionMismatch {
        /// Dimension that was expected by the operation.
        expected: usize,
        /// Dimension that was actually supplied.
        actual: usize,
    },
}

impl std::fmt::Display for LinalgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LinalgError::NotPositiveDefinite => {
                write!(f, "matrix is not positive definite")
            }
            LinalgError::DimensionMismatch { expected, actual } => {
                write!(f, "dimension mismatch: expected {expected}, got {actual}")
            }
        }
    }
}

impl std::error::Error for LinalgError {}
