//! Dense factorizations: Cholesky decomposition and triangular solves.
//!
//! These support the Gaussian-process regression in the `bayesopt` crate,
//! which needs to solve `K x = y` for symmetric positive-definite kernel
//! matrices `K`.

use crate::{LinalgError, Matrix};

/// Lower-triangular Cholesky factor of a symmetric positive-definite matrix.
///
/// Holds `L` such that `A = L L^T`.
#[derive(Debug, Clone)]
pub struct Cholesky {
    l: Matrix,
}

impl Cholesky {
    /// Factors a symmetric positive-definite matrix.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::NotPositiveDefinite`] if a non-positive pivot
    /// is encountered, and [`LinalgError::DimensionMismatch`] if `a` is not
    /// square.
    ///
    /// ```
    /// use tensor::{Matrix, linalg::Cholesky};
    ///
    /// let a = Matrix::from_rows(&[&[4.0, 2.0], &[2.0, 3.0]]);
    /// let chol = Cholesky::factor(&a)?;
    /// let x = chol.solve(&[1.0, 1.0]);
    /// // A x should equal [1, 1]
    /// let ax = a.matvec(&x);
    /// assert!((ax[0] - 1.0).abs() < 1e-10 && (ax[1] - 1.0).abs() < 1e-10);
    /// # Ok::<(), tensor::LinalgError>(())
    /// ```
    pub fn factor(a: &Matrix) -> Result<Self, LinalgError> {
        let n = a.rows();
        if a.cols() != n {
            return Err(LinalgError::DimensionMismatch {
                expected: n,
                actual: a.cols(),
            });
        }
        let mut l = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..=i {
                let mut sum = a.get(i, j);
                for k in 0..j {
                    sum -= l.get(i, k) * l.get(j, k);
                }
                if i == j {
                    if sum <= 0.0 {
                        return Err(LinalgError::NotPositiveDefinite);
                    }
                    l.set(i, j, sum.sqrt());
                } else {
                    l.set(i, j, sum / l.get(j, j));
                }
            }
        }
        Ok(Cholesky { l })
    }

    /// The lower-triangular factor `L`.
    pub fn lower(&self) -> &Matrix {
        &self.l
    }

    /// Solves `A x = b` using the factorization.
    ///
    /// # Panics
    ///
    /// Panics if `b.len()` does not match the factored dimension.
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        let y = self.solve_lower(b);
        self.solve_lower_transpose(&y)
    }

    /// Solves `L y = b` (forward substitution).
    ///
    /// # Panics
    ///
    /// Panics if `b.len()` does not match the factored dimension.
    pub fn solve_lower(&self, b: &[f64]) -> Vec<f64> {
        let n = self.l.rows();
        assert_eq!(b.len(), n, "solve_lower: length mismatch");
        let mut y = vec![0.0; n];
        for i in 0..n {
            let mut sum = b[i];
            for k in 0..i {
                sum -= self.l.get(i, k) * y[k];
            }
            y[i] = sum / self.l.get(i, i);
        }
        y
    }

    /// Solves `L^T x = y` (backward substitution).
    ///
    /// # Panics
    ///
    /// Panics if `y.len()` does not match the factored dimension.
    pub fn solve_lower_transpose(&self, y: &[f64]) -> Vec<f64> {
        let n = self.l.rows();
        assert_eq!(y.len(), n, "solve_lower_transpose: length mismatch");
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let mut sum = y[i];
            for k in i + 1..n {
                sum -= self.l.get(k, i) * x[k];
            }
            x[i] = sum / self.l.get(i, i);
        }
        x
    }

    /// Log-determinant of the factored matrix `A`.
    pub fn log_det(&self) -> f64 {
        let n = self.l.rows();
        (0..n).map(|i| self.l.get(i, i).ln()).sum::<f64>() * 2.0
    }
}

/// Estimates the spectral norm (largest singular value) of `a` by power
/// iteration on `A^T A`.
///
/// Returns an estimate that converges from below; a small number of
/// iterations (e.g. 50) gives a good approximation for the conditioning
/// seen in practice.
pub fn spectral_norm(a: &Matrix, iterations: usize) -> f64 {
    if a.rows() == 0 || a.cols() == 0 {
        return 0.0;
    }
    let mut v = vec![1.0 / (a.cols() as f64).sqrt(); a.cols()];
    let mut sigma = 0.0;
    for _ in 0..iterations {
        let av = a.matvec(&v);
        let atav = a.matvec_transpose(&av);
        let norm = crate::ops::norm2(&atav);
        if norm < 1e-300 {
            return 0.0;
        }
        for (vi, ti) in v.iter_mut().zip(atav.iter()) {
            *vi = ti / norm;
        }
        sigma = crate::ops::norm2(&a.matvec(&v));
    }
    sigma
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn cholesky_solves_spd_system() {
        let a = Matrix::from_rows(&[&[25.0, 15.0, -5.0], &[15.0, 18.0, 0.0], &[-5.0, 0.0, 11.0]]);
        let chol = Cholesky::factor(&a).unwrap();
        let b = vec![1.0, 2.0, 3.0];
        let x = chol.solve(&b);
        let ax = a.matvec(&x);
        for (u, v) in ax.iter().zip(b.iter()) {
            assert!((u - v).abs() < 1e-10);
        }
    }

    #[test]
    fn cholesky_rejects_indefinite() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]);
        assert_eq!(
            Cholesky::factor(&a).unwrap_err(),
            LinalgError::NotPositiveDefinite
        );
    }

    #[test]
    fn cholesky_rejects_nonsquare() {
        let a = Matrix::zeros(2, 3);
        assert!(matches!(
            Cholesky::factor(&a),
            Err(LinalgError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn log_det_matches_known_value() {
        // det([[4, 0], [0, 9]]) = 36
        let a = Matrix::from_rows(&[&[4.0, 0.0], &[0.0, 9.0]]);
        let chol = Cholesky::factor(&a).unwrap();
        assert!((chol.log_det() - 36.0f64.ln()).abs() < 1e-12);
    }

    #[test]
    fn spectral_norm_of_diagonal() {
        let a = Matrix::from_rows(&[&[3.0, 0.0], &[0.0, -7.0]]);
        let s = spectral_norm(&a, 100);
        assert!((s - 7.0).abs() < 1e-6, "got {s}");
    }

    #[test]
    fn spectral_norm_bounded_by_frobenius() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert!(spectral_norm(&a, 100) <= a.norm_frobenius() + 1e-9);
    }

    #[test]
    fn cholesky_one_by_one() {
        let a = Matrix::from_rows(&[&[4.0]]);
        let chol = Cholesky::factor(&a).unwrap();
        assert_eq!(chol.solve(&[8.0]), vec![2.0]);
        assert!((chol.log_det() - 4.0f64.ln()).abs() < 1e-12);
    }

    #[test]
    fn cholesky_identity_solves_trivially() {
        let chol = Cholesky::factor(&Matrix::identity(5)).unwrap();
        let b = vec![1.0, -2.0, 3.0, -4.0, 5.0];
        assert_eq!(chol.solve(&b), b);
        assert!(chol.log_det().abs() < 1e-12);
    }

    #[test]
    fn spectral_norm_zero_matrix() {
        assert_eq!(spectral_norm(&Matrix::zeros(3, 3), 50), 0.0);
        assert_eq!(spectral_norm(&Matrix::zeros(0, 0), 50), 0.0);
    }

    proptest! {
        #[test]
        fn cholesky_roundtrip_random_spd(seed_vals in proptest::collection::vec(-1.0f64..1.0, 9)) {
            // Build SPD matrix A = B B^T + I.
            let b = Matrix::from_vec(3, 3, seed_vals);
            let mut a = b.matmul(&b.transpose());
            for i in 0..3 {
                a.set(i, i, a.get(i, i) + 1.0);
            }
            let chol = Cholesky::factor(&a).unwrap();
            let rhs = vec![1.0, -2.0, 0.5];
            let x = chol.solve(&rhs);
            let ax = a.matvec(&x);
            for (u, v) in ax.iter().zip(rhs.iter()) {
                prop_assert!((u - v).abs() < 1e-8);
            }
        }
    }
}
