//! Directed-rounding primitives for sound outward interval arithmetic.
//!
//! The IEEE-754 rounding mode cannot be switched per-operation from safe
//! Rust, so every helper here computes in the default round-to-nearest
//! mode and then steps the result one ulp outward with [`f64::next_up`] /
//! [`f64::next_down`]. The round-to-nearest result differs from the true
//! real result by strictly less than one ulp, so the stepped value is a
//! guaranteed lower (`*_down`) or upper (`*_up`) bound. The bounds are up
//! to one ulp looser than optimal directed rounding would give — the
//! certificate audit checker (crate `cert`) only needs soundness, never
//! tightness.
//!
//! All helpers propagate NaN unchanged and saturate at the infinities
//! (`next_up(INFINITY) == INFINITY`), so callers can run a whole
//! computation and check finiteness once at the end.
//!
//! # Examples
//!
//! ```
//! use tensor::round::{add_down, add_up};
//!
//! // The exact sum of the floats 0.1 and 0.2 is not representable; the
//! // directed results strictly bracket the round-to-nearest sum.
//! let lo = add_down(0.1, 0.2);
//! let hi = add_up(0.1, 0.2);
//! assert!(lo < 0.1 + 0.2 && 0.1 + 0.2 < hi);
//! ```

/// Smallest `f64` strictly greater than `x` (NaN and `INFINITY` map to
/// themselves). Thin re-export of [`f64::next_up`] so callers of this
/// module never touch raw float internals.
#[inline]
pub fn next_up(x: f64) -> f64 {
    x.next_up()
}

/// Largest `f64` strictly less than `x` (NaN and `NEG_INFINITY` map to
/// themselves). Thin re-export of [`f64::next_down`].
#[inline]
pub fn next_down(x: f64) -> f64 {
    x.next_down()
}

/// Upper bound on `a + b`: the round-to-nearest sum stepped one ulp up.
#[inline]
pub fn add_up(a: f64, b: f64) -> f64 {
    (a + b).next_up()
}

/// Lower bound on `a + b`.
#[inline]
pub fn add_down(a: f64, b: f64) -> f64 {
    (a + b).next_down()
}

/// Upper bound on `a - b`.
#[inline]
pub fn sub_up(a: f64, b: f64) -> f64 {
    (a - b).next_up()
}

/// Lower bound on `a - b`.
#[inline]
pub fn sub_down(a: f64, b: f64) -> f64 {
    (a - b).next_down()
}

/// Upper bound on `a * b`.
#[inline]
pub fn mul_up(a: f64, b: f64) -> f64 {
    (a * b).next_up()
}

/// Lower bound on `a * b`.
#[inline]
pub fn mul_down(a: f64, b: f64) -> f64 {
    (a * b).next_down()
}

/// Upper bound on `a / b`.
#[inline]
pub fn div_up(a: f64, b: f64) -> f64 {
    (a / b).next_up()
}

/// Lower bound on `a / b`.
#[inline]
pub fn div_down(a: f64, b: f64) -> f64 {
    (a / b).next_down()
}

/// Upper bound on the dot product `Σ a[i] * b[i]`, accumulating every
/// partial product and partial sum with upward rounding.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn dot_up(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot_up: length mismatch");
    let mut acc = 0.0;
    for i in 0..a.len() {
        acc = add_up(acc, mul_up(a[i], b[i]));
    }
    acc
}

/// Lower bound on the dot product `Σ a[i] * b[i]`.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn dot_down(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot_down: length mismatch");
    let mut acc = 0.0;
    for i in 0..a.len() {
        acc = add_down(acc, mul_down(a[i], b[i]));
    }
    acc
}

/// Upper bound on `Σ |a[i] * b[i]|` — the absolute dot product used to
/// propagate zonotope generator radii and error terms through an affine
/// layer.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn abs_dot_up(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "abs_dot_up: length mismatch");
    let mut acc = 0.0;
    for i in 0..a.len() {
        acc = add_up(acc, mul_up(a[i], b[i]).abs().max(mul_down(a[i], b[i]).abs()));
    }
    acc
}

/// Midpoint and outward radius of the interval `[lo, hi]`: a pair
/// `(mid, rad)` such that `[mid - rad, mid + rad] ⊇ [lo, hi]` holds in
/// exact arithmetic even though both values are rounded floats.
///
/// # Panics
///
/// Panics if `lo > hi` (NaN-tolerant: NaN inputs produce NaN outputs).
pub fn mid_rad(lo: f64, hi: f64) -> (f64, f64) {
    assert!(
        lo <= hi || lo.is_nan() || hi.is_nan(),
        "mid_rad: inverted interval [{lo}, {hi}]"
    );
    let mid = 0.5 * (lo + hi);
    // `mid` may land outside [lo, hi] only through overflow; the directed
    // subtractions below still cover both endpoints in that case because
    // they saturate at +inf.
    let rad = sub_up(hi, mid).max(sub_up(mid, lo)).max(0.0);
    (mid, rad)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn directed_results_bracket_round_to_nearest() {
        let pairs = [
            (0.1, 0.2),
            (1.0, 1e-300),
            (-3.5, 7.25),
            (1e300, 1e300),
            (-1e-308, 1e-308),
        ];
        for (a, b) in pairs {
            assert!(add_down(a, b) < a + b && a + b < add_up(a, b) || !(a + b).is_finite());
            assert!(sub_down(a, b) < a - b && a - b < sub_up(a, b));
            assert!(
                mul_down(a, b) < a * b && a * b < mul_up(a, b)
                    || a * b == 0.0
                    || !(a * b).is_finite()
            );
            assert!(div_down(a, b) < a / b && a / b < div_up(a, b));
        }
    }

    #[test]
    fn nan_propagates_and_infinity_saturates() {
        assert!(add_up(f64::NAN, 1.0).is_nan());
        assert_eq!(add_up(f64::INFINITY, 1.0), f64::INFINITY);
        assert_eq!(sub_down(f64::NEG_INFINITY, 1.0), f64::NEG_INFINITY);
        assert_eq!(next_up(f64::INFINITY), f64::INFINITY);
        assert_eq!(next_down(f64::NEG_INFINITY), f64::NEG_INFINITY);
    }

    #[test]
    fn dot_bounds_enclose_the_nearest_dot() {
        let a = [0.1, -0.7, 3.25, 1e-12];
        let b = [2.5, 0.3, -0.001, 1e12];
        let nearest: f64 = a.iter().zip(&b).map(|(x, y)| x * y).sum();
        assert!(dot_down(&a, &b) < nearest && nearest < dot_up(&a, &b));
        let abs_nearest: f64 = a.iter().zip(&b).map(|(x, y)| (x * y).abs()).sum();
        assert!(abs_dot_up(&a, &b) > abs_nearest - 1e-9);
        assert!(abs_dot_up(&a, &b) >= abs_nearest);
    }

    #[test]
    fn mid_rad_covers_the_interval() {
        for (lo, hi) in [(0.1, 0.3), (-1e300, 1e300), (5.0, 5.0), (-0.2, -0.1)] {
            let (mid, rad) = mid_rad(lo, hi);
            assert!(mid - rad <= lo, "lo uncovered: [{lo}, {hi}]");
            assert!(mid + rad >= hi, "hi uncovered: [{lo}, {hi}]");
            assert!(rad >= 0.0);
        }
    }

    #[test]
    #[should_panic(expected = "inverted interval")]
    fn mid_rad_rejects_inverted_intervals() {
        mid_rad(1.0, 0.0);
    }
}
