//! Slice-based vector operations.
//!
//! Vectors throughout the workspace are plain `Vec<f64>` / `&[f64]`; this
//! module collects the handful of BLAS-level-1 style helpers they need.

/// Dot product of two equal-length slices.
///
/// # Panics
///
/// Panics if the slices have different lengths.
///
/// ```
/// assert_eq!(tensor::ops::dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
/// ```
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot: length mismatch");
    a.iter().zip(b.iter()).map(|(x, y)| x * y).sum()
}

/// Computes `y += alpha * x` in place.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "axpy: length mismatch");
    for (yi, xi) in y.iter_mut().zip(x.iter()) {
        *yi += alpha * xi;
    }
}

/// Element-wise difference `a - b` as a new vector.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn sub(a: &[f64], b: &[f64]) -> Vec<f64> {
    assert_eq!(a.len(), b.len(), "sub: length mismatch");
    a.iter().zip(b.iter()).map(|(x, y)| x - y).collect()
}

/// Element-wise sum `a + b` as a new vector.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn add(a: &[f64], b: &[f64]) -> Vec<f64> {
    assert_eq!(a.len(), b.len(), "add: length mismatch");
    a.iter().zip(b.iter()).map(|(x, y)| x + y).collect()
}

/// Scales a vector by `alpha`, returning a new vector.
pub fn scale(alpha: f64, a: &[f64]) -> Vec<f64> {
    a.iter().map(|x| alpha * x).collect()
}

/// Euclidean (L2) norm.
pub fn norm2(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

/// Infinity norm (maximum absolute component).
pub fn norm_inf(a: &[f64]) -> f64 {
    a.iter().fold(0.0, |m, x| m.max(x.abs()))
}

/// Euclidean distance between two points.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn distance(a: &[f64], b: &[f64]) -> f64 {
    norm2(&sub(a, b))
}

/// Index of the maximum element. Ties resolve to the smallest index.
///
/// # Panics
///
/// Panics if the slice is empty.
pub fn argmax(a: &[f64]) -> usize {
    assert!(!a.is_empty(), "argmax of empty slice");
    let mut best = 0;
    for (i, v) in a.iter().enumerate().skip(1) {
        if *v > a[best] {
            best = i;
        }
    }
    best
}

/// Index of the minimum element. Ties resolve to the smallest index.
///
/// # Panics
///
/// Panics if the slice is empty.
pub fn argmin(a: &[f64]) -> usize {
    assert!(!a.is_empty(), "argmin of empty slice");
    let mut best = 0;
    for (i, v) in a.iter().enumerate().skip(1) {
        if *v < a[best] {
            best = i;
        }
    }
    best
}

/// Clamps every component of `x` into `[lo[i], hi[i]]` in place.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn clamp_box(x: &mut [f64], lo: &[f64], hi: &[f64]) {
    assert_eq!(x.len(), lo.len(), "clamp_box: length mismatch");
    assert_eq!(x.len(), hi.len(), "clamp_box: length mismatch");
    for i in 0..x.len() {
        x[i] = x[i].clamp(lo[i], hi[i]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn axpy_accumulates() {
        let mut y = vec![1.0, 1.0];
        axpy(2.0, &[1.0, -1.0], &mut y);
        assert_eq!(y, vec![3.0, -1.0]);
    }

    #[test]
    fn argmax_prefers_first_on_tie() {
        assert_eq!(argmax(&[1.0, 3.0, 3.0]), 1);
        assert_eq!(argmin(&[1.0, -3.0, -3.0]), 1);
    }

    #[test]
    fn clamp_box_clamps() {
        let mut x = vec![-2.0, 0.5, 9.0];
        clamp_box(&mut x, &[0.0, 0.0, 0.0], &[1.0, 1.0, 1.0]);
        assert_eq!(x, vec![0.0, 0.5, 1.0]);
    }

    proptest! {
        #[test]
        fn dot_is_commutative(a in proptest::collection::vec(-1e3f64..1e3, 1..16)) {
            let b: Vec<f64> = a.iter().rev().cloned().collect();
            prop_assert!((dot(&a, &b) - dot(&b, &a)).abs() < 1e-9);
        }

        #[test]
        fn norm2_triangle_inequality(
            a in proptest::collection::vec(-1e3f64..1e3, 4),
            b in proptest::collection::vec(-1e3f64..1e3, 4),
        ) {
            prop_assert!(norm2(&add(&a, &b)) <= norm2(&a) + norm2(&b) + 1e-9);
        }

        #[test]
        fn clamp_box_is_idempotent(x in proptest::collection::vec(-10.0f64..10.0, 5)) {
            let lo = vec![-1.0; 5];
            let hi = vec![1.0; 5];
            let mut once = x.clone();
            clamp_box(&mut once, &lo, &hi);
            let mut twice = once.clone();
            clamp_box(&mut twice, &lo, &hi);
            prop_assert_eq!(once, twice);
        }
    }
}
