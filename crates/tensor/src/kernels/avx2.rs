//! AVX2 + FMA kernel arm (`x86_64`).
//!
//! Four-wide `f64` vectors with fused multiply-add. The workhorse is a
//! 2×4 register micro-kernel for `matmul_transb`: two left rows against
//! four right rows needs 8 accumulator vectors, 2 left broadcasts-worth
//! of loads, and 4 right loads per step — 14 of the 16 architectural
//! `ymm` registers, the largest tile that does not spill. The four
//! per-row accumulators of each left row are reduced with the classic
//! `hadd`/`permute2f128`/`blend` transpose, producing four finished dot
//! products in a single vector store.
//!
//! Every function in this module is compiled with
//! `#[target_feature(enable = "avx2,fma")]` and reached only through the
//! safe dispatch wrappers in the [`BACKEND`] table; the wrappers are what
//! makes the calls sound, because the table is only ever selected after
//! `is_x86_feature_detected!` confirmed both features (see
//! `super::detect`).

use core::arch::x86_64::*;

use super::Backend;

pub(super) static BACKEND: Backend = Backend {
    name: "avx2",
    matmul_transb,
    gemm,
    matvec,
    matvec_bias,
};

fn matmul_transb(a: &[f64], b: &[f64], m: usize, n: usize, k: usize, out: &mut [f64]) {
    // Safety: the avx2 table is only selected after feature detection.
    unsafe { matmul_transb_impl(a, b, m, n, k, out) }
}

fn gemm(a: &[f64], b: &[f64], m: usize, k: usize, n: usize, out: &mut [f64]) {
    // Safety: the avx2 table is only selected after feature detection.
    unsafe { gemm_impl(a, b, m, k, n, out) }
}

fn matvec(w: &[f64], x: &[f64], out: &mut [f64]) {
    // Safety: the avx2 table is only selected after feature detection.
    unsafe { matvec_impl(w, x, out) }
}

fn matvec_bias(w: &[f64], x: &[f64], bias: &[f64], out: &mut [f64]) {
    // Safety: the avx2 table is only selected after feature detection.
    unsafe { matvec_bias_impl(w, x, bias, out) }
}

/// `out = A · Bᵀ` with the 2×4 micro-kernel and two levels of cache
/// blocking: a 512-wide k-tile (L1, as in the scalar arm) and a 64-row
/// block of `b` (`JB·KB·8 = 256 KiB`, L2-resident). Without the
/// j-block, every pair of `a` rows re-streams the whole `b` operand
/// from memory and the kernel is bandwidth-bound on large shapes (a
/// 1024×1024 weight matrix is 8 MiB); with it, each `b` tile is pulled
/// from RAM once per k-tile and reused across the full `a` sweep.
#[target_feature(enable = "avx2,fma")]
unsafe fn matmul_transb_impl(a: &[f64], b: &[f64], m: usize, n: usize, k: usize, out: &mut [f64]) {
    out.fill(0.0);
    if m == 0 || n == 0 || k == 0 {
        return;
    }
    const KB: usize = 512;
    const JB: usize = 64;
    let mut k0 = 0;
    while k0 < k {
        let kb = KB.min(k - k0);
        let arow = |r: usize| &a[r * k + k0..r * k + k0 + kb];
        let brow = |r: usize| &b[r * k + k0..r * k + k0 + kb];
        let mut j0 = 0;
        while j0 < n {
            let jb = JB.min(n - j0);
            let j4 = j0 + (jb & !3);
            let jend = j0 + jb;
            let mut i = 0;
            while i + 2 <= m {
                let (a0, a1) = (arow(i), arow(i + 1));
                let mut j = j0;
                while j < j4 {
                    let (d0, d1) = tile2x4(a0, a1, brow(j), brow(j + 1), brow(j + 2), brow(j + 3));
                    accumulate4(&mut out[i * n + j..i * n + j + 4], d0);
                    accumulate4(&mut out[(i + 1) * n + j..(i + 1) * n + j + 4], d1);
                    j += 4;
                }
                while j < jend {
                    let bj = brow(j);
                    out[i * n + j] += dot(a0, bj);
                    out[(i + 1) * n + j] += dot(a1, bj);
                    j += 1;
                }
                i += 2;
            }
            if i < m {
                let a0 = arow(i);
                let mut j = j0;
                while j < j4 {
                    let d = dot1x4(a0, brow(j), brow(j + 1), brow(j + 2), brow(j + 3));
                    accumulate4(&mut out[i * n + j..i * n + j + 4], d);
                    j += 4;
                }
                while j < jend {
                    out[i * n + j] += dot(a0, brow(j));
                    j += 1;
                }
            }
            j0 = jend;
        }
        k0 += kb;
    }
}

/// `out = A · B`: each nonzero `a[i][kk]` is broadcast and FMA'd along
/// the contiguous rows of `b` and `out`, four lanes at a time.
#[target_feature(enable = "avx2,fma")]
unsafe fn gemm_impl(a: &[f64], b: &[f64], m: usize, k: usize, n: usize, out: &mut [f64]) {
    out.fill(0.0);
    if m == 0 || n == 0 || k == 0 {
        return;
    }
    let n4 = n & !3;
    for (arow, orow) in a.chunks_exact(k).zip(out.chunks_exact_mut(n)) {
        for (kk, &aik) in arow.iter().enumerate() {
            if aik == 0.0 {
                continue;
            }
            let va = _mm256_set1_pd(aik);
            let brow = &b[kk * n..(kk + 1) * n];
            let mut j = 0;
            while j < n4 {
                let vo = _mm256_loadu_pd(orow.as_ptr().add(j));
                let vb = _mm256_loadu_pd(brow.as_ptr().add(j));
                _mm256_storeu_pd(orow.as_mut_ptr().add(j), _mm256_fmadd_pd(va, vb, vo));
                j += 4;
            }
            while j < n {
                orow[j] += aik * brow[j];
                j += 1;
            }
        }
    }
}

/// `out = W x`: row quads share every `x` load; columns are blocked so
/// `x` and the four weight streams stay L1-resident on very wide rows.
#[target_feature(enable = "avx2,fma")]
unsafe fn matvec_impl(w: &[f64], x: &[f64], out: &mut [f64]) {
    let k = x.len();
    if k == 0 {
        out.fill(0.0);
        return;
    }
    out.fill(0.0);
    matvec_accumulate(w, x, out);
}

/// `out = W x + bias`, the same column-blocked row-quad loop seeded with
/// the bias instead of zero.
#[target_feature(enable = "avx2,fma")]
unsafe fn matvec_bias_impl(w: &[f64], x: &[f64], bias: &[f64], out: &mut [f64]) {
    let k = x.len();
    if k == 0 {
        out.copy_from_slice(bias);
        return;
    }
    out.copy_from_slice(bias);
    matvec_accumulate(w, x, out);
}

/// Column block for the matvec kernels: 2 KiB of `x` (16 KiB) plus four
/// weight streams stays comfortably inside a 32 KiB L1.
const MV_KB: usize = 2048;

/// `out += W x`, 4 rows at a time with a column-blocked outer loop.
///
/// Each quad of rows shares one `x` load per step (quartering the load
/// traffic of four independent dots), and the column blocking revisits
/// the same `x` window for every row quad before moving on, which is
/// what fixes the memory-bound single-pass behaviour of the old
/// `matvec_bias` on 1024×1024 shapes and larger.
#[target_feature(enable = "avx2,fma")]
unsafe fn matvec_accumulate(w: &[f64], x: &[f64], out: &mut [f64]) {
    let k = x.len();
    let rows = out.len();
    let mut k0 = 0;
    while k0 < k {
        let kb = MV_KB.min(k - k0);
        let xb = &x[k0..k0 + kb];
        let wrow = |r: usize| &w[r * k + k0..r * k + k0 + kb];
        let mut r = 0;
        while r + 4 <= rows {
            let d = dot1x4(xb, wrow(r), wrow(r + 1), wrow(r + 2), wrow(r + 3));
            accumulate4(&mut out[r..r + 4], d);
            r += 4;
        }
        while r < rows {
            out[r] += dot(wrow(r), xb);
            r += 1;
        }
        k0 += kb;
    }
}

/// `out[0..4] += v`, unaligned.
#[target_feature(enable = "avx2,fma")]
#[inline]
unsafe fn accumulate4(out: &mut [f64], v: __m256d) {
    let cur = _mm256_loadu_pd(out.as_ptr());
    _mm256_storeu_pd(out.as_mut_ptr(), _mm256_add_pd(cur, v));
}

/// Transposing reduction: four 4-lane accumulators become one vector
/// holding their four horizontal sums `[Σv0, Σv1, Σv2, Σv3]`.
#[target_feature(enable = "avx2,fma")]
#[inline]
unsafe fn hsum4(v0: __m256d, v1: __m256d, v2: __m256d, v3: __m256d) -> __m256d {
    // hadd pairs lanes within 128-bit halves:
    //   t01 = [v0a+v0b, v1a+v1b, v0c+v0d, v1c+v1d]
    let t01 = _mm256_hadd_pd(v0, v1);
    let t23 = _mm256_hadd_pd(v2, v3);
    // Swap the middle 128-bit halves and add: every lane ends up with
    // the full four-lane sum of its original vector.
    let swapped = _mm256_permute2f128_pd(t01, t23, 0x21);
    let blended = _mm256_blend_pd(t01, t23, 0b1100);
    _mm256_add_pd(swapped, blended)
}

/// Two left rows against four right rows: eight FMA accumulator chains,
/// reduced to two vectors of four dot products each.
#[target_feature(enable = "avx2,fma")]
#[inline]
unsafe fn tile2x4(
    a0: &[f64],
    a1: &[f64],
    b0: &[f64],
    b1: &[f64],
    b2: &[f64],
    b3: &[f64],
) -> (__m256d, __m256d) {
    let kb = a0.len();
    let kb4 = kb & !3;
    let mut acc00 = _mm256_setzero_pd();
    let mut acc01 = _mm256_setzero_pd();
    let mut acc02 = _mm256_setzero_pd();
    let mut acc03 = _mm256_setzero_pd();
    let mut acc10 = _mm256_setzero_pd();
    let mut acc11 = _mm256_setzero_pd();
    let mut acc12 = _mm256_setzero_pd();
    let mut acc13 = _mm256_setzero_pd();
    let mut o = 0;
    while o < kb4 {
        let va0 = _mm256_loadu_pd(a0.as_ptr().add(o));
        let va1 = _mm256_loadu_pd(a1.as_ptr().add(o));
        let vb0 = _mm256_loadu_pd(b0.as_ptr().add(o));
        let vb1 = _mm256_loadu_pd(b1.as_ptr().add(o));
        let vb2 = _mm256_loadu_pd(b2.as_ptr().add(o));
        let vb3 = _mm256_loadu_pd(b3.as_ptr().add(o));
        acc00 = _mm256_fmadd_pd(va0, vb0, acc00);
        acc01 = _mm256_fmadd_pd(va0, vb1, acc01);
        acc02 = _mm256_fmadd_pd(va0, vb2, acc02);
        acc03 = _mm256_fmadd_pd(va0, vb3, acc03);
        acc10 = _mm256_fmadd_pd(va1, vb0, acc10);
        acc11 = _mm256_fmadd_pd(va1, vb1, acc11);
        acc12 = _mm256_fmadd_pd(va1, vb2, acc12);
        acc13 = _mm256_fmadd_pd(va1, vb3, acc13);
        o += 4;
    }
    let mut d0 = hsum4(acc00, acc01, acc02, acc03);
    let mut d1 = hsum4(acc10, acc11, acc12, acc13);
    if kb4 < kb {
        let mut t0 = [0.0f64; 4];
        let mut t1 = [0.0f64; 4];
        for o in kb4..kb {
            let (x0, x1) = (a0[o], a1[o]);
            t0[0] += x0 * b0[o];
            t0[1] += x0 * b1[o];
            t0[2] += x0 * b2[o];
            t0[3] += x0 * b3[o];
            t1[0] += x1 * b0[o];
            t1[1] += x1 * b1[o];
            t1[2] += x1 * b2[o];
            t1[3] += x1 * b3[o];
        }
        d0 = _mm256_add_pd(d0, _mm256_loadu_pd(t0.as_ptr()));
        d1 = _mm256_add_pd(d1, _mm256_loadu_pd(t1.as_ptr()));
    }
    (d0, d1)
}

/// One shared row against four rows: the matvec workhorse. Returns the
/// four dot products as one vector.
#[target_feature(enable = "avx2,fma")]
#[inline]
unsafe fn dot1x4(a: &[f64], b0: &[f64], b1: &[f64], b2: &[f64], b3: &[f64]) -> __m256d {
    let kb = a.len();
    let kb4 = kb & !3;
    let mut acc0 = _mm256_setzero_pd();
    let mut acc1 = _mm256_setzero_pd();
    let mut acc2 = _mm256_setzero_pd();
    let mut acc3 = _mm256_setzero_pd();
    let mut o = 0;
    while o < kb4 {
        let va = _mm256_loadu_pd(a.as_ptr().add(o));
        acc0 = _mm256_fmadd_pd(va, _mm256_loadu_pd(b0.as_ptr().add(o)), acc0);
        acc1 = _mm256_fmadd_pd(va, _mm256_loadu_pd(b1.as_ptr().add(o)), acc1);
        acc2 = _mm256_fmadd_pd(va, _mm256_loadu_pd(b2.as_ptr().add(o)), acc2);
        acc3 = _mm256_fmadd_pd(va, _mm256_loadu_pd(b3.as_ptr().add(o)), acc3);
        o += 4;
    }
    let mut d = hsum4(acc0, acc1, acc2, acc3);
    if kb4 < kb {
        let mut t = [0.0f64; 4];
        for o in kb4..kb {
            let av = a[o];
            t[0] += av * b0[o];
            t[1] += av * b1[o];
            t[2] += av * b2[o];
            t[3] += av * b3[o];
        }
        d = _mm256_add_pd(d, _mm256_loadu_pd(t.as_ptr()));
    }
    d
}

/// Single dot product with four vector accumulator chains (16 elements
/// in flight), used for remainder rows and columns.
#[target_feature(enable = "avx2,fma")]
#[inline]
unsafe fn dot(a: &[f64], b: &[f64]) -> f64 {
    let kb = a.len();
    let kb16 = kb & !15;
    let mut acc0 = _mm256_setzero_pd();
    let mut acc1 = _mm256_setzero_pd();
    let mut acc2 = _mm256_setzero_pd();
    let mut acc3 = _mm256_setzero_pd();
    let mut o = 0;
    while o < kb16 {
        acc0 = _mm256_fmadd_pd(
            _mm256_loadu_pd(a.as_ptr().add(o)),
            _mm256_loadu_pd(b.as_ptr().add(o)),
            acc0,
        );
        acc1 = _mm256_fmadd_pd(
            _mm256_loadu_pd(a.as_ptr().add(o + 4)),
            _mm256_loadu_pd(b.as_ptr().add(o + 4)),
            acc1,
        );
        acc2 = _mm256_fmadd_pd(
            _mm256_loadu_pd(a.as_ptr().add(o + 8)),
            _mm256_loadu_pd(b.as_ptr().add(o + 8)),
            acc2,
        );
        acc3 = _mm256_fmadd_pd(
            _mm256_loadu_pd(a.as_ptr().add(o + 12)),
            _mm256_loadu_pd(b.as_ptr().add(o + 12)),
            acc3,
        );
        o += 16;
    }
    let kb4 = kb & !3;
    while o < kb4 {
        acc0 = _mm256_fmadd_pd(
            _mm256_loadu_pd(a.as_ptr().add(o)),
            _mm256_loadu_pd(b.as_ptr().add(o)),
            acc0,
        );
        o += 4;
    }
    let v = _mm256_add_pd(_mm256_add_pd(acc0, acc1), _mm256_add_pd(acc2, acc3));
    let hi = _mm256_extractf128_pd(v, 1);
    let lo = _mm256_castpd256_pd128(v);
    let pair = _mm_add_pd(lo, hi);
    let mut sum = _mm_cvtsd_f64(_mm_add_sd(pair, _mm_unpackhi_pd(pair, pair)));
    while o < kb {
        sum += a[o] * b[o];
        o += 1;
    }
    sum
}
