//! NEON kernel arm (aarch64).
//!
//! Two-wide `f64` vectors with fused multiply-add (`vfmaq_f64`). NEON
//! (Advanced SIMD) is architecturally mandatory on AArch64, so this arm
//! needs no runtime detection — it is the default backend on aarch64
//! hosts — and the intrinsics are only `unsafe` for their raw-pointer
//! loads, not for feature availability.
//!
//! The shapes mirror the AVX2 arm at half the width: a 2×2 register
//! micro-kernel for `matmul_transb`, broadcast-FMA rows for `gemm`, and
//! row-paired dots for the matvec kernels.

use core::arch::aarch64::*;

use super::Backend;

pub(super) static BACKEND: Backend = Backend {
    name: "neon",
    matmul_transb,
    gemm,
    matvec,
    matvec_bias,
};

/// `out = A · Bᵀ` with a 2×2 micro-kernel (four accumulator vectors,
/// each operand load feeding two FMAs), k-tiled like the scalar arm.
fn matmul_transb(a: &[f64], b: &[f64], m: usize, n: usize, k: usize, out: &mut [f64]) {
    out.fill(0.0);
    if m == 0 || n == 0 || k == 0 {
        return;
    }
    const KB: usize = 512;
    let mut k0 = 0;
    while k0 < k {
        let kb = KB.min(k - k0);
        let arow = |r: usize| &a[r * k + k0..r * k + k0 + kb];
        let brow = |r: usize| &b[r * k + k0..r * k + k0 + kb];
        let mut i = 0;
        while i + 2 <= m {
            let (a0, a1) = (arow(i), arow(i + 1));
            let mut j = 0;
            while j + 2 <= n {
                let d = tile2x2(a0, a1, brow(j), brow(j + 1));
                out[i * n + j] += d[0];
                out[i * n + j + 1] += d[1];
                out[(i + 1) * n + j] += d[2];
                out[(i + 1) * n + j + 1] += d[3];
                j += 2;
            }
            if j < n {
                let bj = brow(j);
                out[i * n + j] += dot(a0, bj);
                out[(i + 1) * n + j] += dot(a1, bj);
            }
            i += 2;
        }
        if i < m {
            let a0 = arow(i);
            for j in 0..n {
                out[i * n + j] += dot(a0, brow(j));
            }
        }
        k0 += kb;
    }
}

/// `out = A · B`: broadcast-FMA along the contiguous rows of `b`.
fn gemm(a: &[f64], b: &[f64], m: usize, k: usize, n: usize, out: &mut [f64]) {
    out.fill(0.0);
    if m == 0 || n == 0 || k == 0 {
        return;
    }
    let n2 = n & !1;
    for (arow, orow) in a.chunks_exact(k).zip(out.chunks_exact_mut(n)) {
        for (kk, &aik) in arow.iter().enumerate() {
            if aik == 0.0 {
                continue;
            }
            let brow = &b[kk * n..(kk + 1) * n];
            // Safety: j stays within n2 <= min(orow.len(), brow.len()).
            unsafe {
                let va = vdupq_n_f64(aik);
                let mut j = 0;
                while j < n2 {
                    let vo = vld1q_f64(orow.as_ptr().add(j));
                    let vb = vld1q_f64(brow.as_ptr().add(j));
                    vst1q_f64(orow.as_mut_ptr().add(j), vfmaq_f64(vo, va, vb));
                    j += 2;
                }
            }
            if n2 < n {
                orow[n - 1] += aik * brow[n - 1];
            }
        }
    }
}

/// `out = W x` with row pairs sharing every `x` load.
fn matvec(w: &[f64], x: &[f64], out: &mut [f64]) {
    let k = x.len();
    if k == 0 {
        out.fill(0.0);
        return;
    }
    out.fill(0.0);
    matvec_accumulate(w, x, out);
}

/// `out = W x + bias`, same loop seeded with the bias.
fn matvec_bias(w: &[f64], x: &[f64], bias: &[f64], out: &mut [f64]) {
    let k = x.len();
    if k == 0 {
        out.copy_from_slice(bias);
        return;
    }
    out.copy_from_slice(bias);
    matvec_accumulate(w, x, out);
}

/// `out += W x`, row pairs with a column-blocked outer loop (matching
/// the AVX2 arm's L1 blocking).
fn matvec_accumulate(w: &[f64], x: &[f64], out: &mut [f64]) {
    const MV_KB: usize = 2048;
    let k = x.len();
    let rows = out.len();
    let mut k0 = 0;
    while k0 < k {
        let kb = MV_KB.min(k - k0);
        let xb = &x[k0..k0 + kb];
        let wrow = |r: usize| &w[r * k + k0..r * k + k0 + kb];
        let mut r = 0;
        while r + 2 <= rows {
            let d = dot2(xb, wrow(r), wrow(r + 1));
            out[r] += d[0];
            out[r + 1] += d[1];
            r += 2;
        }
        if r < rows {
            out[r] += dot(wrow(r), xb);
        }
        k0 += kb;
    }
}

/// Two left rows against two right rows: four accumulator vectors,
/// reduced to the 2×2 tile of dot products.
#[inline]
fn tile2x2(a0: &[f64], a1: &[f64], b0: &[f64], b1: &[f64]) -> [f64; 4] {
    let kb = a0.len();
    let kb2 = kb & !1;
    // Safety: all loads stay within kb2 <= the common slice length.
    unsafe {
        let mut acc00 = vdupq_n_f64(0.0);
        let mut acc01 = vdupq_n_f64(0.0);
        let mut acc10 = vdupq_n_f64(0.0);
        let mut acc11 = vdupq_n_f64(0.0);
        let mut o = 0;
        while o < kb2 {
            let va0 = vld1q_f64(a0.as_ptr().add(o));
            let va1 = vld1q_f64(a1.as_ptr().add(o));
            let vb0 = vld1q_f64(b0.as_ptr().add(o));
            let vb1 = vld1q_f64(b1.as_ptr().add(o));
            acc00 = vfmaq_f64(acc00, va0, vb0);
            acc01 = vfmaq_f64(acc01, va0, vb1);
            acc10 = vfmaq_f64(acc10, va1, vb0);
            acc11 = vfmaq_f64(acc11, va1, vb1);
            o += 2;
        }
        let mut d = [
            vaddvq_f64(acc00),
            vaddvq_f64(acc01),
            vaddvq_f64(acc10),
            vaddvq_f64(acc11),
        ];
        if kb2 < kb {
            let o = kb - 1;
            d[0] += a0[o] * b0[o];
            d[1] += a0[o] * b1[o];
            d[2] += a1[o] * b0[o];
            d[3] += a1[o] * b1[o];
        }
        d
    }
}

/// One shared row against two rows, for the matvec kernels.
#[inline]
fn dot2(a: &[f64], b0: &[f64], b1: &[f64]) -> [f64; 2] {
    let kb = a.len();
    let kb2 = kb & !1;
    // Safety: all loads stay within kb2 <= the common slice length.
    unsafe {
        let mut acc0 = vdupq_n_f64(0.0);
        let mut acc1 = vdupq_n_f64(0.0);
        let mut o = 0;
        while o < kb2 {
            let va = vld1q_f64(a.as_ptr().add(o));
            acc0 = vfmaq_f64(acc0, va, vld1q_f64(b0.as_ptr().add(o)));
            acc1 = vfmaq_f64(acc1, va, vld1q_f64(b1.as_ptr().add(o)));
            o += 2;
        }
        let mut d = [vaddvq_f64(acc0), vaddvq_f64(acc1)];
        if kb2 < kb {
            let o = kb - 1;
            d[0] += a[o] * b0[o];
            d[1] += a[o] * b1[o];
        }
        d
    }
}

/// Single dot product with four accumulator vectors (eight elements in
/// flight).
#[inline]
fn dot(a: &[f64], b: &[f64]) -> f64 {
    let kb = a.len();
    let kb8 = kb & !7;
    // Safety: all loads stay within kb8/kb2 <= the common slice length.
    unsafe {
        let mut acc0 = vdupq_n_f64(0.0);
        let mut acc1 = vdupq_n_f64(0.0);
        let mut acc2 = vdupq_n_f64(0.0);
        let mut acc3 = vdupq_n_f64(0.0);
        let mut o = 0;
        while o < kb8 {
            acc0 = vfmaq_f64(acc0, vld1q_f64(a.as_ptr().add(o)), vld1q_f64(b.as_ptr().add(o)));
            acc1 = vfmaq_f64(
                acc1,
                vld1q_f64(a.as_ptr().add(o + 2)),
                vld1q_f64(b.as_ptr().add(o + 2)),
            );
            acc2 = vfmaq_f64(
                acc2,
                vld1q_f64(a.as_ptr().add(o + 4)),
                vld1q_f64(b.as_ptr().add(o + 4)),
            );
            acc3 = vfmaq_f64(
                acc3,
                vld1q_f64(a.as_ptr().add(o + 6)),
                vld1q_f64(b.as_ptr().add(o + 6)),
            );
            o += 8;
        }
        let kb2 = kb & !1;
        while o < kb2 {
            acc0 = vfmaq_f64(acc0, vld1q_f64(a.as_ptr().add(o)), vld1q_f64(b.as_ptr().add(o)));
            o += 2;
        }
        let mut sum = vaddvq_f64(vaddq_f64(vaddq_f64(acc0, acc1), vaddq_f64(acc2, acc3)));
        if o < kb {
            sum += a[o] * b[o];
        }
        sum
    }
}
