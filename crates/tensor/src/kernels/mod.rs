//! Runtime-dispatched SIMD kernel backends.
//!
//! The hot kernels of the verifier — `matmul_transb` (zonotope generator
//! propagation), `gemm` (batched PGD), `matvec`/`matvec_bias` (zonotope
//! centers, policy features) — exist in up to three arms:
//!
//! * **scalar** — the register-tiled portable kernels (4×4 tile, eight-way
//!   unrolled dots). Always available; the reference every other arm is
//!   tested against.
//! * **avx2** — `std::arch::x86_64` AVX2+FMA kernels (4-wide `f64`,
//!   fused multiply-add, 2×4 register micro-kernel). Selected at runtime
//!   when `is_x86_feature_detected!` confirms both features.
//! * **neon** — `std::arch::aarch64` NEON kernels (2-wide `f64`).
//!   NEON is architecturally guaranteed on aarch64, so it is the default
//!   arm there.
//!
//! Selection happens **once** per process: [`active`] probes the CPU on
//! first use and caches a `&'static Backend` in a [`OnceLock`]. Setting
//! the environment variable `CHARON_FORCE_SCALAR=1` (any non-empty value
//! other than `0`) pins the scalar arm, which CI uses to keep the
//! portable fallback green; the same variable also selects the verifier's
//! fallback shared-queue scheduler (see `charon::parallel`).
//!
//! All arms compute the same contraction with different association
//! orders, so results agree to a few ULP of the accumulated magnitude but
//! are not bit-identical; `tests/simd_equivalence.rs` pins every arm
//! against the scalar reference within a 4-ULP accumulation bound.

#[cfg(target_arch = "x86_64")]
mod avx2;
#[cfg(target_arch = "aarch64")]
mod neon;
mod scalar;

use std::sync::OnceLock;

/// `out = A · Bᵀ` over flat row-major buffers: `a` is `m×k`, `b` is
/// `n×k`, `out` is `m×n`. Overwrites `out`.
type MatmulTransbFn = fn(&[f64], &[f64], usize, usize, usize, &mut [f64]);
/// `out = A · B` over flat row-major buffers: `a` is `m×k`, `b` is
/// `k×n`, `out` is `m×n`. Overwrites `out`.
type GemmFn = fn(&[f64], &[f64], usize, usize, usize, &mut [f64]);
/// `out = W x`: `w` is `out.len()×x.len()` row-major.
type MatvecFn = fn(&[f64], &[f64], &mut [f64]);
/// `out = W x + bias`: `w` is `out.len()×x.len()` row-major.
type MatvecBiasFn = fn(&[f64], &[f64], &[f64], &mut [f64]);

/// A dispatch table of kernel implementations for one instruction-set
/// arm.
///
/// Obtain one with [`active`] (the best arm for this CPU), [`scalar`]
/// (the portable reference), or [`available`] (every arm this host can
/// execute, for equivalence tests and benchmarks).
pub struct Backend {
    name: &'static str,
    matmul_transb: MatmulTransbFn,
    gemm: GemmFn,
    matvec: MatvecFn,
    matvec_bias: MatvecBiasFn,
}

impl Backend {
    /// Short identifier of the arm: `"scalar"`, `"avx2"`, or `"neon"`.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// `out = A · Bᵀ` on flat row-major buffers (`a`: `m×k`, `b`: `n×k`,
    /// `out`: `m×n`, fully overwritten).
    ///
    /// # Panics
    ///
    /// Panics if a buffer length disagrees with its dimensions.
    pub fn matmul_transb(&self, a: &[f64], b: &[f64], m: usize, n: usize, k: usize, out: &mut [f64]) {
        assert_eq!(a.len(), m * k, "matmul_transb: lhs buffer length");
        assert_eq!(b.len(), n * k, "matmul_transb: rhs buffer length");
        assert_eq!(out.len(), m * n, "matmul_transb: output buffer length");
        (self.matmul_transb)(a, b, m, n, k, out);
    }

    /// `out = A · B` on flat row-major buffers (`a`: `m×k`, `b`: `k×n`,
    /// `out`: `m×n`, fully overwritten).
    ///
    /// # Panics
    ///
    /// Panics if a buffer length disagrees with its dimensions.
    pub fn gemm(&self, a: &[f64], b: &[f64], m: usize, k: usize, n: usize, out: &mut [f64]) {
        assert_eq!(a.len(), m * k, "gemm: lhs buffer length");
        assert_eq!(b.len(), k * n, "gemm: rhs buffer length");
        assert_eq!(out.len(), m * n, "gemm: output buffer length");
        (self.gemm)(a, b, m, k, n, out);
    }

    /// `out = W x` (`w`: `out.len()×x.len()` row-major).
    ///
    /// # Panics
    ///
    /// Panics if `w.len() != out.len() * x.len()`.
    pub fn matvec(&self, w: &[f64], x: &[f64], out: &mut [f64]) {
        assert_eq!(w.len(), out.len() * x.len(), "matvec: weight buffer length");
        (self.matvec)(w, x, out);
    }

    /// `out = W x + bias` (`w`: `out.len()×x.len()` row-major).
    ///
    /// # Panics
    ///
    /// Panics if `w.len() != out.len() * x.len()` or
    /// `bias.len() != out.len()`.
    pub fn matvec_bias(&self, w: &[f64], x: &[f64], bias: &[f64], out: &mut [f64]) {
        assert_eq!(w.len(), out.len() * x.len(), "matvec_bias: weight buffer length");
        assert_eq!(bias.len(), out.len(), "matvec_bias: bias length");
        (self.matvec_bias)(w, x, bias, out);
    }

    /// Fused zonotope affine transformer: pushes a center and a flat
    /// `G×in_dim` generator matrix through the layer `y = W x + b` in one
    /// call, streaming the generator buffer through `matmul_transb`.
    ///
    /// `weights` is `out_dim×in_dim` row-major with `out_dim ==
    /// bias.len() == out_center.len()` and `in_dim == center.len()`;
    /// `gens` is `G×in_dim` and `out_gens` is `G×out_dim`, both fully
    /// overwritten.
    ///
    /// # Panics
    ///
    /// Panics if any buffer length disagrees with the dimensions implied
    /// by `center`/`bias`.
    pub fn zonotope_affine(
        &self,
        weights: &[f64],
        bias: &[f64],
        center: &[f64],
        gens: &[f64],
        out_center: &mut [f64],
        out_gens: &mut [f64],
    ) {
        let in_dim = center.len();
        let out_dim = bias.len();
        assert_eq!(weights.len(), out_dim * in_dim, "zonotope_affine: weight buffer length");
        assert_eq!(out_center.len(), out_dim, "zonotope_affine: center output length");
        let num_gens = gens
            .len()
            .checked_div(in_dim)
            .or_else(|| out_gens.len().checked_div(out_dim))
            .unwrap_or(0);
        assert_eq!(gens.len(), num_gens * in_dim, "zonotope_affine: generator buffer length");
        assert_eq!(out_gens.len(), num_gens * out_dim, "zonotope_affine: generator output length");
        (self.matvec_bias)(weights, center, bias, out_center);
        (self.matmul_transb)(gens, weights, num_gens, out_dim, in_dim, out_gens);
    }
}

static ACTIVE: OnceLock<&'static Backend> = OnceLock::new();

/// The kernel arm selected for this process.
///
/// The first call probes `CHARON_FORCE_SCALAR` and the CPU's feature
/// flags; the choice is cached for the lifetime of the process, so the
/// per-call dispatch cost is one relaxed atomic load and an indirect
/// call.
pub fn active() -> &'static Backend {
    ACTIVE.get_or_init(|| if force_scalar() { scalar() } else { detect() })
}

/// The portable scalar arm (register-tiled, no `std::arch`).
pub fn scalar() -> &'static Backend {
    &scalar::BACKEND
}

/// Every arm this host can execute, scalar first.
///
/// Equivalence tests and benchmarks iterate this to cover all dispatch
/// arms reachable on the machine, independent of which one [`active`]
/// picked.
pub fn available() -> Vec<&'static Backend> {
    let mut arms = vec![scalar()];
    #[cfg(target_arch = "x86_64")]
    if std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma") {
        arms.push(&avx2::BACKEND);
    }
    #[cfg(target_arch = "aarch64")]
    arms.push(&neon::BACKEND);
    arms
}

/// True when `CHARON_FORCE_SCALAR` is set to a non-empty value other
/// than `0`.
fn force_scalar() -> bool {
    std::env::var_os("CHARON_FORCE_SCALAR").is_some_and(|v| !v.is_empty() && v != "0")
}

#[cfg(target_arch = "x86_64")]
fn detect() -> &'static Backend {
    if std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma") {
        &avx2::BACKEND
    } else {
        scalar()
    }
}

#[cfg(target_arch = "aarch64")]
fn detect() -> &'static Backend {
    &neon::BACKEND
}

#[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
fn detect() -> &'static Backend {
    scalar()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_arm_is_always_available() {
        assert_eq!(available()[0].name(), "scalar");
    }

    #[test]
    fn active_arm_is_among_available() {
        let name = active().name();
        assert!(available().iter().any(|b| b.name() == name));
    }

    #[test]
    fn zonotope_affine_matches_separate_calls() {
        let (out_dim, in_dim, gens_n) = (5, 7, 3);
        let weights: Vec<f64> = (0..out_dim * in_dim).map(|i| (i as f64 * 0.37).sin()).collect();
        let bias: Vec<f64> = (0..out_dim).map(|i| i as f64 * 0.25 - 0.5).collect();
        let center: Vec<f64> = (0..in_dim).map(|i| (i as f64 * 0.11).cos()).collect();
        let gens: Vec<f64> = (0..gens_n * in_dim).map(|i| (i as f64 * 0.53).sin()).collect();
        for backend in available() {
            let mut fused_c = vec![f64::NAN; out_dim];
            let mut fused_g = vec![f64::NAN; gens_n * out_dim];
            backend.zonotope_affine(&weights, &bias, &center, &gens, &mut fused_c, &mut fused_g);
            let mut sep_c = vec![f64::NAN; out_dim];
            backend.matvec_bias(&weights, &center, &bias, &mut sep_c);
            let mut sep_g = vec![f64::NAN; gens_n * out_dim];
            backend.matmul_transb(&gens, &weights, gens_n, out_dim, in_dim, &mut sep_g);
            assert_eq!(fused_c, sep_c, "{} center", backend.name());
            assert_eq!(fused_g, sep_g, "{} generators", backend.name());
        }
    }

    #[test]
    fn zero_dimension_edge_cases_do_not_panic() {
        for backend in available() {
            let mut out = [f64::NAN; 3];
            backend.matvec(&[], &[], &mut out);
            assert_eq!(out, [0.0; 3], "{}", backend.name());
            let mut out = [f64::NAN; 2];
            backend.matvec_bias(&[], &[], &[1.0, 2.0], &mut out);
            assert_eq!(out, [1.0, 2.0], "{}", backend.name());
            let mut out = [f64::NAN; 6];
            backend.matmul_transb(&[], &[], 2, 3, 0, &mut out);
            assert_eq!(out, [0.0; 6], "{}", backend.name());
            let mut out = [f64::NAN; 6];
            backend.gemm(&[], &[], 2, 0, 3, &mut out);
            assert_eq!(out, [0.0; 6], "{}", backend.name());
            let mut out: [f64; 0] = [];
            backend.matmul_transb(&[1.0, 2.0], &[], 1, 0, 2, &mut out);
            backend.gemm(&[1.0, 2.0], &[], 1, 2, 0, &mut out);
        }
    }
}
