//! Portable scalar kernel arm: the register-tiled kernels that every
//! SIMD arm is tested against.
//!
//! These are the PR 2 kernels relocated from `Matrix` onto flat buffers:
//! a 4×4 register micro-kernel with k-tiling for `matmul_transb`, and
//! unrolled multi-accumulator dots everywhere else. They carry no
//! `std::arch` code, so they compile and run on every target and under
//! `miri`, and they define the reference association order for the
//! equivalence suite.

use super::Backend;

pub(super) static BACKEND: Backend = Backend {
    name: "scalar",
    matmul_transb,
    gemm,
    matvec,
    matvec_bias,
};

/// `out = A · Bᵀ`, register-tiled: 4 rows of `a` meet 4 rows of `b` in a
/// 4×4 micro-kernel, so every operand load feeds four multiply-adds, and
/// the inner dimension is tiled so the working set stays cache-resident.
fn matmul_transb(a: &[f64], b: &[f64], m: usize, n: usize, k: usize, out: &mut [f64]) {
    out.fill(0.0);
    if m == 0 || n == 0 || k == 0 {
        return;
    }
    // k-tile keeps the 8 active rows (4 of `a`, 4 of `b`) within L1:
    // 8 * KB * 8 bytes = 32 KiB.
    const KB: usize = 512;
    let mut k0 = 0;
    while k0 < k {
        let kb = KB.min(k - k0);
        let arow = |r: usize| &a[r * k + k0..r * k + k0 + kb];
        let brow = |r: usize| &b[r * k + k0..r * k + k0 + kb];
        let mut i = 0;
        while i + 4 <= m {
            let (a0, a1, a2, a3) = (arow(i), arow(i + 1), arow(i + 2), arow(i + 3));
            let mut j = 0;
            while j + 4 <= n {
                let tile = tile4x4(
                    [a0, a1, a2, a3],
                    [brow(j), brow(j + 1), brow(j + 2), brow(j + 3)],
                );
                for (r, row) in tile.iter().enumerate() {
                    for (c, v) in row.iter().enumerate() {
                        out[(i + r) * n + j + c] += v;
                    }
                }
                j += 4;
            }
            while j < n {
                let dots = dot4_unrolled(a0, a1, a2, a3, brow(j));
                for (r, d) in dots.into_iter().enumerate() {
                    out[(i + r) * n + j] += d;
                }
                j += 1;
            }
            i += 4;
        }
        while i < m {
            for j in 0..n {
                out[i * n + j] += dot_unrolled(arow(i), brow(j));
            }
            i += 1;
        }
        k0 += kb;
    }
}

/// `out = A · B`, row-major: the inner loop runs along the contiguous
/// rows of `b` and `out`, with a zero-skip on `a` entries (gradient
/// matrices are often sparse after ReLU masking).
fn gemm(a: &[f64], b: &[f64], m: usize, k: usize, n: usize, out: &mut [f64]) {
    out.fill(0.0);
    if m == 0 || n == 0 || k == 0 {
        return;
    }
    for (arow, orow) in a.chunks_exact(k).zip(out.chunks_exact_mut(n)) {
        for (kk, &aik) in arow.iter().enumerate() {
            if aik == 0.0 {
                continue;
            }
            let brow = &b[kk * n..(kk + 1) * n];
            for (o, bv) in orow.iter_mut().zip(brow.iter()) {
                *o += aik * bv;
            }
        }
    }
}

/// `out = W x`: row quads share every `x` load through
/// [`dot4_unrolled`]; remainder rows use the eight-way unrolled dot.
fn matvec(w: &[f64], x: &[f64], out: &mut [f64]) {
    let k = x.len();
    if k == 0 {
        out.fill(0.0);
        return;
    }
    let rows = out.len();
    let row = |r: usize| &w[r * k..(r + 1) * k];
    let mut r = 0;
    while r + 4 <= rows {
        let dots = dot4_unrolled(row(r), row(r + 1), row(r + 2), row(r + 3), x);
        out[r..r + 4].copy_from_slice(&dots);
        r += 4;
    }
    while r < rows {
        out[r] = dot_unrolled(row(r), x);
        r += 1;
    }
}

/// `out = W x + bias`, same blocking as [`matvec`] with the bias add
/// fused into the store.
fn matvec_bias(w: &[f64], x: &[f64], bias: &[f64], out: &mut [f64]) {
    let k = x.len();
    if k == 0 {
        out.copy_from_slice(bias);
        return;
    }
    let rows = out.len();
    let row = |r: usize| &w[r * k..(r + 1) * k];
    let mut r = 0;
    while r + 4 <= rows {
        let dots = dot4_unrolled(row(r), row(r + 1), row(r + 2), row(r + 3), x);
        for (c, d) in dots.into_iter().enumerate() {
            out[r + c] = d + bias[r + c];
        }
        r += 4;
    }
    while r < rows {
        out[r] = dot_unrolled(row(r), x) + bias[r];
        r += 1;
    }
}

/// 4×4 register-tile micro-kernel: sixteen dot products between four
/// left rows and four right rows, sharing every operand load across four
/// multiply-adds.
///
/// This is the classic GEMM register tile. Sixteen independent
/// accumulator chains hide FP-add latency, and the load:FLOP ratio drops
/// from 2:1 (plain dot) to 1:2, which is what lifts the kernel off the
/// load-port ceiling. Same reassociation caveat as [`dot_unrolled`].
///
/// All eight slices must have equal length (callers slice them to the
/// same k-tile).
#[inline]
fn tile4x4(a: [&[f64]; 4], b: [&[f64]; 4]) -> [[f64; 4]; 4] {
    let kb = b[0].len();
    let mut acc = [[0.0f64; 4]; 4];
    let chunks = kb / 4;
    for c in 0..chunks {
        let o = c * 4;
        let lane = |s: &[f64]| -> [f64; 4] { s[o..o + 4].try_into().expect("chunk is 4 wide") };
        let la = a.map(lane);
        let lb = b.map(lane);
        for (ai, arow) in la.iter().enumerate() {
            for (bj, brow) in lb.iter().enumerate() {
                let mut s = 0.0;
                for l in 0..4 {
                    s += arow[l] * brow[l];
                }
                acc[ai][bj] += s;
            }
        }
    }
    for o in chunks * 4..kb {
        for (ai, arow) in a.iter().enumerate() {
            let av = arow[o];
            for (bj, brow) in b.iter().enumerate() {
                acc[ai][bj] += av * brow[o];
            }
        }
    }
    acc
}

/// Four simultaneous dot products against a shared right-hand side.
///
/// The dominant cost of the blocked kernel is load traffic: a plain dot
/// issues two loads per multiply-add. Amortizing each `b` load over four
/// `a` rows drops that to 1.25 loads per multiply-add, and the sixteen
/// independent accumulator chains keep the FP pipeline saturated. Same
/// reassociation caveat as [`dot_unrolled`].
///
/// All five slices must have equal length (callers slice them to the
/// same k-tile).
#[inline]
fn dot4_unrolled(a0: &[f64], a1: &[f64], a2: &[f64], a3: &[f64], b: &[f64]) -> [f64; 4] {
    let mut acc = [[0.0f64; 4]; 4];
    let mut c0 = a0.chunks_exact(4);
    let mut c1 = a1.chunks_exact(4);
    let mut c2 = a2.chunks_exact(4);
    let mut c3 = a3.chunks_exact(4);
    let mut cb = b.chunks_exact(4);
    for ((((r0, r1), r2), r3), bb) in (&mut c0).zip(&mut c1).zip(&mut c2).zip(&mut c3).zip(&mut cb)
    {
        let r0: &[f64; 4] = r0.try_into().expect("chunk is 4 wide");
        let r1: &[f64; 4] = r1.try_into().expect("chunk is 4 wide");
        let r2: &[f64; 4] = r2.try_into().expect("chunk is 4 wide");
        let r3: &[f64; 4] = r3.try_into().expect("chunk is 4 wide");
        let bb: &[f64; 4] = bb.try_into().expect("chunk is 4 wide");
        for i in 0..4 {
            acc[0][i] += r0[i] * bb[i];
            acc[1][i] += r1[i] * bb[i];
            acc[2][i] += r2[i] * bb[i];
            acc[3][i] += r3[i] * bb[i];
        }
    }
    let tail = b.len() - cb.remainder().len();
    for o in tail..b.len() {
        acc[0][0] += a0[o] * b[o];
        acc[1][0] += a1[o] * b[o];
        acc[2][0] += a2[o] * b[o];
        acc[3][0] += a3[o] * b[o];
    }
    let reduce = |s: &[f64; 4]| (s[0] + s[2]) + (s[1] + s[3]);
    [reduce(&acc[0]), reduce(&acc[1]), reduce(&acc[2]), reduce(&acc[3])]
}

/// Dot product with eight independent accumulators.
///
/// A single-accumulator dot is latency-bound: every add waits on the
/// previous one, capping throughput at one element per FP-add latency.
/// Eight parallel chains keep the adder pipeline full (and give LLVM a
/// reduction it can vectorize). The price is a different summation
/// association than a naive ascending loop — equal within the usual
/// `O(k·eps)` reassociation error, covered by the kernel equivalence
/// suite.
#[inline]
pub(super) fn dot_unrolled(a: &[f64], b: &[f64]) -> f64 {
    let mut acc = [0.0f64; 8];
    let mut chunks_a = a.chunks_exact(8);
    let mut chunks_b = b.chunks_exact(8);
    for (ca, cb) in (&mut chunks_a).zip(&mut chunks_b) {
        let ca: &[f64; 8] = ca.try_into().expect("chunk is 8 wide");
        let cb: &[f64; 8] = cb.try_into().expect("chunk is 8 wide");
        for i in 0..8 {
            acc[i] += ca[i] * cb[i];
        }
    }
    let mut tail = 0.0;
    for (x, y) in chunks_a.remainder().iter().zip(chunks_b.remainder()) {
        tail += x * y;
    }
    (((acc[0] + acc[4]) + (acc[1] + acc[5])) + ((acc[2] + acc[6]) + (acc[3] + acc[7]))) + tail
}

#[cfg(test)]
mod tests {
    #[test]
    fn tail_rows_and_columns_are_covered() {
        // 5×3 against 5×3ᵀ exercises the <4 row and column remainders.
        let a: Vec<f64> = (0..15).map(|i| i as f64 * 0.5 - 3.0).collect();
        let b: Vec<f64> = (0..15).map(|i| (i as f64 * 0.7).sin()).collect();
        let mut out = vec![f64::NAN; 25];
        super::matmul_transb(&a, &b, 5, 5, 3, &mut out);
        for i in 0..5 {
            for j in 0..5 {
                let want: f64 = (0..3).map(|kk| a[i * 3 + kk] * b[j * 3 + kk]).sum();
                assert!((out[i * 5 + j] - want).abs() < 1e-12);
            }
        }
    }
}
