use serde::{Deserialize, Serialize};

/// A dense, row-major matrix of `f64` values.
///
/// # Examples
///
/// ```
/// use tensor::Matrix;
///
/// let m = Matrix::zeros(2, 3);
/// assert_eq!(m.rows(), 2);
/// assert_eq!(m.cols(), 3);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a `rows x cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates the `n x n` identity matrix.
    ///
    /// ```
    /// let i = tensor::Matrix::identity(3);
    /// assert_eq!(i.get(1, 1), 1.0);
    /// assert_eq!(i.get(0, 1), 0.0);
    /// ```
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m.set(i, i, 1.0);
        }
        m
    }

    /// Creates a matrix from a flat row-major buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "buffer length {} does not match {rows}x{cols}",
            data.len()
        );
        Matrix { rows, cols, data }
    }

    /// Creates a matrix from a slice of row slices.
    ///
    /// # Panics
    ///
    /// Panics if the rows do not all have the same length.
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        let nrows = rows.len();
        let ncols = rows.first().map_or(0, |r| r.len());
        let mut data = Vec::with_capacity(nrows * ncols);
        for row in rows {
            assert_eq!(row.len(), ncols, "ragged rows in Matrix::from_rows");
            data.extend_from_slice(row);
        }
        Matrix {
            rows: nrows,
            cols: ncols,
            data,
        }
    }

    /// Creates a matrix by evaluating `f(row, col)` at every position.
    ///
    /// Fills the flat row-major buffer directly, so building large weight
    /// matrices pays no per-element bounds checks.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(f(i, j));
            }
        }
        Matrix { rows, cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Returns the element at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of bounds.
    #[inline]
    pub fn get(&self, row: usize, col: usize) -> f64 {
        assert!(row < self.rows && col < self.cols, "index out of bounds");
        self.data[row * self.cols + col]
    }

    /// Sets the element at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of bounds.
    #[inline]
    pub fn set(&mut self, row: usize, col: usize, value: f64) {
        assert!(row < self.rows && col < self.cols, "index out of bounds");
        self.data[row * self.cols + col] = value;
    }

    /// Borrows row `row` as a slice.
    #[inline]
    pub fn row(&self, row: usize) -> &[f64] {
        &self.data[row * self.cols..(row + 1) * self.cols]
    }

    /// Mutably borrows row `row` as a slice.
    #[inline]
    pub fn row_mut(&mut self, row: usize) -> &mut [f64] {
        &mut self.data[row * self.cols..(row + 1) * self.cols]
    }

    /// Iterates over the rows as contiguous slices.
    ///
    /// Inner loops over `rows_iter()` pay one bounds check per *row*
    /// instead of one per element, unlike repeated `get()` calls.
    #[inline]
    pub fn rows_iter(&self) -> impl Iterator<Item = &[f64]> {
        // `chunks_exact(0)` panics; a matrix with zero columns has an
        // empty buffer and `rows` conceptually empty rows.
        let width = self.cols.max(1);
        self.data
            .chunks_exact(width)
            .take(if self.cols == 0 { 0 } else { self.rows })
    }

    /// Iterates over the rows as mutable contiguous slices.
    #[inline]
    pub fn rows_iter_mut(&mut self) -> impl Iterator<Item = &mut [f64]> {
        let width = self.cols.max(1);
        let rows = if self.cols == 0 { 0 } else { self.rows };
        self.data.chunks_exact_mut(width).take(rows)
    }

    /// Appends a row to the bottom of the matrix.
    ///
    /// # Panics
    ///
    /// Panics if `row.len() != self.cols()`.
    pub fn push_row(&mut self, row: &[f64]) {
        assert_eq!(row.len(), self.cols, "push_row length mismatch");
        self.data.extend_from_slice(row);
        self.rows += 1;
    }

    /// Consumes the matrix, returning its flat row-major buffer.
    ///
    /// The buffer can be recycled through a scratch arena and later
    /// rebuilt with [`Matrix::from_vec`] without reallocating.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// The flat row-major data buffer.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable access to the flat row-major data buffer.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Matrix-vector product `self * x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.cols()`.
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        let mut y = vec![0.0; self.rows];
        self.matvec_into(x, &mut y);
        y
    }

    /// Transposed matrix-vector product `self^T * x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.rows()`.
    pub fn matvec_transpose(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.rows, "matvec_transpose dimension mismatch");
        let mut y = vec![0.0; self.cols];
        for i in 0..self.rows {
            let xi = x[i];
            if xi == 0.0 {
                continue;
            }
            let row = self.row(i);
            for (yj, a) in y.iter_mut().zip(row.iter()) {
                *yj += xi * a;
            }
        }
        y
    }

    /// Matrix-vector product `self * x` written into a caller-provided
    /// buffer (no allocation).
    ///
    /// Dispatches to the best kernel arm for this CPU (see
    /// [`crate::kernels`]).
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.cols()` or `out.len() != self.rows()`.
    pub fn matvec_into(&self, x: &[f64], out: &mut [f64]) {
        assert_eq!(x.len(), self.cols, "matvec dimension mismatch");
        assert_eq!(out.len(), self.rows, "matvec_into output length mismatch");
        crate::kernels::active().matvec(&self.data, x, out);
    }

    /// Fused affine map `self * x + bias`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.cols()` or `bias.len() != self.rows()`.
    pub fn matvec_bias(&self, x: &[f64], bias: &[f64]) -> Vec<f64> {
        let mut y = vec![0.0; self.rows];
        self.matvec_bias_into(x, bias, &mut y);
        y
    }

    /// Fused affine map `self * x + bias` written into a caller-provided
    /// buffer. One pass over the weights; no temporary for `W x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.cols()`, or `bias`/`out` lengths differ
    /// from `self.rows()`.
    pub fn matvec_bias_into(&self, x: &[f64], bias: &[f64], out: &mut [f64]) {
        assert_eq!(x.len(), self.cols, "matvec_bias_into dimension mismatch");
        assert_eq!(bias.len(), self.rows, "matvec_bias_into bias mismatch");
        assert_eq!(out.len(), self.rows, "matvec_bias_into output mismatch");
        crate::kernels::active().matvec_bias(&self.data, x, bias, out);
    }

    /// Matrix product `self * other`.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != other.rows()`.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(self.rows, other.cols);
        self.gemm_into(other, &mut out.data);
        out
    }

    /// Matrix product `self * other` written into a caller-provided
    /// row-major buffer of length `self.rows() * other.cols()`.
    ///
    /// The buffer is fully overwritten; its prior contents are ignored.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != other.rows()` or the buffer length is
    /// wrong.
    pub fn gemm_into(&self, other: &Matrix, out: &mut [f64]) {
        assert_eq!(self.cols, other.rows, "matmul dimension mismatch");
        let n = other.cols;
        assert_eq!(out.len(), self.rows * n, "gemm_into output length mismatch");
        crate::kernels::active().gemm(&self.data, &other.data, self.rows, self.cols, n, out);
    }

    /// Matrix product with a transposed right operand: `self * other^T`,
    /// without materializing the transpose.
    ///
    /// Both operands are walked along contiguous rows, so this is the
    /// cache-friendly kernel for "map every row of `self` through the
    /// linear map `other`" (e.g. pushing a zonotope's generator matrix
    /// through a layer's weights).
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != other.cols()`.
    pub fn matmul_transb(&self, other: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(self.rows, other.rows);
        self.matmul_transb_into(other, &mut out.data);
        out
    }

    /// [`Matrix::matmul_transb`] writing into a caller-provided row-major
    /// buffer of length `self.rows() * other.rows()`.
    ///
    /// Dispatches to the best register-tiled kernel arm for this CPU —
    /// AVX2+FMA, NEON, or the portable 4×4-tiled scalar kernel (see
    /// [`crate::kernels`]). The buffer is fully overwritten.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != other.cols()` or the buffer length is
    /// wrong.
    pub fn matmul_transb_into(&self, other: &Matrix, out: &mut [f64]) {
        assert_eq!(
            self.cols, other.cols,
            "matmul_transb inner dimension mismatch"
        );
        let (m, n, k) = (self.rows, other.rows, self.cols);
        assert_eq!(out.len(), m * n, "matmul_transb output length mismatch");
        crate::kernels::active().matmul_transb(&self.data, &other.data, m, n, k, out);
    }

    /// Fused `self * otherᵀ + bias` (bias broadcast along rows): the
    /// batched affine layer map. Each output row `i` is
    /// `other · self.row(i) + bias`.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != other.cols()` or
    /// `bias.len() != other.rows()`.
    pub fn matmul_transb_bias(&self, other: &Matrix, bias: &[f64]) -> Matrix {
        assert_eq!(bias.len(), other.rows, "matmul_transb_bias bias mismatch");
        let mut out = self.matmul_transb(other);
        for row in out.rows_iter_mut() {
            for (o, b) in row.iter_mut().zip(bias.iter()) {
                *o += b;
            }
        }
        out
    }

    /// Returns the transpose of this matrix.
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                t.set(j, i, self.get(i, j));
            }
        }
        t
    }

    /// Adds `other` element-wise into `self`.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn add_assign(&mut self, other: &Matrix) {
        assert_eq!(self.rows, other.rows, "shape mismatch");
        assert_eq!(self.cols, other.cols, "shape mismatch");
        for (a, b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += b;
        }
    }

    /// Scales every element by `factor`.
    pub fn scale(&mut self, factor: f64) {
        for a in &mut self.data {
            *a *= factor;
        }
    }

    /// Maximum absolute row sum (the operator infinity-norm).
    pub fn norm_inf(&self) -> f64 {
        (0..self.rows)
            .map(|i| self.row(i).iter().map(|v| v.abs()).sum::<f64>())
            .fold(0.0, f64::max)
    }

    /// Frobenius norm.
    pub fn norm_frobenius(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }
}

impl std::fmt::Display for Matrix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for i in 0..self.rows {
            write!(f, "[")?;
            for j in 0..self.cols {
                if j > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{:.4}", self.get(i, j))?;
            }
            writeln!(f, "]")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_matvec_is_noop() {
        let i = Matrix::identity(4);
        let x = vec![1.0, -2.0, 3.5, 0.0];
        assert_eq!(i.matvec(&x), x);
    }

    #[test]
    fn matvec_known_values() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        assert_eq!(m.matvec(&[1.0, -1.0]), vec![-1.0, -1.0, -1.0]);
    }

    #[test]
    fn matmul_matches_manual() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        let c = a.matmul(&b);
        assert_eq!(c, Matrix::from_rows(&[&[2.0, 1.0], &[4.0, 3.0]]));
    }

    #[test]
    fn transpose_roundtrip() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn matvec_transpose_agrees_with_explicit_transpose() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let x = vec![1.0, 2.0];
        assert_eq!(a.matvec_transpose(&x), a.transpose().matvec(&x));
    }

    #[test]
    fn norms() {
        let a = Matrix::from_rows(&[&[3.0, -4.0], &[1.0, 1.0]]);
        assert_eq!(a.norm_inf(), 7.0);
        assert!((a.norm_frobenius() - (27.0f64).sqrt()).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn matvec_wrong_len_panics() {
        Matrix::zeros(2, 3).matvec(&[1.0, 2.0]);
    }

    #[test]
    fn from_fn_fills_positions() {
        let m = Matrix::from_fn(2, 2, |i, j| (i * 10 + j) as f64);
        assert_eq!(m.get(1, 0), 10.0);
        assert_eq!(m.get(1, 1), 11.0);
    }

    #[test]
    fn from_fn_is_row_major_order() {
        let mut calls = Vec::new();
        Matrix::from_fn(2, 3, |i, j| {
            calls.push((i, j));
            0.0
        });
        assert_eq!(
            calls,
            vec![(0, 0), (0, 1), (0, 2), (1, 0), (1, 1), (1, 2)]
        );
    }

    #[test]
    fn rows_iter_yields_each_row() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        let rows: Vec<&[f64]> = m.rows_iter().collect();
        assert_eq!(rows, vec![&[1.0, 2.0][..], &[3.0, 4.0], &[5.0, 6.0]]);
        assert_eq!(Matrix::zeros(3, 0).rows_iter().count(), 0);
        assert_eq!(Matrix::zeros(0, 3).rows_iter().count(), 0);
    }

    #[test]
    fn push_row_grows_matrix() {
        let mut m = Matrix::zeros(0, 2);
        m.push_row(&[1.0, 2.0]);
        m.push_row(&[3.0, 4.0]);
        assert_eq!(m, Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]));
    }

    #[test]
    fn matvec_bias_fuses_add() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let x = [1.0, -1.0];
        let bias = [10.0, 20.0];
        assert_eq!(m.matvec_bias(&x, &bias), vec![9.0, 19.0]);
        let mut out = vec![f64::NAN; 2];
        m.matvec_bias_into(&x, &bias, &mut out);
        assert_eq!(out, vec![9.0, 19.0]);
    }

    #[test]
    fn matmul_transb_matches_explicit_transpose() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let b = Matrix::from_rows(&[&[1.0, 0.0, -1.0], &[2.0, 1.0, 0.5], &[0.0, 3.0, 1.0]]);
        assert_eq!(a.matmul_transb(&b), a.matmul(&b.transpose()));
    }

    #[test]
    fn matmul_transb_blocked_on_large_shapes() {
        // Shapes that exercise the IB/KB tiling remainders.
        let a = Matrix::from_fn(13, 700, |i, j| ((i * 31 + j * 7) % 11) as f64 - 5.0);
        let b = Matrix::from_fn(9, 700, |i, j| ((i * 17 + j * 3) % 13) as f64 - 6.0);
        let blocked = a.matmul_transb(&b);
        let naive = a.matmul(&b.transpose());
        for (x, y) in blocked.as_slice().iter().zip(naive.as_slice()) {
            assert!((x - y).abs() < 1e-9, "blocked {x} vs naive {y}");
        }
    }

    #[test]
    fn matmul_transb_empty_inner_dim_is_zero() {
        let a = Matrix::zeros(3, 0);
        let b = Matrix::zeros(2, 0);
        assert_eq!(a.matmul_transb(&b), Matrix::zeros(3, 2));
    }

    #[test]
    fn gemm_into_overwrites_stale_buffer() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        let mut out = vec![f64::NAN; 4];
        a.gemm_into(&b, &mut out);
        assert_eq!(out, vec![2.0, 1.0, 4.0, 3.0]);
    }

    #[test]
    fn matvec_into_matches_matvec() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        let x = [1.0, -1.0];
        let mut out = vec![f64::NAN; 3];
        m.matvec_into(&x, &mut out);
        assert_eq!(out, m.matvec(&x));
    }
}
