use serde::{Deserialize, Serialize};

/// A dense, row-major matrix of `f64` values.
///
/// # Examples
///
/// ```
/// use tensor::Matrix;
///
/// let m = Matrix::zeros(2, 3);
/// assert_eq!(m.rows(), 2);
/// assert_eq!(m.cols(), 3);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a `rows x cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates the `n x n` identity matrix.
    ///
    /// ```
    /// let i = tensor::Matrix::identity(3);
    /// assert_eq!(i.get(1, 1), 1.0);
    /// assert_eq!(i.get(0, 1), 0.0);
    /// ```
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m.set(i, i, 1.0);
        }
        m
    }

    /// Creates a matrix from a flat row-major buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "buffer length {} does not match {rows}x{cols}",
            data.len()
        );
        Matrix { rows, cols, data }
    }

    /// Creates a matrix from a slice of row slices.
    ///
    /// # Panics
    ///
    /// Panics if the rows do not all have the same length.
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        let nrows = rows.len();
        let ncols = rows.first().map_or(0, |r| r.len());
        let mut data = Vec::with_capacity(nrows * ncols);
        for row in rows {
            assert_eq!(row.len(), ncols, "ragged rows in Matrix::from_rows");
            data.extend_from_slice(row);
        }
        Matrix {
            rows: nrows,
            cols: ncols,
            data,
        }
    }

    /// Creates a matrix by evaluating `f(row, col)` at every position.
    ///
    /// Fills the flat row-major buffer directly, so building large weight
    /// matrices pays no per-element bounds checks.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(f(i, j));
            }
        }
        Matrix { rows, cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Returns the element at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of bounds.
    #[inline]
    pub fn get(&self, row: usize, col: usize) -> f64 {
        assert!(row < self.rows && col < self.cols, "index out of bounds");
        self.data[row * self.cols + col]
    }

    /// Sets the element at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of bounds.
    #[inline]
    pub fn set(&mut self, row: usize, col: usize, value: f64) {
        assert!(row < self.rows && col < self.cols, "index out of bounds");
        self.data[row * self.cols + col] = value;
    }

    /// Borrows row `row` as a slice.
    #[inline]
    pub fn row(&self, row: usize) -> &[f64] {
        &self.data[row * self.cols..(row + 1) * self.cols]
    }

    /// Mutably borrows row `row` as a slice.
    #[inline]
    pub fn row_mut(&mut self, row: usize) -> &mut [f64] {
        &mut self.data[row * self.cols..(row + 1) * self.cols]
    }

    /// Iterates over the rows as contiguous slices.
    ///
    /// Inner loops over `rows_iter()` pay one bounds check per *row*
    /// instead of one per element, unlike repeated `get()` calls.
    #[inline]
    pub fn rows_iter(&self) -> impl Iterator<Item = &[f64]> {
        // `chunks_exact(0)` panics; a matrix with zero columns has an
        // empty buffer and `rows` conceptually empty rows.
        let width = self.cols.max(1);
        self.data
            .chunks_exact(width)
            .take(if self.cols == 0 { 0 } else { self.rows })
    }

    /// Iterates over the rows as mutable contiguous slices.
    #[inline]
    pub fn rows_iter_mut(&mut self) -> impl Iterator<Item = &mut [f64]> {
        let width = self.cols.max(1);
        let rows = if self.cols == 0 { 0 } else { self.rows };
        self.data.chunks_exact_mut(width).take(rows)
    }

    /// Appends a row to the bottom of the matrix.
    ///
    /// # Panics
    ///
    /// Panics if `row.len() != self.cols()`.
    pub fn push_row(&mut self, row: &[f64]) {
        assert_eq!(row.len(), self.cols, "push_row length mismatch");
        self.data.extend_from_slice(row);
        self.rows += 1;
    }

    /// Consumes the matrix, returning its flat row-major buffer.
    ///
    /// The buffer can be recycled through a scratch arena and later
    /// rebuilt with [`Matrix::from_vec`] without reallocating.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// The flat row-major data buffer.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable access to the flat row-major data buffer.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Matrix-vector product `self * x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.cols()`.
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.cols, "matvec dimension mismatch");
        let mut y = vec![0.0; self.rows];
        for i in 0..self.rows {
            let row = self.row(i);
            let mut acc = 0.0;
            for (a, b) in row.iter().zip(x.iter()) {
                acc += a * b;
            }
            y[i] = acc;
        }
        y
    }

    /// Transposed matrix-vector product `self^T * x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.rows()`.
    pub fn matvec_transpose(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.rows, "matvec_transpose dimension mismatch");
        let mut y = vec![0.0; self.cols];
        for i in 0..self.rows {
            let xi = x[i];
            if xi == 0.0 {
                continue;
            }
            let row = self.row(i);
            for (yj, a) in y.iter_mut().zip(row.iter()) {
                *yj += xi * a;
            }
        }
        y
    }

    /// Matrix-vector product `self * x` written into a caller-provided
    /// buffer (no allocation).
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.cols()` or `out.len() != self.rows()`.
    pub fn matvec_into(&self, x: &[f64], out: &mut [f64]) {
        assert_eq!(x.len(), self.cols, "matvec_into dimension mismatch");
        assert_eq!(out.len(), self.rows, "matvec_into output length mismatch");
        for (yi, row) in out.iter_mut().zip(self.rows_iter()) {
            let mut acc = 0.0;
            for (a, b) in row.iter().zip(x.iter()) {
                acc += a * b;
            }
            *yi = acc;
        }
    }

    /// Fused affine map `self * x + bias`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.cols()` or `bias.len() != self.rows()`.
    pub fn matvec_bias(&self, x: &[f64], bias: &[f64]) -> Vec<f64> {
        let mut y = vec![0.0; self.rows];
        self.matvec_bias_into(x, bias, &mut y);
        y
    }

    /// Fused affine map `self * x + bias` written into a caller-provided
    /// buffer. One pass over the weights; no temporary for `W x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.cols()`, or `bias`/`out` lengths differ
    /// from `self.rows()`.
    pub fn matvec_bias_into(&self, x: &[f64], bias: &[f64], out: &mut [f64]) {
        assert_eq!(x.len(), self.cols, "matvec_bias_into dimension mismatch");
        assert_eq!(bias.len(), self.rows, "matvec_bias_into bias mismatch");
        assert_eq!(out.len(), self.rows, "matvec_bias_into output mismatch");
        for ((yi, bi), row) in out.iter_mut().zip(bias.iter()).zip(self.rows_iter()) {
            let mut acc = 0.0;
            for (a, b) in row.iter().zip(x.iter()) {
                acc += a * b;
            }
            *yi = acc + bi;
        }
    }

    /// Matrix product `self * other`.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != other.rows()`.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(self.rows, other.cols);
        self.gemm_into(other, &mut out.data);
        out
    }

    /// Matrix product `self * other` written into a caller-provided
    /// row-major buffer of length `self.rows() * other.cols()`.
    ///
    /// The buffer is fully overwritten; its prior contents are ignored.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != other.rows()` or the buffer length is
    /// wrong.
    pub fn gemm_into(&self, other: &Matrix, out: &mut [f64]) {
        assert_eq!(self.cols, other.rows, "matmul dimension mismatch");
        let n = other.cols;
        assert_eq!(out.len(), self.rows * n, "gemm_into output length mismatch");
        out.fill(0.0);
        if n == 0 {
            return;
        }
        for (arow, orow) in self.rows_iter().zip(out.chunks_exact_mut(n)) {
            for (k, &aik) in arow.iter().enumerate() {
                if aik == 0.0 {
                    continue;
                }
                let brow = other.row(k);
                for (o, b) in orow.iter_mut().zip(brow.iter()) {
                    *o += aik * b;
                }
            }
        }
    }

    /// Matrix product with a transposed right operand: `self * other^T`,
    /// without materializing the transpose.
    ///
    /// Both operands are walked along contiguous rows, so this is the
    /// cache-friendly kernel for "map every row of `self` through the
    /// linear map `other`" (e.g. pushing a zonotope's generator matrix
    /// through a layer's weights).
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != other.cols()`.
    pub fn matmul_transb(&self, other: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(self.rows, other.rows);
        self.matmul_transb_into(other, &mut out.data);
        out
    }

    /// [`Matrix::matmul_transb`] writing into a caller-provided row-major
    /// buffer of length `self.rows() * other.rows()`.
    ///
    /// The kernel is register-tiled: 4 rows of `self` meet 4 rows of
    /// `other` in a 4×4 micro-kernel, so every operand load feeds four
    /// multiply-adds instead of one, and the inner dimension is tiled so
    /// the working set stays cache-resident. Remainder rows fall back to
    /// narrower dot kernels. The buffer is fully overwritten.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != other.cols()` or the buffer length is
    /// wrong.
    pub fn matmul_transb_into(&self, other: &Matrix, out: &mut [f64]) {
        assert_eq!(
            self.cols, other.cols,
            "matmul_transb inner dimension mismatch"
        );
        let (m, n, k) = (self.rows, other.rows, self.cols);
        assert_eq!(out.len(), m * n, "matmul_transb output length mismatch");
        // k-tile keeps the 8 active rows (4 of `self`, 4 of `other`)
        // within L1: 8 * KB * 8 bytes = 32 KiB.
        const KB: usize = 512;
        out.fill(0.0);
        let a = &self.data;
        let b = &other.data;
        let mut k0 = 0;
        while k0 < k.max(1) {
            let kb = KB.min(k - k0);
            let arow = |r: usize| &a[r * k + k0..r * k + k0 + kb];
            let brow = |r: usize| &b[r * k + k0..r * k + k0 + kb];
            let mut i = 0;
            while i + 4 <= m {
                let (a0, a1, a2, a3) = (arow(i), arow(i + 1), arow(i + 2), arow(i + 3));
                let mut j = 0;
                while j + 4 <= n {
                    let tile = tile4x4(
                        [a0, a1, a2, a3],
                        [brow(j), brow(j + 1), brow(j + 2), brow(j + 3)],
                    );
                    for (r, row) in tile.iter().enumerate() {
                        for (c, v) in row.iter().enumerate() {
                            out[(i + r) * n + j + c] += v;
                        }
                    }
                    j += 4;
                }
                while j < n {
                    let dots = dot4_unrolled(a0, a1, a2, a3, brow(j));
                    for (r, d) in dots.into_iter().enumerate() {
                        out[(i + r) * n + j] += d;
                    }
                    j += 1;
                }
                i += 4;
            }
            while i < m {
                for j in 0..n {
                    out[i * n + j] += dot_unrolled(arow(i), brow(j));
                }
                i += 1;
            }
            k0 += kb.max(1);
        }
    }

    /// Returns the transpose of this matrix.
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                t.set(j, i, self.get(i, j));
            }
        }
        t
    }

    /// Adds `other` element-wise into `self`.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn add_assign(&mut self, other: &Matrix) {
        assert_eq!(self.rows, other.rows, "shape mismatch");
        assert_eq!(self.cols, other.cols, "shape mismatch");
        for (a, b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += b;
        }
    }

    /// Scales every element by `factor`.
    pub fn scale(&mut self, factor: f64) {
        for a in &mut self.data {
            *a *= factor;
        }
    }

    /// Maximum absolute row sum (the operator infinity-norm).
    pub fn norm_inf(&self) -> f64 {
        (0..self.rows)
            .map(|i| self.row(i).iter().map(|v| v.abs()).sum::<f64>())
            .fold(0.0, f64::max)
    }

    /// Frobenius norm.
    pub fn norm_frobenius(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }
}

/// Dot product with eight independent accumulators.
///
/// A single-accumulator dot is latency-bound: every add waits on the
/// previous one, capping throughput at one element per FP-add latency.
/// Eight parallel chains keep the adder pipeline full (and give LLVM a
/// reduction it can vectorize). The price is a different summation
/// association than a naive ascending loop — equal within the usual
/// `O(k·eps)` reassociation error, covered by the kernel equivalence
/// suite.
/// 4×4 register-tile micro-kernel: sixteen dot products between four
/// left rows and four right rows, sharing every operand load across four
/// multiply-adds.
///
/// This is the classic GEMM register tile. Sixteen independent
/// accumulator chains hide FP-add latency, and the load:FLOP ratio drops
/// from 2:1 (plain dot) to 1:2, which is what lifts the kernel off the
/// load-port ceiling. Same reassociation caveat as [`dot_unrolled`].
///
/// All eight slices must have equal length (callers slice them to the
/// same k-tile).
#[inline]
fn tile4x4(a: [&[f64]; 4], b: [&[f64]; 4]) -> [[f64; 4]; 4] {
    let kb = b[0].len();
    let mut acc = [[0.0f64; 4]; 4];
    let chunks = kb / 4;
    for c in 0..chunks {
        let o = c * 4;
        let lane = |s: &[f64]| -> [f64; 4] { s[o..o + 4].try_into().expect("chunk is 4 wide") };
        let la = a.map(lane);
        let lb = b.map(lane);
        for (ai, arow) in la.iter().enumerate() {
            for (bj, brow) in lb.iter().enumerate() {
                let mut s = 0.0;
                for l in 0..4 {
                    s += arow[l] * brow[l];
                }
                acc[ai][bj] += s;
            }
        }
    }
    for o in chunks * 4..kb {
        for (ai, arow) in a.iter().enumerate() {
            let av = arow[o];
            for (bj, brow) in b.iter().enumerate() {
                acc[ai][bj] += av * brow[o];
            }
        }
    }
    acc
}

/// Four simultaneous dot products against a shared right-hand side.
///
/// The dominant cost of the blocked kernel is load traffic: a plain dot
/// issues two loads per multiply-add. Amortizing each `b` load over four
/// `a` rows drops that to 1.25 loads per multiply-add, and the sixteen
/// independent accumulator chains keep the FP pipeline saturated. Same
/// reassociation caveat as [`dot_unrolled`].
///
/// All five slices must have equal length (callers slice them to the
/// same k-tile).
#[inline]
fn dot4_unrolled(a0: &[f64], a1: &[f64], a2: &[f64], a3: &[f64], b: &[f64]) -> [f64; 4] {
    let mut acc = [[0.0f64; 4]; 4];
    let mut c0 = a0.chunks_exact(4);
    let mut c1 = a1.chunks_exact(4);
    let mut c2 = a2.chunks_exact(4);
    let mut c3 = a3.chunks_exact(4);
    let mut cb = b.chunks_exact(4);
    for ((((r0, r1), r2), r3), bb) in (&mut c0).zip(&mut c1).zip(&mut c2).zip(&mut c3).zip(&mut cb)
    {
        let r0: &[f64; 4] = r0.try_into().expect("chunk is 4 wide");
        let r1: &[f64; 4] = r1.try_into().expect("chunk is 4 wide");
        let r2: &[f64; 4] = r2.try_into().expect("chunk is 4 wide");
        let r3: &[f64; 4] = r3.try_into().expect("chunk is 4 wide");
        let bb: &[f64; 4] = bb.try_into().expect("chunk is 4 wide");
        for i in 0..4 {
            acc[0][i] += r0[i] * bb[i];
            acc[1][i] += r1[i] * bb[i];
            acc[2][i] += r2[i] * bb[i];
            acc[3][i] += r3[i] * bb[i];
        }
    }
    let tail = b.len() - cb.remainder().len();
    for o in tail..b.len() {
        acc[0][0] += a0[o] * b[o];
        acc[1][0] += a1[o] * b[o];
        acc[2][0] += a2[o] * b[o];
        acc[3][0] += a3[o] * b[o];
    }
    let reduce = |s: &[f64; 4]| (s[0] + s[2]) + (s[1] + s[3]);
    [reduce(&acc[0]), reduce(&acc[1]), reduce(&acc[2]), reduce(&acc[3])]
}

#[inline]
fn dot_unrolled(a: &[f64], b: &[f64]) -> f64 {
    let mut acc = [0.0f64; 8];
    let mut chunks_a = a.chunks_exact(8);
    let mut chunks_b = b.chunks_exact(8);
    for (ca, cb) in (&mut chunks_a).zip(&mut chunks_b) {
        let ca: &[f64; 8] = ca.try_into().expect("chunk is 8 wide");
        let cb: &[f64; 8] = cb.try_into().expect("chunk is 8 wide");
        for i in 0..8 {
            acc[i] += ca[i] * cb[i];
        }
    }
    let mut tail = 0.0;
    for (x, y) in chunks_a.remainder().iter().zip(chunks_b.remainder()) {
        tail += x * y;
    }
    (((acc[0] + acc[4]) + (acc[1] + acc[5])) + ((acc[2] + acc[6]) + (acc[3] + acc[7]))) + tail
}

impl std::fmt::Display for Matrix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for i in 0..self.rows {
            write!(f, "[")?;
            for j in 0..self.cols {
                if j > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{:.4}", self.get(i, j))?;
            }
            writeln!(f, "]")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_matvec_is_noop() {
        let i = Matrix::identity(4);
        let x = vec![1.0, -2.0, 3.5, 0.0];
        assert_eq!(i.matvec(&x), x);
    }

    #[test]
    fn matvec_known_values() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        assert_eq!(m.matvec(&[1.0, -1.0]), vec![-1.0, -1.0, -1.0]);
    }

    #[test]
    fn matmul_matches_manual() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        let c = a.matmul(&b);
        assert_eq!(c, Matrix::from_rows(&[&[2.0, 1.0], &[4.0, 3.0]]));
    }

    #[test]
    fn transpose_roundtrip() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn matvec_transpose_agrees_with_explicit_transpose() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let x = vec![1.0, 2.0];
        assert_eq!(a.matvec_transpose(&x), a.transpose().matvec(&x));
    }

    #[test]
    fn norms() {
        let a = Matrix::from_rows(&[&[3.0, -4.0], &[1.0, 1.0]]);
        assert_eq!(a.norm_inf(), 7.0);
        assert!((a.norm_frobenius() - (27.0f64).sqrt()).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn matvec_wrong_len_panics() {
        Matrix::zeros(2, 3).matvec(&[1.0, 2.0]);
    }

    #[test]
    fn from_fn_fills_positions() {
        let m = Matrix::from_fn(2, 2, |i, j| (i * 10 + j) as f64);
        assert_eq!(m.get(1, 0), 10.0);
        assert_eq!(m.get(1, 1), 11.0);
    }

    #[test]
    fn from_fn_is_row_major_order() {
        let mut calls = Vec::new();
        Matrix::from_fn(2, 3, |i, j| {
            calls.push((i, j));
            0.0
        });
        assert_eq!(
            calls,
            vec![(0, 0), (0, 1), (0, 2), (1, 0), (1, 1), (1, 2)]
        );
    }

    #[test]
    fn rows_iter_yields_each_row() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        let rows: Vec<&[f64]> = m.rows_iter().collect();
        assert_eq!(rows, vec![&[1.0, 2.0][..], &[3.0, 4.0], &[5.0, 6.0]]);
        assert_eq!(Matrix::zeros(3, 0).rows_iter().count(), 0);
        assert_eq!(Matrix::zeros(0, 3).rows_iter().count(), 0);
    }

    #[test]
    fn push_row_grows_matrix() {
        let mut m = Matrix::zeros(0, 2);
        m.push_row(&[1.0, 2.0]);
        m.push_row(&[3.0, 4.0]);
        assert_eq!(m, Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]));
    }

    #[test]
    fn matvec_bias_fuses_add() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let x = [1.0, -1.0];
        let bias = [10.0, 20.0];
        assert_eq!(m.matvec_bias(&x, &bias), vec![9.0, 19.0]);
        let mut out = vec![f64::NAN; 2];
        m.matvec_bias_into(&x, &bias, &mut out);
        assert_eq!(out, vec![9.0, 19.0]);
    }

    #[test]
    fn matmul_transb_matches_explicit_transpose() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let b = Matrix::from_rows(&[&[1.0, 0.0, -1.0], &[2.0, 1.0, 0.5], &[0.0, 3.0, 1.0]]);
        assert_eq!(a.matmul_transb(&b), a.matmul(&b.transpose()));
    }

    #[test]
    fn matmul_transb_blocked_on_large_shapes() {
        // Shapes that exercise the IB/KB tiling remainders.
        let a = Matrix::from_fn(13, 700, |i, j| ((i * 31 + j * 7) % 11) as f64 - 5.0);
        let b = Matrix::from_fn(9, 700, |i, j| ((i * 17 + j * 3) % 13) as f64 - 6.0);
        let blocked = a.matmul_transb(&b);
        let naive = a.matmul(&b.transpose());
        for (x, y) in blocked.as_slice().iter().zip(naive.as_slice()) {
            assert!((x - y).abs() < 1e-9, "blocked {x} vs naive {y}");
        }
    }

    #[test]
    fn matmul_transb_empty_inner_dim_is_zero() {
        let a = Matrix::zeros(3, 0);
        let b = Matrix::zeros(2, 0);
        assert_eq!(a.matmul_transb(&b), Matrix::zeros(3, 2));
    }

    #[test]
    fn gemm_into_overwrites_stale_buffer() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        let mut out = vec![f64::NAN; 4];
        a.gemm_into(&b, &mut out);
        assert_eq!(out, vec![2.0, 1.0, 4.0, 3.0]);
    }

    #[test]
    fn matvec_into_matches_matvec() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        let x = [1.0, -1.0];
        let mut out = vec![f64::NAN; 3];
        m.matvec_into(&x, &mut out);
        assert_eq!(out, m.matvec(&x));
    }
}
