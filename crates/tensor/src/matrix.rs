use serde::{Deserialize, Serialize};

/// A dense, row-major matrix of `f64` values.
///
/// # Examples
///
/// ```
/// use tensor::Matrix;
///
/// let m = Matrix::zeros(2, 3);
/// assert_eq!(m.rows(), 2);
/// assert_eq!(m.cols(), 3);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a `rows x cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates the `n x n` identity matrix.
    ///
    /// ```
    /// let i = tensor::Matrix::identity(3);
    /// assert_eq!(i.get(1, 1), 1.0);
    /// assert_eq!(i.get(0, 1), 0.0);
    /// ```
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m.set(i, i, 1.0);
        }
        m
    }

    /// Creates a matrix from a flat row-major buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "buffer length {} does not match {rows}x{cols}",
            data.len()
        );
        Matrix { rows, cols, data }
    }

    /// Creates a matrix from a slice of row slices.
    ///
    /// # Panics
    ///
    /// Panics if the rows do not all have the same length.
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        let nrows = rows.len();
        let ncols = rows.first().map_or(0, |r| r.len());
        let mut data = Vec::with_capacity(nrows * ncols);
        for row in rows {
            assert_eq!(row.len(), ncols, "ragged rows in Matrix::from_rows");
            data.extend_from_slice(row);
        }
        Matrix {
            rows: nrows,
            cols: ncols,
            data,
        }
    }

    /// Creates a matrix by evaluating `f(row, col)` at every position.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut m = Matrix::zeros(rows, cols);
        for i in 0..rows {
            for j in 0..cols {
                m.set(i, j, f(i, j));
            }
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Returns the element at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of bounds.
    #[inline]
    pub fn get(&self, row: usize, col: usize) -> f64 {
        assert!(row < self.rows && col < self.cols, "index out of bounds");
        self.data[row * self.cols + col]
    }

    /// Sets the element at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of bounds.
    #[inline]
    pub fn set(&mut self, row: usize, col: usize, value: f64) {
        assert!(row < self.rows && col < self.cols, "index out of bounds");
        self.data[row * self.cols + col] = value;
    }

    /// Borrows row `row` as a slice.
    #[inline]
    pub fn row(&self, row: usize) -> &[f64] {
        &self.data[row * self.cols..(row + 1) * self.cols]
    }

    /// Mutably borrows row `row` as a slice.
    #[inline]
    pub fn row_mut(&mut self, row: usize) -> &mut [f64] {
        &mut self.data[row * self.cols..(row + 1) * self.cols]
    }

    /// The flat row-major data buffer.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable access to the flat row-major data buffer.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Matrix-vector product `self * x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.cols()`.
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.cols, "matvec dimension mismatch");
        let mut y = vec![0.0; self.rows];
        for i in 0..self.rows {
            let row = self.row(i);
            let mut acc = 0.0;
            for (a, b) in row.iter().zip(x.iter()) {
                acc += a * b;
            }
            y[i] = acc;
        }
        y
    }

    /// Transposed matrix-vector product `self^T * x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.rows()`.
    pub fn matvec_transpose(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.rows, "matvec_transpose dimension mismatch");
        let mut y = vec![0.0; self.cols];
        for i in 0..self.rows {
            let xi = x[i];
            if xi == 0.0 {
                continue;
            }
            let row = self.row(i);
            for (yj, a) in y.iter_mut().zip(row.iter()) {
                *yj += xi * a;
            }
        }
        y
    }

    /// Matrix product `self * other`.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != other.rows()`.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.rows, "matmul dimension mismatch");
        let mut out = Matrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self.get(i, k);
                if a == 0.0 {
                    continue;
                }
                let orow = other.row(k);
                let out_row = out.row_mut(i);
                for (o, b) in out_row.iter_mut().zip(orow.iter()) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// Returns the transpose of this matrix.
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                t.set(j, i, self.get(i, j));
            }
        }
        t
    }

    /// Adds `other` element-wise into `self`.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn add_assign(&mut self, other: &Matrix) {
        assert_eq!(self.rows, other.rows, "shape mismatch");
        assert_eq!(self.cols, other.cols, "shape mismatch");
        for (a, b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += b;
        }
    }

    /// Scales every element by `factor`.
    pub fn scale(&mut self, factor: f64) {
        for a in &mut self.data {
            *a *= factor;
        }
    }

    /// Maximum absolute row sum (the operator infinity-norm).
    pub fn norm_inf(&self) -> f64 {
        (0..self.rows)
            .map(|i| self.row(i).iter().map(|v| v.abs()).sum::<f64>())
            .fold(0.0, f64::max)
    }

    /// Frobenius norm.
    pub fn norm_frobenius(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }
}

impl std::fmt::Display for Matrix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for i in 0..self.rows {
            write!(f, "[")?;
            for j in 0..self.cols {
                if j > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{:.4}", self.get(i, j))?;
            }
            writeln!(f, "]")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_matvec_is_noop() {
        let i = Matrix::identity(4);
        let x = vec![1.0, -2.0, 3.5, 0.0];
        assert_eq!(i.matvec(&x), x);
    }

    #[test]
    fn matvec_known_values() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        assert_eq!(m.matvec(&[1.0, -1.0]), vec![-1.0, -1.0, -1.0]);
    }

    #[test]
    fn matmul_matches_manual() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        let c = a.matmul(&b);
        assert_eq!(c, Matrix::from_rows(&[&[2.0, 1.0], &[4.0, 3.0]]));
    }

    #[test]
    fn transpose_roundtrip() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn matvec_transpose_agrees_with_explicit_transpose() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let x = vec![1.0, 2.0];
        assert_eq!(a.matvec_transpose(&x), a.transpose().matvec(&x));
    }

    #[test]
    fn norms() {
        let a = Matrix::from_rows(&[&[3.0, -4.0], &[1.0, 1.0]]);
        assert_eq!(a.norm_inf(), 7.0);
        assert!((a.norm_frobenius() - (27.0f64).sqrt()).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn matvec_wrong_len_panics() {
        Matrix::zeros(2, 3).matvec(&[1.0, 2.0]);
    }

    #[test]
    fn from_fn_fills_positions() {
        let m = Matrix::from_fn(2, 2, |i, j| (i * 10 + j) as f64);
        assert_eq!(m.get(1, 0), 10.0);
        assert_eq!(m.get(1, 1), 11.0);
    }
}
