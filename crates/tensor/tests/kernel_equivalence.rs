//! Equivalence suite for the blocked/fused matrix kernels: every fast
//! path must agree with a straightforward triple-loop reference within
//! 1e-12, including empty and single-row edge cases.

use proptest::prelude::*;
use tensor::Matrix;

/// Reference `W x` with explicit index loops.
fn naive_matvec(w: &Matrix, x: &[f64]) -> Vec<f64> {
    (0..w.rows())
        .map(|r| (0..w.cols()).map(|c| w.row(r)[c] * x[c]).sum())
        .collect()
}

/// Reference `A · Bᵀ` with explicit index loops.
fn naive_matmul_transb(a: &Matrix, b: &Matrix) -> Matrix {
    let mut out = Matrix::zeros(a.rows(), b.rows());
    for i in 0..a.rows() {
        for j in 0..b.rows() {
            let mut acc = 0.0;
            for k in 0..a.cols() {
                acc += a.row(i)[k] * b.row(j)[k];
            }
            out.row_mut(i)[j] = acc;
        }
    }
    out
}

/// Reference `A · B` with explicit index loops.
fn naive_matmul(a: &Matrix, b: &Matrix) -> Matrix {
    let mut out = Matrix::zeros(a.rows(), b.cols());
    for i in 0..a.rows() {
        for j in 0..b.cols() {
            let mut acc = 0.0;
            for k in 0..a.cols() {
                acc += a.row(i)[k] * b.row(k)[j];
            }
            out.row_mut(i)[j] = acc;
        }
    }
    out
}

fn assert_close(fast: &[f64], reference: &[f64]) {
    assert_eq!(fast.len(), reference.len());
    for (a, b) in fast.iter().zip(reference.iter()) {
        assert!(
            (a - b).abs() <= 1e-12 * b.abs().max(1.0),
            "kernel {a} vs reference {b}"
        );
    }
}

proptest! {
    #[test]
    fn matvec_bias_matches_naive(rows in 1usize..12, cols in 1usize..12, seed in 0u64..1000) {
        let w = deterministic_matrix(rows, cols, seed);
        let x: Vec<f64> = (0..cols).map(|i| ((seed + i as u64) as f64 * 0.37).sin() * 4.0).collect();
        let bias: Vec<f64> = (0..rows).map(|i| ((seed + i as u64) as f64 * 0.61).cos() * 2.0).collect();
        let mut reference = naive_matvec(&w, &x);
        for (r, b) in reference.iter_mut().zip(bias.iter()) {
            *r += b;
        }
        assert_close(&w.matvec_bias(&x, &bias), &reference);

        let mut out = vec![f64::NAN; rows];
        w.matvec_bias_into(&x, &bias, &mut out);
        assert_close(&out, &reference);
    }

    #[test]
    fn matmul_transb_matches_naive_on_random_shapes(
        arows in 1usize..10,
        k in 1usize..600,
        jrows in 1usize..8,
        seed in 0u64..1000,
    ) {
        let a = deterministic_matrix(arows, k, seed);
        let b = deterministic_matrix(jrows, k, seed ^ 7);
        let fast = a.matmul_transb(&b);
        let reference = naive_matmul_transb(&a, &b);
        assert_close(fast.as_slice(), reference.as_slice());

        let mut out = vec![f64::NAN; a.rows() * jrows];
        a.matmul_transb_into(&b, &mut out);
        assert_close(&out, reference.as_slice());
    }

    #[test]
    fn gemm_matches_naive(m in 1usize..8, k in 1usize..8, n in 1usize..8, seed in 0u64..1000) {
        let a = deterministic_matrix(m, k, seed);
        let b = deterministic_matrix(k, n, seed ^ 0x5a5a);
        let fast = a.matmul(&b);
        let reference = naive_matmul(&a, &b);
        assert_close(fast.as_slice(), reference.as_slice());
    }

    #[test]
    fn matvec_into_matches_matvec_random(rows in 1usize..10, cols in 1usize..10, seed in 0u64..1000) {
        let w = deterministic_matrix(rows, cols, seed);
        let x: Vec<f64> = (0..cols).map(|i| ((seed + 3 * i as u64) as f64 * 0.11).sin()).collect();
        let mut out = vec![f64::NAN; rows];
        w.matvec_into(&x, &mut out);
        assert_close(&out, &naive_matvec(&w, &x));
    }
}

fn deterministic_matrix(rows: usize, cols: usize, seed: u64) -> Matrix {
    Matrix::from_fn(rows, cols, |r, c| {
        (((r * 31 + c * 17) as f64 + seed as f64) * 0.193).sin() * 5.0
    })
}

#[test]
fn empty_inner_dimension_yields_zero_products() {
    let a = Matrix::zeros(3, 0);
    let b = Matrix::zeros(4, 0);
    let out = a.matmul_transb(&b);
    assert_eq!(out.rows(), 3);
    assert_eq!(out.cols(), 4);
    assert!(out.as_slice().iter().all(|v| *v == 0.0));
}

#[test]
fn empty_row_count_yields_empty_product() {
    let a = Matrix::zeros(0, 5);
    let b = deterministic_matrix(3, 5, 1);
    let out = a.matmul_transb(&b);
    assert_eq!(out.rows(), 0);
    assert_eq!(out.cols(), 3);
}

#[test]
fn single_row_matmul_transb_is_a_matvec() {
    let a = deterministic_matrix(1, 9, 2);
    let b = deterministic_matrix(4, 9, 3);
    let product = a.matmul_transb(&b);
    let per_row: Vec<f64> = b.rows_iter().map(|r| tensor::ops::dot(a.row(0), r)).collect();
    assert_close(product.as_slice(), &per_row);
}

#[test]
fn blocked_kernel_exercises_k_tiling_remainders() {
    // 700 columns crosses the 512-wide k-tile boundary with a remainder;
    // 13 and 9 rows cross the row-block boundary with remainders.
    let a = deterministic_matrix(13, 700, 4);
    let b = deterministic_matrix(9, 700, 5);
    let fast = a.matmul_transb(&b);
    let reference = naive_matmul_transb(&a, &b);
    assert_close(fast.as_slice(), reference.as_slice());
}
