//! SIMD-vs-scalar equivalence suite: every dispatch arm the host can
//! execute must agree with the portable scalar arm within 4 ULP of the
//! accumulated magnitude, on odd sizes and unaligned tails.
//!
//! The arms sum in different orders (8-lane scalar chains, 4-wide AVX2
//! FMA chains, 2-wide NEON chains), so results are not bit-identical.
//! The comparison unit is the ULP of the *accumulation*, not of the
//! possibly-cancelled result: reassociated summation of `k` terms
//! drifts like a random walk of `O(√k)` roundings at magnitude
//! `Σ|aᵢ·bᵢ|`, so the suite pins every arm within
//! `4 ulp · √k · Σ|aᵢ·bᵢ|` of the scalar reference. A dropped lane or
//! a bad tail shows up at `Σ|aᵢ·bᵢ|/k` — ten orders of magnitude above
//! this tolerance — so the bound is tight where it matters.

use proptest::prelude::*;
use tensor::kernels::{self, Backend};

/// `|got - want| <= 4 ulp` at the reassociation magnitude
/// `√k · Σ|aᵢ·bᵢ|` of a length-`k` accumulation.
fn assert_within_4ulp(name: &str, got: f64, want: f64, mag: f64, k: usize) {
    let tol = 4.0 * f64::EPSILON * (k.max(1) as f64).sqrt() * mag.max(f64::MIN_POSITIVE);
    assert!(
        (got - want).abs() <= tol,
        "{name}: {got} vs scalar {want} (|Δ|={} > tol {tol}, mag {mag})",
        (got - want).abs()
    );
}

/// Deterministic pseudo-random buffer with sign changes and varied
/// magnitudes (so cancellation actually occurs).
fn filled(len: usize, seed: u64) -> Vec<f64> {
    (0..len)
        .map(|i| {
            let t = (i as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ seed;
            let u = (t >> 11) as f64 / (1u64 << 53) as f64;
            (u - 0.5) * 16.0
        })
        .collect()
}

/// Per-element `Σ|aᵢ·bᵢ|` for `A · Bᵀ`.
fn absdot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x * y).abs()).sum()
}

/// All arms the host can run except the scalar reference itself.
fn simd_arms() -> Vec<&'static Backend> {
    kernels::available()
        .into_iter()
        .filter(|b| b.name() != "scalar")
        .collect()
}

proptest! {
    /// `matmul_transb` agreement on odd shapes crossing the k-tile, the
    /// 2-row and 4-column micro-kernel remainders, with both operands at
    /// arbitrary (unaligned) element offsets into their backing buffers.
    #[test]
    fn matmul_transb_arms_agree(
        m in 1usize..9,
        n in 1usize..9,
        k in 1usize..700,
        aoff in 0usize..4,
        boff in 0usize..4,
        seed in 0u64..500,
    ) {
        let abuf = filled(aoff + m * k, seed);
        let bbuf = filled(boff + n * k, seed ^ 0xabcd);
        let a = &abuf[aoff..];
        let b = &bbuf[boff..];
        let mut want = vec![f64::NAN; m * n];
        kernels::scalar().matmul_transb(a, b, m, n, k, &mut want);
        for arm in simd_arms() {
            let mut got = vec![f64::NAN; m * n];
            arm.matmul_transb(a, b, m, n, k, &mut got);
            for i in 0..m {
                for j in 0..n {
                    let mag = absdot(&a[i * k..(i + 1) * k], &b[j * k..(j + 1) * k]);
                    assert_within_4ulp(arm.name(), got[i * n + j], want[i * n + j], mag, k);
                }
            }
        }
    }

    /// `gemm` agreement, including the zero-skip path (a block of the
    /// left operand is zeroed) and unaligned row starts.
    #[test]
    fn gemm_arms_agree(
        m in 1usize..7,
        k in 1usize..24,
        n in 1usize..19,
        aoff in 0usize..4,
        zero_from in 0usize..24,
        seed in 0u64..500,
    ) {
        let mut abuf = filled(aoff + m * k, seed);
        for v in abuf[aoff..].iter_mut().skip(zero_from.min(m * k)) {
            *v = 0.0;
        }
        let bbuf = filled(k * n, seed ^ 0x1234);
        let a = &abuf[aoff..];
        let mut want = vec![f64::NAN; m * n];
        kernels::scalar().gemm(a, &bbuf, m, k, n, &mut want);
        for arm in simd_arms() {
            let mut got = vec![f64::NAN; m * n];
            arm.gemm(a, &bbuf, m, k, n, &mut got);
            for i in 0..m {
                for j in 0..n {
                    let mag: f64 = (0..k).map(|kk| (a[i * k + kk] * bbuf[kk * n + j]).abs()).sum();
                    assert_within_4ulp(arm.name(), got[i * n + j], want[i * n + j], mag, k);
                }
            }
        }
    }

    /// `matvec` / `matvec_bias` agreement on odd row counts (exercising
    /// the row-quad remainder) and k past the column-block width.
    #[test]
    fn matvec_arms_agree(
        rows in 1usize..11,
        k in 1usize..3000,
        woff in 0usize..4,
        seed in 0u64..500,
    ) {
        let wbuf = filled(woff + rows * k, seed);
        let w = &wbuf[woff..];
        let x = filled(k, seed ^ 0x77);
        let bias = filled(rows, seed ^ 0x99);
        let mut want = vec![f64::NAN; rows];
        kernels::scalar().matvec(w, &x, &mut want);
        let mut want_bias = vec![f64::NAN; rows];
        kernels::scalar().matvec_bias(w, &x, &bias, &mut want_bias);
        for arm in simd_arms() {
            let mut got = vec![f64::NAN; rows];
            arm.matvec(w, &x, &mut got);
            let mut got_bias = vec![f64::NAN; rows];
            arm.matvec_bias(w, &x, &bias, &mut got_bias);
            for r in 0..rows {
                let mag = absdot(&w[r * k..(r + 1) * k], &x);
                assert_within_4ulp(arm.name(), got[r], want[r], mag, k);
                assert_within_4ulp(arm.name(), got_bias[r], want_bias[r], mag + bias[r].abs(), k);
            }
        }
    }

    /// The fused zonotope-affine entry point agrees across arms on both
    /// outputs (center and generator matrix).
    #[test]
    fn zonotope_affine_arms_agree(
        out_dim in 1usize..10,
        in_dim in 1usize..40,
        gens_n in 0usize..9,
        seed in 0u64..500,
    ) {
        let weights = filled(out_dim * in_dim, seed);
        let bias = filled(out_dim, seed ^ 0x5);
        let center = filled(in_dim, seed ^ 0x6);
        let gens = filled(gens_n * in_dim, seed ^ 0x7);
        let mut want_c = vec![f64::NAN; out_dim];
        let mut want_g = vec![f64::NAN; gens_n * out_dim];
        kernels::scalar().zonotope_affine(&weights, &bias, &center, &gens, &mut want_c, &mut want_g);
        for arm in simd_arms() {
            let mut got_c = vec![f64::NAN; out_dim];
            let mut got_g = vec![f64::NAN; gens_n * out_dim];
            arm.zonotope_affine(&weights, &bias, &center, &gens, &mut got_c, &mut got_g);
            for r in 0..out_dim {
                let mag = absdot(&weights[r * in_dim..(r + 1) * in_dim], &center) + bias[r].abs();
                assert_within_4ulp(arm.name(), got_c[r], want_c[r], mag, in_dim);
            }
            for g in 0..gens_n {
                for r in 0..out_dim {
                    let mag = absdot(
                        &gens[g * in_dim..(g + 1) * in_dim],
                        &weights[r * in_dim..(r + 1) * in_dim],
                    );
                    assert_within_4ulp(arm.name(), got_g[g * out_dim + r], want_g[g * out_dim + r], mag, in_dim);
                }
            }
        }
    }
}

/// The dispatch decision itself: with `CHARON_FORCE_SCALAR` unset the
/// active arm is whatever `available()` ranks best, and the arm cached
/// in the `OnceLock` never changes for the process lifetime.
#[test]
fn active_arm_is_stable() {
    let first = kernels::active().name();
    for _ in 0..8 {
        assert_eq!(kernels::active().name(), first);
    }
}

/// Directed case: k exactly at the 512 k-tile and 2048 column-block
/// boundaries, where off-by-one tiling bugs live.
#[test]
fn tile_boundary_sizes_agree() {
    for &k in &[511usize, 512, 513, 2047, 2048, 2049] {
        let (m, n) = (5, 6);
        let a = filled(m * k, 11);
        let b = filled(n * k, 13);
        let mut want = vec![f64::NAN; m * n];
        kernels::scalar().matmul_transb(&a, &b, m, n, k, &mut want);
        for arm in simd_arms() {
            let mut got = vec![f64::NAN; m * n];
            arm.matmul_transb(&a, &b, m, n, k, &mut got);
            for i in 0..m {
                for j in 0..n {
                    let mag = absdot(&a[i * k..(i + 1) * k], &b[j * k..(j + 1) * k]);
                    assert_within_4ulp(arm.name(), got[i * n + j], want[i * n + j], mag, k);
                }
            }
            let x = filled(k, 17);
            let mut wv = vec![f64::NAN; m];
            kernels::scalar().matvec(&a, &x, &mut wv);
            let mut gv = vec![f64::NAN; m];
            arm.matvec(&a, &x, &mut gv);
            for r in 0..m {
                let mag = absdot(&a[r * k..(r + 1) * k], &x);
                assert_within_4ulp(arm.name(), gv[r], wv[r], mag, k);
            }
        }
    }
}
