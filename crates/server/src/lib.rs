//! Verification-as-a-service: a crash-only, persistent job-queue daemon
//! serving robustness queries over a Unix or TCP socket.
//!
//! A running verification farm amortizes everything a one-shot CLI run
//! pays per query: model deserialization (the [`registry`] shares each
//! network by content hash), scratch-arena allocation (each worker
//! thread reuses one [`domains::Workspace`] across jobs via
//! [`charon::Verifier::try_verify_run_ws`]), and the verification itself
//! (the [`cache`] memoizes decisive verdicts keyed by network hash +
//! property + configuration). The protocol is newline-delimited flat
//! JSON ([`protocol`]), reusing the workspace codec in [`charon::json`].
//!
//! # Lifecycle guarantees
//!
//! * **Admission control** — a full [`queue::JobQueue`] answers `busy`
//!   (with a `retry_after_ms` hint derived from the queue drain rate)
//!   immediately; the daemon never buffers unbounded work. With a shed
//!   target configured, a CoDel-style sojourn controller
//!   ([`overload::SojournController`]) additionally sheds new
//!   low-priority work whenever queue latency has exceeded the target
//!   for a full control interval, holding the latency of admitted jobs
//!   near the target instead of letting it grow to the full queue
//!   depth.
//! * **Deadline propagation** — a `deadline_ms` on the request travels
//!   with the job: expired jobs are answered `deadline_expired` at
//!   dequeue without starting the verifier, and live jobs clamp the
//!   verifier budget to the remaining deadline minus
//!   [`ServerConfig::reply_margin`] ([`charon::deadline`]), so the
//!   anytime degradation ladder absorbs deadline pressure instead of a
//!   hard kill.
//! * **Crash-only durability** — with a [`journal::Journal`] configured,
//!   every accepted job is fsync'd to a CRC-framed write-ahead log
//!   *before* its acceptance is acknowledged, and every state transition
//!   (started, checkpointed, completed) is appended as it happens. After
//!   any process death — including `SIGKILL` — restarting on the same
//!   journal re-enqueues unstarted jobs, resumes checkpointed ones via
//!   the `charon-ckpt` path, retains recent terminal results for
//!   idempotent `query` re-delivery, and compacts the log.
//! * **Worker supervision** — each worker thread runs under a
//!   supervisor that detects its death, re-queues the orphaned job with
//!   a bounded retry budget, and respawns the worker with a fresh
//!   scratch arena. A job that kills workers [`ServerConfig::retry_budget`]
//!   times is quarantined as a typed `poisoned` verdict carrying the
//!   panic diagnostic instead of crash-looping the fleet.
//! * **Graceful drain** — a `drain` request stops admission, reports
//!   every still-queued job back to its submitter as `unstarted`,
//!   cancels in-flight jobs cooperatively so they return `charon-ckpt`
//!   checkpoints, and only then shuts down. The drain summary proves
//!   the accounting: `accepted == completed + checkpointed + unstarted`.
//! * **Observability** — `stats` reports queue depth, cache hit rate,
//!   registry sharing, recovery counters, and per-phase latency
//!   histograms merged across all workers (the same
//!   [`charon::telemetry::Metrics`] the CLI's `--report` renders).
//!
//! ```no_run
//! use server::{Client, Server, ServerAddr, ServerConfig};
//!
//! let config = ServerConfig {
//!     addr: ServerAddr::parse("unix:/tmp/charon.sock").unwrap(),
//!     journal: Some("/tmp/charon.wal".into()),
//!     ..ServerConfig::default()
//! };
//! let handle = Server::start(config).unwrap();
//! let mut client = Client::connect(handle.addr()).unwrap();
//! let pong = client.request("{\"request\": \"ping\"}").unwrap();
//! assert_eq!(pong.str_field("response").unwrap(), "pong");
//! ```

#![warn(missing_docs)]

pub mod cache;
pub mod client;
pub mod cluster;
pub mod faults;
pub mod journal;
pub mod net;
pub mod overload;
pub mod protocol;
pub mod queue;
pub mod registry;

pub use cache::{CacheKey, CachedResult, ResultCache};
pub use client::{connect_retry, submit_reliable, Client, ClientError, RetryPolicy};
pub use cluster::{Coordinator, CoordinatorConfig, CoordinatorHandle, MergeState};
pub use faults::{ServerFaultPlan, ServerFaultPlanBuilder};
pub use net::{ServerAddr, Stream};
pub use overload::{BreakerState, CircuitBreaker, SojournController};
pub use protocol::{Request, ShardRequest, ShardResult, VerifyRequest, PROTOCOL_VERSION};
pub use queue::{JobQueue, RejectReason};
pub use registry::ModelRegistry;

use std::collections::{HashMap, HashSet, VecDeque};
use std::io::{BufReader, Write};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use charon::json::ObjectBuilder;
use charon::telemetry::{Histogram, Metrics};
use charon::{
    BudgetKind, Checkpoint, RobustnessProperty, Verdict, Verifier, VerifierConfig, VerifyError,
};
use domains::Workspace;

use journal::{Journal, Record};
use net::{read_line_bounded, Listener, DEFAULT_MAX_LINE_BYTES};
use protocol::{
    accepted_response, checkpointed_response, error_response, pending_response, poisoned_response,
    pong_response, unknown_response, unstarted_response,
};

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Where to listen.
    pub addr: ServerAddr,
    /// Worker threads driving verifications (each owns one reused
    /// scratch arena and runs under a supervisor).
    pub workers: usize,
    /// Maximum queued (admitted but not started) jobs.
    pub queue_capacity: usize,
    /// Maximum memoized verdicts in the LRU result cache.
    pub cache_capacity: usize,
    /// Write-ahead journal path. `None` (the default) disables
    /// durability: a crash loses queued and in-flight jobs, exactly the
    /// pre-journal behavior.
    pub journal: Option<PathBuf>,
    /// Terminal results kept in memory for idempotent `query`
    /// re-delivery.
    pub results_capacity: usize,
    /// Worker deaths a single job may cause before it is quarantined
    /// with a `poisoned` verdict (journal-replayed `started` records
    /// count toward the same budget).
    pub retry_budget: u32,
    /// Cap on one received protocol line.
    pub max_line_bytes: usize,
    /// Per-connection read timeout. When it fires on a connection with
    /// no queued or in-flight jobs, the connection is closed; otherwise
    /// the daemon keeps waiting for the next request.
    pub read_timeout: Option<Duration>,
    /// Per-connection write timeout, so one stalled client cannot wedge
    /// a worker mid-response.
    pub write_timeout: Option<Duration>,
    /// Queue-sojourn target for the CoDel-style shed controller. When
    /// dequeues observe sojourn above this for a full
    /// [`ServerConfig::shed_interval`], new low-priority submissions
    /// are answered `busy` until latency is back under the target.
    /// `None` (the default) disables shedding; the bounded queue alone
    /// provides backpressure.
    pub shed_target: Option<Duration>,
    /// How long queue sojourn must stay above the target before the
    /// controller starts shedding (hysteresis against transient
    /// bursts).
    pub shed_interval: Duration,
    /// Wall-clock reserve subtracted from a job's remaining deadline
    /// before it becomes verifier budget, covering result
    /// serialization and the reply write. A job whose remaining
    /// deadline is within the margin is answered `deadline_expired`
    /// without starting.
    pub reply_margin: Duration,
    /// Deterministic service-level fault injection (tests only).
    pub faults: Option<Arc<ServerFaultPlan>>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: ServerAddr::Unix(std::env::temp_dir().join("charon-server.sock")),
            workers: 2,
            queue_capacity: 64,
            cache_capacity: 256,
            journal: None,
            results_capacity: 1024,
            retry_budget: 2,
            max_line_bytes: DEFAULT_MAX_LINE_BYTES,
            read_timeout: None,
            write_timeout: Some(Duration::from_secs(10)),
            shed_target: None,
            shed_interval: Duration::from_millis(100),
            reply_margin: Duration::from_millis(50),
            faults: None,
        }
    }
}

/// Where a job's responses go.
#[derive(Clone)]
enum Reply {
    /// The live submitting connection.
    Socket(Arc<Mutex<Stream>>),
    /// A journal-replayed job whose original connection died with the
    /// previous process; the terminal response is stored for `query`.
    Recovered,
}

/// One admitted verification job.
#[derive(Clone)]
struct Job {
    id: u64,
    request: VerifyRequest,
    accepted_at: Instant,
    cancel: Arc<AtomicBool>,
    reply: Reply,
    /// Execution attempts begun, across process lives.
    attempts: u32,
    /// Worker deaths attributed to this job (quarantine at
    /// `retry_budget`).
    kills: u32,
    /// Resume point recovered from the journal, if any.
    checkpoint: Option<String>,
}

fn send_line(reply: &Reply, line: &str) {
    // The client may be gone; a failed response write must not take the
    // daemon down (Rust already ignores SIGPIPE).
    let Reply::Socket(sock) = reply else { return };
    let mut writer = sock.lock().unwrap();
    let _ = writer.write_all(line.as_bytes());
    let _ = writer.write_all(b"\n");
    let _ = writer.flush();
}

#[derive(Default)]
struct Counters {
    accepted: AtomicU64,
    completed: AtomicU64,
    checkpointed: AtomicU64,
    unstarted: AtomicU64,
    rejected_full: AtomicU64,
    rejected_draining: AtomicU64,
    shed: AtomicU64,
    errored: AtomicU64,
    deadline_expired: AtomicU64,
    /// Wall-clock nanoseconds workers spent executing jobs, paired with
    /// `serviced` to expose the average service time the
    /// `retry_after_ms` estimator divides by.
    service_ns: AtomicU64,
    serviced: AtomicU64,
    replayed: AtomicU64,
    requeued: AtomicU64,
    quarantined: AtomicU64,
    worker_deaths: AtomicU64,
    journal_errors: AtomicU64,
    duplicates: AtomicU64,
    shards_executed: AtomicU64,
    shards_refuted: AtomicU64,
    shards_limited: AtomicU64,
}

/// Bounded store of terminal responses by job id, answering `query` and
/// deduplicated resubmissions.
struct ResultsStore {
    map: HashMap<u64, String>,
    order: VecDeque<u64>,
    capacity: usize,
}

impl ResultsStore {
    fn new(capacity: usize) -> Self {
        ResultsStore {
            map: HashMap::new(),
            order: VecDeque::new(),
            capacity: capacity.max(1),
        }
    }

    fn insert(&mut self, id: u64, line: String) {
        if self.map.insert(id, line).is_none() {
            self.order.push_back(id);
            while self.order.len() > self.capacity {
                if let Some(evicted) = self.order.pop_front() {
                    self.map.remove(&evicted);
                }
            }
        }
    }

    fn get(&self, id: u64) -> Option<String> {
        self.map.get(&id).cloned()
    }

    fn len(&self) -> usize {
        self.map.len()
    }
}

/// Whether a terminal response line is *retryable* (`busy`, or a
/// queue-full-class error): those must not be replayed to a
/// deduplicated resubmission as if they were the job's verdict.
fn is_retryable_response(line: &str) -> bool {
    let Ok(fields) = charon::json::parse_flat_object(line) else {
        return false;
    };
    match fields.str_field("response").as_deref() {
        Ok("busy") => true,
        Ok("error") => fields
            .str_field("error")
            .is_ok_and(|code| client::is_retryable_error_code(&code)),
        _ => false,
    }
}

struct Shared {
    registry: ModelRegistry,
    queue: JobQueue<Job>,
    cache: Mutex<ResultCache>,
    metrics: Mutex<Metrics>,
    job_hist: Mutex<Histogram>,
    counters: Counters,
    draining: AtomicBool,
    shutdown: AtomicBool,
    /// Cancellation flags of jobs currently being verified.
    inflight: Mutex<Vec<(u64, Arc<AtomicBool>)>>,
    /// Admitted jobs that have not yet reached a terminal response
    /// (completed, checkpointed, or unstarted). Drain waits on this.
    outstanding: Mutex<i64>,
    idle: Condvar,
    workers: usize,
    journal: Option<Mutex<Journal>>,
    results: Mutex<ResultsStore>,
    /// Ids of admitted jobs that are not yet terminal.
    known: Mutex<HashSet<u64>>,
    retry_budget: u32,
    max_line_bytes: usize,
    /// Sojourn-time shed controller (admission + dequeue feed it);
    /// absent when no shed target is configured.
    shed: Option<SojournController>,
    /// Reply-delivery reserve subtracted from remaining deadlines.
    reply_margin: Duration,
    faults: Option<Arc<ServerFaultPlan>>,
}

impl Shared {
    fn new(config: &ServerConfig, journal: Option<Journal>) -> Self {
        Shared {
            registry: ModelRegistry::new(),
            queue: JobQueue::new(config.queue_capacity),
            cache: Mutex::new(ResultCache::new(config.cache_capacity)),
            metrics: Mutex::new(Metrics::new()),
            job_hist: Mutex::new(Histogram::new()),
            counters: Counters::default(),
            draining: AtomicBool::new(false),
            shutdown: AtomicBool::new(false),
            inflight: Mutex::new(Vec::new()),
            outstanding: Mutex::new(0),
            idle: Condvar::new(),
            workers: config.workers,
            journal: journal.map(Mutex::new),
            results: Mutex::new(ResultsStore::new(config.results_capacity)),
            known: Mutex::new(HashSet::new()),
            retry_budget: config.retry_budget.max(1),
            max_line_bytes: config.max_line_bytes,
            shed: config
                .shed_target
                .map(|target| SojournController::new(target, config.shed_interval)),
            reply_margin: config.reply_margin,
            faults: config.faults.clone(),
        }
    }

    /// Observed mean service time (a moderate default until the first
    /// job completes).
    fn avg_service(&self) -> Duration {
        let serviced = self.counters.serviced.load(Ordering::Relaxed);
        match self
            .counters
            .service_ns
            .load(Ordering::Relaxed)
            .checked_div(serviced)
        {
            Some(mean_ns) => Duration::from_nanos(mean_ns),
            // Cold estimator: assume a moderate job until we've seen one.
            None => Duration::from_millis(100),
        }
    }

    /// Estimated queue sojourn a new arrival would face right now, from
    /// the queue depth and drain rate (unclamped, unlike the retry
    /// hint).
    fn queue_delay_estimate(&self) -> Duration {
        self.avg_service()
            .mul_f64(self.queue.len() as f64 / self.workers.max(1) as f64)
    }

    /// How long a refused client should wait before retrying, from the
    /// observed queue depth and average service time.
    fn retry_hint_ms(&self) -> u64 {
        overload::retry_after_ms(self.queue.len(), self.workers, self.avg_service())
    }

    /// Marks one admitted job terminal and wakes a waiting drain.
    fn job_terminal(&self) {
        let mut outstanding = self.outstanding.lock().unwrap();
        *outstanding -= 1;
        drop(outstanding);
        self.idle.notify_all();
    }

    /// Appends a load-bearing record; the caller decides what an error
    /// means (admission refuses the job on failure).
    fn journal_append(&self, record: &Record) -> std::io::Result<()> {
        match &self.journal {
            Some(journal) => journal.lock().unwrap().append(record),
            None => Ok(()),
        }
    }

    /// Appends a best-effort state-transition record; failures are
    /// counted but do not stop the job (replay just redoes more work).
    fn journal_transition(&self, record: &Record) {
        if self.journal_append(record).is_err() {
            self.counters.journal_errors.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Delivers a terminal response for an admitted job: journals the
    /// completion, stores it for `query`, releases the id, writes it to
    /// the submitter if the connection is still there, and settles the
    /// drain accounting.
    fn deliver(&self, id: u64, reply: &Reply, response: &str) {
        self.journal_transition(&Record::Completed {
            id,
            response: response.to_string(),
        });
        if !is_retryable_response(response) {
            self.results.lock().unwrap().insert(id, response.to_string());
        }
        self.known.lock().unwrap().remove(&id);
        send_line(reply, response);
        self.job_terminal();
    }
}

/// A running daemon.
pub struct Server;

/// Handle to a started daemon: its bound address plus the thread handles
/// [`ServerHandle::join`] waits on.
pub struct ServerHandle {
    addr: ServerAddr,
    listener: JoinHandle<()>,
    supervisors: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The address the daemon is listening on (for TCP port 0, the
    /// kernel-assigned port).
    pub fn addr(&self) -> &ServerAddr {
        &self.addr
    }

    /// Blocks until the daemon has drained and shut down.
    pub fn join(self) {
        let _ = self.listener.join();
        for supervisor in self.supervisors {
            let _ = supervisor.join();
        }
    }
}

impl Server {
    /// Opens the journal (replaying and compacting any existing one),
    /// binds the listener, and starts the supervised worker pool;
    /// returns immediately. The daemon runs until a client sends
    /// `drain`.
    ///
    /// # Errors
    ///
    /// Returns the bind error, or a journal open/replay error (a
    /// *corrupt* journal refuses to start rather than silently dropping
    /// jobs; a torn final record is expected crash damage and is fine).
    pub fn start(config: ServerConfig) -> std::io::Result<ServerHandle> {
        let (journal, replay) = match &config.journal {
            Some(path) => {
                let (journal, replay) = Journal::open(path, config.faults.clone())?;
                (Some(journal), Some(replay))
            }
            None => (None, None),
        };
        let listener = Listener::bind(&config.addr)?;
        let addr = listener.local_addr(&config.addr);
        let shared = Arc::new(Shared::new(&config, journal));

        if let Some(replay) = replay {
            restore(&shared, replay);
        }

        let mut supervisors = Vec::with_capacity(config.workers.max(1));
        for _ in 0..config.workers.max(1) {
            let shared = Arc::clone(&shared);
            supervisors.push(std::thread::spawn(move || supervisor_loop(&shared)));
        }

        let listen_shared = Arc::clone(&shared);
        let listen_addr = addr.clone();
        let read_timeout = config.read_timeout;
        let write_timeout = config.write_timeout;
        let listener_thread = std::thread::spawn(move || {
            loop {
                match listener.accept() {
                    Ok(stream) => {
                        if listen_shared.shutdown.load(Ordering::SeqCst) {
                            break;
                        }
                        if let Some(plan) = &listen_shared.faults {
                            if plan.conn_drop.check() {
                                stream.shutdown();
                                continue;
                            }
                        }
                        let _ = stream.set_read_timeout(read_timeout);
                        let _ = stream.set_write_timeout(write_timeout);
                        let shared = Arc::clone(&listen_shared);
                        let addr = listen_addr.clone();
                        std::thread::spawn(move || connection_loop(&shared, stream, &addr));
                    }
                    Err(_) => {
                        if listen_shared.shutdown.load(Ordering::SeqCst) {
                            break;
                        }
                    }
                }
            }
            if let ServerAddr::Unix(path) = &listen_addr {
                let _ = std::fs::remove_file(path);
            }
        });

        Ok(ServerHandle {
            addr,
            listener: listener_thread,
            supervisors,
        })
    }
}

/// Re-admits what the journal replay recovered: stored results become
/// queryable, live jobs are re-enqueued (resuming from their last
/// checkpoint), and jobs that were already in flight through
/// `retry_budget` process deaths are quarantined instead of being given
/// another chance to take the daemon down.
fn restore(shared: &Arc<Shared>, replay: journal::Replay) {
    {
        let mut results = shared.results.lock().unwrap();
        for (id, response) in replay.results {
            if !is_retryable_response(&response) {
                results.insert(id, response);
            }
        }
    }
    for recovered in replay.live {
        let id = recovered.request.id;
        shared.counters.accepted.fetch_add(1, Ordering::Relaxed);
        shared.counters.replayed.fetch_add(1, Ordering::Relaxed);
        *shared.outstanding.lock().unwrap() += 1;
        if recovered.starts >= shared.retry_budget {
            let response = poisoned_response(
                id,
                &format!(
                    "job was in flight during {} process deaths; quarantined on replay",
                    recovered.starts
                ),
                recovered.starts,
            );
            shared.counters.completed.fetch_add(1, Ordering::Relaxed);
            shared.counters.quarantined.fetch_add(1, Ordering::Relaxed);
            shared.deliver(id, &Reply::Recovered, &response);
            continue;
        }
        shared.known.lock().unwrap().insert(id);
        let priority = recovered.request.priority;
        let job = Job {
            id,
            request: recovered.request,
            accepted_at: Instant::now(),
            cancel: Arc::new(AtomicBool::new(false)),
            reply: Reply::Recovered,
            attempts: recovered.starts,
            kills: recovered.starts,
            checkpoint: recovered.checkpoint,
        };
        // `requeue`, not `push`: replayed jobs were admitted by a
        // previous life and must not bounce off the capacity check.
        if let Err((job, _)) = shared.queue.requeue(priority, job) {
            shared.counters.unstarted.fetch_add(1, Ordering::Relaxed);
            shared.deliver(job.id, &job.reply, &unstarted_response(job.id));
        }
    }
}

fn connection_loop(shared: &Arc<Shared>, stream: Stream, addr: &ServerAddr) {
    let sock: Arc<Mutex<Stream>> = match stream.try_clone() {
        Ok(writer) => Arc::new(Mutex::new(writer)),
        Err(_) => return,
    };
    let reply = Reply::Socket(Arc::clone(&sock));
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    // Shard requests (cluster tier) execute synchronously on this
    // connection thread; the scratch arena is created on first use so
    // plain clients pay nothing for it.
    let mut shard_ws: Option<Workspace> = None;
    loop {
        line.clear();
        match read_line_bounded(&mut reader, &mut line, shared.max_line_bytes) {
            Ok(0) => return,
            Ok(_) => {}
            Err(e) if e.kind() == std::io::ErrorKind::InvalidData => {
                send_line(&reply, &error_response(None, "bad_request", &e.to_string()));
                return;
            }
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                // Idle-timeout policy: close only if no queued or
                // in-flight job still holds this connection's reply
                // handle; otherwise keep waiting for the next request.
                // Two references are the connection's own (`sock` plus
                // the clone inside `reply`); anything beyond that is a
                // job that still owes this client a response.
                if Arc::strong_count(&sock) <= 2 {
                    return;
                }
                continue;
            }
            Err(_) => return,
        }
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        match Request::parse(trimmed) {
            Err(e) => send_line(&reply, &error_response(None, "bad_request", &e)),
            Ok(Request::Ping) => send_line(&reply, &pong_response()),
            Ok(Request::Stats) => send_line(&reply, &stats_response(shared)),
            Ok(Request::Query { id }) => {
                let stored = shared.results.lock().unwrap().get(id);
                let response = match stored {
                    Some(line) => line,
                    None if shared.known.lock().unwrap().contains(&id) => pending_response(id),
                    None => unknown_response(id),
                };
                send_line(&reply, &response);
            }
            Ok(Request::Verify(request)) => submit(shared, request, &sock),
            Ok(Request::Shard(shard)) => {
                let ws = shard_ws.get_or_insert_with(Workspace::new);
                let response = execute_shard(shared, &shard, ws);
                send_line(&reply, &response);
            }
            Ok(Request::NodeHello) => {
                send_line(&reply, &protocol::node_hello_response(shared.workers));
            }
            Ok(Request::NodeStats) => {
                let counters = &shared.counters;
                send_line(
                    &reply,
                    &protocol::node_stats_response(
                        counters.shards_executed.load(Ordering::Relaxed),
                        counters.shards_refuted.load(Ordering::Relaxed),
                        counters.shards_limited.load(Ordering::Relaxed),
                    ),
                );
            }
            Ok(Request::Drain) => {
                let summary = drain(shared);
                // Write the summary before waking the listener: once the
                // listener exits, `ServerHandle::join` returns and the
                // hosting process may exit, killing this thread. The
                // response must already be on the wire by then.
                send_line(&reply, &summary);
                shared.shutdown.store(true, Ordering::SeqCst);
                let _ = Stream::connect(addr);
                return;
            }
        }
    }
}

/// Admission control: reject while draining or at capacity, deduplicate
/// `ack`-mode resubmissions, journal, then enqueue. Every admitted job
/// is guaranteed a terminal response — by this process or, with a
/// journal, by the next one.
fn submit(shared: &Arc<Shared>, request: VerifyRequest, sock: &Arc<Mutex<Stream>>) {
    let id = request.id;
    let reply = Reply::Socket(Arc::clone(sock));
    if shared.draining.load(Ordering::SeqCst) {
        shared
            .counters
            .rejected_draining
            .fetch_add(1, Ordering::Relaxed);
        send_line(
            &reply,
            &error_response(Some(id), "draining", "daemon is draining; resubmit later"),
        );
        return;
    }
    if request.ack {
        // Idempotent ids: a resubmission (a retry whose ack or verdict
        // was lost in a crash) must not run the job twice.
        if shared.known.lock().unwrap().contains(&id) {
            shared.counters.duplicates.fetch_add(1, Ordering::Relaxed);
            send_line(&reply, &accepted_response(id, true));
            return;
        }
        if let Some(stored) = shared.results.lock().unwrap().get(id) {
            shared.counters.duplicates.fetch_add(1, Ordering::Relaxed);
            send_line(&reply, &stored);
            return;
        }
    }
    // The shed controller runs after deduplication (a retry of a job we
    // already hold must be answered, not shed) and before the journal
    // (a shed submission was never accepted, so nothing is persisted).
    // High-priority work rides through: shedding protects the latency
    // of the queue by refusing the newest low-priority arrivals.
    //
    // The refusal is additionally gated on the *estimated* delay a new
    // arrival would face: while the tripped controller waits for the
    // backlog to drain, admission resumes as soon as the queue is short
    // enough again — without this, a drained-empty queue produces no
    // dequeue observations and the latch would shed forever.
    if let Some(shed) = &shared.shed {
        if request.priority <= 0
            && shed.should_shed()
            && shared.queue_delay_estimate() >= shed.target()
        {
            shared.counters.shed.fetch_add(1, Ordering::Relaxed);
            send_line(
                &reply,
                &protocol::busy_response(id, shared.retry_hint_ms(), "shed"),
            );
            return;
        }
    }
    // The accepted record is load-bearing: it must be on disk before the
    // client hears anything, otherwise a crash between ack and disk
    // would silently lose an acknowledged job.
    if let Err(e) = shared.journal_append(&Record::Accepted {
        id,
        request: request.clone(),
    }) {
        shared.counters.journal_errors.fetch_add(1, Ordering::Relaxed);
        send_line(
            &reply,
            &error_response(Some(id), "journal_error", &format!("journal append: {e}")),
        );
        return;
    }
    let wants_ack = request.ack;
    let priority = request.priority;
    let job = Job {
        id,
        request,
        accepted_at: Instant::now(),
        cancel: Arc::new(AtomicBool::new(false)),
        reply,
        attempts: 0,
        kills: 0,
        checkpoint: None,
    };
    // Count the job outstanding *before* it becomes poppable, so a
    // drain can never observe an admitted-but-uncounted job; likewise
    // the ack goes out before the push so it always precedes the
    // verdict on the wire.
    *shared.outstanding.lock().unwrap() += 1;
    shared.known.lock().unwrap().insert(id);
    if wants_ack {
        send_line(&job.reply, &accepted_response(id, false));
    }
    match shared.queue.push(priority, job) {
        Ok(()) => {
            shared.counters.accepted.fetch_add(1, Ordering::Relaxed);
        }
        Err((job, reason)) => {
            let response = match reason {
                // A full queue is the `busy` surface (protocol ≥ 5):
                // the refusal carries how long the queue needs to
                // drain, so clients back off usefully instead of
                // guessing.
                RejectReason::Full => {
                    shared.counters.rejected_full.fetch_add(1, Ordering::Relaxed);
                    protocol::busy_response(job.id, shared.retry_hint_ms(), "queue_full")
                }
                RejectReason::Closed => {
                    shared
                        .counters
                        .rejected_draining
                        .fetch_add(1, Ordering::Relaxed);
                    error_response(
                        Some(job.id),
                        "draining",
                        "daemon is draining; resubmit later",
                    )
                }
            };
            shared.deliver(job.id, &job.reply, &response);
        }
    }
}

/// Extracts a human-readable panic message from a worker's payload.
fn panic_text(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "worker died with a non-string panic payload".to_string()
    }
}

/// Runs one worker under supervision: spawn it, wait for it to die or
/// exit cleanly, recover its orphaned job, and respawn. The job the
/// dead worker held is re-queued (capacity-exempt) unless it has spent
/// its retry budget, in which case it is quarantined with a `poisoned`
/// verdict carrying the panic diagnostic.
fn supervisor_loop(shared: &Arc<Shared>) {
    loop {
        let slot: Arc<Mutex<Option<Job>>> = Arc::new(Mutex::new(None));
        let worker_shared = Arc::clone(shared);
        let worker_slot = Arc::clone(&slot);
        let worker = std::thread::Builder::new()
            .name("charon-worker".to_string())
            .spawn(move || worker_loop(&worker_shared, &worker_slot))
            .expect("spawn worker thread");
        let payload = match worker.join() {
            Ok(()) => return, // Clean exit: the queue is closed and empty.
            Err(payload) => payload,
        };
        let diagnostic = panic_text(payload.as_ref());
        shared.counters.worker_deaths.fetch_add(1, Ordering::Relaxed);
        let orphan = slot
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .take();
        if let Some(mut job) = orphan {
            shared
                .inflight
                .lock()
                .unwrap()
                .retain(|(id, _)| *id != job.id);
            job.kills += 1;
            if job.kills >= shared.retry_budget {
                shared.counters.completed.fetch_add(1, Ordering::Relaxed);
                shared.counters.quarantined.fetch_add(1, Ordering::Relaxed);
                let response = poisoned_response(job.id, &diagnostic, job.kills);
                shared.deliver(job.id, &job.reply, &response);
            } else {
                shared.counters.requeued.fetch_add(1, Ordering::Relaxed);
                let priority = job.request.priority;
                if let Err((job, _)) = shared.queue.requeue(priority, job) {
                    // Draining: the job goes back to its submitter
                    // unstarted, like everything else still queued.
                    shared.counters.unstarted.fetch_add(1, Ordering::Relaxed);
                    shared.deliver(job.id, &job.reply, &unstarted_response(job.id));
                }
            }
        }
        // Loop: respawn the worker (with a fresh Workspace) and keep
        // serving.
    }
}

fn worker_loop(shared: &Arc<Shared>, slot: &Mutex<Option<Job>>) {
    // The tentpole of the service hot path: one scratch arena per
    // worker, reused across every job this thread ever runs. A respawn
    // after a death starts from a fresh arena, so a panic can never
    // leak a poisoned scratch state into the next job.
    let mut ws = Workspace::new();
    while let Some(mut job) = shared.queue.pop() {
        // Feed the shed controller the queue sojourn this dequeue
        // observed (first attempts only: a requeued orphan's
        // `accepted_at` includes execution time, not queue latency).
        if let (Some(shed), 0) = (&shared.shed, job.attempts) {
            shed.observe(job.accepted_at.elapsed(), Instant::now());
        }
        // A job whose deadline ran out while queued is answered here,
        // without registering in-flight state or starting the verifier:
        // under overload, workers must not burn time on answers nobody
        // is waiting for.
        if let Some(deadline_ms) = job.request.deadline_ms {
            let remaining =
                charon::deadline::remaining_ms(deadline_ms, job.accepted_at.elapsed());
            if charon::deadline::clamp_budget(
                Duration::from_millis(job.request.timeout_ms),
                remaining,
                shared.reply_margin,
            )
            .is_none()
            {
                shared
                    .counters
                    .deadline_expired
                    .fetch_add(1, Ordering::Relaxed);
                shared.counters.completed.fetch_add(1, Ordering::Relaxed);
                shared.deliver(
                    job.id,
                    &job.reply,
                    &error_response(
                        Some(job.id),
                        "deadline_expired",
                        "job spent its deadline in the queue",
                    ),
                );
                continue;
            }
        }
        job.attempts += 1;
        // Park a copy where the supervisor can recover it if this thread
        // dies anywhere below.
        *slot.lock().unwrap() = Some(job.clone());
        shared
            .inflight
            .lock()
            .unwrap()
            .push((job.id, Arc::clone(&job.cancel)));
        shared.journal_transition(&Record::Started {
            id: job.id,
            attempt: job.attempts,
        });
        if let Some(plan) = &shared.faults {
            if plan.worker_must_die(job.id) {
                panic!("injected worker kill (job {})", job.id);
            }
        }
        let started = Instant::now();
        let response = execute_job(shared, &job, &mut ws);
        // Service-time accounting drives the `retry_after_ms` drain-rate
        // estimate handed to refused clients.
        shared
            .counters
            .service_ns
            .fetch_add(started.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64, Ordering::Relaxed);
        shared.counters.serviced.fetch_add(1, Ordering::Relaxed);
        shared
            .inflight
            .lock()
            .unwrap()
            .retain(|(id, _)| *id != job.id);
        *slot.lock().unwrap() = None;
        shared.deliver(job.id, &job.reply, &response);
    }
}

/// Runs one admitted job to a terminal response line, updating counters
/// and telemetry.
fn execute_job(shared: &Arc<Shared>, job: &Job, ws: &mut Workspace) -> String {
    let start = Instant::now();
    let counters = &shared.counters;
    let request = &job.request;

    // Clamp the verification budget to the remaining client deadline
    // minus the reply margin, so the verifier's anytime ladder absorbs
    // the pressure. The dequeue path already filtered jobs that expired
    // in the queue; this re-check closes the race against the clock.
    let mut budget = Duration::from_millis(request.timeout_ms);
    if let Some(deadline_ms) = request.deadline_ms {
        let remaining = charon::deadline::remaining_ms(deadline_ms, job.accepted_at.elapsed());
        match charon::deadline::clamp_budget(budget, remaining, shared.reply_margin) {
            Some(clamped) => budget = clamped,
            None => {
                counters.deadline_expired.fetch_add(1, Ordering::Relaxed);
                counters.completed.fetch_add(1, Ordering::Relaxed);
                return error_response(
                    Some(job.id),
                    "deadline_expired",
                    "job spent its deadline in the queue",
                );
            }
        }
    }

    let (net_hash, net) = match shared.registry.load(&request.network) {
        Ok(found) => found,
        Err(message) => {
            counters.errored.fetch_add(1, Ordering::Relaxed);
            counters.completed.fetch_add(1, Ordering::Relaxed);
            return error_response(Some(job.id), "model_error", &message);
        }
    };
    let property = match RobustnessProperty::from_text(&request.property) {
        Ok(property) => property,
        Err(message) => {
            counters.errored.fetch_add(1, Ordering::Relaxed);
            counters.completed.fetch_add(1, Ordering::Relaxed);
            return error_response(Some(job.id), "bad_request", &format!("property: {message}"));
        }
    };

    let key = CacheKey {
        net_hash,
        property: property.to_text(),
        config: request.config_key(),
    };
    if let Some(hit) = shared.cache.lock().unwrap().get(&key) {
        counters.completed.fetch_add(1, Ordering::Relaxed);
        let elapsed = start.elapsed();
        shared
            .job_hist
            .lock()
            .unwrap()
            .observe(elapsed.as_secs_f64());
        let mut b = ObjectBuilder::new()
            .str("response", "verdict")
            .int("id", job.id)
            .str("verdict", &hit.verdict)
            .int("cached", 1)
            .int("computed_by", hit.computed_by)
            .num("compute_ms", hit.compute_seconds * 1e3)
            .str("net_hash", &format!("{net_hash:016x}"))
            .int("regions", hit.regions as u64)
            .num("elapsed_ms", elapsed.as_secs_f64() * 1e3);
        if let Some(objective) = hit.objective {
            b = b.num("objective", objective);
        }
        if let Some(point) = &hit.counterexample {
            b = b.arr("counterexample", point);
        }
        if request.cert {
            if let Some(cert) = &hit.cert {
                b = b.str("cert", cert);
            }
        }
        return b.build();
    }

    let mut verifier = Verifier::default();
    *verifier.config_mut() = VerifierConfig {
        delta: request.delta,
        timeout: budget,
        max_regions: request.max_regions,
        restarts: request.restarts,
        seed: request.seed,
        counterexample_search: request.cex_search,
        certificates: request.cert,
        lipschitz_prefilter: false,
        cancel: Some(Arc::clone(&job.cancel)),
        faults: None,
    };

    // A journal-replayed checkpoint resumes the interrupted search
    // instead of re-verifying from scratch.
    let run = match &job.checkpoint {
        Some(text) => Checkpoint::from_text(text)
            .and_then(|checkpoint| verifier.resume_ws(&net, &checkpoint, ws)),
        None => verifier.try_verify_run_ws(&net, &property, ws),
    };
    let run = match run {
        Ok(run) => run,
        Err(error) => {
            counters.errored.fetch_add(1, Ordering::Relaxed);
            counters.completed.fetch_add(1, Ordering::Relaxed);
            let code = match &error {
                VerifyError::MalformedModel { .. } => "model_error",
                _ => "engine_error",
            };
            return error_response(Some(job.id), code, &error.to_string());
        }
    };

    let elapsed = start.elapsed();
    shared.metrics.lock().unwrap().merge(&run.stats.metrics);
    shared
        .job_hist
        .lock()
        .unwrap()
        .observe(elapsed.as_secs_f64());

    // Certificates are delivery provenance: cached alongside the
    // verdict (so the next certifying submitter is served from memory)
    // and attached to the response only when the job asked for one.
    let cert_text = run.certificate.as_ref().map(|cert| cert.to_text());
    let base = |verdict: &str| {
        let mut b = ObjectBuilder::new()
            .str("response", "verdict")
            .int("id", job.id)
            .str("verdict", verdict)
            .int("cached", 0)
            .str("net_hash", &format!("{net_hash:016x}"))
            .int("regions", run.stats.regions as u64)
            .num("elapsed_ms", elapsed.as_secs_f64() * 1e3);
        if let Some(cert) = &cert_text {
            b = b.str("cert", cert);
        }
        b
    };
    match &run.verdict {
        Verdict::Verified => {
            shared.cache.lock().unwrap().insert(
                key,
                CachedResult {
                    verdict: "verified".to_string(),
                    objective: None,
                    counterexample: None,
                    computed_by: job.id,
                    regions: run.stats.regions,
                    compute_seconds: elapsed.as_secs_f64(),
                    cert: cert_text.clone(),
                },
            );
            counters.completed.fetch_add(1, Ordering::Relaxed);
            base("verified").build()
        }
        Verdict::Refuted(cex) => {
            shared.cache.lock().unwrap().insert(
                key,
                CachedResult {
                    verdict: "refuted".to_string(),
                    objective: Some(cex.objective),
                    counterexample: Some(cex.point.clone()),
                    computed_by: job.id,
                    regions: run.stats.regions,
                    compute_seconds: elapsed.as_secs_f64(),
                    cert: cert_text.clone(),
                },
            );
            counters.completed.fetch_add(1, Ordering::Relaxed);
            base("refuted")
                .num("objective", cex.objective)
                .arr("counterexample", &cex.point)
                .build()
        }
        Verdict::ResourceLimit => {
            let drain_cancelled = matches!(run.limit, Some(BudgetKind::Cancelled))
                && shared.draining.load(Ordering::SeqCst);
            if drain_cancelled {
                if let Some(checkpoint) = &run.checkpoint {
                    counters.checkpointed.fetch_add(1, Ordering::Relaxed);
                    // The checkpoint record lands before the completed
                    // record, so a crash in between replays the job from
                    // the checkpoint instead of from scratch.
                    shared.journal_transition(&Record::Checkpointed {
                        id: job.id,
                        regions_done: checkpoint.regions_done,
                        checkpoint: checkpoint.to_text(),
                    });
                    return checkpointed_response(
                        job.id,
                        &checkpoint.to_text(),
                        checkpoint.regions_done,
                    );
                }
            }
            counters.completed.fetch_add(1, Ordering::Relaxed);
            let mut b = base("resource_limit");
            if let Some(kind) = run.limit {
                b = b.str("limit", &kind.to_string());
            }
            b.build()
        }
    }
}

/// Runs one coordinator-dispatched shard synchronously to a
/// `shard_result` (or `error`) response line.
///
/// A shard bypasses the queue, journal, and result cache on purpose:
/// the coordinator owns durability (it journals the parent job and the
/// dispatch), owns retry (an orphaned shard is re-dispatched), and a
/// shard's sub-region is too specific for the verdict cache to earn its
/// keep. The node is a stateless executor.
fn execute_shard(shared: &Arc<Shared>, shard: &protocol::ShardRequest, ws: &mut Workspace) -> String {
    let start = Instant::now();
    shared
        .counters
        .shards_executed
        .fetch_add(1, Ordering::Relaxed);
    // Chaos hook: a stalled node holds the shard (and its connection)
    // without answering, exactly like a wedged NIC or a GC'd VM — the
    // coordinator's read deadline and circuit breaker must cover it.
    if let Some(plan) = &shared.faults {
        plan.maybe_stall_shard();
    }
    // The dispatch carries the remaining client deadline; what is left
    // after the reply margin bounds this shard's verification budget.
    let mut budget = Duration::from_millis(shard.timeout_ms);
    if let Some(deadline_ms) = shard.deadline_ms {
        match charon::deadline::clamp_budget(budget, deadline_ms, shared.reply_margin) {
            Some(clamped) => budget = clamped,
            None => {
                shared
                    .counters
                    .deadline_expired
                    .fetch_add(1, Ordering::Relaxed);
                return error_response(
                    Some(shard.id),
                    "deadline_expired",
                    "shard arrived with its deadline spent",
                );
            }
        }
    }
    let (_, net) = match shared.registry.load(&shard.network) {
        Ok(found) => found,
        Err(message) => return error_response(Some(shard.id), "model_error", &message),
    };
    let property = match RobustnessProperty::from_text(&shard.property) {
        Ok(property) => property,
        Err(message) => {
            return error_response(Some(shard.id), "bad_request", &format!("property: {message}"))
        }
    };
    let mut verifier = Verifier::default();
    *verifier.config_mut() = VerifierConfig {
        delta: shard.delta,
        timeout: budget,
        max_regions: shard.max_regions,
        restarts: shard.restarts,
        seed: shard.seed,
        counterexample_search: shard.cex_search,
        certificates: shard.cert,
        lipschitz_prefilter: false,
        cancel: None,
        faults: None,
    };
    let run = match verifier.try_verify_run_ws(&net, &property, ws) {
        Ok(run) => run,
        Err(error) => {
            let code = match &error {
                VerifyError::MalformedModel { .. } => "model_error",
                _ => "engine_error",
            };
            return error_response(Some(shard.id), code, &error.to_string());
        }
    };
    shared.metrics.lock().unwrap().merge(&run.stats.metrics);
    let seconds = start.elapsed().as_secs_f64();
    let mut result = protocol::ShardResult {
        id: shard.id,
        shard: shard.shard,
        verdict: String::new(),
        regions: run.stats.regions,
        seconds,
        objective: None,
        counterexample: None,
        limit: None,
        checkpoint: None,
        cert: run.certificate.as_ref().map(|cert| cert.to_text()),
    };
    match &run.verdict {
        Verdict::Verified => result.verdict = "verified".to_string(),
        Verdict::Refuted(cex) => {
            shared
                .counters
                .shards_refuted
                .fetch_add(1, Ordering::Relaxed);
            result.verdict = "refuted".to_string();
            result.objective = Some(cex.objective);
            result.counterexample = Some(cex.point.clone());
        }
        Verdict::ResourceLimit => {
            shared
                .counters
                .shards_limited
                .fetch_add(1, Ordering::Relaxed);
            result.verdict = "resource_limit".to_string();
            result.limit = run.limit.map(|kind| kind.to_string());
            result.checkpoint = run.checkpoint.as_ref().map(Checkpoint::to_text);
        }
    }
    result.to_line()
}

/// Stops admission, reports queued jobs as unstarted, checkpoints
/// in-flight jobs via cooperative cancellation, and waits for the
/// accounting to balance. Returns the drain summary response; the
/// caller shuts the listener down after delivering it.
fn drain(shared: &Arc<Shared>) -> String {
    shared.draining.store(true, Ordering::SeqCst);

    // Every still-queued job goes back to its submitter, unstarted.
    for job in shared.queue.close_and_drain() {
        shared.counters.unstarted.fetch_add(1, Ordering::Relaxed);
        shared.deliver(job.id, &job.reply, &unstarted_response(job.id));
    }

    // Cancel in-flight jobs until every admitted job is terminal. The
    // cancel flags are re-signalled each round because a worker may pop
    // a job and only register it in `inflight` moments later.
    loop {
        for (_, cancel) in shared.inflight.lock().unwrap().iter() {
            cancel.store(true, Ordering::SeqCst);
        }
        let outstanding = shared.outstanding.lock().unwrap();
        if *outstanding <= 0 {
            break;
        }
        let (guard, _) = shared
            .idle
            .wait_timeout(outstanding, Duration::from_millis(10))
            .unwrap();
        if *guard <= 0 {
            break;
        }
    }

    let counters = &shared.counters;
    let accepted = counters.accepted.load(Ordering::Relaxed);
    let completed = counters.completed.load(Ordering::Relaxed);
    let checkpointed = counters.checkpointed.load(Ordering::Relaxed);
    let unstarted = counters.unstarted.load(Ordering::Relaxed);
    let lost = accepted as i64 - (completed + checkpointed + unstarted) as i64;
    ObjectBuilder::new()
        .str("response", "drained")
        .int("accepted", accepted)
        .int("completed", completed)
        .int("checkpointed", checkpointed)
        .int("unstarted", unstarted)
        .int("replayed", counters.replayed.load(Ordering::Relaxed))
        .int("requeued", counters.requeued.load(Ordering::Relaxed))
        .int("quarantined", counters.quarantined.load(Ordering::Relaxed))
        .num("lost", lost as f64)
        .build()
}

/// Builds the `stats` response: queue/cache/registry state plus the
/// per-phase engine metrics and latency histograms merged across all
/// workers.
fn stats_response(shared: &Arc<Shared>) -> String {
    let metrics = shared.metrics.lock().unwrap().clone();
    let job_hist = shared.job_hist.lock().unwrap().clone();
    let counters = &shared.counters;
    let (cache_entries, cache_hits, cache_misses, cache_evictions, cache_hit_rate) = {
        let cache = shared.cache.lock().unwrap();
        (
            cache.len(),
            cache.hits(),
            cache.misses(),
            cache.evictions(),
            cache.hit_rate(),
        )
    };
    let (journal_enabled, journal_appends) = match &shared.journal {
        Some(journal) => (1, journal.lock().unwrap().appends()),
        None => (0, 0),
    };
    let to_f64 = |counts: &[u64]| -> Vec<f64> { counts.iter().map(|&c| c as f64).collect() };
    // The overload block renders through the shared telemetry type so
    // this tier and the coordinator expose identical key names; a
    // single-node daemon has no breakers, so those read zero.
    let overload_stats = charon::telemetry::OverloadStats {
        shed: counters.shed.load(Ordering::Relaxed),
        deadline_expired: counters.deadline_expired.load(Ordering::Relaxed),
        breaker_open: 0,
        breaker_opens: 0,
    };
    let b = ObjectBuilder::new()
        .str("response", "stats")
        .int("protocol", PROTOCOL_VERSION)
        .int("workers", shared.workers as u64)
        .int("queue_depth", shared.queue.len() as u64)
        .int("queue_capacity", shared.queue.capacity() as u64)
        .int("draining", u64::from(shared.draining.load(Ordering::SeqCst)))
        .int("accepted", counters.accepted.load(Ordering::Relaxed))
        .int("completed", counters.completed.load(Ordering::Relaxed))
        .int("checkpointed", counters.checkpointed.load(Ordering::Relaxed))
        .int("unstarted", counters.unstarted.load(Ordering::Relaxed))
        .int("rejected_full", counters.rejected_full.load(Ordering::Relaxed))
        .int(
            "rejected_draining",
            counters.rejected_draining.load(Ordering::Relaxed),
        )
        .int("errored", counters.errored.load(Ordering::Relaxed));
    overload_stats
        .fields(b)
        .int("replayed", counters.replayed.load(Ordering::Relaxed))
        .int("requeued", counters.requeued.load(Ordering::Relaxed))
        .int("quarantined", counters.quarantined.load(Ordering::Relaxed))
        .int("worker_deaths", counters.worker_deaths.load(Ordering::Relaxed))
        .int("duplicates", counters.duplicates.load(Ordering::Relaxed))
        .int(
            "journal_errors",
            counters.journal_errors.load(Ordering::Relaxed),
        )
        .int("journal_enabled", journal_enabled)
        .int("journal_appends", journal_appends)
        .int(
            "results_entries",
            shared.results.lock().unwrap().len() as u64,
        )
        .int("cache_entries", cache_entries as u64)
        .int("cache_hits", cache_hits)
        .int("cache_misses", cache_misses)
        .int("cache_evictions", cache_evictions)
        .num("cache_hit_rate", cache_hit_rate)
        .int("registry_models", shared.registry.len() as u64)
        .int("registry_hits", shared.registry.hits())
        .int("registry_misses", shared.registry.misses())
        .int("attack_calls", metrics.attack_calls)
        .num("attack_seconds", metrics.attack_seconds)
        .int("propagation_calls", metrics.propagation_calls)
        .num("propagation_seconds", metrics.propagation_seconds)
        .int("policy_calls", metrics.policy_calls)
        .num("policy_seconds", metrics.policy_seconds)
        .arr("job_latency_hist", &to_f64(job_hist.counts()))
        .arr("attack_latency_hist", &to_f64(metrics.attack_hist.counts()))
        .arr(
            "propagation_latency_hist",
            &to_f64(metrics.propagation_hist.counts()),
        )
        .build()
}
