//! Verification-as-a-service: a persistent job-queue daemon serving
//! robustness queries over a Unix or TCP socket.
//!
//! A running verification farm amortizes everything a one-shot CLI run
//! pays per query: model deserialization (the [`registry`] shares each
//! network by content hash), scratch-arena allocation (each worker
//! thread reuses one [`domains::Workspace`] across jobs via
//! [`charon::Verifier::try_verify_run_ws`]), and the verification itself
//! (the [`cache`] memoizes decisive verdicts keyed by network hash +
//! property + configuration). The protocol is newline-delimited flat
//! JSON ([`protocol`]), reusing the workspace codec in [`charon::json`].
//!
//! # Lifecycle guarantees
//!
//! * **Admission control** — a full [`queue::JobQueue`] rejects with
//!   `queue_full` immediately; the daemon never buffers unbounded work.
//! * **Graceful drain** — a `drain` request stops admission, reports
//!   every still-queued job back to its submitter as `unstarted`,
//!   cancels in-flight jobs cooperatively so they return `charon-ckpt`
//!   checkpoints, and only then shuts down. The drain summary proves
//!   the accounting: `accepted == completed + checkpointed + unstarted`.
//! * **Observability** — `stats` reports queue depth, cache hit rate,
//!   registry sharing, and per-phase latency histograms merged across
//!   all workers (the same [`charon::telemetry::Metrics`] the CLI's
//!   `--report` renders).
//!
//! ```no_run
//! use server::{Client, Server, ServerAddr, ServerConfig};
//!
//! let config = ServerConfig {
//!     addr: ServerAddr::parse("unix:/tmp/charon.sock").unwrap(),
//!     ..ServerConfig::default()
//! };
//! let handle = Server::start(config).unwrap();
//! let mut client = Client::connect(handle.addr()).unwrap();
//! let pong = client.request("{\"request\": \"ping\"}").unwrap();
//! assert_eq!(pong.str_field("response").unwrap(), "pong");
//! ```

#![warn(missing_docs)]

pub mod cache;
pub mod client;
pub mod net;
pub mod protocol;
pub mod queue;
pub mod registry;

pub use cache::{CacheKey, CachedResult, ResultCache};
pub use client::Client;
pub use net::{ServerAddr, Stream};
pub use protocol::{Request, VerifyRequest, PROTOCOL_VERSION};
pub use queue::{JobQueue, RejectReason};
pub use registry::ModelRegistry;

use std::io::{BufRead, BufReader, Write};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use charon::json::ObjectBuilder;
use charon::telemetry::{Histogram, Metrics};
use charon::{BudgetKind, RobustnessProperty, Verdict, Verifier, VerifierConfig, VerifyError};
use domains::Workspace;

use net::Listener;
use protocol::{checkpointed_response, error_response, pong_response, unstarted_response};

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Where to listen.
    pub addr: ServerAddr,
    /// Worker threads driving verifications (each owns one reused
    /// scratch arena).
    pub workers: usize,
    /// Maximum queued (admitted but not started) jobs.
    pub queue_capacity: usize,
    /// Maximum memoized verdicts in the LRU result cache.
    pub cache_capacity: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: ServerAddr::Unix(std::env::temp_dir().join("charon-server.sock")),
            workers: 2,
            queue_capacity: 64,
            cache_capacity: 256,
        }
    }
}

/// One admitted verification job.
struct Job {
    id: u64,
    request: VerifyRequest,
    accepted_at: Instant,
    cancel: Arc<AtomicBool>,
    reply: Reply,
}

/// A shared write handle back to the submitting connection.
type Reply = Arc<Mutex<Stream>>;

fn send_line(reply: &Reply, line: &str) {
    // The client may be gone; a failed response write must not take the
    // daemon down (Rust already ignores SIGPIPE).
    let mut writer = reply.lock().unwrap();
    let _ = writer.write_all(line.as_bytes());
    let _ = writer.write_all(b"\n");
    let _ = writer.flush();
}

#[derive(Default)]
struct Counters {
    accepted: AtomicU64,
    completed: AtomicU64,
    checkpointed: AtomicU64,
    unstarted: AtomicU64,
    rejected_full: AtomicU64,
    rejected_draining: AtomicU64,
    errored: AtomicU64,
    deadline_expired: AtomicU64,
}

struct Shared {
    registry: ModelRegistry,
    queue: JobQueue<Job>,
    cache: Mutex<ResultCache>,
    metrics: Mutex<Metrics>,
    job_hist: Mutex<Histogram>,
    counters: Counters,
    draining: AtomicBool,
    shutdown: AtomicBool,
    /// Cancellation flags of jobs currently being verified.
    inflight: Mutex<Vec<(u64, Arc<AtomicBool>)>>,
    /// Admitted jobs that have not yet reached a terminal response
    /// (completed, checkpointed, or unstarted). Drain waits on this.
    outstanding: Mutex<i64>,
    idle: Condvar,
    workers: usize,
}

impl Shared {
    fn new(config: &ServerConfig) -> Self {
        Shared {
            registry: ModelRegistry::new(),
            queue: JobQueue::new(config.queue_capacity),
            cache: Mutex::new(ResultCache::new(config.cache_capacity)),
            metrics: Mutex::new(Metrics::new()),
            job_hist: Mutex::new(Histogram::new()),
            counters: Counters::default(),
            draining: AtomicBool::new(false),
            shutdown: AtomicBool::new(false),
            inflight: Mutex::new(Vec::new()),
            outstanding: Mutex::new(0),
            idle: Condvar::new(),
            workers: config.workers,
        }
    }

    /// Marks one admitted job terminal and wakes a waiting drain.
    fn job_terminal(&self) {
        let mut outstanding = self.outstanding.lock().unwrap();
        *outstanding -= 1;
        drop(outstanding);
        self.idle.notify_all();
    }
}

/// A running daemon.
pub struct Server;

/// Handle to a started daemon: its bound address plus the thread handles
/// [`ServerHandle::join`] waits on.
pub struct ServerHandle {
    addr: ServerAddr,
    listener: JoinHandle<()>,
    workers: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The address the daemon is listening on (for TCP port 0, the
    /// kernel-assigned port).
    pub fn addr(&self) -> &ServerAddr {
        &self.addr
    }

    /// Blocks until the daemon has drained and shut down.
    pub fn join(self) {
        let _ = self.listener.join();
        for worker in self.workers {
            let _ = worker.join();
        }
    }
}

impl Server {
    /// Binds the listener and starts the worker pool; returns
    /// immediately. The daemon runs until a client sends `drain`.
    ///
    /// # Errors
    ///
    /// Returns the bind error.
    pub fn start(config: ServerConfig) -> std::io::Result<ServerHandle> {
        let listener = Listener::bind(&config.addr)?;
        let addr = listener.local_addr(&config.addr);
        let shared = Arc::new(Shared::new(&config));

        let mut workers = Vec::with_capacity(config.workers.max(1));
        for _ in 0..config.workers.max(1) {
            let shared = Arc::clone(&shared);
            workers.push(std::thread::spawn(move || worker_loop(&shared)));
        }

        let listen_shared = Arc::clone(&shared);
        let listen_addr = addr.clone();
        let listener_thread = std::thread::spawn(move || {
            loop {
                match listener.accept() {
                    Ok(stream) => {
                        if listen_shared.shutdown.load(Ordering::SeqCst) {
                            break;
                        }
                        let shared = Arc::clone(&listen_shared);
                        let addr = listen_addr.clone();
                        std::thread::spawn(move || connection_loop(&shared, stream, &addr));
                    }
                    Err(_) => {
                        if listen_shared.shutdown.load(Ordering::SeqCst) {
                            break;
                        }
                    }
                }
            }
            if let ServerAddr::Unix(path) = &listen_addr {
                let _ = std::fs::remove_file(path);
            }
        });

        Ok(ServerHandle {
            addr,
            listener: listener_thread,
            workers,
        })
    }
}

fn connection_loop(shared: &Arc<Shared>, stream: Stream, addr: &ServerAddr) {
    let reply: Reply = match stream.try_clone() {
        Ok(writer) => Arc::new(Mutex::new(writer)),
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    loop {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) | Err(_) => return,
            Ok(_) => {}
        }
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        match Request::parse(trimmed) {
            Err(e) => send_line(&reply, &error_response(None, "bad_request", &e)),
            Ok(Request::Ping) => send_line(&reply, &pong_response()),
            Ok(Request::Stats) => send_line(&reply, &stats_response(shared)),
            Ok(Request::Verify(request)) => submit(shared, request, &reply),
            Ok(Request::Drain) => {
                let summary = drain(shared);
                // Write the summary before waking the listener: once the
                // listener exits, `ServerHandle::join` returns and the
                // hosting process may exit, killing this thread. The
                // response must already be on the wire by then.
                send_line(&reply, &summary);
                shared.shutdown.store(true, Ordering::SeqCst);
                let _ = Stream::connect(addr);
                return;
            }
        }
    }
}

/// Admission control: reject while draining or at capacity, otherwise
/// enqueue. Every admitted job is guaranteed a terminal response.
fn submit(shared: &Arc<Shared>, request: VerifyRequest, reply: &Reply) {
    let id = request.id;
    if shared.draining.load(Ordering::SeqCst) {
        shared
            .counters
            .rejected_draining
            .fetch_add(1, Ordering::Relaxed);
        send_line(
            reply,
            &error_response(Some(id), "draining", "daemon is draining; resubmit later"),
        );
        return;
    }
    let priority = request.priority;
    let job = Job {
        id,
        request,
        accepted_at: Instant::now(),
        cancel: Arc::new(AtomicBool::new(false)),
        reply: Arc::clone(reply),
    };
    // Count the job outstanding *before* it becomes poppable, so a
    // drain can never observe an admitted-but-uncounted job.
    *shared.outstanding.lock().unwrap() += 1;
    match shared.queue.push(priority, job) {
        Ok(()) => {
            shared.counters.accepted.fetch_add(1, Ordering::Relaxed);
        }
        Err((job, reason)) => {
            shared.job_terminal();
            let (counter, code, message) = match reason {
                RejectReason::Full => (
                    &shared.counters.rejected_full,
                    "queue_full",
                    "job queue is at capacity; retry with backoff",
                ),
                RejectReason::Closed => (
                    &shared.counters.rejected_draining,
                    "draining",
                    "daemon is draining; resubmit later",
                ),
            };
            counter.fetch_add(1, Ordering::Relaxed);
            send_line(&job.reply, &error_response(Some(job.id), code, message));
        }
    }
}

fn worker_loop(shared: &Arc<Shared>) {
    // The tentpole of the service hot path: one scratch arena per
    // worker, reused across every job this thread ever runs.
    let mut ws = Workspace::new();
    while let Some(job) = shared.queue.pop() {
        shared
            .inflight
            .lock()
            .unwrap()
            .push((job.id, Arc::clone(&job.cancel)));
        let response = execute_job(shared, &job, &mut ws);
        send_line(&job.reply, &response);
        shared
            .inflight
            .lock()
            .unwrap()
            .retain(|(id, _)| *id != job.id);
        shared.job_terminal();
    }
}

/// Runs one admitted job to a terminal response line, updating counters
/// and telemetry.
fn execute_job(shared: &Arc<Shared>, job: &Job, ws: &mut Workspace) -> String {
    let start = Instant::now();
    let counters = &shared.counters;
    let request = &job.request;

    if let Some(deadline_ms) = request.deadline_ms {
        if job.accepted_at.elapsed() >= Duration::from_millis(deadline_ms) {
            counters.deadline_expired.fetch_add(1, Ordering::Relaxed);
            counters.completed.fetch_add(1, Ordering::Relaxed);
            return error_response(
                Some(job.id),
                "deadline_expired",
                "job spent its deadline in the queue",
            );
        }
    }

    let (net_hash, net) = match shared.registry.load(&request.network) {
        Ok(found) => found,
        Err(message) => {
            counters.errored.fetch_add(1, Ordering::Relaxed);
            counters.completed.fetch_add(1, Ordering::Relaxed);
            return error_response(Some(job.id), "model_error", &message);
        }
    };
    let property = match RobustnessProperty::from_text(&request.property) {
        Ok(property) => property,
        Err(message) => {
            counters.errored.fetch_add(1, Ordering::Relaxed);
            counters.completed.fetch_add(1, Ordering::Relaxed);
            return error_response(Some(job.id), "bad_request", &format!("property: {message}"));
        }
    };

    let key = CacheKey {
        net_hash,
        property: property.to_text(),
        config: request.config_key(),
    };
    if let Some(hit) = shared.cache.lock().unwrap().get(&key) {
        counters.completed.fetch_add(1, Ordering::Relaxed);
        let elapsed = start.elapsed();
        shared
            .job_hist
            .lock()
            .unwrap()
            .observe(elapsed.as_secs_f64());
        let mut b = ObjectBuilder::new()
            .str("response", "verdict")
            .int("id", job.id)
            .str("verdict", &hit.verdict)
            .int("cached", 1)
            .int("computed_by", hit.computed_by)
            .num("compute_ms", hit.compute_seconds * 1e3)
            .str("net_hash", &format!("{net_hash:016x}"))
            .int("regions", hit.regions as u64)
            .num("elapsed_ms", elapsed.as_secs_f64() * 1e3);
        if let Some(objective) = hit.objective {
            b = b.num("objective", objective);
        }
        if let Some(point) = &hit.counterexample {
            b = b.arr("counterexample", point);
        }
        return b.build();
    }

    let mut timeout = Duration::from_millis(request.timeout_ms);
    if let Some(deadline_ms) = request.deadline_ms {
        let remaining =
            Duration::from_millis(deadline_ms).saturating_sub(job.accepted_at.elapsed());
        timeout = timeout.min(remaining);
    }
    let mut verifier = Verifier::default();
    *verifier.config_mut() = VerifierConfig {
        delta: request.delta,
        timeout,
        max_regions: request.max_regions,
        restarts: request.restarts,
        seed: request.seed,
        counterexample_search: request.cex_search,
        lipschitz_prefilter: false,
        cancel: Some(Arc::clone(&job.cancel)),
        faults: None,
    };

    let run = match verifier.try_verify_run_ws(&net, &property, ws) {
        Ok(run) => run,
        Err(error) => {
            counters.errored.fetch_add(1, Ordering::Relaxed);
            counters.completed.fetch_add(1, Ordering::Relaxed);
            let code = match &error {
                VerifyError::MalformedModel { .. } => "model_error",
                _ => "engine_error",
            };
            return error_response(Some(job.id), code, &error.to_string());
        }
    };

    let elapsed = start.elapsed();
    shared.metrics.lock().unwrap().merge(&run.stats.metrics);
    shared
        .job_hist
        .lock()
        .unwrap()
        .observe(elapsed.as_secs_f64());

    let base = |verdict: &str| {
        ObjectBuilder::new()
            .str("response", "verdict")
            .int("id", job.id)
            .str("verdict", verdict)
            .int("cached", 0)
            .str("net_hash", &format!("{net_hash:016x}"))
            .int("regions", run.stats.regions as u64)
            .num("elapsed_ms", elapsed.as_secs_f64() * 1e3)
    };
    match &run.verdict {
        Verdict::Verified => {
            shared.cache.lock().unwrap().insert(
                key,
                CachedResult {
                    verdict: "verified".to_string(),
                    objective: None,
                    counterexample: None,
                    computed_by: job.id,
                    regions: run.stats.regions,
                    compute_seconds: elapsed.as_secs_f64(),
                },
            );
            counters.completed.fetch_add(1, Ordering::Relaxed);
            base("verified").build()
        }
        Verdict::Refuted(cex) => {
            shared.cache.lock().unwrap().insert(
                key,
                CachedResult {
                    verdict: "refuted".to_string(),
                    objective: Some(cex.objective),
                    counterexample: Some(cex.point.clone()),
                    computed_by: job.id,
                    regions: run.stats.regions,
                    compute_seconds: elapsed.as_secs_f64(),
                },
            );
            counters.completed.fetch_add(1, Ordering::Relaxed);
            base("refuted")
                .num("objective", cex.objective)
                .arr("counterexample", &cex.point)
                .build()
        }
        Verdict::ResourceLimit => {
            let drain_cancelled = matches!(run.limit, Some(BudgetKind::Cancelled))
                && shared.draining.load(Ordering::SeqCst);
            if drain_cancelled {
                if let Some(checkpoint) = &run.checkpoint {
                    counters.checkpointed.fetch_add(1, Ordering::Relaxed);
                    return checkpointed_response(
                        job.id,
                        &checkpoint.to_text(),
                        checkpoint.regions_done,
                    );
                }
            }
            counters.completed.fetch_add(1, Ordering::Relaxed);
            let mut b = base("resource_limit");
            if let Some(kind) = run.limit {
                b = b.str("limit", &kind.to_string());
            }
            b.build()
        }
    }
}

/// Stops admission, reports queued jobs as unstarted, checkpoints
/// in-flight jobs via cooperative cancellation, and waits for the
/// accounting to balance. Returns the drain summary response; the
/// caller shuts the listener down after delivering it.
fn drain(shared: &Arc<Shared>) -> String {
    shared.draining.store(true, Ordering::SeqCst);

    // Every still-queued job goes back to its submitter, unstarted.
    for job in shared.queue.close_and_drain() {
        shared.counters.unstarted.fetch_add(1, Ordering::Relaxed);
        send_line(&job.reply, &unstarted_response(job.id));
        shared.job_terminal();
    }

    // Cancel in-flight jobs until every admitted job is terminal. The
    // cancel flags are re-signalled each round because a worker may pop
    // a job and only register it in `inflight` moments later.
    loop {
        for (_, cancel) in shared.inflight.lock().unwrap().iter() {
            cancel.store(true, Ordering::SeqCst);
        }
        let outstanding = shared.outstanding.lock().unwrap();
        if *outstanding <= 0 {
            break;
        }
        let (guard, _) = shared
            .idle
            .wait_timeout(outstanding, Duration::from_millis(10))
            .unwrap();
        if *guard <= 0 {
            break;
        }
    }

    let counters = &shared.counters;
    let accepted = counters.accepted.load(Ordering::Relaxed);
    let completed = counters.completed.load(Ordering::Relaxed);
    let checkpointed = counters.checkpointed.load(Ordering::Relaxed);
    let unstarted = counters.unstarted.load(Ordering::Relaxed);
    let lost = accepted as i64 - (completed + checkpointed + unstarted) as i64;
    ObjectBuilder::new()
        .str("response", "drained")
        .int("accepted", accepted)
        .int("completed", completed)
        .int("checkpointed", checkpointed)
        .int("unstarted", unstarted)
        .num("lost", lost as f64)
        .build()
}

/// Builds the `stats` response: queue/cache/registry state plus the
/// per-phase engine metrics and latency histograms merged across all
/// workers.
fn stats_response(shared: &Arc<Shared>) -> String {
    let metrics = shared.metrics.lock().unwrap().clone();
    let job_hist = shared.job_hist.lock().unwrap().clone();
    let counters = &shared.counters;
    let (cache_entries, cache_hits, cache_misses, cache_evictions, cache_hit_rate) = {
        let cache = shared.cache.lock().unwrap();
        (
            cache.len(),
            cache.hits(),
            cache.misses(),
            cache.evictions(),
            cache.hit_rate(),
        )
    };
    let to_f64 = |counts: &[u64]| -> Vec<f64> { counts.iter().map(|&c| c as f64).collect() };
    ObjectBuilder::new()
        .str("response", "stats")
        .int("protocol", PROTOCOL_VERSION)
        .int("workers", shared.workers as u64)
        .int("queue_depth", shared.queue.len() as u64)
        .int("queue_capacity", shared.queue.capacity() as u64)
        .int("draining", u64::from(shared.draining.load(Ordering::SeqCst)))
        .int("accepted", counters.accepted.load(Ordering::Relaxed))
        .int("completed", counters.completed.load(Ordering::Relaxed))
        .int("checkpointed", counters.checkpointed.load(Ordering::Relaxed))
        .int("unstarted", counters.unstarted.load(Ordering::Relaxed))
        .int("rejected_full", counters.rejected_full.load(Ordering::Relaxed))
        .int(
            "rejected_draining",
            counters.rejected_draining.load(Ordering::Relaxed),
        )
        .int("errored", counters.errored.load(Ordering::Relaxed))
        .int(
            "deadline_expired",
            counters.deadline_expired.load(Ordering::Relaxed),
        )
        .int("cache_entries", cache_entries as u64)
        .int("cache_hits", cache_hits)
        .int("cache_misses", cache_misses)
        .int("cache_evictions", cache_evictions)
        .num("cache_hit_rate", cache_hit_rate)
        .int("registry_models", shared.registry.len() as u64)
        .int("registry_hits", shared.registry.hits())
        .int("registry_misses", shared.registry.misses())
        .int("attack_calls", metrics.attack_calls)
        .num("attack_seconds", metrics.attack_seconds)
        .int("propagation_calls", metrics.propagation_calls)
        .num("propagation_seconds", metrics.propagation_seconds)
        .int("policy_calls", metrics.policy_calls)
        .num("policy_seconds", metrics.policy_seconds)
        .arr("job_latency_hist", &to_f64(job_hist.counts()))
        .arr("attack_latency_hist", &to_f64(metrics.attack_hist.counts()))
        .arr(
            "propagation_latency_hist",
            &to_f64(metrics.propagation_hist.counts()),
        )
        .build()
}
