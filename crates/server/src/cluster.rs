//! Sharded multi-node verification: a coordinator that splits one
//! property's input region into shards and fans them out to a pool of
//! shard-worker daemons ("nodes") over the v3 wire protocol.
//!
//! The coordinator front-end speaks the same protocol as a single-node
//! daemon — `verify`, `query`, `stats`, `drain`, `ping` — so the CLI
//! and [`crate::submit_reliable`] work against it unchanged. Behind the
//! front-end, each submitted property's region is split by
//! [`charon::policy::shard_region`] into `shards` sub-regions; each
//! shard travels as a self-contained `shard` request (the property text
//! is rewritten to the shard's sub-region, so a node is a stateless
//! executor) and comes back as a `shard_result`.
//!
//! # Merge semantics
//!
//! Shard verdicts merge with the same record-and-stop preference rule
//! as [`charon::parallel`] (via [`charon::parallel::verdict_supersedes`]):
//! the first validated refutation wins and is delivered immediately —
//! still-queued shards of that job are cancelled, in-flight ones finish
//! within their own budget and are discarded; all shards `Verified`
//! means the whole region is `Verified`; otherwise the job is a
//! `resource_limit` carrying a checkpoint merged from every limited
//! shard's resumable remainder. [`MergeState`] implements this rule as
//! a pure value so the property test can drive it through arbitrary
//! interleavings, duplicates included.
//!
//! # Fault model
//!
//! A node that dies mid-shard (crash, `kill -9`, network partition) is
//! detected by the per-shard read deadline (the shard's own budget plus
//! [`CoordinatorConfig::node_grace`]); the orphaned shard is re-queued
//! and re-dispatched — to any node — with a bounded retry budget. A
//! shard that kills [`CoordinatorConfig::retry_budget`] node connections
//! is quarantined, poisoning its job with a `poisoned` verdict (the same
//! semantics the single-node supervisor applies to poison jobs). A node
//! that is merely *unreachable* (connect refused) costs the shard
//! nothing: the dispatcher backs off and the shard drifts to another
//! node. Shard dispatches are journaled (`shard_dispatched` records)
//! for post-crash audit; a recovered coordinator job is re-sharded from
//! scratch.
//!
//! On top of per-dispatch detection, each node carries a
//! [`crate::overload::CircuitBreaker`] shared by all of its
//! dispatchers: [`CoordinatorConfig::breaker_threshold`] *consecutive*
//! dispatch failures trip it, after which the node's dispatchers take
//! no tasks (shards drift to healthy nodes via the normal re-dispatch
//! machinery) until a cooldown elapses and a single `node_hello`
//! half-open probe succeeds. This turns the cost of a stalled or dying
//! node from "one read deadline per dispatched shard, forever" into
//! "`threshold` read deadlines, once".
//!
//! Client deadlines propagate through dispatch (protocol ≥ 5): each
//! shard request carries the client's remaining `deadline_ms`, a task
//! whose deadline is already spent expires its job instead of being
//! dispatched, and nodes clamp their verification budget to what the
//! deadline leaves.

use std::collections::{HashMap, VecDeque};
use std::io::BufReader;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use charon::json::ObjectBuilder;
use charon::parallel::verdict_supersedes;
use charon::policy::shard_region;
use charon::telemetry::NodeRow;
use charon::{Checkpoint, Counterexample, RobustnessProperty, Verdict};

use crate::client::Client;
use crate::faults::ServerFaultPlan;
use crate::journal::{Journal, Record};
use crate::overload::{BreakerState, CircuitBreaker};
use crate::net::{read_line_bounded, Listener, ServerAddr, Stream, DEFAULT_MAX_LINE_BYTES};
use crate::protocol::{
    accepted_response, error_response, pending_response, poisoned_response, pong_response,
    unknown_response, Request, ShardRequest, ShardResult, VerifyRequest, PROTOCOL_VERSION,
};
use crate::{send_line, Reply};

/// Coordinator configuration.
#[derive(Debug, Clone)]
pub struct CoordinatorConfig {
    /// Where the coordinator front-end listens.
    pub addr: ServerAddr,
    /// The shard-worker daemons to dispatch to (at least one).
    pub nodes: Vec<ServerAddr>,
    /// Shards per submitted job; `0` defaults to `2 × nodes.len()` so
    /// every node has work and a straggler shard cannot serialize the
    /// whole job.
    pub shards: usize,
    /// Dispatcher connections per node (each owns one connection and
    /// runs one shard at a time on it).
    pub connections_per_node: usize,
    /// Node-connection deaths one shard may cause before it is
    /// quarantined and its job poisoned.
    pub retry_budget: u32,
    /// Slack added to a shard's own timeout to form the read deadline
    /// after which the node is presumed dead; also the handshake and
    /// heartbeat timeout.
    pub node_grace: Duration,
    /// Write-ahead journal path (`None` disables durability).
    pub journal: Option<PathBuf>,
    /// Cap on one received protocol line.
    pub max_line_bytes: usize,
    /// Consecutive dispatch failures (timeouts, dead connections,
    /// malformed answers) that trip a node's circuit breaker.
    pub breaker_threshold: u32,
    /// How long a tripped breaker refuses work before admitting one
    /// half-open `node_hello` probe.
    pub breaker_cooldown: Duration,
    /// Deterministic cluster fault injection (tests only).
    pub faults: Option<Arc<ServerFaultPlan>>,
}

impl Default for CoordinatorConfig {
    fn default() -> Self {
        CoordinatorConfig {
            addr: ServerAddr::Unix(std::env::temp_dir().join("charon-coordinator.sock")),
            nodes: Vec::new(),
            shards: 0,
            connections_per_node: 2,
            retry_budget: 2,
            node_grace: Duration::from_secs(10),
            journal: None,
            max_line_bytes: DEFAULT_MAX_LINE_BYTES,
            breaker_threshold: 3,
            breaker_cooldown: Duration::from_secs(5),
            faults: None,
        }
    }
}

/// Pure merge of shard results into one job verdict — the cluster-side
/// mirror of [`charon::parallel`]'s record-and-stop rule, factored out
/// so the merge property test can drive it directly.
///
/// Per shard, the first result wins unless a later duplicate
/// *supersedes* it under [`verdict_supersedes`] (a refutation always
/// replaces a resource limit, nothing replaces a decisive verdict) —
/// so duplicate deliveries from re-dispatch are idempotent and a late
/// refutation still flips an inconclusive shard.
#[derive(Debug, Clone)]
pub struct MergeState {
    slots: Vec<Option<Verdict>>,
    limits: Vec<Option<String>>,
    checkpoints: Vec<Option<String>>,
    certs: Vec<Option<String>>,
    regions: Vec<usize>,
}

impl MergeState {
    /// Starts an empty merge over `shards` shards (at least one).
    pub fn new(shards: usize) -> MergeState {
        let n = shards.max(1);
        MergeState {
            slots: vec![None; n],
            limits: vec![None; n],
            checkpoints: vec![None; n],
            certs: vec![None; n],
            regions: vec![0; n],
        }
    }

    /// Number of shards being merged.
    pub fn shards(&self) -> usize {
        self.slots.len()
    }

    /// Records one shard result (duplicates welcome). Returns whether
    /// the result changed the shard's resolved state.
    ///
    /// # Errors
    ///
    /// Returns a message for an out-of-range shard index or a verdict
    /// string outside the protocol.
    pub fn record(&mut self, result: &ShardResult) -> Result<bool, String> {
        let i = result.shard;
        if i >= self.slots.len() {
            return Err(format!(
                "shard index {i} out of range (job has {} shards)",
                self.slots.len()
            ));
        }
        let verdict = match result.verdict.as_str() {
            "verified" => Verdict::Verified,
            "refuted" => Verdict::Refuted(Counterexample {
                point: result.counterexample.clone().unwrap_or_default(),
                objective: result.objective.unwrap_or(0.0),
            }),
            "resource_limit" => Verdict::ResourceLimit,
            other => return Err(format!("unknown shard verdict {other:?}")),
        };
        if !verdict_supersedes(self.slots[i].as_ref(), &verdict) {
            return Ok(false);
        }
        self.limits[i] = result.limit.clone();
        self.checkpoints[i] = result.checkpoint.clone();
        self.certs[i] = result.cert.clone();
        self.regions[i] = result.regions;
        self.slots[i] = Some(verdict);
        Ok(true)
    }

    /// The winning counterexample, if any shard refuted.
    pub fn refutation(&self) -> Option<&Counterexample> {
        self.slots.iter().find_map(|slot| match slot {
            Some(Verdict::Refuted(cex)) => Some(cex),
            _ => None,
        })
    }

    /// Whether every shard has a resolved verdict.
    pub fn complete(&self) -> bool {
        self.slots.iter().all(Option::is_some)
    }

    /// The job-level verdict: a refutation as soon as one exists;
    /// otherwise, once every shard is resolved, `Verified` iff all
    /// shards verified, else `ResourceLimit`. `None` while undecided.
    pub fn verdict(&self) -> Option<Verdict> {
        if let Some(cex) = self.refutation() {
            return Some(Verdict::Refuted(cex.clone()));
        }
        if !self.complete() {
            return None;
        }
        if self
            .slots
            .iter()
            .all(|slot| matches!(slot, Some(Verdict::Verified)))
        {
            Some(Verdict::Verified)
        } else {
            Some(Verdict::ResourceLimit)
        }
    }

    /// Regions processed across all shards (latest result per shard).
    pub fn regions(&self) -> usize {
        self.regions.iter().sum()
    }

    /// The first recorded budget-limit kind, for the response line.
    pub fn limit(&self) -> Option<&str> {
        self.limits.iter().flatten().next().map(String::as_str)
    }

    /// Merges every limited shard's resumable remainder into one
    /// checkpoint for the whole property (`None` when no shard left
    /// one, or none of them parsed).
    pub fn merged_checkpoint(&self) -> Option<Checkpoint> {
        let mut merged: Option<Checkpoint> = None;
        for text in self.checkpoints.iter().flatten() {
            let Ok(ckpt) = Checkpoint::from_text(text) else {
                continue;
            };
            match &mut merged {
                None => merged = Some(ckpt),
                Some(acc) => {
                    let _ = acc.merge(ckpt);
                }
            }
        }
        merged
    }

    /// Merges per-shard proof certificates into one certificate for the
    /// whole property, rooted at `root` (the job's input region).
    ///
    /// * For a job-level refutation, the winning shard's witness
    ///   certificate is re-rooted at the whole region — sound, because
    ///   the witness lies inside the shard's sub-region and therefore
    ///   inside the root.
    /// * For a job-level `Verified`, every shard must have delivered a
    ///   sub-certificate; they are concatenated under the deterministic
    ///   shard split tree ([`charon::policy::shard_region`] bisections)
    ///   via [`charon::Certificate::merge_shards`].
    ///
    /// Returns `None` when certificates were not requested, a shard
    /// skipped its sub-certificate, a part fails to parse, or the
    /// verdict is not decisive — best-effort, like everything else on
    /// the `cert` surface.
    pub fn merged_certificate(&self, root: &domains::Bounds) -> Option<String> {
        if let Some(refuted_index) = self
            .slots
            .iter()
            .position(|slot| matches!(slot, Some(Verdict::Refuted(_))))
        {
            let text = self.certs[refuted_index].as_deref()?;
            let mut cert = charon::Certificate::from_text(text).ok()?;
            cert.root = root.clone();
            return Some(cert.to_text());
        }
        if !matches!(self.verdict(), Some(Verdict::Verified)) {
            return None;
        }
        let parts: Option<Vec<charon::Certificate>> = self
            .certs
            .iter()
            .map(|text| charon::Certificate::from_text(text.as_deref()?).ok())
            .collect();
        let merged = charon::Certificate::merge_shards(root, &parts?).ok()?;
        Some(merged.to_text())
    }
}

/// One queued unit of dispatch work.
struct ShardTask {
    request: ShardRequest,
    /// When the coordinator accepted the parent job: the epoch the
    /// client deadline counts down from.
    accepted_at: Instant,
    /// The client's end-to-end deadline, if it sent one. The *remaining*
    /// portion is stamped into `request.deadline_ms` at dispatch time.
    deadline_ms: Option<u64>,
    /// Node-connection deaths this shard has caused so far.
    kills: u32,
}

/// Coordinator-side state of one accepted job.
struct JobState {
    merge: MergeState,
    reply: Reply,
    accepted_at: Instant,
    /// The job's whole input region, kept when the submission requested
    /// a certificate so shard sub-certificates can be merged under it.
    cert_root: Option<domains::Bounds>,
    /// Set when a shard of this job was quarantined: the diagnostic and
    /// the kill count, delivered as a `poisoned` verdict unless a
    /// refutation wins first.
    poison: Option<(String, u32)>,
    delivered: bool,
}

#[derive(Default)]
struct ClusterCounters {
    accepted: AtomicU64,
    completed: AtomicU64,
    rejected_draining: AtomicU64,
    errored: AtomicU64,
    duplicates: AtomicU64,
    journal_errors: AtomicU64,
    node_failures: AtomicU64,
    deadline_expired: AtomicU64,
    shards_dispatched: AtomicU64,
    shards_completed: AtomicU64,
    shards_redispatched: AtomicU64,
    shards_quarantined: AtomicU64,
}

struct ClusterShared {
    nodes: Vec<ServerAddr>,
    shards_per_job: usize,
    retry_budget: u32,
    node_grace: Duration,
    max_line_bytes: usize,
    queue: Mutex<VecDeque<ShardTask>>,
    /// Wakes dispatchers when shard tasks are enqueued (or at shutdown).
    work: std::sync::Condvar,
    jobs: Mutex<HashMap<u64, JobState>>,
    results: Mutex<HashMap<u64, String>>,
    counters: ClusterCounters,
    journal: Option<Mutex<Journal>>,
    draining: AtomicBool,
    shutdown: AtomicBool,
    /// Accepted jobs not yet delivered; drain waits for zero.
    outstanding: Mutex<i64>,
    idle: std::sync::Condvar,
    node_rows: Mutex<Vec<NodeRow>>,
    /// One circuit breaker per node, keyed by the node's display name
    /// and shared by all of that node's dispatchers.
    breakers: Mutex<HashMap<String, CircuitBreaker>>,
    faults: Option<Arc<ServerFaultPlan>>,
}

impl ClusterShared {
    fn journal_append(&self, record: &Record) -> std::io::Result<()> {
        match &self.journal {
            Some(journal) => journal.lock().unwrap().append(record),
            None => Ok(()),
        }
    }

    fn journal_transition(&self, record: &Record) {
        if self.journal_append(record).is_err() {
            self.counters.journal_errors.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Folds a delta row into the per-node telemetry table.
    fn note_node(&self, row: &NodeRow) {
        let mut rows = self.node_rows.lock().unwrap();
        match rows.iter_mut().find(|r| r.name == row.name) {
            Some(existing) => {
                existing.dispatched += row.dispatched;
                existing.completed += row.completed;
                existing.redispatched += row.redispatched;
                existing.idle_seconds += row.idle_seconds;
            }
            None => rows.push(row.clone()),
        }
    }

    /// Delivers a job's terminal response. Caller holds the jobs lock
    /// and has checked `!job.delivered`.
    fn deliver(&self, id: u64, job: &mut JobState, response: &str) {
        job.delivered = true;
        self.counters.completed.fetch_add(1, Ordering::Relaxed);
        self.journal_transition(&Record::Completed {
            id,
            response: response.to_string(),
        });
        if !crate::is_retryable_response(response) {
            self.results.lock().unwrap().insert(id, response.to_string());
        }
        send_line(&job.reply, response);
        let mut outstanding = self.outstanding.lock().unwrap();
        *outstanding -= 1;
        drop(outstanding);
        self.idle.notify_all();
    }

    /// Delivers the job's verdict if the merge has decided it.
    fn maybe_deliver(&self, id: u64, job: &mut JobState) {
        if job.delivered {
            return;
        }
        let elapsed_ms = job.accepted_at.elapsed().as_secs_f64() * 1e3;
        let base = |verdict: &str, job: &JobState| {
            ObjectBuilder::new()
                .str("response", "verdict")
                .int("id", id)
                .str("verdict", verdict)
                .int("cached", 0)
                .int("shards", job.merge.shards() as u64)
                .int("regions", job.merge.regions() as u64)
                .num("elapsed_ms", elapsed_ms)
        };
        let merged_cert = |job: &JobState| {
            job.cert_root
                .as_ref()
                .and_then(|root| job.merge.merged_certificate(root))
        };
        if let Some(cex) = job.merge.refutation() {
            let mut b = base("refuted", job)
                .num("objective", cex.objective)
                .arr("counterexample", &cex.point);
            if let Some(cert) = merged_cert(job) {
                b = b.str("cert", &cert);
            }
            let response = b.build();
            self.deliver(id, job, &response);
            return;
        }
        if !job.merge.complete() {
            return;
        }
        if let Some((diagnostic, attempts)) = &job.poison {
            self.counters.errored.fetch_add(1, Ordering::Relaxed);
            let response = poisoned_response(id, diagnostic, *attempts);
            self.deliver(id, job, &response);
            return;
        }
        let response = match job.merge.verdict() {
            Some(Verdict::Verified) => {
                let mut b = base("verified", job);
                if let Some(cert) = merged_cert(job) {
                    b = b.str("cert", &cert);
                }
                b.build()
            }
            _ => {
                let mut b = base("resource_limit", job);
                if let Some(kind) = job.merge.limit() {
                    b = b.str("limit", kind);
                }
                if let Some(ckpt) = job.merge.merged_checkpoint() {
                    b = b
                        .int("regions_done", ckpt.regions_done as u64)
                        .str("checkpoint", &ckpt.to_text());
                }
                b.build()
            }
        };
        self.deliver(id, job, &response);
    }
}

/// The coordinator daemon.
pub struct Coordinator;

/// Handle to a started coordinator.
pub struct CoordinatorHandle {
    addr: ServerAddr,
    listener: JoinHandle<()>,
    dispatchers: Vec<JoinHandle<()>>,
}

impl CoordinatorHandle {
    /// The address the front-end is listening on.
    pub fn addr(&self) -> &ServerAddr {
        &self.addr
    }

    /// Blocks until the coordinator has drained and shut down.
    pub fn join(self) {
        let _ = self.listener.join();
        for dispatcher in self.dispatchers {
            let _ = dispatcher.join();
        }
    }
}

impl Coordinator {
    /// Opens the journal, binds the front-end listener, and starts
    /// `connections_per_node` dispatcher threads per node; returns
    /// immediately. Runs until a client sends `drain`.
    ///
    /// # Errors
    ///
    /// Returns `InvalidInput` for an empty node list, plus bind and
    /// journal open/replay errors.
    pub fn start(config: CoordinatorConfig) -> std::io::Result<CoordinatorHandle> {
        if config.nodes.is_empty() {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                "coordinator needs at least one node (--nodes)",
            ));
        }
        let journal = match &config.journal {
            Some(path) => Some(Journal::open(path, config.faults.clone())?.0),
            None => None,
        };
        let listener = Listener::bind(&config.addr)?;
        let addr = listener.local_addr(&config.addr);
        let shards_per_job = if config.shards == 0 {
            config.nodes.len() * 2
        } else {
            config.shards
        };
        let shared = Arc::new(ClusterShared {
            nodes: config.nodes.clone(),
            shards_per_job,
            retry_budget: config.retry_budget.max(1),
            node_grace: config.node_grace,
            max_line_bytes: config.max_line_bytes,
            queue: Mutex::new(VecDeque::new()),
            jobs: Mutex::new(HashMap::new()),
            results: Mutex::new(HashMap::new()),
            counters: ClusterCounters::default(),
            journal: journal.map(Mutex::new),
            draining: AtomicBool::new(false),
            shutdown: AtomicBool::new(false),
            outstanding: Mutex::new(0),
            work: std::sync::Condvar::new(),
            idle: std::sync::Condvar::new(),
            node_rows: Mutex::new(Vec::new()),
            breakers: Mutex::new(
                config
                    .nodes
                    .iter()
                    .map(|node| {
                        (
                            node.to_string(),
                            CircuitBreaker::new(config.breaker_threshold, config.breaker_cooldown),
                        )
                    })
                    .collect(),
            ),
            faults: config.faults.clone(),
        });

        let mut dispatchers = Vec::new();
        for node in &config.nodes {
            for _ in 0..config.connections_per_node.max(1) {
                let shared = Arc::clone(&shared);
                let node = node.clone();
                dispatchers.push(std::thread::spawn(move || dispatcher_loop(&shared, &node)));
            }
        }

        let listen_shared = Arc::clone(&shared);
        let listen_addr = addr.clone();
        let listener_thread = std::thread::spawn(move || {
            loop {
                match listener.accept() {
                    Ok(stream) => {
                        if listen_shared.shutdown.load(Ordering::SeqCst) {
                            break;
                        }
                        let _ = stream.set_write_timeout(Some(Duration::from_secs(10)));
                        let shared = Arc::clone(&listen_shared);
                        let addr = listen_addr.clone();
                        std::thread::spawn(move || connection_loop(&shared, stream, &addr));
                    }
                    Err(_) => {
                        if listen_shared.shutdown.load(Ordering::SeqCst) {
                            break;
                        }
                    }
                }
            }
            if let ServerAddr::Unix(path) = &listen_addr {
                let _ = std::fs::remove_file(path);
            }
        });

        Ok(CoordinatorHandle {
            addr,
            listener: listener_thread,
            dispatchers,
        })
    }
}

fn connection_loop(shared: &Arc<ClusterShared>, stream: Stream, addr: &ServerAddr) {
    let sock: Arc<Mutex<Stream>> = match stream.try_clone() {
        Ok(writer) => Arc::new(Mutex::new(writer)),
        Err(_) => return,
    };
    let reply = Reply::Socket(Arc::clone(&sock));
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    loop {
        line.clear();
        match read_line_bounded(&mut reader, &mut line, shared.max_line_bytes) {
            Ok(0) => return,
            Ok(_) => {}
            Err(e) if e.kind() == std::io::ErrorKind::InvalidData => {
                send_line(&reply, &error_response(None, "bad_request", &e.to_string()));
                return;
            }
            Err(_) => return,
        }
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        match Request::parse(trimmed) {
            Err(e) => send_line(&reply, &error_response(None, "bad_request", &e)),
            Ok(Request::Ping) => send_line(&reply, &pong_response()),
            Ok(Request::Stats) => send_line(&reply, &cluster_stats_response(shared)),
            Ok(Request::Query { id }) => {
                let stored = shared.results.lock().unwrap().get(&id).cloned();
                let response = match stored {
                    Some(line) => line,
                    None if shared.jobs.lock().unwrap().contains_key(&id) => pending_response(id),
                    None => unknown_response(id),
                };
                send_line(&reply, &response);
            }
            Ok(Request::Verify(request)) => submit_cluster(shared, request, &sock),
            Ok(Request::Shard(_) | Request::NodeHello | Request::NodeStats) => {
                send_line(
                    &reply,
                    &error_response(
                        None,
                        "bad_request",
                        "this is a coordinator, not a shard node",
                    ),
                );
            }
            Ok(Request::Drain) => {
                let summary = drain_cluster(shared);
                send_line(&reply, &summary);
                shared.shutdown.store(true, Ordering::SeqCst);
                shared.work.notify_all();
                let _ = Stream::connect(addr);
                return;
            }
        }
    }
}

/// Admission on the coordinator: reject while draining, deduplicate
/// `ack` ids, shard the region, journal, enqueue every shard.
fn submit_cluster(shared: &Arc<ClusterShared>, request: VerifyRequest, sock: &Arc<Mutex<Stream>>) {
    let id = request.id;
    let reply = Reply::Socket(Arc::clone(sock));
    if shared.draining.load(Ordering::SeqCst) {
        shared
            .counters
            .rejected_draining
            .fetch_add(1, Ordering::Relaxed);
        send_line(
            &reply,
            &error_response(Some(id), "draining", "coordinator is draining; resubmit later"),
        );
        return;
    }
    if request.ack {
        let live = {
            let jobs = shared.jobs.lock().unwrap();
            jobs.get(&id).is_some_and(|job| !job.delivered)
        };
        if live {
            shared.counters.duplicates.fetch_add(1, Ordering::Relaxed);
            send_line(&reply, &accepted_response(id, true));
            return;
        }
        if let Some(stored) = shared.results.lock().unwrap().get(&id) {
            shared.counters.duplicates.fetch_add(1, Ordering::Relaxed);
            send_line(&reply, stored);
            return;
        }
    }
    // Shard the region before accepting anything: a property that does
    // not parse is the submitter's problem, not an accepted job.
    let property = match RobustnessProperty::from_text(&request.property) {
        Ok(property) => property,
        Err(message) => {
            shared.counters.errored.fetch_add(1, Ordering::Relaxed);
            send_line(
                &reply,
                &error_response(Some(id), "bad_request", &format!("property: {message}")),
            );
            return;
        }
    };
    let regions = shard_region(property.region(), shared.shards_per_job);
    if let Err(e) = shared.journal_append(&Record::Accepted {
        id,
        request: request.clone(),
    }) {
        shared.counters.journal_errors.fetch_add(1, Ordering::Relaxed);
        send_line(
            &reply,
            &error_response(Some(id), "journal_error", &format!("journal append: {e}")),
        );
        return;
    }
    shared.counters.accepted.fetch_add(1, Ordering::Relaxed);
    *shared.outstanding.lock().unwrap() += 1;
    let accepted_at = Instant::now();
    let mut tasks = Vec::with_capacity(regions.len());
    for (index, bounds) in regions.into_iter().enumerate() {
        tasks.push(ShardTask {
            request: ShardRequest {
                id,
                shard: index,
                network: request.network.clone(),
                property: property.with_region(bounds).to_text(),
                timeout_ms: request.timeout_ms,
                // Stamped with the *remaining* deadline at dispatch.
                deadline_ms: None,
                delta: request.delta,
                max_regions: request.max_regions,
                restarts: request.restarts,
                // Perturb the seed per shard so shards do not run
                // identical attack schedules on adjacent regions.
                seed: request
                    .seed
                    .wrapping_add((index as u64).wrapping_mul(0x9e37_79b9)),
                cex_search: request.cex_search,
                cert: request.cert,
            },
            accepted_at,
            deadline_ms: request.deadline_ms,
            kills: 0,
        });
    }
    shared.jobs.lock().unwrap().insert(
        id,
        JobState {
            merge: MergeState::new(tasks.len()),
            reply: Reply::Socket(Arc::clone(sock)),
            accepted_at,
            cert_root: request.cert.then(|| property.region().clone()),
            poison: None,
            delivered: false,
        },
    );
    if request.ack {
        send_line(&reply, &accepted_response(id, false));
    }
    shared.queue.lock().unwrap().extend(tasks);
    shared.work.notify_all();
}

/// Connects (or reuses) this dispatcher's node connection, performing
/// the `node_hello` version handshake on a fresh connection.
fn ensure_client<'a>(
    client: &'a mut Option<Client>,
    node: &ServerAddr,
    grace: Duration,
) -> std::io::Result<&'a mut Client> {
    if client.is_none() {
        let mut fresh = Client::connect(node)?;
        fresh.set_timeouts(Some(grace), Some(grace))?;
        let hello = fresh.request("{\"request\": \"node_hello\"}")?;
        let compatible = hello
            .str_field("response")
            .is_ok_and(|kind| kind == "node_hello")
            && hello
                .usize_field("protocol")
                .is_ok_and(|version| version as u64 >= PROTOCOL_VERSION);
        if !compatible {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("node {node} does not speak protocol {PROTOCOL_VERSION}"),
            ));
        }
        *client = Some(fresh);
    }
    Ok(client.as_mut().expect("just ensured"))
}

/// One dispatcher: owns one connection to one node, pulls shard tasks,
/// dispatches them, and feeds results (or failures) back into the
/// merge. Idle dispatchers heartbeat their node with `ping`.
fn dispatcher_loop(shared: &Arc<ClusterShared>, node: &ServerAddr) {
    let node_name = node.to_string();
    let mut client: Option<Client> = None;
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        // Route around an open breaker: this node's dispatchers take no
        // tasks (queued shards drift to healthy nodes) until a half-open
        // `node_hello` probe succeeds.
        if !breaker_admits(shared, node, &node_name, &mut client) {
            std::thread::sleep(Duration::from_millis(50));
            continue;
        }
        // Block on the work condvar until a task arrives; a 2 s timeout
        // doubles as the heartbeat cadence while idle.
        let waited = Instant::now();
        let task = {
            let mut queue = shared.queue.lock().unwrap();
            loop {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                if let Some(task) = queue.pop_front() {
                    break Some(task);
                }
                let (guard, timeout) = shared
                    .work
                    .wait_timeout(queue, Duration::from_secs(2))
                    .unwrap();
                queue = guard;
                if timeout.timed_out() {
                    break None;
                }
            }
        };
        let idle = waited.elapsed();
        let Some(task) = task else {
            // Heartbeat: a dead node is noticed while idle, not first
            // discovered by the next dispatched shard.
            if let Some(c) = client.as_mut() {
                let alive = c
                    .request("{\"request\": \"ping\"}")
                    .ok()
                    .and_then(|pong| pong.str_field("response").ok())
                    .is_some_and(|kind| kind == "pong");
                if !alive {
                    client = None;
                    shared.counters.node_failures.fetch_add(1, Ordering::Relaxed);
                    // A dead heartbeat counts toward the breaker, so a
                    // node that dies while idle trips it before any
                    // shard is wasted probing it. (A *successful* ping
                    // is deliberately not counted as breaker success: a
                    // stalled node often still answers pings.)
                    breaker_note(shared, &node_name, false);
                }
            }
            shared.note_node(&NodeRow {
                name: node_name.clone(),
                idle_seconds: idle.as_secs_f64(),
                ..NodeRow::default()
            });
            continue;
        };
        // Flush the time spent waiting into the node's telemetry row.
        if !idle.is_zero() {
            shared.note_node(&NodeRow {
                name: node_name.clone(),
                idle_seconds: idle.as_secs_f64(),
                ..NodeRow::default()
            });
        }
        dispatch_one(shared, node, &node_name, &mut client, task);
    }
}

/// Dispatches one shard task on this dispatcher's connection and
/// routes the outcome (result, node death, or unreachable node).
fn dispatch_one(
    shared: &Arc<ClusterShared>,
    node: &ServerAddr,
    node_name: &str,
    client: &mut Option<Client>,
    mut task: ShardTask,
) {
    // A job already delivered (a refutation won, or an error ended it)
    // cancels its still-queued shards.
    {
        let jobs = shared.jobs.lock().unwrap();
        let live = jobs
            .get(&task.request.id)
            .is_some_and(|job| !job.delivered);
        if !live {
            return;
        }
    }
    // Deadline propagation: stamp the client's *remaining* deadline on
    // the shard at dispatch time, so the node can clamp its budget to
    // what is actually left. A task whose deadline is already spent
    // expires the whole job instead of burning a node slot on an answer
    // nobody is waiting for.
    if let Some(deadline_ms) = task.deadline_ms {
        let remaining = charon::deadline::remaining_ms(deadline_ms, task.accepted_at.elapsed());
        if remaining == 0 {
            expire_job(shared, task.request.id);
            return;
        }
        task.request.deadline_ms = Some(remaining);
    }
    // An unreachable node costs the shard nothing: back off and requeue
    // so another node's dispatcher picks it up. It does count toward the
    // node's breaker, though — enough refused connects trip it.
    let connection = match ensure_client(client, node, shared.node_grace) {
        Ok(connection) => connection,
        Err(_) => {
            shared.counters.node_failures.fetch_add(1, Ordering::Relaxed);
            breaker_note(shared, node_name, false);
            shared.queue.lock().unwrap().push_back(task);
            shared.work.notify_one();
            std::thread::sleep(Duration::from_millis(100));
            return;
        }
    };

    shared
        .counters
        .shards_dispatched
        .fetch_add(1, Ordering::Relaxed);
    if task.kills > 0 {
        shared
            .counters
            .shards_redispatched
            .fetch_add(1, Ordering::Relaxed);
    }
    shared.note_node(&NodeRow {
        name: node_name.to_string(),
        dispatched: 1,
        redispatched: u64::from(task.kills > 0),
        ..NodeRow::default()
    });
    shared.journal_transition(&Record::ShardDispatched {
        id: task.request.id,
        shard: task.request.shard,
        node: node_name.to_string(),
    });

    // Injected node kill: sever the connection at this dispatch, as if
    // the node died with the shard in flight.
    if let Some(plan) = &shared.faults {
        if plan.node_kill.check() {
            *client = None;
            breaker_note(shared, node_name, false);
            shard_failed(shared, task, node_name, "injected node kill at dispatch");
            return;
        }
    }

    // The read deadline is the shard's effective budget plus grace: a
    // node that blows through it is presumed dead (or stalled, which
    // costs the same). A propagated deadline tightens it, because the
    // node clamps its verification budget to the deadline anyway.
    let budget_ms = task
        .request
        .timeout_ms
        .min(task.request.deadline_ms.unwrap_or(u64::MAX));
    let deadline = Duration::from_millis(budget_ms) + shared.node_grace;
    let _ = connection.set_timeouts(Some(deadline), Some(shared.node_grace));
    let response = connection
        .send(&task.request.to_line())
        .and_then(|()| connection.recv());
    let fields = match response {
        Ok(fields) => fields,
        Err(_) => {
            *client = None;
            breaker_note(shared, node_name, false);
            shard_failed(shared, task, node_name, "node connection died mid-shard");
            return;
        }
    };

    // Injected result drop: the shard completed but its result is lost.
    // The node *answered*, so its breaker records a success.
    if let Some(plan) = &shared.faults {
        if plan.shard_drop.check() {
            breaker_note(shared, node_name, true);
            shard_failed(shared, task, node_name, "injected shard result drop");
            return;
        }
    }

    match fields.str_field("response").as_deref() {
        Ok("shard_result") => {
            // Reconstruct the wire line the fields were parsed from; the
            // typed struct is the unit MergeState accepts.
            match rebuild_shard_result(&fields) {
                Ok(result) => {
                    breaker_note(shared, node_name, true);
                    record_result(shared, node_name, &result);
                }
                Err(_) => {
                    *client = None;
                    breaker_note(shared, node_name, false);
                    shard_failed(shared, task, node_name, "malformed shard_result from node");
                }
            }
        }
        Ok("error") => {
            // The node answered in protocol: healthy as far as the
            // breaker is concerned, even though the job ends in error.
            breaker_note(shared, node_name, true);
            // A typed node error (model missing on that host, malformed
            // property) is not transient: it ends the whole job.
            let code = fields
                .str_field("error")
                .unwrap_or_else(|_| "engine_error".to_string());
            let message = fields
                .opt_str("message")
                .ok()
                .flatten()
                .unwrap_or_else(|| "node reported an error".to_string());
            shared.counters.errored.fetch_add(1, Ordering::Relaxed);
            let mut jobs = shared.jobs.lock().unwrap();
            if let Some(job) = jobs.get_mut(&task.request.id) {
                if !job.delivered {
                    let response = error_response(Some(task.request.id), &code, &message);
                    shared.deliver(task.request.id, job, &response);
                }
            }
        }
        _ => {
            *client = None;
            breaker_note(shared, node_name, false);
            shard_failed(shared, task, node_name, "unexpected response kind from node");
        }
    }
}

/// Records one dispatch outcome against a node's circuit breaker.
fn breaker_note(shared: &ClusterShared, node_name: &str, ok: bool) {
    let mut breakers = shared.breakers.lock().unwrap();
    if let Some(breaker) = breakers.get_mut(node_name) {
        if ok {
            breaker.record_success();
        } else {
            breaker.record_failure(Instant::now());
        }
    }
}

/// Gate at the top of a dispatcher iteration: `true` when this node may
/// take work. While the node's breaker is open, exactly one dispatcher
/// wins the half-open probe after the cooldown (a fresh connection plus
/// `node_hello` handshake) and reports its outcome; everyone else backs
/// off without touching the queue.
fn breaker_admits(
    shared: &Arc<ClusterShared>,
    node: &ServerAddr,
    node_name: &str,
    client: &mut Option<Client>,
) -> bool {
    let owns_probe = {
        let mut breakers = shared.breakers.lock().unwrap();
        let Some(breaker) = breakers.get_mut(node_name) else {
            return true;
        };
        match breaker.state() {
            BreakerState::Closed => return true,
            // Open pre-cooldown, or another dispatcher owns the probe.
            _ => breaker.try_probe(Instant::now()),
        }
    };
    if !owns_probe {
        return false;
    }
    *client = None;
    let healthy = ensure_client(client, node, shared.node_grace).is_ok();
    if !healthy {
        *client = None;
    }
    breaker_note(shared, node_name, healthy);
    healthy
}

/// Answers a job whose client deadline was spent before its shards
/// could even be dispatched.
fn expire_job(shared: &Arc<ClusterShared>, id: u64) {
    let mut jobs = shared.jobs.lock().unwrap();
    let Some(job) = jobs.get_mut(&id) else {
        return;
    };
    if job.delivered {
        return;
    }
    shared
        .counters
        .deadline_expired
        .fetch_add(1, Ordering::Relaxed);
    let response = error_response(
        Some(id),
        "deadline_expired",
        "job spent its deadline before its shards could be dispatched",
    );
    shared.deliver(id, job, &response);
}

/// Re-types a parsed `shard_result` response.
fn rebuild_shard_result(fields: &charon::json::Fields) -> Result<ShardResult, String> {
    Ok(ShardResult {
        id: fields.usize_field("id")? as u64,
        shard: fields.usize_field("shard")?,
        verdict: fields.str_field("verdict")?,
        regions: fields.opt_usize("regions")?.unwrap_or(0),
        seconds: fields.opt_f64("seconds")?.unwrap_or(0.0),
        objective: fields.opt_f64("objective")?,
        counterexample: match fields.opt("counterexample") {
            Some(_) => Some(fields.arr_field("counterexample")?),
            None => None,
        },
        limit: fields.opt_str("limit")?,
        checkpoint: fields.opt_str("checkpoint")?,
        cert: fields.opt_str("cert")?,
    })
}

/// Feeds one received shard result into its job's merge and delivers
/// the job verdict if it is now decided.
fn record_result(shared: &Arc<ClusterShared>, node_name: &str, result: &ShardResult) {
    shared
        .counters
        .shards_completed
        .fetch_add(1, Ordering::Relaxed);
    shared.note_node(&NodeRow {
        name: node_name.to_string(),
        completed: 1,
        ..NodeRow::default()
    });
    let mut jobs = shared.jobs.lock().unwrap();
    let Some(job) = jobs.get_mut(&result.id) else {
        return; // Straggler for a job this process never knew.
    };
    if job.delivered {
        return; // Straggler after a refutation already won.
    }
    if job.merge.record(result).is_err() {
        return; // Out-of-protocol result; the retry path will cover it.
    }
    shared.maybe_deliver(result.id, job);
}

/// Handles a shard whose dispatch failed after it was counted: requeue
/// within the retry budget, quarantine (and poison the job) beyond it.
fn shard_failed(shared: &Arc<ClusterShared>, mut task: ShardTask, node_name: &str, why: &str) {
    shared.counters.node_failures.fetch_add(1, Ordering::Relaxed);
    task.kills += 1;
    if task.kills < shared.retry_budget {
        shared.queue.lock().unwrap().push_back(task);
        shared.work.notify_one();
        return;
    }
    shared
        .counters
        .shards_quarantined
        .fetch_add(1, Ordering::Relaxed);
    let diagnostic = format!(
        "shard {} of job {} killed {} node connection(s) (last on {node_name}): {why}; quarantined",
        task.request.shard, task.request.id, task.kills
    );
    let mut jobs = shared.jobs.lock().unwrap();
    let Some(job) = jobs.get_mut(&task.request.id) else {
        return;
    };
    if job.delivered {
        return;
    }
    job.poison = Some((diagnostic, task.kills));
    // Resolve the shard so the job can settle; the poison marker wins
    // over the synthetic resource limit at delivery time.
    let synthetic = ShardResult {
        id: task.request.id,
        shard: task.request.shard,
        verdict: "resource_limit".to_string(),
        regions: 0,
        seconds: 0.0,
        objective: None,
        counterexample: None,
        limit: Some("quarantined".to_string()),
        checkpoint: None,
        cert: None,
    };
    let _ = job.merge.record(&synthetic);
    shared.maybe_deliver(task.request.id, job);
}

/// Stops admission and waits for every accepted job to deliver, then
/// reports the accounting. The coordinator has no partial-work story of
/// its own — shards in flight complete on their nodes — so a drain that
/// returns `lost=0` proves no accepted job went unanswered.
fn drain_cluster(shared: &Arc<ClusterShared>) -> String {
    shared.draining.store(true, Ordering::SeqCst);
    loop {
        let outstanding = shared.outstanding.lock().unwrap();
        if *outstanding <= 0 {
            break;
        }
        let (guard, _) = shared
            .idle
            .wait_timeout(outstanding, Duration::from_millis(10))
            .unwrap();
        if *guard <= 0 {
            break;
        }
    }
    let counters = &shared.counters;
    let accepted = counters.accepted.load(Ordering::Relaxed);
    let completed = counters.completed.load(Ordering::Relaxed);
    let lost = accepted as i64 - completed as i64;
    ObjectBuilder::new()
        .str("response", "drained")
        .int("accepted", accepted)
        .int("completed", completed)
        .int("checkpointed", 0)
        .int("unstarted", 0)
        .int("replayed", 0)
        .int("requeued", counters.shards_redispatched.load(Ordering::Relaxed))
        .int(
            "quarantined",
            counters.shards_quarantined.load(Ordering::Relaxed),
        )
        .num("lost", lost as f64)
        .build()
}

/// The coordinator's `stats` response: the full single-node counter
/// surface (so `charon-cli submit --stats` renders unchanged; counters
/// with no coordinator analogue read zero) plus the cluster extras and
/// the per-node table as parallel arrays.
fn cluster_stats_response(shared: &Arc<ClusterShared>) -> String {
    let counters = &shared.counters;
    let (journal_enabled, journal_appends) = match &shared.journal {
        Some(journal) => (1, journal.lock().unwrap().appends()),
        None => (0, 0),
    };
    let rows = shared.node_rows.lock().unwrap().clone();
    let names: Vec<String> = rows.iter().map(|r| r.name.clone()).collect();
    let (breaker_open, breaker_opens) = {
        let breakers = shared.breakers.lock().unwrap();
        (
            breakers
                .values()
                .filter(|breaker| breaker.is_routing_around())
                .count() as u64,
            breakers.values().map(CircuitBreaker::opens).sum(),
        )
    };
    let overload = charon::telemetry::OverloadStats {
        // The coordinator queue is unbounded and never sheds; admission
        // pressure is absorbed by the nodes' own shed controllers.
        shed: 0,
        deadline_expired: counters.deadline_expired.load(Ordering::Relaxed),
        breaker_open,
        breaker_opens,
    };
    let b = ObjectBuilder::new()
        .str("response", "stats")
        .int("protocol", PROTOCOL_VERSION)
        .int("workers", shared.nodes.len() as u64)
        .int("queue_depth", shared.queue.lock().unwrap().len() as u64)
        .int("queue_capacity", 0)
        .int("draining", u64::from(shared.draining.load(Ordering::SeqCst)))
        .int("accepted", counters.accepted.load(Ordering::Relaxed))
        .int("completed", counters.completed.load(Ordering::Relaxed))
        .int("checkpointed", 0)
        .int("unstarted", 0)
        .int("rejected_full", 0)
        .int(
            "rejected_draining",
            counters.rejected_draining.load(Ordering::Relaxed),
        )
        .int("errored", counters.errored.load(Ordering::Relaxed));
    let mut b = overload
        .fields(b)
        .int("replayed", 0)
        .int(
            "requeued",
            counters.shards_redispatched.load(Ordering::Relaxed),
        )
        .int(
            "quarantined",
            counters.shards_quarantined.load(Ordering::Relaxed),
        )
        .int("worker_deaths", counters.node_failures.load(Ordering::Relaxed))
        .int("duplicates", counters.duplicates.load(Ordering::Relaxed))
        .int(
            "journal_errors",
            counters.journal_errors.load(Ordering::Relaxed),
        )
        .int("journal_enabled", journal_enabled)
        .int("journal_appends", journal_appends)
        .int(
            "results_entries",
            shared.results.lock().unwrap().len() as u64,
        )
        .int("cache_entries", 0)
        .int("cache_hits", 0)
        .int("cache_misses", 0)
        .int("cache_evictions", 0)
        .num("cache_hit_rate", 0.0)
        .int("registry_models", 0)
        .int("registry_hits", 0)
        .int("registry_misses", 0)
        .int("attack_calls", 0)
        .num("attack_seconds", 0.0)
        .int("propagation_calls", 0)
        .num("propagation_seconds", 0.0)
        .int("policy_calls", 0)
        .num("policy_seconds", 0.0)
        .int("nodes", shared.nodes.len() as u64)
        .int(
            "shards_dispatched",
            counters.shards_dispatched.load(Ordering::Relaxed),
        )
        .int(
            "shards_completed",
            counters.shards_completed.load(Ordering::Relaxed),
        )
        .int(
            "shards_redispatched",
            counters.shards_redispatched.load(Ordering::Relaxed),
        )
        .int(
            "shards_quarantined",
            counters.shards_quarantined.load(Ordering::Relaxed),
        )
        .int("node_failures", counters.node_failures.load(Ordering::Relaxed));
    if !rows.is_empty() {
        b = b
            .str("node_names", &names.join(","))
            .arr(
                "node_dispatched",
                &rows.iter().map(|r| r.dispatched as f64).collect::<Vec<_>>(),
            )
            .arr(
                "node_completed",
                &rows.iter().map(|r| r.completed as f64).collect::<Vec<_>>(),
            )
            .arr(
                "node_redispatched",
                &rows
                    .iter()
                    .map(|r| r.redispatched as f64)
                    .collect::<Vec<_>>(),
            )
            .arr(
                "node_idle_seconds",
                &rows.iter().map(|r| r.idle_seconds).collect::<Vec<_>>(),
            );
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result(shard: usize, verdict: &str) -> ShardResult {
        ShardResult {
            id: 1,
            shard,
            verdict: verdict.to_string(),
            regions: 10,
            seconds: 0.1,
            objective: (verdict == "refuted").then_some(-0.5),
            counterexample: (verdict == "refuted").then(|| vec![0.5, 0.5]),
            limit: (verdict == "resource_limit").then(|| "timeout".to_string()),
            checkpoint: None,
            cert: None,
        }
    }

    #[test]
    fn all_verified_merges_to_verified() {
        let mut merge = MergeState::new(3);
        for shard in 0..3 {
            assert!(merge.verdict().is_none(), "undecided before shard {shard}");
            merge.record(&result(shard, "verified")).unwrap();
        }
        assert!(matches!(merge.verdict(), Some(Verdict::Verified)));
        assert_eq!(merge.regions(), 30);
    }

    #[test]
    fn one_refutation_wins_immediately_and_late() {
        // Immediately: a refutation decides before the merge completes.
        let mut merge = MergeState::new(3);
        merge.record(&result(1, "refuted")).unwrap();
        assert!(matches!(merge.verdict(), Some(Verdict::Refuted(_))));

        // Late: a refutation supersedes the same shard's earlier
        // resource limit (record-and-stop preference).
        let mut merge = MergeState::new(2);
        merge.record(&result(0, "verified")).unwrap();
        merge.record(&result(1, "resource_limit")).unwrap();
        assert!(matches!(merge.verdict(), Some(Verdict::ResourceLimit)));
        merge.record(&result(1, "refuted")).unwrap();
        let Some(Verdict::Refuted(cex)) = merge.verdict() else {
            panic!("late refutation must supersede the limit");
        };
        assert_eq!(cex.point, vec![0.5, 0.5]);
    }

    #[test]
    fn duplicates_do_not_unresolve_or_flip_decisive_verdicts() {
        let mut merge = MergeState::new(2);
        merge.record(&result(0, "verified")).unwrap();
        // A duplicate delivery of the same shard changes nothing.
        assert!(!merge.record(&result(0, "verified")).unwrap());
        assert!(!merge.record(&result(0, "resource_limit")).unwrap());
        merge.record(&result(1, "verified")).unwrap();
        assert!(matches!(merge.verdict(), Some(Verdict::Verified)));
    }

    #[test]
    fn limited_shards_merge_their_checkpoints() {
        let ckpt = Checkpoint {
            target: 2,
            pending: vec![(domains::Bounds::new(vec![0.0], vec![1.0]), 3)],
            regions_done: 7,
        };
        let mut limited = result(0, "resource_limit");
        limited.checkpoint = Some(ckpt.to_text());
        let mut merge = MergeState::new(2);
        merge.record(&limited).unwrap();
        let mut second = limited.clone();
        second.shard = 1;
        merge.record(&second).unwrap();
        let merged = merge.merged_checkpoint().unwrap();
        assert_eq!(merged.pending.len(), 2);
        assert_eq!(merged.regions_done, 14);
        assert_eq!(merge.limit(), Some("timeout"));
    }

    #[test]
    fn merged_certificate_tiles_the_root_and_rewrites_witness_roots() {
        use charon::{CertVerdict, Certificate};

        // shard_region bisects the longest dimension at its midpoint.
        let root = domains::Bounds::new(vec![0.0, 0.0], vec![2.0, 1.0]);
        let shards = shard_region(&root, 2);
        let part = |region: &domains::Bounds| {
            Certificate {
                net_hash: 11,
                target: 0,
                delta: 1e-9,
                root: region.clone(),
                verdict: CertVerdict::Verified {
                    tree: vec![charon::CertNode::Leaf {
                        domain: "I".to_string(),
                        margin: 0.25,
                    }],
                },
            }
            .to_text()
        };
        let mut merge = MergeState::new(2);
        for (i, region) in shards.iter().enumerate() {
            let mut shard = result(i, "verified");
            shard.cert = Some(part(region));
            merge.record(&shard).unwrap();
        }
        let merged = merge.merged_certificate(&root).expect("merges");
        let merged = Certificate::from_text(&merged).expect("parses");
        assert_eq!(merged.root, root);
        assert!(matches!(merged.verdict, CertVerdict::Verified { ref tree } if tree.len() == 3));

        // A refutation's witness certificate is re-rooted at the job's
        // whole region.
        let witness = Certificate {
            net_hash: 11,
            target: 0,
            delta: 1e-9,
            root: shards[1].clone(),
            verdict: CertVerdict::Refuted {
                witness: vec![1.5, 0.5],
                objective: -0.25,
            },
        };
        let mut merge = MergeState::new(2);
        let mut refuted = result(1, "refuted");
        refuted.cert = Some(witness.to_text());
        merge.record(&refuted).unwrap();
        let rerooted = merge.merged_certificate(&root).expect("re-roots");
        let rerooted = Certificate::from_text(&rerooted).expect("parses");
        assert_eq!(rerooted.root, root);
        assert!(matches!(rerooted.verdict, CertVerdict::Refuted { .. }));

        // A missing sub-certificate makes the verified merge best-effort
        // None instead of an unsound partial proof.
        let mut merge = MergeState::new(2);
        let mut with = result(0, "verified");
        with.cert = Some(part(&shards[0]));
        merge.record(&with).unwrap();
        merge.record(&result(1, "verified")).unwrap();
        assert!(merge.merged_certificate(&root).is_none());
    }

    #[test]
    fn record_rejects_out_of_protocol_results() {
        let mut merge = MergeState::new(2);
        assert!(merge.record(&result(5, "verified")).is_err(), "range");
        assert!(merge.record(&result(0, "maybe")).is_err(), "verdict");
    }

    #[test]
    fn coordinator_refuses_an_empty_node_list() {
        match Coordinator::start(CoordinatorConfig::default()) {
            Ok(_) => panic!("an empty node list must be rejected"),
            Err(err) => assert_eq!(err.kind(), std::io::ErrorKind::InvalidInput),
        }
    }
}
