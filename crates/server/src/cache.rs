//! LRU result cache: memoized decisive verdicts with provenance.
//!
//! Keyed by the *content* of the query — network content hash, canonical
//! property text, and the verifier-configuration fingerprint — so two
//! clients submitting the same robustness question share one
//! verification, and a retrained network (different hash) can never be
//! answered from the old network's verdict. Only decisive verdicts
//! (verified / refuted) are cached: a `resource_limit` outcome depends
//! on the submitted budgets, not just on the question.

use std::collections::HashMap;

/// What a cached verdict is keyed by. All three components pin content,
/// never names: `net_hash` is [`nn::serialize::content_hash`] of the
/// network, `property` is the canonical `charon-prop` text, and `config`
/// is [`crate::protocol::VerifyRequest::config_key`].
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// Content hash of the network.
    pub net_hash: u64,
    /// Canonical property text.
    pub property: String,
    /// Verifier-configuration fingerprint (δ, restarts, seed, search
    /// switches — budgets excluded; see `DESIGN.md`).
    pub config: String,
}

/// A memoized decisive verdict, with enough provenance to tell a client
/// exactly where the answer came from.
#[derive(Debug, Clone, PartialEq)]
pub struct CachedResult {
    /// `"verified"` or `"refuted"`.
    pub verdict: String,
    /// For refutations: the counterexample objective.
    pub objective: Option<f64>,
    /// For refutations: the counterexample point.
    pub counterexample: Option<Vec<f64>>,
    /// The job id that computed this result.
    pub computed_by: u64,
    /// Regions explored by the computing run.
    pub regions: usize,
    /// Wall-clock seconds the computing run took.
    pub compute_seconds: f64,
    /// `charon-cert 1` proof-certificate text, present only when the
    /// computing job requested certification. A later hit from a
    /// non-certifying submission simply ignores it; a certifying
    /// submission that hits an uncertified entry gets the verdict
    /// without a `cert` field (certificates are delivery provenance,
    /// not part of the cache key).
    pub cert: Option<String>,
}

/// A fixed-capacity least-recently-used map from [`CacheKey`] to
/// [`CachedResult`], with hit/miss accounting for the `stats` endpoint.
pub struct ResultCache {
    capacity: usize,
    entries: HashMap<CacheKey, (CachedResult, u64)>,
    tick: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl ResultCache {
    /// Creates a cache holding at most `capacity` verdicts (0 disables
    /// caching: every lookup misses and nothing is stored).
    pub fn new(capacity: usize) -> Self {
        ResultCache {
            capacity,
            entries: HashMap::new(),
            tick: 0,
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    /// Looks up a verdict, refreshing its recency on a hit.
    pub fn get(&mut self, key: &CacheKey) -> Option<CachedResult> {
        self.tick += 1;
        let tick = self.tick;
        match self.entries.get_mut(key) {
            Some((result, touched)) => {
                *touched = tick;
                self.hits += 1;
                Some(result.clone())
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Stores a verdict, evicting the least-recently-used entry if the
    /// cache is at capacity.
    pub fn insert(&mut self, key: CacheKey, result: CachedResult) {
        if self.capacity == 0 {
            return;
        }
        self.tick += 1;
        if self.entries.len() >= self.capacity && !self.entries.contains_key(&key) {
            if let Some(oldest) = self
                .entries
                .iter()
                .min_by_key(|(_, (_, touched))| *touched)
                .map(|(k, _)| k.clone())
            {
                self.entries.remove(&oldest);
                self.evictions += 1;
            }
        }
        self.entries.insert(key, (result, self.tick));
    }

    /// The number of cached verdicts.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Lookups that found a cached verdict.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lookups that found nothing.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Entries discarded to make room.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Hits divided by total lookups (0 when no lookups happened).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(net: u64, prop: &str) -> CacheKey {
        CacheKey {
            net_hash: net,
            property: prop.to_string(),
            config: "d=1e-9".to_string(),
        }
    }

    fn verdict(job: u64) -> CachedResult {
        CachedResult {
            verdict: "verified".to_string(),
            objective: None,
            counterexample: None,
            computed_by: job,
            regions: 3,
            compute_seconds: 0.01,
            cert: None,
        }
    }

    #[test]
    fn hit_returns_the_stored_result_with_provenance() {
        let mut cache = ResultCache::new(4);
        assert_eq!(cache.get(&key(1, "p")), None);
        cache.insert(key(1, "p"), verdict(42));
        let hit = cache.get(&key(1, "p")).unwrap();
        assert_eq!(hit.computed_by, 42);
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.hit_rate(), 0.5);
    }

    #[test]
    fn different_network_hash_is_a_different_entry() {
        let mut cache = ResultCache::new(4);
        cache.insert(key(1, "p"), verdict(1));
        assert_eq!(cache.get(&key(2, "p")), None, "retrained net must miss");
    }

    #[test]
    fn evicts_least_recently_used() {
        let mut cache = ResultCache::new(2);
        cache.insert(key(1, "a"), verdict(1));
        cache.insert(key(2, "b"), verdict(2));
        // Touch "a" so "b" is the LRU entry.
        assert!(cache.get(&key(1, "a")).is_some());
        cache.insert(key(3, "c"), verdict(3));
        assert_eq!(cache.len(), 2);
        assert!(cache.get(&key(1, "a")).is_some(), "recently used survives");
        assert_eq!(cache.get(&key(2, "b")), None, "LRU entry evicted");
        assert_eq!(cache.evictions(), 1);
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let mut cache = ResultCache::new(0);
        cache.insert(key(1, "a"), verdict(1));
        assert!(cache.is_empty());
        assert_eq!(cache.get(&key(1, "a")), None);
    }
}
