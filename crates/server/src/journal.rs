//! Durable write-ahead job journal: the daemon's crash-only backbone.
//!
//! Every accepted job is appended (and fsync'd) *before* its acceptance
//! is acknowledged, and every state transition — started, checkpointed,
//! completed — is appended as it happens. After any process death
//! (including `SIGKILL`), restarting the daemon on the same journal
//! replays it: jobs with a terminal record have their response retained
//! for idempotent re-delivery, jobs caught mid-flight are re-enqueued
//! (resuming from their last `charon-ckpt` checkpoint when one was
//! journaled), and the file is compacted down to what is still live.
//!
//! # On-disk format
//!
//! One record per line, each framed as eight lowercase hex digits of
//! CRC-32 (IEEE) over the payload, a space, and a flat-JSON payload in
//! the workspace codec ([`charon::json`]):
//!
//! ```text
//! 8d3f00c1 {"record": "header", "version": 1}
//! 1a2b3c4d {"record": "accepted", "id": 7, "request": "{\"request\": \"verify\", ...}"}
//! ...      {"record": "started", "id": 7, "attempt": 1}
//! ...      {"record": "checkpointed", "id": 7, "regions_done": 42, "checkpoint": "charon-ckpt 1\n..."}
//! ...      {"record": "completed", "id": 7, "response": "{\"response\": \"verdict\", ...}"}
//! ```
//!
//! A torn *final* record (the write the crash interrupted) is expected
//! and tolerated on replay; a corrupt record followed by further intact
//! records means the file was damaged some other way and is reported as
//! an error rather than silently skipped.

use std::fs::{File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;

use charon::json::{parse_flat_object, ObjectBuilder};

use crate::faults::ServerFaultPlan;
use crate::protocol::{Request, VerifyRequest};

/// Journal format version written in the header record.
pub const JOURNAL_VERSION: u64 = 1;

/// Terminal results retained through compaction, newest first. Bounds
/// journal regrowth while keeping recent verdicts answerable by id
/// across restarts.
pub const RESULT_RETENTION: usize = 1024;

/// One journal record.
#[derive(Debug, Clone, PartialEq)]
pub enum Record {
    /// A job passed admission; carries the full wire-form request so
    /// replay can re-create it.
    Accepted {
        /// The job id.
        id: u64,
        /// The admitted request.
        request: VerifyRequest,
    },
    /// A worker began (or re-began) executing the job.
    Started {
        /// The job id.
        id: u64,
        /// 1-based execution attempt, counted across process lives.
        attempt: u32,
    },
    /// The job was cooperatively cancelled to a resumable checkpoint.
    Checkpointed {
        /// The job id.
        id: u64,
        /// Regions decided before the interruption.
        regions_done: usize,
        /// The `charon-ckpt 1` text.
        checkpoint: String,
    },
    /// The job reached a terminal response (verdict, error, unstarted,
    /// checkpointed-and-delivered, or poisoned).
    Completed {
        /// The job id.
        id: u64,
        /// The full terminal response line, retained for idempotent
        /// re-delivery and `query`.
        response: String,
    },
    /// A coordinator handed one shard of the job to a node (cluster
    /// tier). Advisory: replay does not reconstruct shard assignments —
    /// a recovered coordinator job is re-sharded from scratch — but the
    /// record makes the dispatch history auditable after a crash.
    ShardDispatched {
        /// The job id.
        id: u64,
        /// The shard index within the job.
        shard: usize,
        /// The node address the shard was sent to.
        node: String,
    },
}

impl Record {
    fn encode(&self) -> String {
        match self {
            Record::Accepted { id, request } => ObjectBuilder::new()
                .str("record", "accepted")
                .int("id", *id)
                .str("request", &request.to_line())
                .build(),
            Record::Started { id, attempt } => ObjectBuilder::new()
                .str("record", "started")
                .int("id", *id)
                .int("attempt", u64::from(*attempt))
                .build(),
            Record::Checkpointed {
                id,
                regions_done,
                checkpoint,
            } => ObjectBuilder::new()
                .str("record", "checkpointed")
                .int("id", *id)
                .int("regions_done", *regions_done as u64)
                .str("checkpoint", checkpoint)
                .build(),
            Record::Completed { id, response } => ObjectBuilder::new()
                .str("record", "completed")
                .int("id", *id)
                .str("response", response)
                .build(),
            Record::ShardDispatched { id, shard, node } => ObjectBuilder::new()
                .str("record", "shard_dispatched")
                .int("id", *id)
                .int("shard", *shard as u64)
                .str("node", node)
                .build(),
        }
    }

    fn decode(payload: &str) -> Result<Option<Record>, String> {
        let fields = parse_flat_object(payload)?;
        let kind = fields.str_field("record")?;
        if kind == "header" {
            let version = fields.usize_field("version")? as u64;
            if version != JOURNAL_VERSION {
                return Err(format!(
                    "journal version {version} not supported (this build writes {JOURNAL_VERSION})"
                ));
            }
            return Ok(None);
        }
        let id = fields.usize_field("id")? as u64;
        match kind.as_str() {
            "accepted" => {
                let line = fields.str_field("request")?;
                match Request::parse(&line)? {
                    Request::Verify(request) => Ok(Some(Record::Accepted { id, request })),
                    other => Err(format!("accepted record holds a non-verify request {other:?}")),
                }
            }
            "started" => Ok(Some(Record::Started {
                id,
                attempt: fields.usize_field("attempt")? as u32,
            })),
            "checkpointed" => Ok(Some(Record::Checkpointed {
                id,
                regions_done: fields.usize_field("regions_done")?,
                checkpoint: fields.str_field("checkpoint")?,
            })),
            "completed" => Ok(Some(Record::Completed {
                id,
                response: fields.str_field("response")?,
            })),
            "shard_dispatched" => Ok(Some(Record::ShardDispatched {
                id,
                shard: fields.usize_field("shard")?,
                node: fields.str_field("node")?,
            })),
            other => Err(format!("unknown record kind {other:?}")),
        }
    }
}

/// CRC-32 (IEEE 802.3, reflected), bitwise — journal lines are short and
/// appends are fsync-bound, so a lookup table would buy nothing.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xffff_ffff_u32;
    for &b in bytes {
        crc ^= u32::from(b);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xedb8_8320 & mask);
        }
    }
    !crc
}

fn frame(payload: &str) -> String {
    format!("{:08x} {payload}\n", crc32(payload.as_bytes()))
}

/// A job reconstructed from the journal that never reached a terminal
/// record: it was queued or in flight when the process died.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveredJob {
    /// The original admitted request (id included).
    pub request: VerifyRequest,
    /// Execution attempts already begun (counted `started` records,
    /// across process lives). The supervisor's quarantine budget treats
    /// these the same as in-process worker kills: a job that took a
    /// process down twice is poison.
    pub starts: u32,
    /// The most recent journaled checkpoint, if any: replay resumes from
    /// it instead of re-verifying from scratch.
    pub checkpoint: Option<String>,
}

/// Everything replay learned from an existing journal.
#[derive(Debug, Default)]
pub struct Replay {
    /// Jobs to re-enqueue, in original admission order.
    pub live: Vec<RecoveredJob>,
    /// Terminal `(id, response)` pairs, in append order, for idempotent
    /// re-delivery via `query`.
    pub results: Vec<(u64, String)>,
    /// Whether the final record was torn (interrupted mid-write) and
    /// discarded.
    pub torn_tail: bool,
    /// Intact records replayed (excluding the header).
    pub records: u64,
}

#[derive(Default)]
struct JobState {
    request: Option<VerifyRequest>,
    starts: u32,
    checkpoint: Option<String>,
    terminal: bool,
}

/// An open, append-only journal handle.
pub struct Journal {
    file: File,
    path: PathBuf,
    appends: u64,
    faults: Option<Arc<ServerFaultPlan>>,
}

impl std::fmt::Debug for Journal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Journal")
            .field("path", &self.path)
            .field("appends", &self.appends)
            .finish()
    }
}

fn corrupt(line_no: usize, why: &str) -> std::io::Error {
    std::io::Error::new(
        std::io::ErrorKind::InvalidData,
        format!("journal record {line_no}: {why}"),
    )
}

/// Parses journal text into a [`Replay`]. A damaged *final* record is
/// tolerated (`torn_tail`); damage followed by intact records is an
/// error.
///
/// # Errors
///
/// Returns `InvalidData` naming the first corrupt non-final record.
pub fn replay_text(text: &str) -> std::io::Result<Replay> {
    let mut replay = Replay::default();
    let mut jobs: Vec<(u64, JobState)> = Vec::new();
    let state_of = |id: u64, jobs: &mut Vec<(u64, JobState)>| -> usize {
        match jobs.iter().position(|(jid, _)| *jid == id) {
            Some(i) => i,
            None => {
                jobs.push((id, JobState::default()));
                jobs.len() - 1
            }
        }
    };

    let lines: Vec<&str> = text.lines().collect();
    let mut saw_header = false;
    for (idx, line) in lines.iter().enumerate() {
        let is_last = idx + 1 == lines.len();
        if line.trim().is_empty() {
            continue;
        }
        let parsed = (|| -> Result<Option<Record>, String> {
            let (crc_hex, payload) = line
                .split_once(' ')
                .ok_or_else(|| "missing CRC frame".to_string())?;
            let want = u32::from_str_radix(crc_hex, 16)
                .map_err(|_| format!("bad CRC field {crc_hex:?}"))?;
            let got = crc32(payload.as_bytes());
            if want != got {
                return Err(format!("CRC mismatch (stored {want:08x}, computed {got:08x})"));
            }
            Record::decode(payload)
        })();
        let record = match parsed {
            Ok(record) => record,
            Err(why) if is_last => {
                // The crash interrupted this very write; the record never
                // took effect, so it is discarded rather than reported.
                replay.torn_tail = true;
                let _ = why;
                break;
            }
            Err(why) => return Err(corrupt(idx + 1, &why)),
        };
        let Some(record) = record else {
            saw_header = true;
            continue;
        };
        if !saw_header {
            return Err(corrupt(idx + 1, "record before journal header"));
        }
        replay.records += 1;
        match record {
            Record::Accepted { id, request } => {
                // A re-used id after a terminal record is a fresh job:
                // reset its state.
                let i = state_of(id, &mut jobs);
                jobs[i].1 = JobState {
                    request: Some(request),
                    ..JobState::default()
                };
            }
            Record::Started { id, attempt } => {
                let i = state_of(id, &mut jobs);
                jobs[i].1.starts = jobs[i].1.starts.max(attempt);
            }
            Record::Checkpointed { id, checkpoint, .. } => {
                let i = state_of(id, &mut jobs);
                jobs[i].1.checkpoint = Some(checkpoint);
            }
            Record::Completed { id, response } => {
                let i = state_of(id, &mut jobs);
                jobs[i].1.terminal = true;
                replay.results.push((id, response));
            }
            // Shard assignments are advisory history: a recovered
            // coordinator job re-shards from scratch, so replay keeps no
            // per-shard state and compaction drops these records.
            Record::ShardDispatched { .. } => {}
        }
    }

    for (_, state) in jobs {
        if state.terminal {
            continue;
        }
        if let Some(request) = state.request {
            replay.live.push(RecoveredJob {
                request,
                starts: state.starts,
                checkpoint: state.checkpoint,
            });
        }
        // A started/checkpointed record without its accepted record can
        // only appear in a hand-damaged file; there is nothing to run.
    }
    Ok(replay)
}

impl Journal {
    /// Opens (creating if absent) the journal at `path`: replays any
    /// existing records, compacts the file down to the header, live
    /// jobs, and the most recent [`RESULT_RETENTION`] terminal results,
    /// and returns the append handle plus what replay found.
    ///
    /// # Errors
    ///
    /// Returns read/parse errors for a corrupt journal (a torn final
    /// record is not corruption) and write errors from compaction.
    pub fn open(
        path: &Path,
        faults: Option<Arc<ServerFaultPlan>>,
    ) -> std::io::Result<(Journal, Replay)> {
        let mut text = String::new();
        match File::open(path) {
            Ok(mut f) => {
                f.read_to_string(&mut text)?;
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(e) => return Err(e),
        }
        let replay = replay_text(&text)?;

        // Compact: header + retained results + every record needed to
        // re-create the live jobs, atomically via tmp-and-rename.
        let mut compacted = String::new();
        compacted.push_str(&frame(
            &ObjectBuilder::new()
                .str("record", "header")
                .int("version", JOURNAL_VERSION)
                .build(),
        ));
        let skip = replay.results.len().saturating_sub(RESULT_RETENTION);
        for (id, response) in replay.results.iter().skip(skip) {
            compacted.push_str(&frame(
                &Record::Completed {
                    id: *id,
                    response: response.clone(),
                }
                .encode(),
            ));
        }
        for job in &replay.live {
            compacted.push_str(&frame(
                &Record::Accepted {
                    id: job.request.id,
                    request: job.request.clone(),
                }
                .encode(),
            ));
            if job.starts > 0 {
                compacted.push_str(&frame(
                    &Record::Started {
                        id: job.request.id,
                        attempt: job.starts,
                    }
                    .encode(),
                ));
            }
            if let Some(checkpoint) = &job.checkpoint {
                compacted.push_str(&frame(
                    &Record::Checkpointed {
                        id: job.request.id,
                        regions_done: 0,
                        checkpoint: checkpoint.clone(),
                    }
                    .encode(),
                ));
            }
        }
        let tmp = path.with_extension("wal.tmp");
        {
            let mut f = File::create(&tmp)?;
            f.write_all(compacted.as_bytes())?;
            f.sync_data()?;
        }
        std::fs::rename(&tmp, path)?;

        let file = OpenOptions::new().append(true).open(path)?;
        file.sync_data()?;
        Ok((
            Journal {
                file,
                path: path.to_path_buf(),
                appends: 0,
                faults,
            },
            replay,
        ))
    }

    /// Appends one record and syncs it to disk. The record is durable
    /// when this returns `Ok`.
    ///
    /// # Errors
    ///
    /// Returns the underlying write/sync error, or an injected fault
    /// from the attached [`ServerFaultPlan`].
    pub fn append(&mut self, record: &Record) -> std::io::Result<()> {
        if let Some(plan) = &self.faults {
            if plan.journal_fault.check() {
                return Err(std::io::Error::other("injected journal write fault"));
            }
        }
        self.file.write_all(frame(&record.encode()).as_bytes())?;
        self.file.sync_data()?;
        self.appends += 1;
        Ok(())
    }

    /// Records appended through this handle (excluding replayed ones).
    pub fn appends(&self) -> u64 {
        self.appends
    }

    /// The journal file path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_journal(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!(
            "charon-journal-{tag}-{}-{:?}.wal",
            std::process::id(),
            std::thread::current().id()
        ))
    }

    fn request(id: u64) -> VerifyRequest {
        VerifyRequest {
            id,
            network: format!("/tmp/net-{id}.txt"),
            property: "charon-prop 1\ntarget 0\nend\n".to_string(),
            ..VerifyRequest::default()
        }
    }

    #[test]
    fn crc32_matches_known_vector() {
        // The classic IEEE check value.
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
    }

    #[test]
    fn records_round_trip_through_append_and_replay() {
        let path = temp_journal("roundtrip");
        let _ = std::fs::remove_file(&path);
        {
            let (mut journal, replay) = Journal::open(&path, None).unwrap();
            assert!(replay.live.is_empty());
            journal
                .append(&Record::Accepted {
                    id: 1,
                    request: request(1),
                })
                .unwrap();
            journal.append(&Record::Started { id: 1, attempt: 1 }).unwrap();
            journal
                .append(&Record::Accepted {
                    id: 2,
                    request: request(2),
                })
                .unwrap();
            journal
                .append(&Record::Completed {
                    id: 2,
                    response: "{\"response\": \"verdict\", \"id\": 2}".to_string(),
                })
                .unwrap();
            journal
                .append(&Record::Checkpointed {
                    id: 1,
                    regions_done: 5,
                    checkpoint: "charon-ckpt 1\ntarget 0\ndim 0\ndone 5\nend\n".to_string(),
                })
                .unwrap();
            assert_eq!(journal.appends(), 5);
        }
        let (_, replay) = Journal::open(&path, None).unwrap();
        assert!(!replay.torn_tail);
        assert_eq!(replay.results, vec![(2, "{\"response\": \"verdict\", \"id\": 2}".to_string())]);
        assert_eq!(replay.live.len(), 1, "job 2 is terminal, job 1 is live");
        let live = &replay.live[0];
        assert_eq!(live.request, request(1));
        assert_eq!(live.starts, 1);
        assert!(live.checkpoint.as_deref().unwrap().starts_with("charon-ckpt 1"));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn shard_dispatched_records_survive_decode_and_are_compacted_away() {
        let path = temp_journal("shard");
        let _ = std::fs::remove_file(&path);
        {
            let (mut journal, _) = Journal::open(&path, None).unwrap();
            journal
                .append(&Record::Accepted {
                    id: 5,
                    request: request(5),
                })
                .unwrap();
            journal
                .append(&Record::ShardDispatched {
                    id: 5,
                    shard: 2,
                    node: "tcp:127.0.0.1:9000".to_string(),
                })
                .unwrap();
        }
        let (_, replay) = Journal::open(&path, None).unwrap();
        assert_eq!(replay.records, 2, "dispatch record decodes and counts");
        assert_eq!(replay.live.len(), 1, "job is live, assignments advisory");
        // Compaction re-shards from scratch: no dispatch record remains.
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(!text.contains("shard_dispatched"));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn torn_final_record_is_tolerated_and_compacted_away() {
        let path = temp_journal("torn");
        let _ = std::fs::remove_file(&path);
        {
            let (mut journal, _) = Journal::open(&path, None).unwrap();
            journal
                .append(&Record::Accepted {
                    id: 1,
                    request: request(1),
                })
                .unwrap();
        }
        // Simulate a write the crash interrupted: a half-record tail.
        {
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            f.write_all(b"deadbeef {\"record\": \"comp").unwrap();
        }
        let (_, replay) = Journal::open(&path, None).unwrap();
        assert!(replay.torn_tail, "tail damage must be flagged");
        assert_eq!(replay.live.len(), 1, "the torn record never took effect");
        // Compaction rewrote the file; reopening is clean.
        let (_, replay) = Journal::open(&path, None).unwrap();
        assert!(!replay.torn_tail);
        assert_eq!(replay.live.len(), 1);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn mid_file_corruption_is_an_error_not_a_skip() {
        let path = temp_journal("corrupt");
        let _ = std::fs::remove_file(&path);
        {
            let (mut journal, _) = Journal::open(&path, None).unwrap();
            journal
                .append(&Record::Accepted {
                    id: 1,
                    request: request(1),
                })
                .unwrap();
            journal.append(&Record::Started { id: 1, attempt: 1 }).unwrap();
        }
        let text = std::fs::read_to_string(&path).unwrap();
        let mut lines: Vec<String> = text.lines().map(str::to_string).collect();
        // Flip a payload byte of the middle record without touching its CRC.
        let target = lines.len() - 2;
        lines[target] = lines[target].replace("accepted", "acXepted");
        std::fs::write(&path, format!("{}\n", lines.join("\n"))).unwrap();
        let err = Journal::open(&path, None).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("CRC mismatch"), "{err}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn reused_id_after_terminal_is_a_fresh_job() {
        let path = temp_journal("reuse");
        let _ = std::fs::remove_file(&path);
        {
            let (mut journal, _) = Journal::open(&path, None).unwrap();
            journal
                .append(&Record::Accepted {
                    id: 9,
                    request: request(9),
                })
                .unwrap();
            journal
                .append(&Record::Completed {
                    id: 9,
                    response: "{\"response\": \"verdict\", \"id\": 9}".to_string(),
                })
                .unwrap();
            journal
                .append(&Record::Accepted {
                    id: 9,
                    request: request(9),
                })
                .unwrap();
        }
        let (_, replay) = Journal::open(&path, None).unwrap();
        assert_eq!(replay.live.len(), 1, "the second accepted is live again");
        assert_eq!(replay.live[0].starts, 0, "prior life's starts do not carry over");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn injected_journal_fault_fails_the_append() {
        use crate::faults::ServerFaultPlanBuilder;
        let path = temp_journal("fault");
        let _ = std::fs::remove_file(&path);
        let plan = Arc::new(ServerFaultPlanBuilder::new().fail_journal_append(1).build());
        let (mut journal, _) = Journal::open(&path, Some(plan)).unwrap();
        journal
            .append(&Record::Accepted {
                id: 1,
                request: request(1),
            })
            .unwrap();
        let err = journal
            .append(&Record::Started { id: 1, attempt: 1 })
            .unwrap_err();
        assert!(err.to_string().contains("injected journal write fault"));
        // The next append succeeds: the fault is one-shot.
        journal.append(&Record::Started { id: 1, attempt: 1 }).unwrap();
        let _ = std::fs::remove_file(&path);
    }
}
