//! A minimal blocking client for the daemon protocol, shared by
//! `charon-cli submit`, the load generator, and the integration tests.

use std::io::{BufRead, BufReader, Write};

use charon::json::{parse_flat_object, Fields};

use crate::net::{ServerAddr, Stream};

/// One connection to a running daemon.
pub struct Client {
    reader: BufReader<Stream>,
    writer: Stream,
}

impl Client {
    /// Connects to the daemon at `addr`.
    ///
    /// # Errors
    ///
    /// Returns the underlying connect error.
    pub fn connect(addr: &ServerAddr) -> std::io::Result<Client> {
        let stream = Stream::connect(addr)?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Client {
            reader,
            writer: stream,
        })
    }

    /// Sends one request line (the newline is appended here).
    ///
    /// # Errors
    ///
    /// Returns the underlying write error.
    pub fn send(&mut self, line: &str) -> std::io::Result<()> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()
    }

    /// Reads the next response object. An EOF or a malformed line maps
    /// to [`std::io::ErrorKind::UnexpectedEof`] / `InvalidData`.
    ///
    /// # Errors
    ///
    /// Returns the underlying read or parse failure.
    pub fn recv(&mut self) -> std::io::Result<Fields> {
        let mut line = String::new();
        loop {
            line.clear();
            let n = self.reader.read_line(&mut line)?;
            if n == 0 {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "server closed the connection",
                ));
            }
            if line.trim().is_empty() {
                continue;
            }
            return parse_flat_object(&line).map_err(|e| {
                std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!("malformed response: {e}"),
                )
            });
        }
    }

    /// Sends one request line and reads one response object.
    ///
    /// # Errors
    ///
    /// As [`Client::send`] and [`Client::recv`].
    pub fn request(&mut self, line: &str) -> std::io::Result<Fields> {
        self.send(line)?;
        self.recv()
    }
}
