//! A blocking client for the daemon protocol, shared by `charon-cli
//! submit`, the load generator, and the integration tests.
//!
//! Two layers:
//!
//! * [`Client`] — one connection, one request/response at a time, with a
//!   bounded line reader and optional socket timeouts.
//! * [`submit_reliable`] — the crash-only submission path: forces the
//!   `ack` flag so the job id is idempotent, retries connection-refused
//!   / `busy` / draining / journal-error with capped exponential
//!   backoff and deterministic jitter, reconnects and re-queries after a
//!   dropped connection, and returns a typed
//!   [`ClientError::RetriesExhausted`] when the budget runs out.
//!
//! An overloaded server's `busy` refusal carries a `retry_after_ms`
//! hint derived from its queue drain rate; [`submit_reliable`] honors
//! it (waiting at least that long before the next attempt) and stops
//! retrying outright once the request's own `deadline_ms` is spent —
//! there is no point winning admission for an answer nobody can use.

use std::io::{BufReader, Write};
use std::time::{Duration, Instant};

use charon::json::{parse_flat_object, Fields};

use crate::net::{read_line_bounded, ServerAddr, Stream, DEFAULT_MAX_LINE_BYTES};
use crate::protocol::VerifyRequest;

/// One connection to a running daemon.
pub struct Client {
    reader: BufReader<Stream>,
    writer: Stream,
    max_line_bytes: usize,
}

impl std::fmt::Debug for Client {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Client")
            .field("max_line_bytes", &self.max_line_bytes)
            .finish()
    }
}

impl Client {
    /// Connects to the daemon at `addr`.
    ///
    /// # Errors
    ///
    /// Returns the underlying connect error.
    pub fn connect(addr: &ServerAddr) -> std::io::Result<Client> {
        let stream = Stream::connect(addr)?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Client {
            reader,
            writer: stream,
            max_line_bytes: DEFAULT_MAX_LINE_BYTES,
        })
    }

    /// Sets socket read/write timeouts (`None` blocks forever).
    ///
    /// # Errors
    ///
    /// Returns the underlying setsockopt error.
    pub fn set_timeouts(
        &mut self,
        read: Option<Duration>,
        write: Option<Duration>,
    ) -> std::io::Result<()> {
        self.writer.set_read_timeout(read)?;
        self.writer.set_write_timeout(write)
    }

    /// Caps the length of one received line (default
    /// [`DEFAULT_MAX_LINE_BYTES`]).
    pub fn set_max_line_bytes(&mut self, max: usize) {
        self.max_line_bytes = max;
    }

    /// Sends one request line (the newline is appended here).
    ///
    /// # Errors
    ///
    /// Returns the underlying write error.
    pub fn send(&mut self, line: &str) -> std::io::Result<()> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()
    }

    /// Reads the next response object. An EOF or a malformed line maps
    /// to [`std::io::ErrorKind::UnexpectedEof`] / `InvalidData`; a line
    /// over the cap is `InvalidData` without unbounded buffering.
    ///
    /// # Errors
    ///
    /// Returns the underlying read or parse failure.
    pub fn recv(&mut self) -> std::io::Result<Fields> {
        let mut line = String::new();
        loop {
            line.clear();
            let n = read_line_bounded(&mut self.reader, &mut line, self.max_line_bytes)?;
            if n == 0 {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "server closed the connection",
                ));
            }
            if line.trim().is_empty() {
                continue;
            }
            return parse_flat_object(&line).map_err(|e| {
                std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!("malformed response: {e}"),
                )
            });
        }
    }

    /// Sends one request line and reads one response object.
    ///
    /// # Errors
    ///
    /// As [`Client::send`] and [`Client::recv`].
    pub fn request(&mut self, line: &str) -> std::io::Result<Fields> {
        self.send(line)?;
        self.recv()
    }
}

/// Backoff schedule for [`submit_reliable`] and [`connect_retry`].
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Total attempts (first try included). Zero behaves as one.
    pub max_attempts: u32,
    /// Delay before the second attempt; doubles per attempt thereafter.
    pub base: Duration,
    /// Ceiling on the (pre-jitter) delay.
    pub cap: Duration,
    /// Seed for the deterministic jitter stream, so tests and repeated
    /// client runs do not thundering-herd in lockstep.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 4,
            base: Duration::from_millis(50),
            cap: Duration::from_secs(2),
            seed: 0x9e37_79b9,
        }
    }
}

impl RetryPolicy {
    /// The delay before attempt number `attempt` (1-based over retries):
    /// `min(base · 2^(attempt-1), cap)` plus up to 50% jitter drawn from
    /// the xorshift stream in `state`.
    pub fn delay(&self, attempt: u32, state: &mut u64) -> Duration {
        let base_ms = self.base.as_millis() as u64;
        let cap_ms = self.cap.as_millis() as u64;
        let exp = attempt.saturating_sub(1).min(20);
        let raw = base_ms.saturating_mul(1_u64 << exp).min(cap_ms);
        // xorshift64: cheap, deterministic, and good enough to decorrelate.
        let mut x = *state | 1;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        *state = x;
        let jitter = if raw == 0 { 0 } else { x % (raw / 2 + 1) };
        Duration::from_millis(raw + jitter)
    }
}

/// Why a reliable submission ultimately failed.
#[derive(Debug)]
pub enum ClientError {
    /// A non-retryable transport failure (e.g. a malformed response).
    Io(std::io::Error),
    /// The daemon answered with something the protocol does not allow.
    Protocol(String),
    /// Every attempt failed with a retryable condition; `last` describes
    /// the final one.
    RetriesExhausted {
        /// Attempts made.
        attempts: u32,
        /// Human-readable description of the last failure.
        last: String,
        /// The server's last `retry_after_ms` hint, if the final failure
        /// was a `busy` refusal — callers queueing their own retry can
        /// start from the server's estimate instead of guessing.
        retry_after_ms: Option<u64>,
    },
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "i/o error: {e}"),
            ClientError::Protocol(msg) => write!(f, "protocol error: {msg}"),
            ClientError::RetriesExhausted {
                attempts,
                last,
                retry_after_ms,
            } => {
                write!(f, "retries exhausted after {attempts} attempts (last: {last})")?;
                if let Some(hint) = retry_after_ms {
                    write!(f, " (server suggests retrying in {hint} ms)")?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// Connects with retry/backoff (connection refused, socket not yet
/// bound, daemon restarting).
///
/// # Errors
///
/// Returns [`ClientError::RetriesExhausted`] once the budget runs out.
pub fn connect_retry(addr: &ServerAddr, policy: &RetryPolicy) -> Result<Client, ClientError> {
    let attempts = policy.max_attempts.max(1);
    let mut state = policy.seed;
    let mut last = String::new();
    for attempt in 0..attempts {
        if attempt > 0 {
            std::thread::sleep(policy.delay(attempt, &mut state));
        }
        match Client::connect(addr) {
            Ok(client) => return Ok(client),
            Err(e) => last = format!("connect to {addr}: {e}"),
        }
    }
    Err(ClientError::RetriesExhausted {
        attempts,
        last,
        retry_after_ms: None,
    })
}

/// Error codes the daemon marks as transient: the same submission may
/// succeed after backoff.
pub fn is_retryable_error_code(code: &str) -> bool {
    matches!(code, "queue_full" | "draining" | "journal_error")
}

enum Attempt {
    Terminal(Fields),
    Retry {
        why: String,
        /// Server-supplied backoff hint (`busy` responses only).
        retry_after: Option<u64>,
    },
}

fn retry(why: String) -> Attempt {
    Attempt::Retry {
        why,
        retry_after: None,
    }
}

/// Submits `request` with crash-only semantics and blocks until a
/// terminal response for its id arrives, surviving daemon restarts,
/// dropped connections, full queues, and lost acknowledgements.
///
/// The `ack` flag is forced on, making the client-chosen id idempotent:
/// a retried submission that raced a crash is deduplicated or answered
/// from the daemon's stored results rather than re-verified.
///
/// Terminal responses (`verdict` — including `poisoned`,
/// `checkpointed`, `unstarted`, and non-retryable `error`s) are
/// returned as-is for the caller to interpret.
///
/// # Errors
///
/// [`ClientError::RetriesExhausted`] when every attempt failed with a
/// retryable condition; [`ClientError::Protocol`] for responses outside
/// the protocol.
pub fn submit_reliable(
    addr: &ServerAddr,
    request: &VerifyRequest,
    policy: &RetryPolicy,
) -> Result<Fields, ClientError> {
    let mut request = request.clone();
    request.ack = true;
    let attempts = policy.max_attempts.max(1);
    let mut state = policy.seed ^ request.id;
    let mut last = String::from("never attempted");
    let mut hint: Option<u64> = None;
    let started = Instant::now();
    let mut made = 0;
    for attempt in 0..attempts {
        if attempt > 0 {
            // The next wait is the larger of our own backoff schedule
            // and the server's `retry_after_ms` hint: retrying sooner
            // than the server's queue can drain just burns an attempt.
            let mut delay = policy.delay(attempt, &mut state);
            if let Some(hint_ms) = hint {
                delay = delay.max(Duration::from_millis(hint_ms));
            }
            // A deadline the server can no longer meet is a deadline we
            // should not keep spending attempts on.
            if let Some(deadline_ms) = request.deadline_ms {
                let remaining = charon::deadline::remaining_ms(deadline_ms, started.elapsed());
                if Duration::from_millis(remaining) <= delay {
                    last = format!("deadline of {deadline_ms} ms spent while backing off ({last})");
                    break;
                }
            }
            std::thread::sleep(delay);
        }
        made = attempt + 1;
        match submit_once(addr, &request) {
            Ok(Attempt::Terminal(fields)) => return Ok(fields),
            Ok(Attempt::Retry { why, retry_after }) => {
                last = why;
                hint = retry_after;
            }
            Err(ClientError::Io(e)) => {
                last = format!("i/o: {e}");
                hint = None;
            }
            Err(fatal) => return Err(fatal),
        }
    }
    Err(ClientError::RetriesExhausted {
        attempts: made,
        last,
        retry_after_ms: hint,
    })
}

fn submit_once(addr: &ServerAddr, request: &VerifyRequest) -> Result<Attempt, ClientError> {
    let mut client = Client::connect(addr)?;
    client.send(&request.to_line())?;
    let first = client.recv()?;
    let kind = first
        .str_field("response")
        .map_err(ClientError::Protocol)?;
    match kind.as_str() {
        "accepted" => {
            if first.opt("duplicate").is_some() {
                // Another connection (possibly a dead one) owns delivery;
                // poll the stored-results side channel.
                poll_query(&mut client, request)
            } else {
                wait_terminal(&mut client, request.id)
            }
        }
        _ => classify_terminal(first, request.id),
    }
}

/// Waits on the submitting connection for the terminal response.
fn wait_terminal(client: &mut Client, id: u64) -> Result<Attempt, ClientError> {
    loop {
        let fields = client.recv()?;
        let for_id = fields.opt("id").is_none()
            || fields.usize_field("id").map(|v| v as u64) == Ok(id);
        if !for_id {
            continue;
        }
        let kind = fields
            .str_field("response")
            .map_err(ClientError::Protocol)?;
        if kind == "accepted" {
            continue;
        }
        return classify_terminal(fields, id);
    }
}

/// Polls `query` until the stored terminal result appears. Budget: the
/// job's own verification timeout plus slack — a result that has not
/// landed by then means this attempt should restart from submission.
fn poll_query(client: &mut Client, request: &VerifyRequest) -> Result<Attempt, ClientError> {
    let budget = Duration::from_millis(request.timeout_ms.saturating_mul(2).saturating_add(5_000));
    let start = Instant::now();
    loop {
        let fields = client.request(&VerifyRequest::query_line(request.id))?;
        let kind = fields
            .str_field("response")
            .map_err(ClientError::Protocol)?;
        match kind.as_str() {
            "pending" => {
                if start.elapsed() > budget {
                    return Ok(retry(format!(
                        "job {} still pending after {budget:?}",
                        request.id
                    )));
                }
                std::thread::sleep(Duration::from_millis(25));
            }
            // The daemon restarted without the job (journal off, or the
            // accepted record never hit disk): resubmit.
            "unknown" => {
                return Ok(retry(format!("job {} unknown to the daemon", request.id)))
            }
            _ => return classify_terminal(fields, request.id),
        }
    }
}

fn classify_terminal(fields: Fields, id: u64) -> Result<Attempt, ClientError> {
    let kind = fields
        .str_field("response")
        .map_err(ClientError::Protocol)?;
    match kind.as_str() {
        "verdict" | "checkpointed" | "unstarted" => Ok(Attempt::Terminal(fields)),
        // An overloaded server refused to queue the job; back off for at
        // least the server's drain-rate estimate, then resubmit.
        "busy" => {
            let retry_after = fields.opt_usize("retry_after_ms").ok().flatten().map(|v| v as u64);
            let reason = fields
                .opt_str("reason")
                .ok()
                .flatten()
                .unwrap_or_else(|| "overloaded".to_string());
            Ok(Attempt::Retry {
                why: format!("job {id}: busy ({reason})"),
                retry_after,
            })
        }
        "error" => {
            let code = fields.str_field("error").map_err(ClientError::Protocol)?;
            if is_retryable_error_code(&code) {
                let message = fields.opt_str("message").ok().flatten().unwrap_or_default();
                Ok(retry(format!("job {id}: {code}: {message}")))
            } else {
                Ok(Attempt::Terminal(fields))
            }
        }
        other => Err(ClientError::Protocol(format!(
            "unexpected response kind {other:?} for job {id}"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_capped_exponential_with_bounded_jitter() {
        let policy = RetryPolicy {
            max_attempts: 8,
            base: Duration::from_millis(100),
            cap: Duration::from_millis(800),
            seed: 7,
        };
        let mut state = policy.seed;
        let mut previous_raw = 0;
        for attempt in 1..8 {
            let raw = (100_u64 << (attempt - 1)).min(800);
            let delay = policy.delay(attempt, &mut state).as_millis() as u64;
            assert!(delay >= raw, "attempt {attempt}: jitter only adds");
            assert!(delay <= raw + raw / 2, "attempt {attempt}: jitter bounded at 50%");
            assert!(raw >= previous_raw, "schedule is monotone until the cap");
            previous_raw = raw;
        }
    }

    #[test]
    fn backoff_is_deterministic_per_seed() {
        let policy = RetryPolicy::default();
        let (mut a, mut b) = (policy.seed, policy.seed);
        for attempt in 1..5 {
            assert_eq!(policy.delay(attempt, &mut a), policy.delay(attempt, &mut b));
        }
        let mut c = policy.seed ^ 1;
        let distinct = (1..5).any(|attempt| {
            policy.delay(attempt, &mut a) != policy.delay(attempt, &mut c)
        });
        assert!(distinct, "different seeds must decorrelate");
    }

    #[test]
    fn retryable_codes_are_exactly_the_transient_ones() {
        for code in ["queue_full", "draining", "journal_error"] {
            assert!(is_retryable_error_code(code), "{code}");
        }
        for code in ["bad_request", "model_error", "engine_error", "deadline_expired"] {
            assert!(!is_retryable_error_code(code), "{code}");
        }
    }

    #[test]
    fn connect_retry_reports_exhaustion_with_the_last_error() {
        let addr = ServerAddr::Unix(std::env::temp_dir().join("charon-no-such-daemon.sock"));
        let policy = RetryPolicy {
            max_attempts: 2,
            base: Duration::from_millis(1),
            cap: Duration::from_millis(2),
            seed: 1,
        };
        match connect_retry(&addr, &policy) {
            Err(ClientError::RetriesExhausted {
                attempts,
                last,
                retry_after_ms,
            }) => {
                assert_eq!(attempts, 2);
                assert!(last.contains("connect"), "{last}");
                assert_eq!(retry_after_ms, None, "connect failures carry no hint");
            }
            other => panic!("expected exhaustion, got {other:?}"),
        }
    }
}
