//! Deterministic fault injection for the service layer, extending the
//! engine-level [`charon::faults`] harness up into the daemon.
//!
//! Where [`charon::faults::FaultPlan`] strikes inside one verification
//! run (per-region panics, NaNs, delays), a [`ServerFaultPlan`] strikes
//! the *service* machinery around the runs:
//!
//! * **worker kill** — panic the worker thread itself when it dequeues
//!   the job with a scheduled pop ordinal (or any job whose id is listed
//!   in [`ServerFaultPlanBuilder::kill_job`], which fires on *every*
//!   pop of that job — the crash-looping "poison job" scenario the
//!   supervisor must quarantine);
//! * **journal fault** — fail a scheduled journal append with an I/O
//!   error, exercising the "accepted is only acked after the journal
//!   write" path;
//! * **connection drop** — close a scheduled accepted connection
//!   immediately, exercising client reconnect-with-backoff.
//!
//! All schedules are ordinal-based and one-shot via
//! [`charon::faults::OrdinalTrigger`], so chaos tests are exactly
//! repeatable. Production configurations leave
//! [`crate::ServerConfig::faults`] as `None`.

use charon::faults::OrdinalTrigger;

/// A deterministic schedule of service-level faults.
#[derive(Debug, Default)]
pub struct ServerFaultPlan {
    pub(crate) worker_kill: OrdinalTrigger,
    pub(crate) kill_jobs: Vec<u64>,
    pub(crate) journal_fault: OrdinalTrigger,
    pub(crate) conn_drop: OrdinalTrigger,
    pub(crate) node_kill: OrdinalTrigger,
    pub(crate) shard_drop: OrdinalTrigger,
    pub(crate) shard_stall: OrdinalTrigger,
    pub(crate) shard_stall_ms: u64,
}

/// Builder for a [`ServerFaultPlan`].
#[derive(Debug, Default)]
pub struct ServerFaultPlanBuilder {
    worker_kill: Vec<usize>,
    kill_jobs: Vec<u64>,
    journal_fault: Vec<usize>,
    conn_drop: Vec<usize>,
    node_kill: Vec<usize>,
    shard_drop: Vec<usize>,
    shard_stall: Vec<usize>,
    shard_stall_ms: u64,
}

impl ServerFaultPlanBuilder {
    /// Starts an empty plan (no faults).
    pub fn new() -> Self {
        ServerFaultPlanBuilder::default()
    }

    /// Panics the worker that performs pop number `ordinal` (0-based,
    /// counted across all workers), once.
    pub fn kill_worker_at_pop(mut self, ordinal: usize) -> Self {
        self.worker_kill.push(ordinal);
        self
    }

    /// Panics the worker every time it pops the job with this id. The
    /// supervisor's retry budget turns this into a quarantine.
    pub fn kill_job(mut self, id: u64) -> Self {
        self.kill_jobs.push(id);
        self
    }

    /// Fails journal append number `ordinal` (0-based) with an I/O
    /// error, once.
    pub fn fail_journal_append(mut self, ordinal: usize) -> Self {
        self.journal_fault.push(ordinal);
        self
    }

    /// Drops accepted connection number `ordinal` (0-based) immediately
    /// after accept, once.
    pub fn drop_connection(mut self, ordinal: usize) -> Self {
        self.conn_drop.push(ordinal);
        self
    }

    /// Severs the coordinator's node connection on shard dispatch number
    /// `ordinal` (0-based, counted across all dispatchers), once. The
    /// in-flight shard is orphaned and must be re-dispatched, exercising
    /// the dead-node path without an external `kill -9`.
    pub fn kill_node_at_dispatch(mut self, ordinal: usize) -> Self {
        self.node_kill.push(ordinal);
        self
    }

    /// Discards shard result number `ordinal` (0-based, counted across
    /// all dispatchers) after it is received, once — the shard looks
    /// lost and is re-dispatched, exercising duplicate-delivery merge.
    pub fn drop_shard_result(mut self, ordinal: usize) -> Self {
        self.shard_drop.push(ordinal);
        self
    }

    /// Stalls the node for `millis` of wall-clock on shard execution
    /// number `ordinal` (0-based, counted per node process), once — the
    /// slow-node scenario: the shard request is received but no answer
    /// comes back within the coordinator's read deadline, so the
    /// dispatch times out and the node's circuit breaker counts a
    /// failure.
    pub fn stall_shard(mut self, ordinal: usize, millis: u64) -> Self {
        self.shard_stall.push(ordinal);
        self.shard_stall_ms = millis;
        self
    }

    /// Finishes the plan.
    pub fn build(self) -> ServerFaultPlan {
        ServerFaultPlan {
            worker_kill: OrdinalTrigger::at(&self.worker_kill),
            kill_jobs: self.kill_jobs,
            journal_fault: OrdinalTrigger::at(&self.journal_fault),
            conn_drop: OrdinalTrigger::at(&self.conn_drop),
            node_kill: OrdinalTrigger::at(&self.node_kill),
            shard_drop: OrdinalTrigger::at(&self.shard_drop),
            shard_stall: OrdinalTrigger::at(&self.shard_stall),
            shard_stall_ms: self.shard_stall_ms,
        }
    }
}

impl ServerFaultPlan {
    /// Whether the worker that just popped job `id` must die: either the
    /// pop ordinal is scheduled, or the job id is marked poisonous.
    pub(crate) fn worker_must_die(&self, id: u64) -> bool {
        // Consume the pop ordinal first so scheduled ordinals stay
        // aligned with actual pops even when a kill_jobs id also fires.
        let by_ordinal = self.worker_kill.check();
        by_ordinal || self.kill_jobs.contains(&id)
    }

    /// Number of worker-kill pop ordinals that have fired.
    pub fn worker_kills_fired(&self) -> usize {
        self.worker_kill.fired_count()
    }

    /// Number of journal-append faults that have fired.
    pub fn journal_faults_fired(&self) -> usize {
        self.journal_fault.fired_count()
    }

    /// Number of connection drops that have fired.
    pub fn connection_drops_fired(&self) -> usize {
        self.conn_drop.fired_count()
    }

    /// Number of node-kill dispatch ordinals that have fired.
    pub fn node_kills_fired(&self) -> usize {
        self.node_kill.fired_count()
    }

    /// Number of shard-result drops that have fired.
    pub fn shard_drops_fired(&self) -> usize {
        self.shard_drop.fired_count()
    }

    /// Sleeps for the configured stall duration if this shard execution
    /// ordinal is scheduled (no-op otherwise).
    pub(crate) fn maybe_stall_shard(&self) {
        if self.shard_stall.check() {
            std::thread::sleep(std::time::Duration::from_millis(self.shard_stall_ms));
        }
    }

    /// Number of shard stalls that have fired.
    pub fn shard_stalls_fired(&self) -> usize {
        self.shard_stall.fired_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pop_ordinal_kill_fires_once_and_job_kill_fires_always() {
        let plan = ServerFaultPlanBuilder::new()
            .kill_worker_at_pop(1)
            .kill_job(7)
            .build();
        assert!(!plan.worker_must_die(3), "pop 0: nothing scheduled");
        assert!(plan.worker_must_die(3), "pop 1: ordinal kill");
        assert!(!plan.worker_must_die(3), "pop 2: ordinal spent");
        assert!(plan.worker_must_die(7), "poison job always kills");
        assert!(plan.worker_must_die(7), "... every time it is popped");
        assert_eq!(plan.worker_kills_fired(), 1);
    }

    #[test]
    fn empty_plan_never_fires() {
        let plan = ServerFaultPlanBuilder::new().build();
        for id in 0..10 {
            assert!(!plan.worker_must_die(id));
        }
        assert_eq!(plan.journal_faults_fired(), 0);
        assert_eq!(plan.connection_drops_fired(), 0);
        assert_eq!(plan.node_kills_fired(), 0);
        assert_eq!(plan.shard_drops_fired(), 0);
    }

    #[test]
    fn shard_stall_fires_once_at_its_ordinal() {
        let plan = ServerFaultPlanBuilder::new().stall_shard(1, 0).build();
        plan.maybe_stall_shard(); // ordinal 0: not scheduled
        assert_eq!(plan.shard_stalls_fired(), 0);
        plan.maybe_stall_shard(); // ordinal 1: fires (zero-length sleep)
        assert_eq!(plan.shard_stalls_fired(), 1);
        plan.maybe_stall_shard(); // one-shot
        assert_eq!(plan.shard_stalls_fired(), 1);
    }

    #[test]
    fn cluster_faults_fire_at_their_ordinals_once() {
        let plan = ServerFaultPlanBuilder::new()
            .kill_node_at_dispatch(1)
            .drop_shard_result(0)
            .build();
        assert!(!plan.node_kill.check(), "dispatch 0: not scheduled");
        assert!(plan.node_kill.check(), "dispatch 1: fires");
        assert!(!plan.node_kill.check(), "one-shot");
        assert!(plan.shard_drop.check(), "result 0: fires");
        assert!(!plan.shard_drop.check(), "one-shot");
        assert_eq!(plan.node_kills_fired(), 1);
        assert_eq!(plan.shard_drops_fired(), 1);
    }
}
