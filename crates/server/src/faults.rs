//! Deterministic fault injection for the service layer, extending the
//! engine-level [`charon::faults`] harness up into the daemon.
//!
//! Where [`charon::faults::FaultPlan`] strikes inside one verification
//! run (per-region panics, NaNs, delays), a [`ServerFaultPlan`] strikes
//! the *service* machinery around the runs:
//!
//! * **worker kill** — panic the worker thread itself when it dequeues
//!   the job with a scheduled pop ordinal (or any job whose id is listed
//!   in [`ServerFaultPlanBuilder::kill_job`], which fires on *every*
//!   pop of that job — the crash-looping "poison job" scenario the
//!   supervisor must quarantine);
//! * **journal fault** — fail a scheduled journal append with an I/O
//!   error, exercising the "accepted is only acked after the journal
//!   write" path;
//! * **connection drop** — close a scheduled accepted connection
//!   immediately, exercising client reconnect-with-backoff.
//!
//! All schedules are ordinal-based and one-shot via
//! [`charon::faults::OrdinalTrigger`], so chaos tests are exactly
//! repeatable. Production configurations leave
//! [`crate::ServerConfig::faults`] as `None`.

use charon::faults::OrdinalTrigger;

/// A deterministic schedule of service-level faults.
#[derive(Debug, Default)]
pub struct ServerFaultPlan {
    pub(crate) worker_kill: OrdinalTrigger,
    pub(crate) kill_jobs: Vec<u64>,
    pub(crate) journal_fault: OrdinalTrigger,
    pub(crate) conn_drop: OrdinalTrigger,
}

/// Builder for a [`ServerFaultPlan`].
#[derive(Debug, Default)]
pub struct ServerFaultPlanBuilder {
    worker_kill: Vec<usize>,
    kill_jobs: Vec<u64>,
    journal_fault: Vec<usize>,
    conn_drop: Vec<usize>,
}

impl ServerFaultPlanBuilder {
    /// Starts an empty plan (no faults).
    pub fn new() -> Self {
        ServerFaultPlanBuilder::default()
    }

    /// Panics the worker that performs pop number `ordinal` (0-based,
    /// counted across all workers), once.
    pub fn kill_worker_at_pop(mut self, ordinal: usize) -> Self {
        self.worker_kill.push(ordinal);
        self
    }

    /// Panics the worker every time it pops the job with this id. The
    /// supervisor's retry budget turns this into a quarantine.
    pub fn kill_job(mut self, id: u64) -> Self {
        self.kill_jobs.push(id);
        self
    }

    /// Fails journal append number `ordinal` (0-based) with an I/O
    /// error, once.
    pub fn fail_journal_append(mut self, ordinal: usize) -> Self {
        self.journal_fault.push(ordinal);
        self
    }

    /// Drops accepted connection number `ordinal` (0-based) immediately
    /// after accept, once.
    pub fn drop_connection(mut self, ordinal: usize) -> Self {
        self.conn_drop.push(ordinal);
        self
    }

    /// Finishes the plan.
    pub fn build(self) -> ServerFaultPlan {
        ServerFaultPlan {
            worker_kill: OrdinalTrigger::at(&self.worker_kill),
            kill_jobs: self.kill_jobs,
            journal_fault: OrdinalTrigger::at(&self.journal_fault),
            conn_drop: OrdinalTrigger::at(&self.conn_drop),
        }
    }
}

impl ServerFaultPlan {
    /// Whether the worker that just popped job `id` must die: either the
    /// pop ordinal is scheduled, or the job id is marked poisonous.
    pub(crate) fn worker_must_die(&self, id: u64) -> bool {
        // Consume the pop ordinal first so scheduled ordinals stay
        // aligned with actual pops even when a kill_jobs id also fires.
        let by_ordinal = self.worker_kill.check();
        by_ordinal || self.kill_jobs.contains(&id)
    }

    /// Number of worker-kill pop ordinals that have fired.
    pub fn worker_kills_fired(&self) -> usize {
        self.worker_kill.fired_count()
    }

    /// Number of journal-append faults that have fired.
    pub fn journal_faults_fired(&self) -> usize {
        self.journal_fault.fired_count()
    }

    /// Number of connection drops that have fired.
    pub fn connection_drops_fired(&self) -> usize {
        self.conn_drop.fired_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pop_ordinal_kill_fires_once_and_job_kill_fires_always() {
        let plan = ServerFaultPlanBuilder::new()
            .kill_worker_at_pop(1)
            .kill_job(7)
            .build();
        assert!(!plan.worker_must_die(3), "pop 0: nothing scheduled");
        assert!(plan.worker_must_die(3), "pop 1: ordinal kill");
        assert!(!plan.worker_must_die(3), "pop 2: ordinal spent");
        assert!(plan.worker_must_die(7), "poison job always kills");
        assert!(plan.worker_must_die(7), "... every time it is popped");
        assert_eq!(plan.worker_kills_fired(), 1);
    }

    #[test]
    fn empty_plan_never_fires() {
        let plan = ServerFaultPlanBuilder::new().build();
        for id in 0..10 {
            assert!(!plan.worker_must_die(id));
        }
        assert_eq!(plan.journal_faults_fired(), 0);
        assert_eq!(plan.connection_drops_fired(), 0);
    }
}
