//! Transport abstraction: the daemon speaks the same newline-delimited
//! protocol over a Unix domain socket (the default for local use and the
//! CI smoke test) or a TCP socket (for cross-host benchmarking).

use std::io::{BufRead, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::time::Duration;

/// Default cap on one protocol line (requests carry inline property
/// text and responses carry checkpoint text, so the bound is generous —
/// but it exists, so one malformed client cannot buffer unbounded
/// memory into the daemon).
pub const DEFAULT_MAX_LINE_BYTES: usize = 4 * 1024 * 1024;

/// Reads one newline-terminated line into `line`, buffering at most
/// `max_bytes` of it. Returns the number of bytes consumed (0 at EOF),
/// like [`BufRead::read_line`], but a line longer than the cap fails
/// with [`std::io::ErrorKind::InvalidData`] instead of growing without
/// bound.
///
/// # Errors
///
/// Returns the underlying read error, `InvalidData` for an over-long or
/// non-UTF-8 line.
pub fn read_line_bounded(
    reader: &mut impl BufRead,
    line: &mut String,
    max_bytes: usize,
) -> std::io::Result<usize> {
    let mut bytes: Vec<u8> = Vec::new();
    loop {
        let (done, used) = {
            let available = match reader.fill_buf() {
                Ok(buf) => buf,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            };
            match available.iter().position(|&b| b == b'\n') {
                Some(i) => {
                    bytes.extend_from_slice(&available[..=i]);
                    (true, i + 1)
                }
                None => {
                    bytes.extend_from_slice(available);
                    (available.is_empty(), available.len())
                }
            }
        };
        reader.consume(used);
        if bytes.len() > max_bytes {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("line exceeds the {max_bytes}-byte cap"),
            ));
        }
        if done {
            let text = std::str::from_utf8(&bytes).map_err(|_| {
                std::io::Error::new(std::io::ErrorKind::InvalidData, "line is not UTF-8")
            })?;
            line.push_str(text);
            return Ok(bytes.len());
        }
    }
}

/// Where the daemon listens (or where a client connects).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServerAddr {
    /// A Unix domain socket at the given filesystem path.
    Unix(PathBuf),
    /// A TCP socket, e.g. `127.0.0.1:7878`.
    Tcp(String),
}

impl ServerAddr {
    /// Parses an address spec: `unix:<path>`, `tcp:<host:port>`, or a
    /// bare filesystem path (treated as a Unix socket).
    ///
    /// # Errors
    ///
    /// Returns a message if the spec is empty or uses an unknown scheme.
    pub fn parse(spec: &str) -> Result<ServerAddr, String> {
        if let Some(path) = spec.strip_prefix("unix:") {
            if path.is_empty() {
                return Err("empty unix socket path".to_string());
            }
            Ok(ServerAddr::Unix(PathBuf::from(path)))
        } else if let Some(addr) = spec.strip_prefix("tcp:") {
            if addr.is_empty() {
                return Err("empty tcp address".to_string());
            }
            Ok(ServerAddr::Tcp(addr.to_string()))
        } else if spec.is_empty() {
            Err("empty server address".to_string())
        } else if let Some(scheme) = spec.split(':').next().filter(|s| {
            !s.contains('/') && spec.contains(':') && !s.chars().all(|c| c.is_ascii_digit())
        }) {
            // Looks like `scheme:rest` with an unknown scheme — reject
            // loudly instead of treating it as a strange file name
            // (host:port without `tcp:` lands here on purpose).
            Err(format!(
                "unknown address scheme {scheme:?} (use 'unix:<path>' or 'tcp:<host:port>')"
            ))
        } else {
            Ok(ServerAddr::Unix(PathBuf::from(spec)))
        }
    }
}

impl std::fmt::Display for ServerAddr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServerAddr::Unix(path) => write!(f, "unix:{}", path.display()),
            ServerAddr::Tcp(addr) => write!(f, "tcp:{addr}"),
        }
    }
}

/// A bound listening socket of either flavor.
pub(crate) enum Listener {
    Unix(UnixListener),
    Tcp(TcpListener),
}

impl Listener {
    /// Binds to `addr`. A pre-existing Unix socket file is removed first
    /// (a daemon that crashed leaves one behind).
    pub(crate) fn bind(addr: &ServerAddr) -> std::io::Result<Listener> {
        match addr {
            ServerAddr::Unix(path) => {
                if path.exists() {
                    let _ = std::fs::remove_file(path);
                }
                if let Some(dir) = path.parent() {
                    if !dir.as_os_str().is_empty() {
                        let _ = std::fs::create_dir_all(dir);
                    }
                }
                Ok(Listener::Unix(UnixListener::bind(path)?))
            }
            ServerAddr::Tcp(spec) => Ok(Listener::Tcp(TcpListener::bind(spec)?)),
        }
    }

    /// Blocks until the next client connects.
    pub(crate) fn accept(&self) -> std::io::Result<Stream> {
        match self {
            Listener::Unix(l) => l.accept().map(|(s, _)| Stream::Unix(s)),
            Listener::Tcp(l) => l.accept().map(|(s, _)| Stream::Tcp(s)),
        }
    }

    /// The address the listener is actually bound to (for TCP with port
    /// 0, the kernel-assigned port).
    pub(crate) fn local_addr(&self, requested: &ServerAddr) -> ServerAddr {
        match (self, requested) {
            (Listener::Tcp(l), _) => match l.local_addr() {
                Ok(a) => ServerAddr::Tcp(a.to_string()),
                Err(_) => requested.clone(),
            },
            _ => requested.clone(),
        }
    }
}

/// A connected stream of either flavor. Cloning duplicates the OS-level
/// handle, so one clone can sit in a buffered reader while worker
/// threads write responses through another.
pub enum Stream {
    /// A Unix domain socket connection.
    Unix(UnixStream),
    /// A TCP connection.
    Tcp(TcpStream),
}

impl Stream {
    /// Connects to a daemon at `addr`.
    ///
    /// # Errors
    ///
    /// Returns the underlying connect error.
    pub fn connect(addr: &ServerAddr) -> std::io::Result<Stream> {
        match addr {
            ServerAddr::Unix(path) => UnixStream::connect(path).map(Stream::Unix),
            ServerAddr::Tcp(spec) => TcpStream::connect(spec.as_str()).map(Stream::Tcp),
        }
    }

    /// Duplicates the stream handle.
    ///
    /// # Errors
    ///
    /// Returns the underlying clone error.
    pub fn try_clone(&self) -> std::io::Result<Stream> {
        match self {
            Stream::Unix(s) => s.try_clone().map(Stream::Unix),
            Stream::Tcp(s) => s.try_clone().map(Stream::Tcp),
        }
    }

    /// Sets the read timeout (`None` blocks forever). A timed-out read
    /// fails with `WouldBlock`/`TimedOut` depending on the platform.
    ///
    /// # Errors
    ///
    /// Returns the underlying setsockopt error.
    pub fn set_read_timeout(&self, dur: Option<Duration>) -> std::io::Result<()> {
        match self {
            Stream::Unix(s) => s.set_read_timeout(dur),
            Stream::Tcp(s) => s.set_read_timeout(dur),
        }
    }

    /// Sets the write timeout (`None` blocks forever), so a stalled
    /// client cannot wedge a worker mid-response.
    ///
    /// # Errors
    ///
    /// Returns the underlying setsockopt error.
    pub fn set_write_timeout(&self, dur: Option<Duration>) -> std::io::Result<()> {
        match self {
            Stream::Unix(s) => s.set_write_timeout(dur),
            Stream::Tcp(s) => s.set_write_timeout(dur),
        }
    }

    /// Shuts down both directions of the connection, releasing any peer
    /// blocked on it (used by the connection-drop fault injection).
    pub(crate) fn shutdown(&self) {
        match self {
            Stream::Unix(s) => {
                let _ = s.shutdown(std::net::Shutdown::Both);
            }
            Stream::Tcp(s) => {
                let _ = s.shutdown(std::net::Shutdown::Both);
            }
        }
    }
}

impl Read for Stream {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            Stream::Unix(s) => s.read(buf),
            Stream::Tcp(s) => s.read(buf),
        }
    }
}

impl Write for Stream {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            Stream::Unix(s) => s.write(buf),
            Stream::Tcp(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            Stream::Unix(s) => s.flush(),
            Stream::Tcp(s) => s.flush(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_address_specs() {
        assert_eq!(
            ServerAddr::parse("unix:/tmp/x.sock").unwrap(),
            ServerAddr::Unix(PathBuf::from("/tmp/x.sock"))
        );
        assert_eq!(
            ServerAddr::parse("tcp:127.0.0.1:7878").unwrap(),
            ServerAddr::Tcp("127.0.0.1:7878".to_string())
        );
        assert_eq!(
            ServerAddr::parse("/var/run/charon.sock").unwrap(),
            ServerAddr::Unix(PathBuf::from("/var/run/charon.sock"))
        );
        assert!(ServerAddr::parse("").is_err());
        assert!(ServerAddr::parse("http:example.com").is_err());
    }

    #[test]
    fn display_round_trips_through_parse() {
        for spec in ["unix:/tmp/a.sock", "tcp:127.0.0.1:9"] {
            let addr = ServerAddr::parse(spec).unwrap();
            assert_eq!(ServerAddr::parse(&addr.to_string()).unwrap(), addr);
        }
    }

    #[test]
    fn bounded_read_returns_lines_within_the_cap() {
        let mut reader = std::io::Cursor::new(b"hello\nworld".to_vec());
        let mut line = String::new();
        assert_eq!(read_line_bounded(&mut reader, &mut line, 64).unwrap(), 6);
        assert_eq!(line, "hello\n");
        line.clear();
        // EOF with a partial final line behaves like read_line.
        assert_eq!(read_line_bounded(&mut reader, &mut line, 64).unwrap(), 5);
        assert_eq!(line, "world");
        line.clear();
        assert_eq!(read_line_bounded(&mut reader, &mut line, 64).unwrap(), 0);
    }

    #[test]
    fn bounded_read_rejects_over_long_lines() {
        let mut reader = std::io::Cursor::new(vec![b'x'; 100]);
        let mut line = String::new();
        let err = read_line_bounded(&mut reader, &mut line, 16).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("16-byte cap"), "{err}");
    }
}
