//! Content-addressed model registry.
//!
//! Every verify request names a network *file*; the registry turns that
//! name into a content hash and a shared, already-deserialized
//! [`Network`]. Two levels of deduplication:
//!
//! 1. the raw file bytes are hashed ([`nn::serialize::fnv1a`], the same
//!    hash `data::zoo` keys its on-disk cache with) — a byte-identical
//!    file is never re-read into a `Network`;
//! 2. the parsed network's canonical hash
//!    ([`nn::serialize::content_hash`]) keys the shared instance — two
//!    files that differ only in formatting still share one `Network`,
//!    and that canonical hash is what the result cache keys verdicts by.
//!
//! Networks are shared via [`Arc`], so a registry lookup on the job hot
//! path is a hash and a map probe, never a deserialization.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use nn::serialize::{content_hash, fnv1a, from_text};
use nn::Network;

struct Maps {
    /// File-bytes hash → canonical content hash (memoizes parsing).
    by_file: HashMap<u64, u64>,
    /// Canonical content hash → the shared network.
    by_content: HashMap<u64, Arc<Network>>,
}

/// Shared store of deserialized networks, keyed by content hash.
pub struct ModelRegistry {
    maps: Mutex<Maps>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl ModelRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        ModelRegistry {
            maps: Mutex::new(Maps {
                by_file: HashMap::new(),
                by_content: HashMap::new(),
            }),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Loads the network file at `path`, returning its canonical content
    /// hash and the shared deserialized instance. Deserializes at most
    /// once per distinct content.
    ///
    /// # Errors
    ///
    /// Returns a message if the file cannot be read or does not parse as
    /// `charon-net 1`.
    pub fn load(&self, path: &str) -> Result<(u64, Arc<Network>), String> {
        let bytes =
            std::fs::read(path).map_err(|e| format!("cannot read network {path:?}: {e}"))?;
        let file_hash = fnv1a(&bytes);
        {
            let maps = self.maps.lock().unwrap();
            if let Some(&canonical) = maps.by_file.get(&file_hash) {
                if let Some(net) = maps.by_content.get(&canonical) {
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    return Ok((canonical, Arc::clone(net)));
                }
            }
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let text = String::from_utf8(bytes)
            .map_err(|_| format!("network {path:?} is not valid UTF-8"))?;
        let net = from_text(&text).map_err(|e| format!("network {path:?}: {e}"))?;
        let canonical = content_hash(&net);
        let mut maps = self.maps.lock().unwrap();
        maps.by_file.insert(file_hash, canonical);
        let shared = maps
            .by_content
            .entry(canonical)
            .or_insert_with(|| Arc::new(net));
        Ok((canonical, Arc::clone(shared)))
    }

    /// Registers an in-memory network directly (used by tests and
    /// in-process embedding), returning its canonical hash.
    pub fn insert(&self, net: Network) -> u64 {
        let canonical = content_hash(&net);
        let mut maps = self.maps.lock().unwrap();
        maps.by_content
            .entry(canonical)
            .or_insert_with(|| Arc::new(net));
        canonical
    }

    /// The number of distinct networks held.
    pub fn len(&self) -> usize {
        self.maps.lock().unwrap().by_content.len()
    }

    /// Whether the registry holds no networks.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lookups answered without re-reading a file's contents into a new
    /// network.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that had to read and deserialize.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }
}

impl Default for ModelRegistry {
    fn default() -> Self {
        ModelRegistry::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nn::serialize::to_text;

    fn temp_file(name: &str, contents: &str) -> std::path::PathBuf {
        let path = std::env::temp_dir().join(format!(
            "charon-registry-{}-{name}",
            std::process::id()
        ));
        std::fs::write(&path, contents).unwrap();
        path
    }

    #[test]
    fn second_load_shares_the_same_instance() {
        let net = nn::samples::xor_network();
        let path = temp_file("a.net", &to_text(&net));
        let registry = ModelRegistry::new();
        let (h1, n1) = registry.load(path.to_str().unwrap()).unwrap();
        let (h2, n2) = registry.load(path.to_str().unwrap()).unwrap();
        assert_eq!(h1, h2);
        assert!(Arc::ptr_eq(&n1, &n2), "same content shares one instance");
        assert_eq!(registry.len(), 1);
        assert_eq!(registry.hits(), 1);
        assert_eq!(registry.misses(), 1);
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn formatting_differences_share_one_canonical_network() {
        let net = nn::samples::xor_network();
        let text = to_text(&net);
        let reformatted = format!("\n{}\n", text.replace('\n', "\n\n"));
        let a = temp_file("b.net", &text);
        let b = temp_file("c.net", &reformatted);
        let registry = ModelRegistry::new();
        let (ha, na) = registry.load(a.to_str().unwrap()).unwrap();
        let (hb, nb) = registry.load(b.to_str().unwrap()).unwrap();
        assert_eq!(ha, hb, "canonical hash ignores formatting");
        assert!(Arc::ptr_eq(&na, &nb));
        assert_eq!(registry.len(), 1, "one network despite two files");
        let _ = std::fs::remove_file(a);
        let _ = std::fs::remove_file(b);
    }

    #[test]
    fn load_errors_name_the_path() {
        let registry = ModelRegistry::new();
        let err = registry.load("/nonexistent/net.txt").unwrap_err();
        assert!(err.contains("nonexistent"), "error: {err}");
        let bad = temp_file("bad.net", "not a network");
        let err = registry.load(bad.to_str().unwrap()).unwrap_err();
        assert!(err.contains("bad.net"), "error: {err}");
        let _ = std::fs::remove_file(bad);
    }
}
