//! Bounded priority job queue with admission control.
//!
//! The daemon's central backpressure point: submissions beyond
//! `capacity` are rejected immediately with `queue_full` rather than
//! blocking the connection thread (a stalled verification farm must say
//! so, not silently buffer unbounded work). Workers block on [`JobQueue::pop`]
//! and drain in priority order, FIFO within a priority level.

use std::collections::BinaryHeap;
use std::sync::{Condvar, Mutex};

/// Why a push was not admitted. The rejected item is handed back so the
/// caller can report it to its submitter — no job is silently dropped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RejectReason {
    /// The queue is at capacity.
    Full,
    /// The queue was closed (the daemon is draining).
    Closed,
}

struct Entry<T> {
    priority: i64,
    seq: u64,
    item: T,
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.priority == other.priority && self.seq == other.seq
    }
}
impl<T> Eq for Entry<T> {}
impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Max-heap: higher priority first, then earlier sequence number
        // (FIFO within a priority level).
        self.priority
            .cmp(&other.priority)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

struct Inner<T> {
    heap: BinaryHeap<Entry<T>>,
    closed: bool,
    seq: u64,
}

/// A bounded, closable priority queue shared between connection threads
/// (producers) and the worker pool (consumers).
pub struct JobQueue<T> {
    inner: Mutex<Inner<T>>,
    available: Condvar,
    capacity: usize,
}

impl<T> JobQueue<T> {
    /// Creates a queue admitting at most `capacity` queued items.
    pub fn new(capacity: usize) -> Self {
        JobQueue {
            inner: Mutex::new(Inner {
                heap: BinaryHeap::new(),
                closed: false,
                seq: 0,
            }),
            available: Condvar::new(),
            capacity,
        }
    }

    /// The maximum number of queued items.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The current number of queued items.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().heap.len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Admits an item, or returns it back with the rejection reason
    /// (never blocks).
    ///
    /// # Errors
    ///
    /// Returns the item and [`RejectReason::Full`] at capacity, or
    /// [`RejectReason::Closed`] after [`JobQueue::close_and_drain`].
    pub fn push(&self, priority: i64, item: T) -> Result<(), (T, RejectReason)> {
        let mut inner = self.inner.lock().unwrap();
        if inner.closed {
            return Err((item, RejectReason::Closed));
        }
        if inner.heap.len() >= self.capacity {
            return Err((item, RejectReason::Full));
        }
        let seq = inner.seq;
        inner.seq += 1;
        inner.heap.push(Entry {
            priority,
            seq,
            item,
        });
        drop(inner);
        self.available.notify_one();
        Ok(())
    }

    /// Blocks until an item is available (highest priority first) or the
    /// queue is closed and empty (`None`: the worker should exit).
    pub fn pop(&self) -> Option<T> {
        let mut inner = self.inner.lock().unwrap();
        loop {
            if let Some(entry) = inner.heap.pop() {
                return Some(entry.item);
            }
            if inner.closed {
                return None;
            }
            inner = self.available.wait(inner).unwrap();
        }
    }

    /// Re-admits an item the daemon already owns (a supervisor
    /// re-enqueue after a worker death, or a journal-replayed job),
    /// bypassing the capacity check: the job was admitted once and must
    /// not be bounced by backpressure from *newer* submissions.
    ///
    /// # Errors
    ///
    /// Returns the item and [`RejectReason::Closed`] if the daemon is
    /// draining — the caller reports the job unstarted instead.
    pub fn requeue(&self, priority: i64, item: T) -> Result<(), (T, RejectReason)> {
        let mut inner = self.inner.lock().unwrap();
        if inner.closed {
            return Err((item, RejectReason::Closed));
        }
        let seq = inner.seq;
        inner.seq += 1;
        inner.heap.push(Entry {
            priority,
            seq,
            item,
        });
        drop(inner);
        self.available.notify_one();
        Ok(())
    }

    /// Atomically closes the queue and removes every queued item,
    /// returning them in pop order. Subsequent pushes are rejected with
    /// [`RejectReason::Closed`]; blocked and future [`JobQueue::pop`]
    /// calls return `None` once the queue is empty.
    pub fn close_and_drain(&self) -> Vec<T> {
        let mut inner = self.inner.lock().unwrap();
        inner.closed = true;
        let mut items = Vec::with_capacity(inner.heap.len());
        while let Some(entry) = inner.heap.pop() {
            items.push(entry.item);
        }
        drop(inner);
        self.available.notify_all();
        items
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_by_priority_then_fifo() {
        let q = JobQueue::new(10);
        q.push(0, "low-a").unwrap();
        q.push(5, "high").unwrap();
        q.push(0, "low-b").unwrap();
        assert_eq!(q.pop(), Some("high"));
        assert_eq!(q.pop(), Some("low-a"));
        assert_eq!(q.pop(), Some("low-b"));
    }

    #[test]
    fn rejects_when_full_and_returns_the_item() {
        let q = JobQueue::new(2);
        q.push(0, 1).unwrap();
        q.push(0, 2).unwrap();
        match q.push(0, 3) {
            Err((item, RejectReason::Full)) => assert_eq!(item, 3),
            other => panic!("expected Full rejection, got {other:?}"),
        }
        // Popping frees a slot.
        assert_eq!(q.pop(), Some(1));
        q.push(0, 3).unwrap();
    }

    #[test]
    fn requeue_bypasses_capacity_but_not_close() {
        let q = JobQueue::new(1);
        q.push(0, 1).unwrap();
        assert!(q.push(0, 2).is_err(), "at capacity");
        q.requeue(5, 2).unwrap();
        assert_eq!(q.pop(), Some(2), "requeued item obeys priority order");
        q.close_and_drain();
        assert!(matches!(q.requeue(0, 9), Err((9, RejectReason::Closed))));
    }

    #[test]
    fn close_and_drain_reports_every_queued_item() {
        let q = JobQueue::new(10);
        q.push(1, "a").unwrap();
        q.push(3, "b").unwrap();
        let drained = q.close_and_drain();
        assert_eq!(drained, vec!["b", "a"]);
        assert_eq!(q.pop(), None, "closed empty queue releases workers");
        assert!(matches!(q.push(0, "c"), Err(("c", RejectReason::Closed))));
    }

    #[test]
    fn blocked_pop_wakes_on_push_and_on_close() {
        use std::sync::Arc;
        let q = Arc::new(JobQueue::new(4));
        let q2 = Arc::clone(&q);
        let popper = std::thread::spawn(move || (q2.pop(), q2.pop()));
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.push(0, 7).unwrap();
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.close_and_drain();
        assert_eq!(popper.join().unwrap(), (Some(7), None));
    }
}
