//! The daemon's wire protocol: one flat JSON object per line, using the
//! workspace's hand-rolled codec ([`charon::json`]) in both directions.
//!
//! Requests carry a `"request"` discriminator, responses a `"response"`
//! discriminator; verify responses echo the client-chosen `"id"` so
//! pipelined submissions can be matched up out of order. Multi-line
//! payloads (the `charon-prop` property text, `charon-ckpt` checkpoint
//! text) travel as JSON strings with escaped newlines.
//!
//! ```text
//! → {"request": "verify", "id": 1, "network": "/tmp/net.txt", "property": "charon-prop 1\n..."}
//! ← {"response": "verdict", "id": 1, "verdict": "verified", "cached": 0, ...}
//! ```

use charon::json::{parse_flat_object, Fields, ObjectBuilder};

/// Protocol version, echoed by `ping` and `stats` responses.
///
/// Version 2 added the crash-only surface: the `ack` submission flag
/// (journaled-acceptance acknowledgement + duplicate-id detection), the
/// `query` request, and the `accepted` / `pending` / `unknown` /
/// `poisoned` responses. Version 3 adds the cluster surface: the
/// `shard` / `node_hello` / `node_stats` requests and the
/// `shard_result` / `node_hello` / `node_stats` responses used between
/// a coordinator and its shard-worker nodes. Version 4 adds certified
/// verdicts: the optional `cert` flag on `verify` and `shard` requests,
/// and the optional `cert` field (a `charon-cert 1` text) on `verdict`
/// and `shard_result` responses. Version 5 adds the overload surface:
/// `deadline_ms` on `shard` requests (it already existed on `verify`)
/// so the remaining client deadline travels with every dispatch, and
/// the `busy` response — the server's refusal to queue a submission
/// (queue at capacity, or the sojourn-time shed controller firing)
/// carrying a `retry_after_ms` hint derived from the observed queue
/// drain rate. Older clients are unaffected: every new behavior is
/// opt-in, and a v4 client simply never sees `busy` semantics it can't
/// handle (it retries on any error it recognizes).
pub const PROTOCOL_VERSION: u64 = 5;

/// Every request discriminator the daemon understands, in the order
/// they joined the protocol. `scripts/ci.sh` greps `docs/PROTOCOL.md`
/// for each entry, so adding a kind here without documenting it fails
/// CI. Keep each list on one line — the CI extraction is line-oriented.
pub const REQUEST_KINDS: &[&str] = &["verify", "query", "stats", "drain", "ping", "shard", "node_hello", "node_stats"];

/// Every response discriminator the daemon emits (same CI contract as
/// [`REQUEST_KINDS`]).
pub const RESPONSE_KINDS: &[&str] = &["verdict", "error", "checkpointed", "unstarted", "accepted", "pending", "unknown", "pong", "drained", "shard_result", "node_hello", "node_stats", "busy"];

/// Default per-job verification wall-clock budget (ms) when the request
/// does not set one.
pub const DEFAULT_TIMEOUT_MS: u64 = 10_000;

/// A parsed client request line.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Submit a verification job.
    Verify(VerifyRequest),
    /// Look up the stored terminal result for a job id (idempotent
    /// re-delivery after a reconnect or a daemon restart).
    Query {
        /// The job id to look up.
        id: u64,
    },
    /// Report queue/cache/latency statistics.
    Stats,
    /// Gracefully drain and shut down the daemon.
    Drain,
    /// Liveness probe.
    Ping,
    /// Execute one shard of a coordinator-split job synchronously on
    /// this connection (cluster tier, protocol ≥ 3).
    Shard(ShardRequest),
    /// Version/capability negotiation from a coordinator to a node.
    NodeHello,
    /// Report a node's shard-execution counters.
    NodeStats,
}

/// A verification job submission.
#[derive(Debug, Clone, PartialEq)]
pub struct VerifyRequest {
    /// Client-chosen id echoed in every response for this job.
    pub id: u64,
    /// Path (on the daemon's filesystem) of the `charon-net` file.
    pub network: String,
    /// Inline `charon-prop 1` property text.
    pub property: String,
    /// Scheduling priority; higher runs earlier (default 0).
    pub priority: i64,
    /// Optional deadline in ms from admission; a job still queued (or
    /// not finished) past it completes with `deadline_expired`.
    pub deadline_ms: Option<u64>,
    /// Verification wall-clock budget in ms.
    pub timeout_ms: u64,
    /// δ of the δ-complete check.
    pub delta: f64,
    /// Region-count budget.
    pub max_regions: usize,
    /// Random restarts per counterexample search.
    pub restarts: usize,
    /// Base RNG seed.
    pub seed: u64,
    /// Whether gradient-based counterexample search is enabled.
    pub cex_search: bool,
    /// Opt into crash-only semantics: the daemon journals the job and
    /// sends an `accepted` acknowledgement before the verdict, and a
    /// duplicate id (a retry of a submission whose ack was lost) is
    /// deduplicated instead of re-verified. Defaults off so version-1
    /// clients see the original fire-and-wait behavior.
    pub ack: bool,
    /// Request a proof certificate (`charon-cert 1` text in the
    /// verdict response's `cert` field) for a decisive verdict.
    /// Defaults off: certificates cost extra memory per region and
    /// bulk on the wire. Like `ack`, this changes the delivery
    /// payload, never the verdict, so it is excluded from
    /// [`VerifyRequest::config_key`] — a cache hit computed without
    /// certification simply answers without a `cert` field.
    pub cert: bool,
}

impl VerifyRequest {
    /// Fingerprint of the verdict-relevant verifier configuration, used
    /// as the third component of the result-cache key.
    ///
    /// Budgets (`timeout_ms`, `max_regions`, `deadline_ms`) are
    /// deliberately excluded: only decisive verdicts are cached, and a
    /// decisive verdict is sound under any budget. Parameters that can
    /// change *which* decisive verdict is reached (δ, the restart count,
    /// the seed, the search switch) are all included.
    pub fn config_key(&self) -> String {
        format!(
            "delta={:016x};restarts={};seed={};cex={}",
            self.delta.to_bits(),
            self.restarts,
            self.seed,
            u8::from(self.cex_search)
        )
    }
}

impl Request {
    /// Parses one request line.
    ///
    /// # Errors
    ///
    /// Returns a message describing the malformed field; the server
    /// reports it back as a `bad_request` error response.
    pub fn parse(line: &str) -> Result<Request, String> {
        let fields = parse_flat_object(line)?;
        match fields.str_field("request")?.as_str() {
            "verify" => Ok(Request::Verify(VerifyRequest::from_fields(&fields)?)),
            "query" => Ok(Request::Query {
                id: fields.usize_field("id")? as u64,
            }),
            "stats" => Ok(Request::Stats),
            "drain" => Ok(Request::Drain),
            "ping" => Ok(Request::Ping),
            "shard" => Ok(Request::Shard(ShardRequest::from_fields(&fields)?)),
            "node_hello" => Ok(Request::NodeHello),
            "node_stats" => Ok(Request::NodeStats),
            other => Err(format!("unknown request kind {other:?}")),
        }
    }
}

impl VerifyRequest {
    fn from_fields(fields: &Fields) -> Result<VerifyRequest, String> {
        let timeout_ms = fields
            .opt_usize("timeout_ms")?
            .map_or(DEFAULT_TIMEOUT_MS, |v| v as u64);
        if timeout_ms == 0 {
            return Err("timeout_ms must be positive".to_string());
        }
        Ok(VerifyRequest {
            id: fields.opt_usize("id")?.unwrap_or(0) as u64,
            network: fields.str_field("network")?,
            property: fields.str_field("property")?,
            priority: fields.opt_f64("priority")?.map_or(0, |v| v as i64),
            deadline_ms: fields.opt_usize("deadline_ms")?.map(|v| v as u64),
            timeout_ms,
            delta: fields.opt_f64("delta")?.unwrap_or(1e-9),
            max_regions: fields.opt_usize("max_regions")?.unwrap_or(200_000),
            restarts: fields.opt_usize("restarts")?.unwrap_or(2),
            seed: fields.opt_usize("seed")?.unwrap_or(0) as u64,
            cex_search: fields.opt_usize("cex_search")? != Some(0),
            ack: fields.opt_usize("ack")? == Some(1),
            cert: fields.opt_usize("cert")? == Some(1),
        })
    }

    /// Renders this request back to its wire form (used by clients).
    pub fn to_line(&self) -> String {
        let mut b = ObjectBuilder::new()
            .str("request", "verify")
            .int("id", self.id)
            .str("network", &self.network)
            .str("property", &self.property)
            .num("priority", self.priority as f64)
            .int("timeout_ms", self.timeout_ms)
            .num("delta", self.delta)
            .int("max_regions", self.max_regions as u64)
            .int("restarts", self.restarts as u64)
            .int("seed", self.seed)
            .int("cex_search", u64::from(self.cex_search));
        if let Some(deadline) = self.deadline_ms {
            b = b.int("deadline_ms", deadline);
        }
        if self.ack {
            b = b.int("ack", 1);
        }
        if self.cert {
            b = b.int("cert", 1);
        }
        b.build()
    }

    /// Renders the `query` request for this job's id.
    pub fn query_line(id: u64) -> String {
        ObjectBuilder::new()
            .str("request", "query")
            .int("id", id)
            .build()
    }
}

impl Default for VerifyRequest {
    fn default() -> Self {
        VerifyRequest {
            id: 0,
            network: String::new(),
            property: String::new(),
            priority: 0,
            deadline_ms: None,
            timeout_ms: DEFAULT_TIMEOUT_MS,
            delta: 1e-9,
            max_regions: 200_000,
            restarts: 2,
            seed: 0,
            cex_search: true,
            ack: false,
            cert: false,
        }
    }
}

/// One shard of a coordinator-split verification job.
///
/// The property text already carries the shard's sub-region (the
/// coordinator rewrites the region with
/// `RobustnessProperty::with_region` before dispatch), so a node
/// executes a shard exactly like a stand-alone verification — it does
/// not know or care that the region is a fragment.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardRequest {
    /// The coordinator-side job id this shard belongs to.
    pub id: u64,
    /// Shard index within the job (0-based, unique per job).
    pub shard: usize,
    /// Path (on the node's filesystem) of the `charon-net` file.
    pub network: String,
    /// Inline `charon-prop 1` text with the shard's sub-region.
    pub property: String,
    /// Verification wall-clock budget in ms for this shard.
    pub timeout_ms: u64,
    /// Remaining client deadline in ms, measured at dispatch time
    /// (protocol ≥ 5). The node clamps its verification budget to this
    /// minus its reply margin, so a shard never burns worker time past
    /// the moment the coordinator's client stops waiting.
    pub deadline_ms: Option<u64>,
    /// δ of the δ-complete check.
    pub delta: f64,
    /// Region-count budget for this shard.
    pub max_regions: usize,
    /// Random restarts per counterexample search.
    pub restarts: usize,
    /// Base RNG seed (the coordinator perturbs it per shard so shards
    /// do not run identical attack schedules).
    pub seed: u64,
    /// Whether gradient-based counterexample search is enabled.
    pub cex_search: bool,
    /// Request a sub-certificate for this shard (`cert` field on the
    /// `shard_result`); the coordinator merges the sub-certificates
    /// under the shard split tree.
    pub cert: bool,
}

impl ShardRequest {
    fn from_fields(fields: &Fields) -> Result<ShardRequest, String> {
        let timeout_ms = fields
            .opt_usize("timeout_ms")?
            .map_or(DEFAULT_TIMEOUT_MS, |v| v as u64);
        if timeout_ms == 0 {
            return Err("timeout_ms must be positive".to_string());
        }
        Ok(ShardRequest {
            id: fields.usize_field("id")? as u64,
            shard: fields.usize_field("shard")?,
            network: fields.str_field("network")?,
            property: fields.str_field("property")?,
            timeout_ms,
            deadline_ms: fields.opt_usize("deadline_ms")?.map(|v| v as u64),
            delta: fields.opt_f64("delta")?.unwrap_or(1e-9),
            max_regions: fields.opt_usize("max_regions")?.unwrap_or(200_000),
            restarts: fields.opt_usize("restarts")?.unwrap_or(2),
            seed: fields.opt_usize("seed")?.unwrap_or(0) as u64,
            cex_search: fields.opt_usize("cex_search")? != Some(0),
            cert: fields.opt_usize("cert")? == Some(1),
        })
    }

    /// Renders this shard back to its wire form (used by the
    /// coordinator's dispatchers).
    pub fn to_line(&self) -> String {
        let mut b = ObjectBuilder::new()
            .str("request", "shard")
            .int("id", self.id)
            .int("shard", self.shard as u64)
            .str("network", &self.network)
            .str("property", &self.property)
            .int("timeout_ms", self.timeout_ms)
            .num("delta", self.delta)
            .int("max_regions", self.max_regions as u64)
            .int("restarts", self.restarts as u64)
            .int("seed", self.seed)
            .int("cex_search", u64::from(self.cex_search));
        if let Some(deadline) = self.deadline_ms {
            b = b.int("deadline_ms", deadline);
        }
        if self.cert {
            b = b.int("cert", 1);
        }
        b.build()
    }
}

/// A node's answer to a [`ShardRequest`]: the shard's verdict plus the
/// evidence the coordinator needs to merge it (a counterexample point
/// for refutations, a resumable checkpoint for resource limits).
#[derive(Debug, Clone, PartialEq)]
pub struct ShardResult {
    /// The job id echoed from the shard request.
    pub id: u64,
    /// The shard index echoed from the shard request.
    pub shard: usize,
    /// `"verified"`, `"refuted"`, or `"resource_limit"`.
    pub verdict: String,
    /// Regions the node processed while deciding this shard.
    pub regions: usize,
    /// Node-side wall-clock seconds spent on this shard.
    pub seconds: f64,
    /// The counterexample's score margin (refuted shards only).
    pub objective: Option<f64>,
    /// The counterexample point (refuted shards only).
    pub counterexample: Option<Vec<f64>>,
    /// Which budget stopped the shard, in [`charon::BudgetKind`]'s
    /// display form (`"timeout"`, `"region budget"`, `"cancelled"`,
    /// `"numeric precision floor"`; resource-limit only).
    pub limit: Option<String>,
    /// `charon-ckpt 1` text of the undecided remainder (resource-limit
    /// shards only; may be absent if nothing was pending).
    pub checkpoint: Option<String>,
    /// `charon-cert 1` text of this shard's sub-certificate (only when
    /// the shard request set `cert` and the shard was decisive).
    pub cert: Option<String>,
}

impl ShardResult {
    /// Parses a `shard_result` response line.
    ///
    /// # Errors
    ///
    /// Returns a message describing the malformed field.
    pub fn parse(line: &str) -> Result<ShardResult, String> {
        let fields = parse_flat_object(line)?;
        if fields.str_field("response")? != "shard_result" {
            return Err("not a shard_result response".to_string());
        }
        let verdict = fields.str_field("verdict")?;
        if !matches!(verdict.as_str(), "verified" | "refuted" | "resource_limit") {
            return Err(format!("unknown shard verdict {verdict:?}"));
        }
        let counterexample = match fields.opt("counterexample") {
            Some(_) => Some(fields.arr_field("counterexample")?),
            None => None,
        };
        Ok(ShardResult {
            id: fields.usize_field("id")? as u64,
            shard: fields.usize_field("shard")?,
            verdict,
            regions: fields.opt_usize("regions")?.unwrap_or(0),
            seconds: fields.opt_f64("seconds")?.unwrap_or(0.0),
            objective: fields.opt_f64("objective")?,
            counterexample,
            limit: fields.opt_str("limit")?,
            checkpoint: fields.opt_str("checkpoint")?,
            cert: fields.opt_str("cert")?,
        })
    }

    /// Renders this result to its wire form (used by nodes).
    pub fn to_line(&self) -> String {
        let mut b = ObjectBuilder::new()
            .str("response", "shard_result")
            .int("id", self.id)
            .int("shard", self.shard as u64)
            .str("verdict", &self.verdict)
            .int("regions", self.regions as u64)
            .num("seconds", self.seconds);
        if let Some(objective) = self.objective {
            b = b.num("objective", objective);
        }
        if let Some(point) = &self.counterexample {
            b = b.arr("counterexample", point);
        }
        if let Some(limit) = &self.limit {
            b = b.str("limit", limit);
        }
        if let Some(checkpoint) = &self.checkpoint {
            b = b.str("checkpoint", checkpoint);
        }
        if let Some(cert) = &self.cert {
            b = b.str("cert", cert);
        }
        b.build()
    }
}

/// Builds a node's answer to `node_hello`: the protocol version it
/// speaks and how many verification workers it runs. A coordinator
/// refuses nodes whose protocol is older than its own.
pub fn node_hello_response(workers: usize) -> String {
    ObjectBuilder::new()
        .str("response", "node_hello")
        .int("protocol", PROTOCOL_VERSION)
        .int("workers", workers as u64)
        .build()
}

/// Builds a node's `node_stats` response from its shard counters.
pub fn node_stats_response(executed: u64, refuted: u64, limited: u64) -> String {
    ObjectBuilder::new()
        .str("response", "node_stats")
        .int("protocol", PROTOCOL_VERSION)
        .int("shards_executed", executed)
        .int("shards_refuted", refuted)
        .int("shards_limited", limited)
        .build()
}

/// Builds an error response. `code` is machine-readable (`queue_full`,
/// `draining`, `bad_request`, `model_error`, `engine_error`,
/// `deadline_expired`); `message` is for humans.
pub fn error_response(id: Option<u64>, code: &str, message: &str) -> String {
    let mut b = ObjectBuilder::new().str("response", "error");
    if let Some(id) = id {
        b = b.int("id", id);
    }
    b.str("error", code).str("message", message).build()
}

/// Builds the response for a job interrupted by a drain: the submitter
/// receives the `charon-ckpt` text to resume from.
pub fn checkpointed_response(id: u64, checkpoint_text: &str, regions_done: usize) -> String {
    ObjectBuilder::new()
        .str("response", "checkpointed")
        .int("id", id)
        .int("regions_done", regions_done as u64)
        .str("checkpoint", checkpoint_text)
        .build()
}

/// Builds the response for a job that was still queued when the daemon
/// drained: never started, safe to resubmit elsewhere.
pub fn unstarted_response(id: u64) -> String {
    ObjectBuilder::new()
        .str("response", "unstarted")
        .int("id", id)
        .build()
}

/// Builds the acknowledgement sent once an `ack`-mode submission has
/// been journaled and enqueued. `duplicate` marks a resubmission of an
/// id the daemon already holds live (the verdict will arrive on the
/// original owner's connection; this submitter should poll `query`).
pub fn accepted_response(id: u64, duplicate: bool) -> String {
    let mut b = ObjectBuilder::new().str("response", "accepted").int("id", id);
    if duplicate {
        b = b.int("duplicate", 1);
    }
    b.build()
}

/// Builds the `query` response for a job that is known but not yet
/// terminal.
pub fn pending_response(id: u64) -> String {
    ObjectBuilder::new()
        .str("response", "pending")
        .int("id", id)
        .build()
}

/// Builds the `query` response for a job id the daemon has no record
/// of (never accepted here, or its result aged out of retention).
pub fn unknown_response(id: u64) -> String {
    ObjectBuilder::new()
        .str("response", "unknown")
        .int("id", id)
        .build()
}

/// Builds the quarantine verdict for a poison job: one that killed its
/// worker more times than the retry budget allows. The panic diagnostic
/// travels to the submitter instead of crash-looping the fleet.
pub fn poisoned_response(id: u64, diagnostic: &str, attempts: u32) -> String {
    ObjectBuilder::new()
        .str("response", "verdict")
        .int("id", id)
        .str("verdict", "poisoned")
        .int("attempts", u64::from(attempts))
        .str("diagnostic", diagnostic)
        .build()
}

/// Builds the overload refusal (protocol ≥ 5): the daemon declined to
/// queue this submission and the client should retry no sooner than
/// `retry_after_ms` from now. `reason` is machine-readable —
/// `"queue_full"` (bounded queue at capacity) or `"shed"` (the
/// sojourn-time controller is holding queue latency at its target).
/// Unlike an `error` response, `busy` is always retryable and always
/// carries a server-computed backoff hint.
pub fn busy_response(id: u64, retry_after_ms: u64, reason: &str) -> String {
    ObjectBuilder::new()
        .str("response", "busy")
        .int("id", id)
        .int("retry_after_ms", retry_after_ms)
        .str("reason", reason)
        .build()
}

/// Builds the `ping` response.
pub fn pong_response() -> String {
    ObjectBuilder::new()
        .str("response", "pong")
        .int("protocol", PROTOCOL_VERSION)
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn verify_request_round_trips_through_wire_form() {
        let request = VerifyRequest {
            id: 7,
            network: "/tmp/a.net".to_string(),
            property: "charon-prop 1\ntarget 3\nend\n".to_string(),
            priority: -2,
            deadline_ms: Some(1500),
            timeout_ms: 250,
            delta: 1e-6,
            max_regions: 1000,
            restarts: 5,
            seed: 99,
            cex_search: false,
            ack: true,
            cert: true,
        };
        match Request::parse(&request.to_line()).unwrap() {
            Request::Verify(parsed) => assert_eq!(parsed, request),
            other => panic!("expected verify, got {other:?}"),
        }
    }

    #[test]
    fn defaults_fill_in_missing_optionals() {
        let line = "{\"request\": \"verify\", \"network\": \"n\", \"property\": \"p\"}";
        match Request::parse(line).unwrap() {
            Request::Verify(v) => {
                assert_eq!(v.id, 0);
                assert_eq!(v.priority, 0);
                assert_eq!(v.deadline_ms, None);
                assert_eq!(v.timeout_ms, DEFAULT_TIMEOUT_MS);
                assert!(v.cex_search);
            }
            other => panic!("expected verify, got {other:?}"),
        }
    }

    #[test]
    fn parses_control_requests() {
        assert_eq!(Request::parse("{\"request\": \"stats\"}").unwrap(), Request::Stats);
        assert_eq!(Request::parse("{\"request\": \"drain\"}").unwrap(), Request::Drain);
        assert_eq!(Request::parse("{\"request\": \"ping\"}").unwrap(), Request::Ping);
        assert_eq!(
            Request::parse("{\"request\": \"query\", \"id\": 12}").unwrap(),
            Request::Query { id: 12 }
        );
        assert!(Request::parse("{\"request\": \"query\"}").is_err(), "query needs an id");
        assert!(Request::parse("{\"request\": \"explode\"}").is_err());
        assert!(Request::parse("not json").is_err());
        assert!(Request::parse("{\"request\": \"verify\"}").is_err(), "missing fields");
    }

    #[test]
    fn ack_flag_round_trips_and_defaults_off() {
        let mut request = VerifyRequest {
            network: "n".to_string(),
            property: "p".to_string(),
            ..VerifyRequest::default()
        };
        assert!(!request.ack);
        assert!(!request.to_line().contains("\"ack\""), "off the wire when unset");
        request.ack = true;
        match Request::parse(&request.to_line()).unwrap() {
            Request::Verify(parsed) => assert!(parsed.ack),
            other => panic!("expected verify, got {other:?}"),
        }
        // `ack` changes delivery, never the verdict: same cache key.
        let mut plain = request.clone();
        plain.ack = false;
        assert_eq!(request.config_key(), plain.config_key());
    }

    #[test]
    fn cert_flag_round_trips_and_defaults_off() {
        let mut request = VerifyRequest {
            network: "n".to_string(),
            property: "p".to_string(),
            ..VerifyRequest::default()
        };
        assert!(!request.cert);
        assert!(!request.to_line().contains("\"cert\""), "off the wire when unset");
        request.cert = true;
        match Request::parse(&request.to_line()).unwrap() {
            Request::Verify(parsed) => assert!(parsed.cert),
            other => panic!("expected verify, got {other:?}"),
        }
        // Like `ack`, `cert` changes the payload, never the verdict.
        let mut plain = request.clone();
        plain.cert = false;
        assert_eq!(request.config_key(), plain.config_key());
    }

    #[test]
    fn shard_request_round_trips_through_wire_form() {
        let shard = ShardRequest {
            id: 41,
            shard: 3,
            network: "/tmp/a.net".to_string(),
            property: "charon-prop 1\ntarget 2\nend\n".to_string(),
            timeout_ms: 800,
            deadline_ms: Some(650),
            delta: 1e-6,
            max_regions: 4096,
            restarts: 3,
            seed: 12345,
            cex_search: false,
            cert: true,
        };
        match Request::parse(&shard.to_line()).unwrap() {
            Request::Shard(parsed) => assert_eq!(parsed, shard),
            other => panic!("expected shard, got {other:?}"),
        }
        // deadline_ms stays off the wire when unset (v4 nodes parse it).
        let unbounded = ShardRequest {
            deadline_ms: None,
            ..shard.clone()
        };
        assert!(!unbounded.to_line().contains("deadline_ms"));
        match Request::parse(&unbounded.to_line()).unwrap() {
            Request::Shard(parsed) => assert_eq!(parsed.deadline_ms, None),
            other => panic!("expected shard, got {other:?}"),
        }
        assert_eq!(
            Request::parse("{\"request\": \"node_hello\"}").unwrap(),
            Request::NodeHello
        );
        assert_eq!(
            Request::parse("{\"request\": \"node_stats\"}").unwrap(),
            Request::NodeStats
        );
        assert!(
            Request::parse("{\"request\": \"shard\", \"id\": 1}").is_err(),
            "shard needs its payload fields"
        );
    }

    #[test]
    fn shard_result_round_trips_every_verdict_shape() {
        let verified = ShardResult {
            id: 9,
            shard: 0,
            verdict: "verified".to_string(),
            regions: 120,
            seconds: 0.25,
            objective: None,
            counterexample: None,
            limit: None,
            checkpoint: None,
            cert: None,
        };
        assert_eq!(ShardResult::parse(&verified.to_line()).unwrap(), verified);

        // Certificate text embeds newlines too; same wire escape rules.
        let certified = ShardResult {
            cert: Some("charon-cert 1\nnet 0000000000000009\nend\n".to_string()),
            ..verified.clone()
        };
        assert_eq!(ShardResult::parse(&certified.to_line()).unwrap(), certified);

        let refuted = ShardResult {
            verdict: "refuted".to_string(),
            objective: Some(-0.125),
            counterexample: Some(vec![0.25, -1.5, 3.0]),
            ..verified.clone()
        };
        assert_eq!(ShardResult::parse(&refuted.to_line()).unwrap(), refuted);

        // Checkpoint text embeds newlines; they must survive the wire.
        let limited = ShardResult {
            verdict: "resource_limit".to_string(),
            limit: Some("timeout".to_string()),
            checkpoint: Some("charon-ckpt 1\ntarget 2\ndim 1\ndone 4\nend\n".to_string()),
            ..verified.clone()
        };
        assert_eq!(ShardResult::parse(&limited.to_line()).unwrap(), limited);

        assert!(ShardResult::parse(&pong_response()).is_err(), "wrong kind");
        let bogus = limited.to_line().replace("resource_limit", "maybe");
        assert!(ShardResult::parse(&bogus).is_err(), "unknown verdict");
    }

    #[test]
    fn kind_inventories_cover_every_parse_arm() {
        // Every REQUEST_KINDS entry must be accepted by the parser (with
        // a payload where one is required)...
        for kind in REQUEST_KINDS {
            let line = format!("{{\"request\": \"{kind}\"}}");
            match Request::parse(&line) {
                Ok(_) => {}
                // Payload-bearing kinds fail on a *missing field*, never
                // on an unknown discriminator.
                Err(e) => assert!(
                    !e.contains("unknown request kind"),
                    "{kind}: listed but unrecognized: {e}"
                ),
            }
        }
        // ...and node_hello/node_stats responses advertise the protocol
        // version so coordinators can refuse stale nodes.
        let hello = charon::json::parse_flat_object(&node_hello_response(2)).unwrap();
        assert_eq!(hello.usize_field("protocol").unwrap() as u64, PROTOCOL_VERSION);
        assert_eq!(hello.usize_field("workers").unwrap(), 2);
        let stats = charon::json::parse_flat_object(&node_stats_response(5, 1, 2)).unwrap();
        assert_eq!(stats.usize_field("shards_executed").unwrap(), 5);
        assert_eq!(stats.usize_field("shards_refuted").unwrap(), 1);
        assert_eq!(stats.usize_field("shards_limited").unwrap(), 2);
    }

    #[test]
    fn busy_response_carries_retry_hint_and_reason() {
        let line = busy_response(17, 120, "shed");
        let fields = charon::json::parse_flat_object(&line).unwrap();
        assert_eq!(fields.str_field("response").unwrap(), "busy");
        assert_eq!(fields.usize_field("id").unwrap(), 17);
        assert_eq!(fields.usize_field("retry_after_ms").unwrap(), 120);
        assert_eq!(fields.str_field("reason").unwrap(), "shed");
        assert!(RESPONSE_KINDS.contains(&"busy"), "busy is in the kind inventory");
    }

    #[test]
    fn poisoned_response_carries_the_diagnostic() {
        let line = poisoned_response(4, "worker died: boom", 2);
        let fields = charon::json::parse_flat_object(&line).unwrap();
        assert_eq!(fields.str_field("verdict").unwrap(), "poisoned");
        assert_eq!(fields.usize_field("attempts").unwrap(), 2);
        assert_eq!(fields.str_field("diagnostic").unwrap(), "worker died: boom");
    }

    #[test]
    fn config_key_excludes_budgets_but_pins_delta_and_seed() {
        let base = VerifyRequest {
            network: "n".to_string(),
            property: "p".to_string(),
            ..VerifyRequest::default()
        };
        let budget_only = VerifyRequest {
            timeout_ms: 1,
            max_regions: 7,
            deadline_ms: Some(5),
            ..base.clone()
        };
        assert_eq!(base.config_key(), budget_only.config_key());
        let different_delta = VerifyRequest {
            delta: 0.5,
            ..base.clone()
        };
        assert_ne!(base.config_key(), different_delta.config_key());
        let different_seed = VerifyRequest { seed: 1, ..base };
        assert_ne!(different_seed.config_key(), different_delta.config_key());
    }
}
