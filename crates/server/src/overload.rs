//! Overload-resilience primitives: the CoDel-style sojourn-time shed
//! controller, the per-node circuit breaker, and the queue drain-rate
//! estimator behind `retry_after_ms` hints.
//!
//! All three are deliberately small, deterministic state machines that
//! take `Instant`s as arguments instead of reading the clock, so tests
//! (including the proptest suites in `tests/overload_prop.rs`) can
//! drive them through arbitrary schedules without sleeping.
//!
//! # Why sojourn time, not queue depth
//!
//! A depth threshold confuses "many cheap jobs" with "few expensive
//! ones". What clients actually experience is *queue latency* — how
//! long an admitted job sits before a worker picks it up — which is
//! exactly what CoDel measures: the sojourn time of each dequeued item.
//! The controller arms when a dequeue observes sojourn above the
//! target, trips once it has stayed above target for a full interval
//! (a transient burst never trips it), and then sheds new low-priority
//! arrivals until a dequeue observes sojourn back under the target.
//! Shedding at *admission* (answering `busy` with a retry hint) is
//! kinder than CoDel's drop-from-head: the refused client learns
//! immediately and backs off, instead of discovering the loss by
//! timeout.

use std::sync::Mutex;
use std::time::{Duration, Instant};

/// CoDel-style admission controller keyed on queue sojourn time.
///
/// Shared by the admission path (`should_shed`) and the worker dequeue
/// path (`observe`); interior mutability keeps both callers lock-free
/// at the call site.
#[derive(Debug)]
pub struct SojournController {
    target: Duration,
    interval: Duration,
    state: Mutex<SojournState>,
}

#[derive(Debug, Default)]
struct SojournState {
    /// When dequeues first started observing above-target sojourns
    /// (`None` while under target).
    above_since: Option<Instant>,
    /// Whether the controller is currently refusing new low-priority
    /// work.
    shedding: bool,
}

impl SojournController {
    /// Creates a controller that sheds once queue sojourn has exceeded
    /// `target` continuously for `interval`.
    pub fn new(target: Duration, interval: Duration) -> Self {
        SojournController {
            target,
            interval: interval.max(Duration::from_millis(1)),
            state: Mutex::new(SojournState::default()),
        }
    }

    /// The sojourn target the controller holds queue latency near.
    pub fn target(&self) -> Duration {
        self.target
    }

    /// Records the queue sojourn of one dequeued job at time `now`.
    pub fn observe(&self, sojourn: Duration, now: Instant) {
        let mut state = self.state.lock().unwrap();
        if sojourn < self.target {
            // Latency is back under control: disarm and stop shedding.
            state.above_since = None;
            state.shedding = false;
            return;
        }
        let since = *state.above_since.get_or_insert(now);
        if now.duration_since(since) >= self.interval {
            state.shedding = true;
        }
    }

    /// Whether a new low-priority arrival should be refused right now.
    pub fn should_shed(&self) -> bool {
        self.state.lock().unwrap().shedding
    }
}

/// Circuit breaker state (see [`CircuitBreaker`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy: dispatches flow normally.
    Closed,
    /// Tripped: no dispatches until the cooldown elapses.
    Open,
    /// One probe is in flight; its outcome decides the next state.
    HalfOpen,
}

/// Per-node circuit breaker: trips after `threshold` *consecutive*
/// dispatch failures, refuses work for a cooldown, then admits a single
/// half-open probe whose outcome closes or re-opens it.
///
/// The only reachable transitions (proptest-enforced) are:
///
/// ```text
/// Closed --threshold consecutive failures--> Open
/// Open   --cooldown elapsed (try_probe)----> HalfOpen
/// HalfOpen --success--> Closed
/// HalfOpen --failure--> Open
/// ```
///
/// A success in `Closed` resets the consecutive-failure count; a
/// success that arrives while `Open` (a straggling late reply) is
/// deliberately ignored — only a probe may close an open breaker, so a
/// single slow success cannot mask a dead node.
#[derive(Debug, Clone)]
pub struct CircuitBreaker {
    threshold: u32,
    cooldown: Duration,
    state: BreakerState,
    consecutive_failures: u32,
    opened_at: Option<Instant>,
    opens: u64,
}

impl CircuitBreaker {
    /// Creates a closed breaker tripping after `threshold` consecutive
    /// failures (at least 1) and cooling down for `cooldown`.
    pub fn new(threshold: u32, cooldown: Duration) -> Self {
        CircuitBreaker {
            threshold: threshold.max(1),
            cooldown,
            state: BreakerState::Closed,
            consecutive_failures: 0,
            opened_at: None,
            opens: 0,
        }
    }

    /// Current state.
    pub fn state(&self) -> BreakerState {
        self.state
    }

    /// Cumulative trips (Closed/HalfOpen → Open transitions).
    pub fn opens(&self) -> u64 {
        self.opens
    }

    /// Whether dispatches should be routed around this node right now
    /// (open, or half-open with the probe still in flight).
    pub fn is_routing_around(&self) -> bool {
        self.state != BreakerState::Closed
    }

    fn trip(&mut self, now: Instant) {
        self.state = BreakerState::Open;
        self.opened_at = Some(now);
        self.consecutive_failures = 0;
        self.opens += 1;
    }

    /// Records a successful dispatch (or a successful half-open probe).
    pub fn record_success(&mut self) {
        match self.state {
            BreakerState::Closed => self.consecutive_failures = 0,
            BreakerState::HalfOpen => {
                self.state = BreakerState::Closed;
                self.consecutive_failures = 0;
                self.opened_at = None;
            }
            // Only a probe closes an open breaker.
            BreakerState::Open => {}
        }
    }

    /// Records a failed dispatch, timeout, or failed probe at `now`.
    pub fn record_failure(&mut self, now: Instant) {
        match self.state {
            BreakerState::Closed => {
                self.consecutive_failures += 1;
                if self.consecutive_failures >= self.threshold {
                    self.trip(now);
                }
            }
            BreakerState::HalfOpen => self.trip(now),
            // Already open: late failures change nothing.
            BreakerState::Open => {}
        }
    }

    /// If the breaker is open and its cooldown has elapsed, moves to
    /// half-open and returns `true`: the caller owns the single probe
    /// and must report its outcome via `record_success` /
    /// `record_failure`. Returns `false` in every other state.
    pub fn try_probe(&mut self, now: Instant) -> bool {
        if self.state != BreakerState::Open {
            return false;
        }
        let opened_at = self.opened_at.unwrap_or(now);
        if now.duration_since(opened_at) < self.cooldown {
            return false;
        }
        self.state = BreakerState::HalfOpen;
        true
    }
}

/// Estimates how long a refused client should wait before retrying,
/// from the queue's observable drain rate: with `queue_depth` jobs
/// ahead and `workers` draining them at `avg_service` each, the
/// earliest useful retry is roughly one queue-drain away. Clamped to
/// `[25ms, 5s]` so a cold estimator can neither hammer nor strand a
/// client.
pub fn retry_after_ms(queue_depth: usize, workers: usize, avg_service: Duration) -> u64 {
    let workers = workers.max(1) as u64;
    let depth = queue_depth.max(1) as u64;
    let service_ms = avg_service
        .as_millis()
        .min(u128::from(u64::MAX))
        .max(1) as u64;
    let estimate = depth.saturating_mul(service_ms) / workers;
    estimate.clamp(25, 5_000)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn controller_needs_a_full_interval_above_target_to_trip() {
        let c = SojournController::new(Duration::from_millis(50), Duration::from_millis(100));
        let t0 = Instant::now();
        let above = Duration::from_millis(60);
        c.observe(above, t0);
        assert!(!c.should_shed(), "first above-target sample only arms");
        c.observe(above, t0 + Duration::from_millis(50));
        assert!(!c.should_shed(), "interval not yet elapsed");
        c.observe(above, t0 + Duration::from_millis(100));
        assert!(c.should_shed(), "above target for a full interval");
        // One under-target dequeue disarms immediately.
        c.observe(Duration::from_millis(10), t0 + Duration::from_millis(150));
        assert!(!c.should_shed());
        // And the arming clock restarts from scratch.
        c.observe(above, t0 + Duration::from_millis(160));
        assert!(!c.should_shed());
    }

    #[test]
    fn breaker_walks_the_full_cycle() {
        let now = Instant::now();
        let mut b = CircuitBreaker::new(2, Duration::from_millis(100));
        assert_eq!(b.state(), BreakerState::Closed);
        b.record_failure(now);
        assert_eq!(b.state(), BreakerState::Closed, "one failure is not a trip");
        b.record_success();
        b.record_failure(now);
        assert_eq!(b.state(), BreakerState::Closed, "success reset the streak");
        b.record_failure(now);
        b.record_failure(now);
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.opens(), 1);
        // Late outcomes while open are ignored.
        b.record_success();
        b.record_failure(now);
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.opens(), 1);
        // Cooldown gates the probe.
        assert!(!b.try_probe(now + Duration::from_millis(50)));
        assert!(b.try_probe(now + Duration::from_millis(100)));
        assert_eq!(b.state(), BreakerState::HalfOpen);
        assert!(!b.try_probe(now + Duration::from_millis(200)), "one probe at a time");
        // Failed probe re-opens (and restarts the cooldown)...
        b.record_failure(now + Duration::from_millis(110));
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.opens(), 2);
        assert!(!b.try_probe(now + Duration::from_millis(150)));
        assert!(b.try_probe(now + Duration::from_millis(210)));
        // ...and a successful probe closes.
        b.record_success();
        assert_eq!(b.state(), BreakerState::Closed);
        assert!(!b.is_routing_around());
    }

    #[test]
    fn retry_hint_tracks_drain_rate_within_clamps() {
        let service = Duration::from_millis(100);
        // 8 queued / 2 workers * 100ms = 400ms.
        assert_eq!(retry_after_ms(8, 2, service), 400);
        // Floor: an empty queue still asks for a minimal backoff.
        assert_eq!(retry_after_ms(0, 8, Duration::from_millis(1)), 25);
        // Ceiling: a catastrophic backlog cannot strand the client.
        assert_eq!(retry_after_ms(100_000, 1, Duration::from_secs(10)), 5_000);
        // A cold estimator (no samples yet) must not divide by zero.
        assert_eq!(retry_after_ms(4, 0, Duration::ZERO), 25);
    }
}
