//! Keeps `docs/PROTOCOL.md` honest: every JSON example in the spec must
//! parse through the real protocol code, and every message kind the
//! code knows must be documented. (`scripts/ci.sh` runs the same
//! inventory check with grep so doc drift also fails outside the test
//! suite.)

use server::protocol::{Request, ShardResult, REQUEST_KINDS, RESPONSE_KINDS};

fn spec_text() -> String {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../../docs/PROTOCOL.md");
    std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()))
}

/// All lines inside ```json fences that look like wire messages.
fn example_lines(spec: &str) -> Vec<String> {
    let mut lines = Vec::new();
    let mut in_fence = false;
    for line in spec.lines() {
        if line.trim() == "```json" {
            in_fence = true;
        } else if line.trim() == "```" {
            in_fence = false;
        } else if in_fence && line.trim_start().starts_with('{') {
            lines.push(line.trim().to_string());
        }
    }
    lines
}

#[test]
fn every_spec_example_parses_through_the_protocol_code() {
    let spec = spec_text();
    let examples = example_lines(&spec);
    assert!(
        examples.len() >= 25,
        "suspiciously few examples extracted ({}): fence scraping broke?",
        examples.len()
    );
    // The daemon's `stats` response predates the kind inventories and is
    // keyed by its request kind in the doc; everything else must be in
    // RESPONSE_KINDS.
    let mut requests = 0usize;
    let mut responses = 0usize;
    for line in &examples {
        let fields = charon::json::parse_flat_object(line)
            .unwrap_or_else(|e| panic!("example is not codec-valid JSON: {line}\n  {e}"));
        if let Ok(kind) = fields.str_field("request") {
            assert!(
                REQUEST_KINDS.contains(&kind.as_str()),
                "example uses unlisted request kind {kind:?}: {line}"
            );
            Request::parse(line)
                .unwrap_or_else(|e| panic!("request example rejected: {line}\n  {e}"));
            requests += 1;
        } else {
            let kind = fields
                .str_field("response")
                .unwrap_or_else(|e| panic!("example has neither request nor response: {line}\n  {e}"));
            assert!(
                RESPONSE_KINDS.contains(&kind.as_str()) || kind == "stats",
                "example uses unlisted response kind {kind:?}: {line}"
            );
            if kind == "shard_result" {
                ShardResult::parse(line)
                    .unwrap_or_else(|e| panic!("shard_result example rejected: {line}\n  {e}"));
            }
            responses += 1;
        }
    }
    assert!(requests >= 8, "every request kind should have an example");
    assert!(responses >= 12, "every response kind should have an example");
}

#[test]
fn every_message_kind_is_documented() {
    let spec = spec_text();
    for kind in REQUEST_KINDS.iter().chain(RESPONSE_KINDS) {
        assert!(
            spec.contains(&format!("`{kind}`")),
            "protocol kind {kind:?} is missing from docs/PROTOCOL.md"
        );
    }
}

#[test]
fn spec_examples_cover_every_shard_result_verdict() {
    let spec = spec_text();
    let shard_results: Vec<String> = example_lines(&spec)
        .into_iter()
        .filter(|l| l.contains("\"shard_result\""))
        .collect();
    for verdict in ["verified", "refuted", "resource_limit"] {
        assert!(
            shard_results.iter().any(|l| l.contains(&format!("\"{verdict}\""))),
            "no shard_result example for verdict {verdict:?}"
        );
    }
}
