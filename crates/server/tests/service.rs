//! End-to-end service tests over a real Unix socket: submit/verdict
//! round trips, result-cache hits with provenance, queue-full admission
//! control, deadline expiry, slow-loris resilience, and the
//! zero-lost-jobs drain guarantee.

use std::io::{Read, Write};
use std::path::PathBuf;
use std::time::Duration;

use charon::json::Fields;
use charon::{Checkpoint, RobustnessProperty};
use domains::Bounds;
use nn::{AffineLayer, Layer, Network};
use server::{Client, Server, ServerAddr, ServerConfig, VerifyRequest};
use tensor::Matrix;

fn unique_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("charon-service-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn start(tag: &str, workers: usize, queue: usize, cache: usize) -> (server::ServerHandle, PathBuf) {
    let dir = unique_dir(tag);
    let config = ServerConfig {
        addr: ServerAddr::Unix(dir.join("daemon.sock")),
        workers,
        queue_capacity: queue,
        cache_capacity: cache,
        ..ServerConfig::default()
    };
    (Server::start(config).unwrap(), dir)
}

fn save_net(dir: &std::path::Path, name: &str, net: &Network) -> String {
    let path = dir.join(name);
    nn::serialize::save(net, &path).unwrap();
    path.to_str().unwrap().to_string()
}

/// A network whose two outputs are `relu(z) + 0.05` and `relu(z)` for a
/// nonlinear `z(x)`: the target-0 property is *true* with a constant
/// thin margin, the attack can never refute it (minimum objective is
/// 0.05 >> δ), and proving it needs the abstraction error of two
/// independently-relaxed ReLUs on the same value to drop below the
/// margin — which requires splitting [-2, 2]^6 astronomically fine.
/// Net effect: a verification job that runs until cancelled.
fn endless_network() -> Network {
    let dim = 6;
    let hidden = 8;
    let mut state = 0x1234_5678_u64;
    let mut next = move || {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        ((state >> 33) as f64 / (1u64 << 31) as f64) - 0.5
    };
    let w1 = Matrix::from_fn(hidden, dim, |_, _| 2.0 * next());
    let l1 = AffineLayer::new(w1, (0..hidden).map(|_| next()).collect());
    // Both rows identical: z is computed twice, then ReLU'd separately.
    let row: Vec<f64> = (0..hidden).map(|_| 2.0 * next()).collect();
    let w2 = Matrix::from_rows(&[row.as_slice(), row.as_slice()]);
    let l2 = AffineLayer::new(w2, vec![0.0, 0.0]);
    let head = AffineLayer::new(
        Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0]]),
        vec![0.05, 0.0],
    );
    Network::new(
        dim,
        vec![
            Layer::Affine(l1),
            Layer::Relu,
            Layer::Affine(l2),
            Layer::Relu,
            Layer::Affine(head),
        ],
    )
    .unwrap()
}

fn endless_property() -> String {
    RobustnessProperty::new(Bounds::new(vec![-2.0; 6], vec![2.0; 6]), 0).to_text()
}

fn recv_by_id(client: &mut Client, want: u64) -> Fields {
    let response = client.recv().unwrap();
    assert_eq!(
        response.usize_field("id").unwrap() as u64,
        want,
        "expected response for job {want}: {response:?}"
    );
    response
}

#[test]
fn verify_round_trip_with_cache_hit_and_drain_accounting() {
    let (handle, dir) = start("cache", 2, 16, 16);
    let net_path = save_net(&dir, "xor.net", &nn::samples::xor_network());
    let property =
        RobustnessProperty::new(Bounds::new(vec![0.3, 0.3], vec![0.7, 0.7]), 1).to_text();

    let mut client = Client::connect(handle.addr()).unwrap();
    let request = VerifyRequest {
        id: 1,
        network: net_path.clone(),
        property: property.clone(),
        ..VerifyRequest::default()
    };
    let first = client.request(&request.to_line()).unwrap();
    assert_eq!(first.str_field("response").unwrap(), "verdict");
    assert_eq!(first.str_field("verdict").unwrap(), "verified");
    assert_eq!(first.usize_field("cached").unwrap(), 0);
    let net_hash = first.str_field("net_hash").unwrap();

    // The identical question is answered from the cache, with
    // provenance pointing at the job that computed it.
    let duplicate = VerifyRequest { id: 2, ..request };
    let second = client.request(&duplicate.to_line()).unwrap();
    assert_eq!(second.str_field("verdict").unwrap(), "verified");
    assert_eq!(second.usize_field("cached").unwrap(), 1);
    assert_eq!(second.usize_field("computed_by").unwrap(), 1);
    assert_eq!(second.str_field("net_hash").unwrap(), net_hash);

    // A refuted verdict carries its counterexample and is cached too.
    let refutable = VerifyRequest {
        id: 3,
        network: net_path.clone(),
        property: RobustnessProperty::new(Bounds::new(vec![0.0, 0.0], vec![1.0, 1.0]), 1)
            .to_text(),
        ..VerifyRequest::default()
    };
    let third = client.request(&refutable.to_line()).unwrap();
    assert_eq!(third.str_field("verdict").unwrap(), "refuted");
    let point = third.arr_field("counterexample").unwrap();
    assert_eq!(point.len(), 2);

    let stats = client.request("{\"request\": \"stats\"}").unwrap();
    assert_eq!(stats.str_field("response").unwrap(), "stats");
    assert_eq!(stats.usize_field("accepted").unwrap(), 3);
    assert_eq!(stats.usize_field("completed").unwrap(), 3);
    assert_eq!(stats.usize_field("cache_hits").unwrap(), 1);
    assert_eq!(stats.usize_field("cache_misses").unwrap(), 2);
    assert_eq!(stats.usize_field("cache_entries").unwrap(), 2);
    assert_eq!(stats.usize_field("registry_models").unwrap(), 1);
    assert_eq!(
        stats.usize_field("registry_hits").unwrap(),
        2,
        "jobs 2 and 3 reuse the deserialized network"
    );
    assert!(stats.f64_field("cache_hit_rate").unwrap() > 0.3);
    let hist = stats.arr_field("job_latency_hist").unwrap();
    assert_eq!(hist.iter().sum::<f64>() as u64, 3, "three jobs observed");
    assert!(stats.usize_field("propagation_calls").unwrap() > 0);

    let drained = client.request("{\"request\": \"drain\"}").unwrap();
    assert_eq!(drained.str_field("response").unwrap(), "drained");
    assert_eq!(drained.usize_field("accepted").unwrap(), 3);
    assert_eq!(drained.usize_field("completed").unwrap(), 3);
    assert_eq!(drained.f64_field("lost").unwrap(), 0.0);
    handle.join();
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn certified_submissions_round_trip_an_auditable_certificate() {
    let (handle, dir) = start("cert", 2, 16, 16);
    let net = nn::samples::xor_network();
    let net_path = save_net(&dir, "xor.net", &net);
    let property =
        RobustnessProperty::new(Bounds::new(vec![0.3, 0.3], vec![0.7, 0.7]), 1).to_text();

    let mut client = Client::connect(handle.addr()).unwrap();
    let request = VerifyRequest {
        id: 1,
        network: net_path.clone(),
        property,
        cert: true,
        ..VerifyRequest::default()
    };
    let first = client.request(&request.to_line()).unwrap();
    assert_eq!(first.str_field("verdict").unwrap(), "verified");
    let text = first.str_field("cert").unwrap();
    let cert = charon::Certificate::from_text(&text).unwrap();
    let report = charon::audit(&cert, &net, &charon::AuditOptions::default()).unwrap();
    assert!(report.verified, "{report:?}");

    // The cache hit hands back the stored certificate with the verdict.
    let duplicate = VerifyRequest { id: 2, ..request.clone() };
    let second = client.request(&duplicate.to_line()).unwrap();
    assert_eq!(second.usize_field("cached").unwrap(), 1);
    assert_eq!(second.str_field("cert").unwrap(), text);

    // A non-certifying submission shares the cache entry (certification
    // is delivery provenance, not part of the key) but is not sent the
    // certificate it never asked for.
    let plain = VerifyRequest { id: 3, cert: false, ..request.clone() };
    let third = client.request(&plain.to_line()).unwrap();
    assert_eq!(third.usize_field("cached").unwrap(), 1);
    assert!(third.opt_str("cert").unwrap().is_none(), "{third:?}");

    // Refutations certify their validated witness too.
    let refutable = VerifyRequest {
        id: 4,
        network: net_path,
        property: RobustnessProperty::new(Bounds::new(vec![0.0, 0.0], vec![1.0, 1.0]), 1)
            .to_text(),
        cert: true,
        ..VerifyRequest::default()
    };
    let fourth = client.request(&refutable.to_line()).unwrap();
    assert_eq!(fourth.str_field("verdict").unwrap(), "refuted");
    let witness = charon::Certificate::from_text(&fourth.str_field("cert").unwrap()).unwrap();
    let report = charon::audit(&witness, &net, &charon::AuditOptions::default()).unwrap();
    assert!(!report.verified, "{report:?}");

    let drained = client.request("{\"request\": \"drain\"}").unwrap();
    assert_eq!(drained.f64_field("lost").unwrap(), 0.0);
    handle.join();
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn drain_checkpoints_inflight_and_reports_queued_unstarted() {
    let (handle, dir) = start("drain", 1, 8, 8);
    let net_path = save_net(&dir, "endless.net", &endless_network());
    let property = endless_property();

    let mut submitter = Client::connect(handle.addr()).unwrap();
    for id in 1..=4 {
        let request = VerifyRequest {
            id,
            network: net_path.clone(),
            property: property.clone(),
            timeout_ms: 120_000,
            max_regions: usize::MAX / 2,
            ..VerifyRequest::default()
        };
        submitter.send(&request.to_line()).unwrap();
    }

    // Wait until job 1 is in flight and 2–4 are queued.
    let mut control = Client::connect(handle.addr()).unwrap();
    loop {
        let stats = control.request("{\"request\": \"stats\"}").unwrap();
        if stats.usize_field("queue_depth").unwrap() == 3 {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(5));
    }
    std::thread::sleep(std::time::Duration::from_millis(50));

    let drained = control.request("{\"request\": \"drain\"}").unwrap();
    assert_eq!(drained.usize_field("accepted").unwrap(), 4);
    assert_eq!(drained.usize_field("checkpointed").unwrap(), 1);
    assert_eq!(drained.usize_field("unstarted").unwrap(), 3);
    assert_eq!(drained.usize_field("completed").unwrap(), 0);
    assert_eq!(drained.f64_field("lost").unwrap(), 0.0, "no job may be lost");

    // The submitter got a terminal response for every job: queued jobs
    // as unstarted, the in-flight one as a resumable checkpoint.
    let mut unstarted = Vec::new();
    let mut checkpoint = None;
    for _ in 0..4 {
        let response = submitter.recv().unwrap();
        match response.str_field("response").unwrap().as_str() {
            "unstarted" => unstarted.push(response.usize_field("id").unwrap()),
            "checkpointed" => {
                assert_eq!(response.usize_field("id").unwrap(), 1);
                checkpoint = Some(response.str_field("checkpoint").unwrap());
            }
            other => panic!("unexpected drain-era response {other:?}: {response:?}"),
        }
    }
    unstarted.sort_unstable();
    assert_eq!(unstarted, vec![2, 3, 4]);
    let checkpoint = checkpoint.expect("in-flight job must be checkpointed");
    let parsed = Checkpoint::from_text(&checkpoint).unwrap();
    assert!(
        !parsed.pending.is_empty(),
        "cancelled mid-search: undecided regions must be resumable"
    );
    assert_eq!(parsed.target, 0);

    handle.join();
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn queue_full_submissions_are_rejected_not_blocked() {
    let (handle, dir) = start("full", 1, 1, 8);
    let net_path = save_net(&dir, "endless.net", &endless_network());
    let property = endless_property();
    let long_job = |id: u64| VerifyRequest {
        id,
        network: net_path.clone(),
        property: property.clone(),
        timeout_ms: 120_000,
        max_regions: usize::MAX / 2,
        ..VerifyRequest::default()
    };

    let mut submitter = Client::connect(handle.addr()).unwrap();
    submitter.send(&long_job(1).to_line()).unwrap();
    // Wait until job 1 occupies the single worker (queue back to empty).
    let mut control = Client::connect(handle.addr()).unwrap();
    loop {
        let stats = control.request("{\"request\": \"stats\"}").unwrap();
        if stats.usize_field("accepted").unwrap() == 1
            && stats.usize_field("queue_depth").unwrap() == 0
        {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(5));
    }
    // Job 2 fills the queue; job 3 must be rejected immediately.
    submitter.send(&long_job(2).to_line()).unwrap();
    loop {
        let stats = control.request("{\"request\": \"stats\"}").unwrap();
        if stats.usize_field("queue_depth").unwrap() == 1 {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(5));
    }
    let rejection = submitter.request(&long_job(3).to_line()).unwrap();
    assert_eq!(rejection.str_field("response").unwrap(), "busy");
    assert_eq!(rejection.str_field("reason").unwrap(), "queue_full");
    assert_eq!(rejection.usize_field("id").unwrap(), 3);
    let hint = rejection.usize_field("retry_after_ms").unwrap() as u64;
    assert!(
        (25..=5_000).contains(&hint),
        "drain-rate hint outside its clamp: {hint}"
    );

    let drained = control.request("{\"request\": \"drain\"}").unwrap();
    assert_eq!(drained.usize_field("accepted").unwrap(), 2);
    assert_eq!(drained.f64_field("lost").unwrap(), 0.0);
    // Job 1 checkpointed, job 2 unstarted — in some order.
    let kinds: Vec<String> = (0..2)
        .map(|_| submitter.recv().unwrap().str_field("response").unwrap())
        .collect();
    assert!(kinds.contains(&"checkpointed".to_string()), "{kinds:?}");
    assert!(kinds.contains(&"unstarted".to_string()), "{kinds:?}");

    handle.join();
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn malformed_requests_and_missing_models_get_typed_errors() {
    let (handle, dir) = start("errors", 1, 8, 8);
    let mut client = Client::connect(handle.addr()).unwrap();

    let garbage = client.request("this is not json").unwrap();
    assert_eq!(garbage.str_field("response").unwrap(), "error");
    assert_eq!(garbage.str_field("error").unwrap(), "bad_request");

    let missing = VerifyRequest {
        id: 9,
        network: dir.join("nope.net").to_str().unwrap().to_string(),
        property: endless_property(),
        ..VerifyRequest::default()
    };
    client.send(&missing.to_line()).unwrap();
    let response = recv_by_id(&mut client, 9);
    assert_eq!(response.str_field("error").unwrap(), "model_error");

    let pong = client.request("{\"request\": \"ping\"}").unwrap();
    assert_eq!(pong.str_field("response").unwrap(), "pong");

    let drained = client.request("{\"request\": \"drain\"}").unwrap();
    // The model_error job still counts as accepted + completed.
    assert_eq!(drained.usize_field("accepted").unwrap(), 1);
    assert_eq!(drained.usize_field("completed").unwrap(), 1);
    assert_eq!(drained.f64_field("lost").unwrap(), 0.0);
    handle.join();
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn slow_loris_is_reaped_without_wedging_the_accept_loop_or_a_worker() {
    let dir = unique_dir("loris");
    let sock_path = dir.join("daemon.sock");
    let config = ServerConfig {
        addr: ServerAddr::Unix(sock_path.clone()),
        workers: 1,
        queue_capacity: 8,
        cache_capacity: 8,
        read_timeout: Some(Duration::from_millis(250)),
        ..ServerConfig::default()
    };
    let handle = Server::start(config).unwrap();
    let net_path = save_net(&dir, "xor.net", &nn::samples::xor_network());

    // The loris: dribble a prefix of a valid request one byte at a
    // time, never send the newline, then go silent.
    let mut loris = std::os::unix::net::UnixStream::connect(&sock_path).unwrap();
    for &byte in b"{\"request\": \"verify\", \"id\": 1".as_slice() {
        loris.write_all(&[byte]).unwrap();
        loris.flush().unwrap();
        std::thread::sleep(Duration::from_millis(2));
    }

    // While the loris dangles its half-written line, a well-behaved
    // client must get the single worker immediately: the stall holds a
    // connection thread, never the accept loop or a worker.
    let mut client = Client::connect(handle.addr()).unwrap();
    let request = VerifyRequest {
        id: 7,
        network: net_path,
        property: RobustnessProperty::new(Bounds::new(vec![0.3, 0.3], vec![0.7, 0.7]), 1)
            .to_text(),
        ..VerifyRequest::default()
    };
    let verdict = client.request(&request.to_line()).unwrap();
    assert_eq!(verdict.str_field("response").unwrap(), "verdict");
    assert_eq!(verdict.str_field("verdict").unwrap(), "verified");

    // The read timeout reaps the stalled connection: with no queued or
    // in-flight job holding its reply handle, the server closes it and
    // the loris sees EOF instead of an answer to its half request.
    loris
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let mut buf = [0u8; 64];
    let n = loris.read(&mut buf).unwrap();
    assert_eq!(n, 0, "stalled connection must be closed, not serviced");

    // The verdict client has been idle past the timeout too, so its
    // connection was reaped just like the loris's — drain over a fresh
    // one.
    let mut control = Client::connect(handle.addr()).unwrap();
    let drained = control.request("{\"request\": \"drain\"}").unwrap();
    assert_eq!(drained.usize_field("accepted").unwrap(), 1);
    assert_eq!(drained.f64_field("lost").unwrap(), 0.0);
    handle.join();
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn deadline_expired_in_queue_is_a_terminal_typed_response() {
    let (handle, dir) = start("deadline", 1, 8, 8);
    let net_path = save_net(&dir, "endless.net", &endless_network());

    let mut client = Client::connect(handle.addr()).unwrap();
    // Job 1 occupies the worker for ~300ms.
    let blocker = VerifyRequest {
        id: 1,
        network: net_path.clone(),
        property: endless_property(),
        timeout_ms: 300,
        max_regions: usize::MAX / 2,
        ..VerifyRequest::default()
    };
    client.send(&blocker.to_line()).unwrap();
    // Job 2's deadline will expire while it waits in the queue.
    let doomed = VerifyRequest {
        id: 2,
        network: net_path,
        property: endless_property(),
        deadline_ms: Some(1),
        ..VerifyRequest::default()
    };
    client.send(&doomed.to_line()).unwrap();

    let first = client.recv().unwrap();
    assert_eq!(first.usize_field("id").unwrap(), 1);
    assert_eq!(first.str_field("verdict").unwrap(), "resource_limit");
    assert_eq!(first.str_field("limit").unwrap(), "timeout");
    let second = client.recv().unwrap();
    assert_eq!(second.usize_field("id").unwrap(), 2);
    assert_eq!(second.str_field("error").unwrap(), "deadline_expired");

    let drained = client.request("{\"request\": \"drain\"}").unwrap();
    assert_eq!(drained.usize_field("accepted").unwrap(), 2);
    assert_eq!(drained.usize_field("completed").unwrap(), 2);
    assert_eq!(drained.f64_field("lost").unwrap(), 0.0);
    handle.join();
    let _ = std::fs::remove_dir_all(dir);
}
