//! Property-based overload suite: the deadline arithmetic in
//! [`charon::deadline`] and the circuit-breaker state machine in
//! [`server::CircuitBreaker`].
//!
//! The deadline properties pin the saturation behaviour the anytime
//! ladder depends on — a clamped budget is never negative, never larger
//! than either input, and always leaves the reply margin — across the
//! whole `u64` range, including the overflow-adjacent corners a unit
//! test would hand-pick. The breaker properties drive the state machine
//! through arbitrary interleavings of successes, failures, and probe
//! attempts against a reference model, proving that only the documented
//! transitions (`Closed → Open → HalfOpen → {Closed, Open}`) are
//! reachable and that the trip counter counts exactly the transitions
//! into `Open`.

use std::time::{Duration, Instant};

use proptest::prelude::*;
use server::{BreakerState, CircuitBreaker};

// ---------------------------------------------------------------------------
// Deadline arithmetic
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// `remaining_ms` is exactly saturating subtraction: never negative,
    /// never more than the deadline, and monotone in elapsed time.
    #[test]
    fn remaining_never_underflows(deadline_ms in 0u64..=u64::MAX, elapsed_ms in 0u64..=u64::MAX) {
        let elapsed = Duration::from_millis(elapsed_ms);
        let remaining = charon::deadline::remaining_ms(deadline_ms, elapsed);
        prop_assert!(remaining <= deadline_ms);
        prop_assert_eq!(remaining, deadline_ms.saturating_sub(elapsed_ms));
        // One more millisecond elapsed can only shrink what remains.
        let later = charon::deadline::remaining_ms(
            deadline_ms,
            elapsed + Duration::from_millis(1),
        );
        prop_assert!(later <= remaining);
    }

    /// A clamped budget never exceeds the verifier's own budget, always
    /// leaves the reply margin inside the deadline, and is `None`
    /// exactly when the margin consumes everything that remains —
    /// including at the saturating boundaries where `remaining` or the
    /// margin sit near `u64::MAX`.
    #[test]
    fn clamp_respects_budget_and_margin(
        budget_ms in 1u64..=10_000_000,
        remaining_ms in 0u64..=u64::MAX,
        margin_ms in 0u64..=u64::MAX,
    ) {
        let budget = Duration::from_millis(budget_ms);
        let margin = Duration::from_millis(margin_ms);
        match charon::deadline::clamp_budget(budget, remaining_ms, margin) {
            None => prop_assert!(
                remaining_ms <= margin_ms,
                "refused to start although {remaining_ms} ms remained past a {margin_ms} ms margin"
            ),
            Some(clamped) => {
                let clamped_ms = clamped.as_millis() as u64;
                prop_assert!(clamped_ms > 0, "a started job has a usable budget");
                prop_assert!(clamped <= budget, "clamp never extends the budget");
                prop_assert!(
                    clamped_ms <= remaining_ms.saturating_sub(margin_ms),
                    "the reply margin must survive the clamp"
                );
            }
        }
    }

    /// Composing the two: a worker that clamps at dequeue time can
    /// always answer within the original deadline (budget + margin fit
    /// into what remained).
    #[test]
    fn clamped_run_fits_the_deadline(
        deadline_ms in 0u64..=86_400_000,
        queued_ms in 0u64..=86_400_000,
        budget_ms in 1u64..=600_000,
        margin_ms in 0u64..=10_000,
    ) {
        let remaining = charon::deadline::remaining_ms(deadline_ms, Duration::from_millis(queued_ms));
        if let Some(clamped) = charon::deadline::clamp_budget(
            Duration::from_millis(budget_ms),
            remaining,
            Duration::from_millis(margin_ms),
        ) {
            let finish_ms = queued_ms + clamped.as_millis() as u64 + margin_ms;
            prop_assert!(
                finish_ms <= deadline_ms,
                "worst-case finish at {finish_ms} ms blows the {deadline_ms} ms deadline"
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Circuit breaker state machine
// ---------------------------------------------------------------------------

/// One scripted interaction with the breaker.
#[derive(Debug, Clone, Copy)]
enum Op {
    Success,
    Failure,
    /// Attempt a probe after advancing the clock by this many ms.
    Probe(u64),
}

/// Decodes a raw draw from `0..302` into an [`Op`] (the vendored
/// proptest offers range strategies, not `prop_oneof`).
fn decode_op(raw: u64) -> Op {
    match raw {
        0 => Op::Success,
        1 => Op::Failure,
        advance => Op::Probe(advance - 2),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Drives the breaker through an arbitrary schedule against a
    /// reference model: the state after every step matches, `opens()`
    /// counts exactly the transitions into `Open`, and no transition
    /// outside the documented cycle ever occurs.
    #[test]
    fn breaker_reaches_only_legal_states(
        threshold in 1u32..5,
        cooldown_ms in 1u64..200,
        raw_ops in proptest::collection::vec(0u64..302, 1..60),
    ) {
        let cooldown = Duration::from_millis(cooldown_ms);
        let mut breaker = CircuitBreaker::new(threshold, cooldown);
        let start = Instant::now();
        let mut now_ms = 0u64;

        // Reference model.
        let mut state = BreakerState::Closed;
        let mut streak = 0u32;
        let mut opened_at_ms = 0u64;
        let mut opens = 0u64;

        for op in raw_ops.into_iter().map(decode_op) {
            let before = breaker.state();
            match op {
                Op::Success => {
                    breaker.record_success();
                    match state {
                        BreakerState::Closed => streak = 0,
                        BreakerState::HalfOpen => {
                            state = BreakerState::Closed;
                            streak = 0;
                        }
                        BreakerState::Open => {} // late success ignored
                    }
                }
                Op::Failure => {
                    breaker.record_failure(start + Duration::from_millis(now_ms));
                    match state {
                        BreakerState::Closed => {
                            streak += 1;
                            if streak >= threshold {
                                state = BreakerState::Open;
                                opened_at_ms = now_ms;
                                streak = 0;
                                opens += 1;
                            }
                        }
                        BreakerState::HalfOpen => {
                            state = BreakerState::Open;
                            opened_at_ms = now_ms;
                            opens += 1;
                        }
                        BreakerState::Open => {} // late failure ignored
                    }
                }
                Op::Probe(advance_ms) => {
                    now_ms += advance_ms;
                    let granted = breaker.try_probe(start + Duration::from_millis(now_ms));
                    let expected = state == BreakerState::Open
                        && now_ms - opened_at_ms >= cooldown_ms;
                    prop_assert_eq!(granted, expected, "probe admission diverged");
                    if expected {
                        state = BreakerState::HalfOpen;
                    }
                }
            }
            let after = breaker.state();
            prop_assert_eq!(after, state, "state diverged from the model");
            prop_assert_eq!(breaker.opens(), opens, "trip counter diverged");
            // Every observed transition is one of the documented edges.
            let legal = match (before, after) {
                (a, b) if a == b => true,
                (BreakerState::Closed, BreakerState::Open) => true,
                (BreakerState::Open, BreakerState::HalfOpen) => true,
                (BreakerState::HalfOpen, BreakerState::Closed) => true,
                (BreakerState::HalfOpen, BreakerState::Open) => true,
                _ => false,
            };
            prop_assert!(legal, "illegal transition {before:?} -> {after:?}");
            prop_assert_eq!(
                breaker.is_routing_around(),
                after != BreakerState::Closed,
                "routing flag must mirror the state"
            );
        }
    }

    /// From any reachable state, a cooled-down open breaker admits
    /// exactly one probe until its outcome is recorded.
    #[test]
    fn one_probe_at_a_time(threshold in 1u32..4, cooldown_ms in 1u64..50) {
        let cooldown = Duration::from_millis(cooldown_ms);
        let mut breaker = CircuitBreaker::new(threshold, cooldown);
        let start = Instant::now();
        for _ in 0..threshold {
            breaker.record_failure(start);
        }
        prop_assert_eq!(breaker.state(), BreakerState::Open);
        let cooled = start + cooldown;
        prop_assert!(breaker.try_probe(cooled), "first probe after cooldown");
        for extra_ms in 0..3 {
            prop_assert!(
                !breaker.try_probe(cooled + Duration::from_millis(extra_ms)),
                "second concurrent probe must be refused"
            );
        }
        breaker.record_failure(cooled);
        prop_assert_eq!(breaker.state(), BreakerState::Open, "failed probe re-opens");
        prop_assert_eq!(breaker.opens(), 2);
    }
}
