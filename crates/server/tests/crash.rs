//! Crash-only service tests: journal replay across daemon lives,
//! checkpoint resume, worker supervision with poison-job quarantine,
//! and client retry against injected service faults.
//!
//! Process-level chaos (a real `SIGKILL` of a real daemon) lives in the
//! CLI crate's `chaos_service` test and `scripts/ci.sh`; here the daemon
//! runs in-process, and crashes are modeled the way a crash actually
//! manifests to the next life — as a journal whose final records stop
//! mid-story.

use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

use charon::json::Fields;
use charon::{Checkpoint, RobustnessProperty};
use domains::Bounds;
use server::journal::{Journal, Record};
use server::{
    submit_reliable, Client, RetryPolicy, Server, ServerAddr, ServerConfig, ServerFaultPlan,
    ServerFaultPlanBuilder, VerifyRequest,
};

fn unique_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("charon-crash-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn xor_request(dir: &std::path::Path, id: u64) -> VerifyRequest {
    let net_path = dir.join("xor.net");
    if !net_path.exists() {
        nn::serialize::save(&nn::samples::xor_network(), &net_path).unwrap();
    }
    VerifyRequest {
        id,
        network: net_path.to_str().unwrap().to_string(),
        property: RobustnessProperty::new(Bounds::new(vec![0.3, 0.3], vec![0.7, 0.7]), 1)
            .to_text(),
        ..VerifyRequest::default()
    }
}

fn start(
    dir: &std::path::Path,
    journal: bool,
    faults: Option<Arc<ServerFaultPlan>>,
) -> server::ServerHandle {
    let config = ServerConfig {
        addr: ServerAddr::Unix(dir.join("daemon.sock")),
        workers: 1,
        queue_capacity: 16,
        cache_capacity: 16,
        journal: journal.then(|| dir.join("daemon.wal")),
        faults,
        ..ServerConfig::default()
    };
    Server::start(config).unwrap()
}

fn fast_policy() -> RetryPolicy {
    RetryPolicy {
        max_attempts: 6,
        base: Duration::from_millis(5),
        cap: Duration::from_millis(40),
        seed: 0xc0ffee,
    }
}

/// Polls `query` until the job's terminal result is stored.
fn query_until_terminal(addr: &ServerAddr, id: u64) -> Fields {
    let deadline = std::time::Instant::now() + Duration::from_secs(30);
    let mut client = Client::connect(addr).unwrap();
    loop {
        let response = client
            .request(&VerifyRequest::query_line(id))
            .unwrap();
        match response.str_field("response").unwrap().as_str() {
            "pending" | "unknown" if std::time::Instant::now() < deadline => {
                std::thread::sleep(Duration::from_millis(10));
            }
            "pending" | "unknown" => panic!("job {id} never resolved: {response:?}"),
            _ => return response,
        }
    }
}

fn drain(addr: &ServerAddr) -> Fields {
    let mut client = Client::connect(addr).unwrap();
    client.request("{\"request\": \"drain\"}").unwrap()
}

#[test]
fn journal_replay_finishes_what_the_previous_life_started() {
    let dir = unique_dir("replay");
    let wal = dir.join("daemon.wal");

    // Life 1, reconstructed as its journal: job 1 was accepted and never
    // started; job 2 was accepted and in flight (one start, no terminal
    // record); job 3 completed with a stored verdict. Then the process
    // died — torn final record and all.
    {
        let (mut journal, _) = Journal::open(&wal, None).unwrap();
        journal
            .append(&Record::Accepted {
                id: 1,
                request: xor_request(&dir, 1),
            })
            .unwrap();
        journal
            .append(&Record::Accepted {
                id: 2,
                request: xor_request(&dir, 2),
            })
            .unwrap();
        journal.append(&Record::Started { id: 2, attempt: 1 }).unwrap();
        journal
            .append(&Record::Accepted {
                id: 3,
                request: xor_request(&dir, 3),
            })
            .unwrap();
        journal
            .append(&Record::Completed {
                id: 3,
                response:
                    "{\"response\": \"verdict\", \"id\": 3, \"verdict\": \"verified\", \"cached\": 0}"
                        .to_string(),
            })
            .unwrap();
    }
    {
        use std::io::Write as _;
        let mut f = std::fs::OpenOptions::new().append(true).open(&wal).unwrap();
        f.write_all(b"0badc0de {\"record\": \"star").unwrap();
    }

    // Life 2: replay must re-enqueue jobs 1 and 2, keep job 3's result
    // queryable, and run the recovered jobs to verdicts.
    let handle = start(&dir, true, None);
    let addr = handle.addr().clone();

    let stored = query_until_terminal(&addr, 3);
    assert_eq!(stored.str_field("verdict").unwrap(), "verified");
    for id in [1, 2] {
        let verdict = query_until_terminal(&addr, id);
        assert_eq!(verdict.str_field("response").unwrap(), "verdict", "{verdict:?}");
        assert_eq!(verdict.str_field("verdict").unwrap(), "verified");
        assert_eq!(verdict.usize_field("id").unwrap() as u64, id);
    }

    let mut client = Client::connect(&addr).unwrap();
    let stats = client.request("{\"request\": \"stats\"}").unwrap();
    assert_eq!(stats.usize_field("replayed").unwrap(), 2);
    assert_eq!(stats.usize_field("journal_enabled").unwrap(), 1);

    let summary = drain(&addr);
    assert_eq!(summary.f64_field("lost").unwrap(), 0.0);
    handle.join();
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn replay_resumes_from_the_journaled_checkpoint() {
    let dir = unique_dir("resume");
    let wal = dir.join("daemon.wal");
    let request = xor_request(&dir, 5);

    // The previous life checkpointed job 5 mid-search: the undecided
    // worklist is the property's whole region (worst case), target 1.
    let checkpoint = Checkpoint {
        target: 1,
        pending: vec![(Bounds::new(vec![0.3, 0.3], vec![0.7, 0.7]), 0)],
        regions_done: 0,
    };
    {
        let (mut journal, _) = Journal::open(&wal, None).unwrap();
        journal
            .append(&Record::Accepted {
                id: 5,
                request: request.clone(),
            })
            .unwrap();
        journal.append(&Record::Started { id: 5, attempt: 1 }).unwrap();
        journal
            .append(&Record::Checkpointed {
                id: 5,
                regions_done: 0,
                checkpoint: checkpoint.to_text(),
            })
            .unwrap();
    }

    let handle = start(&dir, true, None);
    let addr = handle.addr().clone();
    let verdict = query_until_terminal(&addr, 5);
    assert_eq!(verdict.str_field("verdict").unwrap(), "verified");

    let summary = drain(&addr);
    assert_eq!(summary.usize_field("replayed").unwrap(), 1);
    assert_eq!(summary.f64_field("lost").unwrap(), 0.0);
    handle.join();
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn killed_worker_is_respawned_and_the_job_retried_to_a_verdict() {
    let dir = unique_dir("respawn");
    let plan = Arc::new(ServerFaultPlanBuilder::new().kill_worker_at_pop(0).build());
    let handle = start(&dir, true, Some(Arc::clone(&plan)));
    let addr = handle.addr().clone();

    let verdict = submit_reliable(&addr, &xor_request(&dir, 1), &fast_policy()).unwrap();
    assert_eq!(verdict.str_field("verdict").unwrap(), "verified");
    assert_eq!(plan.worker_kills_fired(), 1, "the scheduled kill fired");

    let mut client = Client::connect(&addr).unwrap();
    let stats = client.request("{\"request\": \"stats\"}").unwrap();
    assert_eq!(stats.usize_field("worker_deaths").unwrap(), 1);
    assert_eq!(stats.usize_field("requeued").unwrap(), 1);
    assert_eq!(stats.usize_field("quarantined").unwrap(), 0);

    let summary = drain(&addr);
    assert_eq!(summary.f64_field("lost").unwrap(), 0.0);
    handle.join();
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn poison_job_is_quarantined_with_the_panic_diagnostic() {
    let dir = unique_dir("poison");
    let plan = Arc::new(ServerFaultPlanBuilder::new().kill_job(7).build());
    let handle = start(&dir, true, Some(plan));
    let addr = handle.addr().clone();

    // Job 7 kills every worker that touches it; the default retry budget
    // (2) quarantines it after the second death instead of letting it
    // take a third worker down.
    let verdict = submit_reliable(&addr, &xor_request(&dir, 7), &fast_policy()).unwrap();
    assert_eq!(verdict.str_field("verdict").unwrap(), "poisoned");
    assert_eq!(verdict.usize_field("attempts").unwrap(), 2);
    let diagnostic = verdict.str_field("diagnostic").unwrap();
    assert!(diagnostic.contains("injected worker kill"), "{diagnostic}");

    // A healthy job still verifies on the respawned worker afterwards.
    let healthy = submit_reliable(&addr, &xor_request(&dir, 8), &fast_policy()).unwrap();
    assert_eq!(healthy.str_field("verdict").unwrap(), "verified");

    let mut client = Client::connect(&addr).unwrap();
    let stats = client.request("{\"request\": \"stats\"}").unwrap();
    assert_eq!(stats.usize_field("worker_deaths").unwrap(), 2);
    assert_eq!(stats.usize_field("quarantined").unwrap(), 1);

    let summary = drain(&addr);
    assert_eq!(summary.f64_field("lost").unwrap(), 0.0);
    handle.join();
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn quarantined_on_replay_after_repeated_process_deaths() {
    let dir = unique_dir("replay-poison");
    let wal = dir.join("daemon.wal");
    // The journal says job 9 was in flight during two process deaths:
    // two started records, no terminal. Replay must not run it again.
    {
        let (mut journal, _) = Journal::open(&wal, None).unwrap();
        journal
            .append(&Record::Accepted {
                id: 9,
                request: xor_request(&dir, 9),
            })
            .unwrap();
        journal.append(&Record::Started { id: 9, attempt: 1 }).unwrap();
        journal.append(&Record::Started { id: 9, attempt: 2 }).unwrap();
    }
    let handle = start(&dir, true, None);
    let addr = handle.addr().clone();

    let verdict = query_until_terminal(&addr, 9);
    assert_eq!(verdict.str_field("verdict").unwrap(), "poisoned");
    assert_eq!(verdict.usize_field("attempts").unwrap(), 2);
    assert!(
        verdict.str_field("diagnostic").unwrap().contains("process deaths"),
        "{verdict:?}"
    );

    let summary = drain(&addr);
    assert_eq!(summary.usize_field("quarantined").unwrap(), 1);
    assert_eq!(summary.f64_field("lost").unwrap(), 0.0);
    handle.join();
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn journal_append_fault_is_retryable_and_the_retry_lands() {
    let dir = unique_dir("journal-fault");
    let plan = Arc::new(ServerFaultPlanBuilder::new().fail_journal_append(0).build());
    let handle = start(&dir, true, Some(Arc::clone(&plan)));
    let addr = handle.addr().clone();

    // Append 0 is this job's accepted record: the submission is refused
    // with the retryable `journal_error`, and the client's second
    // attempt (same id) succeeds.
    let verdict = submit_reliable(&addr, &xor_request(&dir, 2), &fast_policy()).unwrap();
    assert_eq!(verdict.str_field("verdict").unwrap(), "verified");
    assert_eq!(plan.journal_faults_fired(), 1);

    let mut client = Client::connect(&addr).unwrap();
    let stats = client.request("{\"request\": \"stats\"}").unwrap();
    assert_eq!(stats.usize_field("journal_errors").unwrap(), 1);
    assert_eq!(stats.usize_field("accepted").unwrap(), 1, "admitted exactly once");

    let summary = drain(&addr);
    assert_eq!(summary.f64_field("lost").unwrap(), 0.0);
    handle.join();
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn dropped_connections_are_survived_by_the_retry_loop() {
    let dir = unique_dir("conn-drop");
    // Drop the first two accepted connections outright.
    let plan = Arc::new(
        ServerFaultPlanBuilder::new()
            .drop_connection(0)
            .drop_connection(1)
            .build(),
    );
    let handle = start(&dir, true, Some(Arc::clone(&plan)));
    let addr = handle.addr().clone();

    let verdict = submit_reliable(&addr, &xor_request(&dir, 3), &fast_policy()).unwrap();
    assert_eq!(verdict.str_field("verdict").unwrap(), "verified");
    assert_eq!(plan.connection_drops_fired(), 2);

    let summary = drain(&addr);
    assert_eq!(summary.f64_field("lost").unwrap(), 0.0);
    handle.join();
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn duplicate_ack_submissions_are_deduplicated_not_rerun() {
    let dir = unique_dir("dedup");
    let handle = start(&dir, true, None);
    let addr = handle.addr().clone();

    let mut request = xor_request(&dir, 42);
    request.ack = true;

    let mut first = Client::connect(&addr).unwrap();
    let ack = first.request(&request.to_line()).unwrap();
    assert_eq!(ack.str_field("response").unwrap(), "accepted");
    assert!(ack.opt("duplicate").is_none());
    let verdict = first.recv().unwrap();
    assert_eq!(verdict.str_field("verdict").unwrap(), "verified");

    // A retry of the same id (as if the first ack had been lost) gets
    // the stored response back, not a second verification.
    let mut second = Client::connect(&addr).unwrap();
    let replayed = second.request(&request.to_line()).unwrap();
    assert_eq!(replayed.str_field("response").unwrap(), "verdict");
    assert_eq!(replayed.str_field("verdict").unwrap(), "verified");

    let stats = second.request("{\"request\": \"stats\"}").unwrap();
    assert_eq!(stats.usize_field("accepted").unwrap(), 1, "ran once");
    assert_eq!(stats.usize_field("duplicates").unwrap(), 1);

    let summary = drain(&addr);
    assert_eq!(summary.f64_field("lost").unwrap(), 0.0);
    handle.join();
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn query_distinguishes_pending_from_unknown() {
    let dir = unique_dir("query");
    let handle = start(&dir, true, None);
    let addr = handle.addr().clone();

    let mut client = Client::connect(&addr).unwrap();
    let unknown = client
        .request(&VerifyRequest::query_line(999))
        .unwrap();
    assert_eq!(unknown.str_field("response").unwrap(), "unknown");

    let verdict = submit_reliable(&addr, &xor_request(&dir, 1), &fast_policy()).unwrap();
    assert_eq!(verdict.str_field("verdict").unwrap(), "verified");
    let stored = client.request(&VerifyRequest::query_line(1)).unwrap();
    assert_eq!(stored.str_field("response").unwrap(), "verdict");

    let summary = drain(&addr);
    assert_eq!(summary.f64_field("lost").unwrap(), 0.0);
    handle.join();
    let _ = std::fs::remove_dir_all(dir);
}
