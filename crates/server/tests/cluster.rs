//! End-to-end cluster tests: a real coordinator fronting real
//! shard-worker daemons over Unix sockets, plus the shard-merge
//! property suite.
//!
//! The integration half exercises the distributed tier's contract: a
//! two-node cluster returns the same verdicts a single-node daemon
//! would; injected node deaths re-dispatch orphaned shards without
//! losing the job; injected result drops make duplicate deliveries,
//! which the merge absorbs; a shard that kills two node connections
//! poisons its job; and drain reports zero lost jobs.
//!
//! The property half drives [`server::MergeState`] through arbitrary
//! interleavings of shard results — duplicates from re-dispatch and
//! late refutations after resource limits included — and checks the
//! merged verdict always equals what sequential single-node
//! verification of the same shards would conclude.

use std::path::PathBuf;
use std::sync::Arc;

use domains::Bounds;
use proptest::prelude::*;
use server::{
    Client, Coordinator, CoordinatorConfig, CoordinatorHandle, MergeState, RetryPolicy, Server,
    ServerAddr, ServerConfig, ServerFaultPlanBuilder, ServerHandle, ShardResult, VerifyRequest,
};

fn unique_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("charon-cluster-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn start_node(dir: &std::path::Path, name: &str) -> ServerHandle {
    Server::start(ServerConfig {
        addr: ServerAddr::Unix(dir.join(name)),
        workers: 1,
        journal: None,
        ..ServerConfig::default()
    })
    .unwrap()
}

struct Cluster {
    coordinator: CoordinatorHandle,
    nodes: Vec<ServerHandle>,
    dir: PathBuf,
}

fn start_cluster(tag: &str, config: CoordinatorConfig) -> Cluster {
    let dir = unique_dir(tag);
    let nodes: Vec<ServerHandle> = (0..2)
        .map(|i| start_node(&dir, &format!("node{i}.sock")))
        .collect();
    let coordinator = Coordinator::start(CoordinatorConfig {
        addr: ServerAddr::Unix(dir.join("coord.sock")),
        nodes: nodes.iter().map(|n| n.addr().clone()).collect(),
        ..config
    })
    .unwrap();
    Cluster {
        coordinator,
        nodes,
        dir,
    }
}

impl Cluster {
    /// Drains the coordinator (asserting zero lost jobs) and the nodes.
    fn shutdown(self) {
        let mut client = Client::connect(self.coordinator.addr()).unwrap();
        let summary = client.request("{\"request\": \"drain\"}").unwrap();
        assert_eq!(summary.f64_field("lost").unwrap(), 0.0, "{summary:?}");
        self.coordinator.join();
        for node in self.nodes {
            let mut client = Client::connect(node.addr()).unwrap();
            let _ = client.request("{\"request\": \"drain\"}").unwrap();
            node.join();
        }
        let _ = std::fs::remove_dir_all(self.dir);
    }
}

fn xor_request(dir: &std::path::Path, id: u64, target: usize, wide: bool) -> VerifyRequest {
    let net_path = dir.join("xor.net");
    nn::serialize::save(&nn::samples::xor_network(), &net_path).unwrap();
    let region = if wide {
        Bounds::new(vec![0.0, 0.0], vec![1.0, 1.0])
    } else {
        Bounds::new(vec![0.3, 0.3], vec![0.7, 0.7])
    };
    VerifyRequest {
        id,
        network: net_path.to_str().unwrap().to_string(),
        property: charon::RobustnessProperty::new(region, target).to_text(),
        priority: 0,
        deadline_ms: None,
        timeout_ms: 30_000,
        delta: 1e-9,
        max_regions: 200_000,
        restarts: 2,
        seed: 0,
        cex_search: true,
        // Every cluster submission asks for certification: the happy
        // paths assert on the merged certificate, and the fault paths
        // check that a missing shard sub-certificate degrades to a
        // certificate-less (but still correct) verdict.
        cert: true,
        ack: true,
    }
}

fn submit(cluster: &Cluster, request: &VerifyRequest) -> charon::json::Fields {
    server::submit_reliable(
        cluster.coordinator.addr(),
        request,
        &RetryPolicy::default(),
    )
    .unwrap()
}

#[test]
fn two_node_cluster_reaches_the_single_node_verdicts() {
    let cluster = start_cluster("verdicts", CoordinatorConfig::default());

    // The narrow XOR robustness property is verified (same as the
    // single-node daemon and the in-process verifier conclude).
    let reply = submit(&cluster, &xor_request(&cluster.dir, 1, 1, false));
    assert_eq!(reply.str_field("verdict").unwrap(), "verified", "{reply:?}");
    assert!(reply.usize_field("shards").unwrap() >= 2, "{reply:?}");

    // The merged proof certificate covers the *whole* job region and
    // passes the independent directed-rounding audit.
    let net = nn::samples::xor_network();
    let cert = charon::Certificate::from_text(&reply.str_field("cert").unwrap()).unwrap();
    assert_eq!(cert.root, Bounds::new(vec![0.3, 0.3], vec![0.7, 0.7]));
    let report = charon::audit(&cert, &net, &charon::AuditOptions::default()).unwrap();
    assert!(report.verified, "{report:?}");

    // The whole-unit-square property is refuted, and the refutation
    // carries a checkable counterexample from whichever shard found it.
    let reply = submit(&cluster, &xor_request(&cluster.dir, 2, 1, true));
    assert_eq!(reply.str_field("verdict").unwrap(), "refuted", "{reply:?}");
    let point = reply.arr_field("counterexample").unwrap();
    assert_eq!(point.len(), 2, "{reply:?}");
    assert!(reply.f64_field("objective").unwrap() <= 0.0, "{reply:?}");

    // The refutation certificate is the winning shard's witness,
    // re-rooted at the job region so the audit checks containment there.
    let cert = charon::Certificate::from_text(&reply.str_field("cert").unwrap()).unwrap();
    assert_eq!(cert.root, Bounds::new(vec![0.0, 0.0], vec![1.0, 1.0]));
    let report = charon::audit(&cert, &net, &charon::AuditOptions::default()).unwrap();
    assert!(!report.verified, "{report:?}");

    // Both nodes did work: the per-node stats arrays cover two names.
    let mut client = Client::connect(cluster.coordinator.addr()).unwrap();
    let stats = client.request("{\"request\": \"stats\"}").unwrap();
    assert_eq!(stats.usize_field("nodes").unwrap(), 2, "{stats:?}");
    assert!(
        stats.usize_field("shards_completed").unwrap() >= 2,
        "{stats:?}"
    );
    cluster.shutdown();
}

#[test]
fn injected_node_death_redispatches_the_orphaned_shard() {
    let faults = Arc::new(ServerFaultPlanBuilder::new().kill_node_at_dispatch(0).build());
    let cluster = start_cluster(
        "nodekill",
        CoordinatorConfig {
            faults: Some(Arc::clone(&faults)),
            ..CoordinatorConfig::default()
        },
    );
    let reply = submit(&cluster, &xor_request(&cluster.dir, 7, 1, false));
    assert_eq!(reply.str_field("verdict").unwrap(), "verified", "{reply:?}");
    assert_eq!(faults.node_kills_fired(), 1);

    let mut client = Client::connect(cluster.coordinator.addr()).unwrap();
    let stats = client.request("{\"request\": \"stats\"}").unwrap();
    assert!(stats.usize_field("requeued").unwrap() >= 1, "{stats:?}");
    assert_eq!(stats.usize_field("quarantined").unwrap(), 0, "{stats:?}");
    cluster.shutdown();
}

#[test]
fn injected_result_drop_is_absorbed_as_a_duplicate_delivery() {
    let faults = Arc::new(ServerFaultPlanBuilder::new().drop_shard_result(0).build());
    let cluster = start_cluster(
        "sharddrop",
        CoordinatorConfig {
            faults: Some(Arc::clone(&faults)),
            ..CoordinatorConfig::default()
        },
    );
    let reply = submit(&cluster, &xor_request(&cluster.dir, 8, 1, false));
    assert_eq!(reply.str_field("verdict").unwrap(), "verified", "{reply:?}");
    assert_eq!(faults.shard_drops_fired(), 1);
    cluster.shutdown();
}

#[test]
fn a_shard_that_kills_two_connections_poisons_its_job() {
    let faults = Arc::new(
        ServerFaultPlanBuilder::new()
            .kill_node_at_dispatch(0)
            .kill_node_at_dispatch(1)
            .build(),
    );
    let cluster = start_cluster(
        "quarantine",
        CoordinatorConfig {
            shards: 1,
            retry_budget: 2,
            faults: Some(faults),
            ..CoordinatorConfig::default()
        },
    );
    let reply = submit(&cluster, &xor_request(&cluster.dir, 9, 1, false));
    assert_eq!(reply.str_field("verdict").unwrap(), "poisoned", "{reply:?}");
    assert_eq!(reply.usize_field("attempts").unwrap(), 2, "{reply:?}");
    assert!(
        reply.str_field("diagnostic").unwrap().contains("quarantined"),
        "{reply:?}"
    );
    let mut client = Client::connect(cluster.coordinator.addr()).unwrap();
    let stats = client.request("{\"request\": \"stats\"}").unwrap();
    assert_eq!(stats.usize_field("quarantined").unwrap(), 1, "{stats:?}");
    cluster.shutdown();
}

#[test]
fn duplicate_ack_submission_is_deduplicated_by_the_coordinator() {
    let cluster = start_cluster("dedup", CoordinatorConfig::default());
    let request = xor_request(&cluster.dir, 11, 1, false);
    let first = submit(&cluster, &request);
    assert_eq!(first.str_field("verdict").unwrap(), "verified");
    // Resubmitting the same id must return the stored verdict, not run
    // the job again.
    let second = submit(&cluster, &request);
    assert_eq!(second.str_field("verdict").unwrap(), "verified");
    let mut client = Client::connect(cluster.coordinator.addr()).unwrap();
    let stats = client.request("{\"request\": \"stats\"}").unwrap();
    assert_eq!(stats.usize_field("accepted").unwrap(), 1, "{stats:?}");
    assert!(stats.usize_field("duplicates").unwrap() >= 1, "{stats:?}");
    cluster.shutdown();
}

// ---------------------------------------------------------------------
// Shard-merge property suite.
// ---------------------------------------------------------------------

/// A shard's final outcome in the generator's vocabulary.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Final {
    Verified,
    Refuted,
    Limited,
}

fn shard_result(shard: usize, verdict: &str) -> ShardResult {
    ShardResult {
        id: 42,
        shard,
        verdict: verdict.to_string(),
        regions: 3,
        seconds: 0.01,
        objective: (verdict == "refuted").then_some(-1.0),
        counterexample: (verdict == "refuted").then(|| vec![0.25, 0.75]),
        limit: (verdict == "resource_limit").then(|| "timeout".to_string()),
        checkpoint: None,
        cert: None,
    }
}

/// The delivery script for one shard: what arrives on the wire, in
/// shard-local order. Re-dispatch duplicates repeat the same outcome; a
/// refuted shard may first surface as a resource limit (the first
/// execution timed out, the re-dispatched one found the witness).
fn deliveries(shard: usize, outcome: Final, dup: bool, late: bool) -> Vec<ShardResult> {
    let mut script = Vec::new();
    match outcome {
        Final::Verified => script.push(shard_result(shard, "verified")),
        Final::Limited => script.push(shard_result(shard, "resource_limit")),
        Final::Refuted => {
            if late {
                script.push(shard_result(shard, "resource_limit"));
            }
            script.push(shard_result(shard, "refuted"));
        }
    }
    if dup {
        script.push(script[script.len() - 1].clone());
    }
    script
}

/// What sequential single-node verification of the same sub-regions
/// would conclude: any refutation refutes the property, all-verified
/// verifies it, anything else is a resource limit.
fn sequential_verdict(finals: &[Final]) -> &'static str {
    if finals.contains(&Final::Refuted) {
        "refuted"
    } else if finals.iter().all(|f| *f == Final::Verified) {
        "verified"
    } else {
        "resource_limit"
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Any interleaving of shard deliveries — duplicates from
    /// re-dispatch and late refutations after resource limits included
    /// — merges to exactly the sequential single-node verdict.
    ///
    /// Each shard's script is one integer: `v % 3` picks the final
    /// verdict, `(v / 3) % 2` whether a duplicate delivery trails it,
    /// `(v / 6) % 2` whether a refutation arrives late after a limit.
    #[test]
    fn merge_is_interleaving_invariant(
        shards in proptest::collection::vec(0u64..12, 1..6),
        order_seed in 0u64..u64::MAX,
    ) {
        let finals: Vec<Final> = shards
            .iter()
            .map(|v| match v % 3 {
                0 => Final::Verified,
                1 => Final::Refuted,
                _ => Final::Limited,
            })
            .collect();
        // Flatten every shard's delivery script, then shuffle across
        // shards with a seeded Fisher-Yates. Shard-local order is not
        // preserved by the shuffle, which is fine: the only ordered
        // pair the protocol guarantees is that a late refutation can
        // follow a limit, and the merge must cope with every order.
        let mut wire: Vec<ShardResult> = Vec::new();
        for (shard, v) in shards.iter().enumerate() {
            let dup = (v / 3) % 2 == 1;
            let late = (v / 6) % 2 == 1;
            wire.extend(deliveries(shard, finals[shard], dup, late));
        }
        let mut state = order_seed | 1;
        for i in (1..wire.len()).rev() {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            wire.swap(i, (state >> 33) as usize % (i + 1));
        }

        let mut merge = MergeState::new(finals.len());
        for result in &wire {
            prop_assert!(merge.record(result).is_ok(), "record {result:?}");
        }
        prop_assert!(merge.complete(), "every shard delivered at least once");
        let merged = match merge.verdict() {
            Some(charon::Verdict::Verified) => "verified",
            Some(charon::Verdict::Refuted(_)) => "refuted",
            Some(charon::Verdict::ResourceLimit) => "resource_limit",
            None => "undecided",
        };
        prop_assert_eq!(merged, sequential_verdict(&finals), "wire: {:?}", wire);
    }

    /// Replaying a prefix of deliveries twice (the re-dispatch storm
    /// case) never changes the final verdict.
    #[test]
    fn merge_is_idempotent_under_replay(
        shards in proptest::collection::vec(0u64..3, 1..5),
        prefix in 0usize..1024,
    ) {
        let finals: Vec<Final> = shards
            .iter()
            .map(|f| match f {
                0 => Final::Verified,
                1 => Final::Refuted,
                _ => Final::Limited,
            })
            .collect();
        let wire: Vec<ShardResult> = finals
            .iter()
            .enumerate()
            .flat_map(|(shard, f)| deliveries(shard, *f, false, false))
            .collect();
        let mut merge = MergeState::new(finals.len());
        for result in &wire {
            merge.record(result).unwrap();
        }
        let baseline = format!("{:?}", merge.verdict());
        // Replay an arbitrary prefix on top of the completed merge.
        for result in &wire[..=prefix % wire.len()] {
            merge.record(result).unwrap();
        }
        prop_assert_eq!(format!("{:?}", merge.verdict()), baseline);
    }
}
