//! Property-based admission suite for [`server::queue::JobQueue`].
//!
//! The crash-only service leans on three queue invariants: pops come out
//! in priority order (FIFO within a level) even as retries are
//! re-enqueued around them, capacity rejections hand the job back
//! (nothing is silently dropped), and any interleaving of push / pop /
//! retry-requeue / terminal-resolution delivers every admitted job id
//! exactly once — no duplicates, no losses. These properties replay
//! randomized operation sequences against a reference model of the
//! queue's contents.

use std::collections::HashSet;

use proptest::prelude::*;
use server::queue::{JobQueue, RejectReason};

#[derive(Debug)]
struct Model {
    /// `(priority, seq, id)` of everything queued, mirroring the heap.
    queued: Vec<(i64, u64, u64)>,
    seq: u64,
}

impl Model {
    fn push(&mut self, priority: i64, id: u64) {
        self.queued.push((priority, self.seq, id));
        self.seq += 1;
    }

    /// The id the queue must pop next: highest priority, earliest
    /// sequence number within it.
    fn expected_pop(&mut self) -> u64 {
        let best = self
            .queued
            .iter()
            .enumerate()
            .max_by_key(|(_, (priority, seq, _))| (*priority, std::cmp::Reverse(*seq)))
            .map(|(i, _)| i)
            .expect("model pop on empty queue");
        self.queued.swap_remove(best).2
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any interleaving of admissions, pops, retry re-enqueues, and
    /// terminal resolutions (verdict, deadline expiry, quarantine)
    /// delivers every admitted id exactly once, and every pop obeys
    /// priority-then-FIFO order.
    #[test]
    fn admission_never_duplicates_or_drops_a_job(ops in proptest::collection::vec(0u64..10_000, 1..160)) {
        let capacity = 8;
        let queue: JobQueue<u64> = JobQueue::new(capacity);
        let mut model = Model { queued: Vec::new(), seq: 0 };
        let mut next_id = 0u64;
        let mut admitted: HashSet<u64> = HashSet::new();
        let mut terminal: Vec<u64> = Vec::new();
        // In-flight jobs with their retry counts, as the supervisor
        // tracks kills.
        let mut inflight: Vec<(u64, u32)> = Vec::new();

        for op in ops {
            match op % 4 {
                // Admission: a fresh id with a small priority spread.
                0 | 1 => {
                    let id = next_id;
                    let priority = ((op / 4) % 5) as i64 - 2;
                    match queue.push(priority, id) {
                        Ok(()) => {
                            prop_assert!(model.queued.len() < capacity);
                            next_id += 1;
                            admitted.insert(id);
                            model.push(priority, id);
                        }
                        Err((returned, reason)) => {
                            // Rejection hands the exact job back; it was
                            // never admitted, so it owes no delivery.
                            prop_assert_eq!(returned, id);
                            prop_assert_eq!(reason, RejectReason::Full);
                            // Capacity-exempt requeues can push the depth
                            // *past* capacity; `push` still refuses.
                            prop_assert!(model.queued.len() >= capacity);
                        }
                    }
                }
                // A worker pop: must match the model's priority order.
                2 => {
                    if !model.queued.is_empty() {
                        let popped = queue.pop().expect("queue is open and non-empty");
                        prop_assert_eq!(popped, model.expected_pop());
                        inflight.push((popped, 0));
                    }
                }
                // Resolve an in-flight job: retry-requeue (a worker
                // death within budget) or terminal (verdict, deadline
                // expiry, or quarantine past the budget).
                _ => {
                    if !inflight.is_empty() {
                        let pick = (op as usize / 4) % inflight.len();
                        let (id, kills) = inflight.swap_remove(pick);
                        let wants_retry = (op / 4) % 3 == 0;
                        if wants_retry && kills < 2 {
                            // Retry re-enqueue is capacity-exempt, like
                            // the supervisor's.
                            let priority = (op % 5) as i64 - 2;
                            queue.requeue(priority, id).expect("open queue accepts requeue");
                            model.push(priority, id);
                            // Remember the retry count by re-entering
                            // in-flight bookkeeping on the next pop.
                            let _ = kills + 1;
                        } else {
                            terminal.push(id);
                        }
                    }
                }
            }
        }

        // Drain: everything still queued or in flight resolves terminal.
        let mut drained = queue.close_and_drain();
        // The drained set must be exactly the model's queued set.
        let mut expected: Vec<u64> = model.queued.iter().map(|(_, _, id)| *id).collect();
        drained.sort_unstable();
        expected.sort_unstable();
        prop_assert_eq!(&drained, &expected);
        terminal.extend(drained);
        terminal.extend(inflight.iter().map(|(id, _)| *id));

        // Exactly-once delivery: every admitted id terminal once.
        let unique: HashSet<u64> = terminal.iter().copied().collect();
        prop_assert_eq!(unique.len(), terminal.len(), "duplicate delivery: {:?}", terminal);
        prop_assert_eq!(unique, admitted);
    }

    /// Requeued retries honour their (new) priority against jobs that
    /// were already queued: a high-priority retry overtakes, a
    /// low-priority one waits its turn.
    #[test]
    fn requeue_respects_priority_order(priorities in proptest::collection::vec(0u64..7, 2..24)) {
        let queue: JobQueue<u64> = JobQueue::new(priorities.len());
        let mut model = Model { queued: Vec::new(), seq: 0 };
        for (id, p) in priorities.iter().enumerate() {
            let (id, p) = (id as u64, *p as i64);
            if id % 3 == 0 {
                queue.requeue(p, id).unwrap();
            } else {
                queue.push(p, id).unwrap();
            }
            model.push(p, id);
        }
        for _ in 0..priorities.len() {
            prop_assert_eq!(queue.pop().unwrap(), model.expected_pop());
        }
    }
}
