//! Deterministic fault injection for testing the verifier's failure
//! handling.
//!
//! A [`FaultPlan`] is attached to a [`crate::VerifierConfig`] and fires
//! each configured [`Injection`] exactly once, when the verifier begins
//! processing the region with the matching ordinal (regions are numbered
//! in the order any worker dequeues them, starting at 0). This gives the
//! chaos tests precise, repeatable control over *where* in the search a
//! panic, a NaN, a delay, or a cancellation strikes.
//!
//! This module exists for testing only: production configurations leave
//! `VerifierConfig::faults` as `None`, in which case the verifier pays a
//! single `Option` check per region.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

/// Where in a region's processing a fault is injected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultSite {
    /// Panic at the start of the region step (simulates a bug anywhere
    /// in the analyze/attack code).
    WorkerPanic,
    /// Replace the attack result with a NaN point claiming an objective
    /// of `-∞` (simulates poisoned gradients producing a bogus
    /// "counterexample").
    AttackNan,
    /// Force the abstract analysis of the region to report poisoning
    /// (simulates NaN appearing inside a transformer).
    TransformerNan,
    /// Sleep briefly before processing (simulates a straggler worker).
    Delay,
    /// Trip the cooperative cancellation path mid-run.
    Cancel,
}

impl FaultSite {
    /// Stable `snake_case` name of the site, as used in
    /// [`crate::telemetry::TraceEvent::FaultTriggered`] events.
    pub fn as_str(self) -> &'static str {
        match self {
            FaultSite::WorkerPanic => "worker_panic",
            FaultSite::AttackNan => "attack_nan",
            FaultSite::TransformerNan => "transformer_nan",
            FaultSite::Delay => "delay",
            FaultSite::Cancel => "cancel",
        }
    }
}

/// One scheduled fault: a site plus the ordinal of the region it fires
/// on.
#[derive(Debug)]
pub struct Injection {
    site: FaultSite,
    region_index: usize,
    fired: AtomicBool,
}

/// A deterministic schedule of faults, shared by all workers of a run.
///
/// # Examples
///
/// ```
/// use charon::faults::{FaultPlan, FaultSite};
/// use std::sync::Arc;
///
/// let plan = Arc::new(FaultPlan::new().inject(FaultSite::WorkerPanic, 0));
/// let mut config = charon::VerifierConfig::default();
/// config.faults = Some(plan);
/// ```
#[derive(Debug, Default)]
pub struct FaultPlan {
    injections: Vec<Injection>,
    counter: AtomicUsize,
}

impl FaultPlan {
    /// An empty plan (no faults).
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Adds an injection firing when region number `region_index` is
    /// dequeued.
    pub fn inject(mut self, site: FaultSite, region_index: usize) -> Self {
        self.injections.push(Injection {
            site,
            region_index,
            fired: AtomicBool::new(false),
        });
        self
    }

    /// Assigns the next region ordinal. Called once per dequeued region
    /// by the verifier.
    pub(crate) fn next_region(&self) -> usize {
        self.counter.fetch_add(1, Ordering::Relaxed)
    }

    /// Whether an injection for `site` is due at region `ordinal`; each
    /// injection fires at most once even with concurrent callers.
    pub(crate) fn fire(&self, site: FaultSite, ordinal: usize) -> bool {
        self.injections.iter().any(|inj| {
            inj.site == site
                && inj.region_index == ordinal
                && !inj.fired.swap(true, Ordering::Relaxed)
        })
    }

    /// Number of injections that have fired so far.
    pub fn fired_count(&self) -> usize {
        self.injections
            .iter()
            .filter(|inj| inj.fired.load(Ordering::Relaxed))
            .count()
    }

    /// Whether every scheduled injection has fired.
    pub fn all_fired(&self) -> bool {
        self.injections
            .iter()
            .all(|inj| inj.fired.load(Ordering::Relaxed))
    }

    /// Number of regions dequeued so far (the ordinal counter).
    pub fn regions_seen(&self) -> usize {
        self.counter.load(Ordering::Relaxed)
    }
}

/// A deterministic one-shot trigger over a monotonically increasing
/// ordinal sequence, shared by concurrent observers.
///
/// Where [`FaultPlan`] schedules faults against the verifier's *region*
/// ordinals, an `OrdinalTrigger` is the reusable primitive beneath it:
/// any layer that processes a numbered sequence of events (the server's
/// job pops, journal appends, accepted connections) can attach one and
/// ask, for each event, whether a fault is due. Each listed ordinal
/// fires at most once, even with concurrent callers.
///
/// # Examples
///
/// ```
/// use charon::faults::OrdinalTrigger;
///
/// let trigger = OrdinalTrigger::at(&[1]);
/// assert!(!trigger.check()); // ordinal 0: not scheduled
/// assert!(trigger.check()); // ordinal 1: fires
/// assert!(!trigger.check()); // ordinal 2: already past
/// assert_eq!(trigger.fired_count(), 1);
/// ```
#[derive(Debug, Default)]
pub struct OrdinalTrigger {
    scheduled: Vec<(usize, AtomicBool)>,
    counter: AtomicUsize,
}

impl OrdinalTrigger {
    /// A trigger that never fires.
    pub fn none() -> Self {
        OrdinalTrigger::default()
    }

    /// A trigger firing once at each of the given ordinals.
    pub fn at(ordinals: &[usize]) -> Self {
        OrdinalTrigger {
            scheduled: ordinals
                .iter()
                .map(|&o| (o, AtomicBool::new(false)))
                .collect(),
            counter: AtomicUsize::new(0),
        }
    }

    /// Consumes the next ordinal and reports whether a fault is due at
    /// it. Thread-safe; each scheduled ordinal fires exactly once.
    pub fn check(&self) -> bool {
        let ordinal = self.counter.fetch_add(1, Ordering::Relaxed);
        self.scheduled.iter().any(|(at, fired)| {
            *at == ordinal && !fired.swap(true, Ordering::Relaxed)
        })
    }

    /// Number of scheduled ordinals that have fired so far.
    pub fn fired_count(&self) -> usize {
        self.scheduled
            .iter()
            .filter(|(_, fired)| fired.load(Ordering::Relaxed))
            .count()
    }

    /// Whether every scheduled ordinal has fired.
    pub fn all_fired(&self) -> bool {
        self.scheduled
            .iter()
            .all(|(_, fired)| fired.load(Ordering::Relaxed))
    }

    /// Number of ordinals consumed so far.
    pub fn seen(&self) -> usize {
        self.counter.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn injections_fire_exactly_once() {
        let plan = FaultPlan::new()
            .inject(FaultSite::WorkerPanic, 1)
            .inject(FaultSite::Delay, 1);
        assert!(!plan.fire(FaultSite::WorkerPanic, 0));
        assert!(plan.fire(FaultSite::WorkerPanic, 1));
        assert!(!plan.fire(FaultSite::WorkerPanic, 1), "must not re-fire");
        assert!(plan.fire(FaultSite::Delay, 1));
        assert_eq!(plan.fired_count(), 2);
        assert!(plan.all_fired());
    }

    #[test]
    fn ordinals_increment() {
        let plan = FaultPlan::new();
        assert_eq!(plan.next_region(), 0);
        assert_eq!(plan.next_region(), 1);
        assert_eq!(plan.regions_seen(), 2);
    }

    #[test]
    fn ordinal_trigger_fires_once_per_scheduled_ordinal() {
        let trigger = OrdinalTrigger::at(&[0, 2]);
        assert!(trigger.check(), "ordinal 0 scheduled");
        assert!(!trigger.check(), "ordinal 1 not scheduled");
        assert!(trigger.check(), "ordinal 2 scheduled");
        assert!(!trigger.check(), "past the schedule");
        assert_eq!(trigger.fired_count(), 2);
        assert!(trigger.all_fired());
        assert_eq!(trigger.seen(), 4);
        assert!(!OrdinalTrigger::none().check());
    }

    #[test]
    fn ordinal_trigger_is_safe_under_concurrency() {
        use std::sync::Arc;
        let trigger = Arc::new(OrdinalTrigger::at(&[5, 50]));
        let fired: usize = std::thread::scope(|scope| {
            (0..4)
                .map(|_| {
                    let t = Arc::clone(&trigger);
                    scope.spawn(move || (0..25).filter(|_| t.check()).count())
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .sum()
        });
        assert_eq!(fired, 2, "each scheduled ordinal fires exactly once");
        assert_eq!(trigger.seen(), 100);
    }
}
