//! Structured tracing, metrics, and run reports for the verifier.
//!
//! Charon's verdict is the output of an opaque interleaving of PGD
//! attacks, abstract propagation, and policy-driven bisection; a slow or
//! timed-out run gives no insight into *where* the time or precision went
//! unless the engine reports it. This module is that reporting layer, in
//! three tiers:
//!
//! 1. **Events** — a typed [`TraceEvent`] stream emitted from the region
//!    step, the parallel/portfolio drivers, the attack phases, and the
//!    domains' propagation loop. Events flow into a [`TraceSink`]:
//!    [`NullSink`] (the default; every emission site is guarded by
//!    [`TraceSink::enabled`], so disabled tracing does no formatting and
//!    no allocation), [`JsonlSink`] (one JSON object per line,
//!    machine-readable; the `charon-cli trace` subcommand reads it back),
//!    or [`SummarySink`] (in-memory aggregation).
//! 2. **Metrics** — always-on [`Metrics`] counters and per-phase wall
//!    times (attack / propagation / policy), with histogram buckets for
//!    per-call latencies. Parallel workers each keep their own `Metrics`;
//!    the driver merges them at join, so the totals in
//!    [`crate::VerifyRun`] cover every worker including ones that exited
//!    on the degradation ladder.
//! 3. **Reports** — a [`RunReport`] renders the merged metrics as a
//!    per-phase time-breakdown table with regions-per-second and domain
//!    precision statistics (printed by `charon-cli verify --report`).
//!
//! JSON is hand-rolled: the workspace deliberately has no serde_json (the
//! vendored `serde` is a marker-trait stub), so [`TraceEvent::to_json`]
//! and [`TraceEvent::from_json`] build on the shared flat-object codec in
//! [`crate::json`] (also used by the verification server's wire protocol)
//! and round-trip the one schema this module needs exactly.

use std::io::Write;
use std::sync::Arc;

use parking_lot::Mutex;

use crate::json::{json_f64, json_str, parse_flat_object, ObjectBuilder};

/// One structured event from the verification engine.
///
/// Every variant serializes to a single flat JSON object whose `"event"`
/// key names the variant in `snake_case`; [`TraceEvent::from_json`]
/// round-trips the output of [`TraceEvent::to_json`] exactly (including
/// non-finite floats, which are encoded as the strings `"inf"`, `"-inf"`
/// and `"nan"`).
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEvent {
    /// A sub-region was pushed onto the worklist.
    RegionPushed {
        /// Bisection depth of the pushed region.
        depth: usize,
    },
    /// A region was popped from the worklist for processing.
    RegionPopped {
        /// Fault-plan/step ordinal of the region (a per-run sequence
        /// number; parallel workers share one counter).
        ordinal: usize,
        /// Bisection depth of the region.
        depth: usize,
    },
    /// The policy decided how to bisect an undecided region.
    Bisection {
        /// Ordinal of the region being split.
        ordinal: usize,
        /// Axis chosen by the split policy π^I.
        dim: usize,
        /// Split position along that axis (after clamping).
        at: f64,
        /// The attack objective `F(x*)` that fed the policy's
        /// featurization (its score input).
        objective: f64,
    },
    /// One abstract-interpretation call finished.
    Propagation {
        /// Ordinal of the region analyzed.
        ordinal: usize,
        /// Display string of the selected domain (e.g. `(Z, 2)`,
        /// `deeppoly`, `solver`).
        domain: String,
        /// Total wall-clock seconds for the call.
        seconds: f64,
        /// Outcome: `proved`, `inconclusive`, `violated`, or `poisoned`.
        outcome: String,
        /// Per-layer wall-clock seconds, in layer order (empty when the
        /// selection has no per-layer instrumentation).
        layer_seconds: Vec<f64>,
    },
    /// One attack phase (center PGD, FGSM-seeded PGD, coordinate descent,
    /// or the batched random-restart PGD) finished.
    Attack {
        /// Ordinal of the region attacked.
        ordinal: usize,
        /// Phase name: `center`, `fgsm`, `coordinate`, or `restarts`.
        phase: String,
        /// Gradient/objective evaluations spent in this phase.
        evals: usize,
        /// Best objective seen so far after this phase.
        best_objective: f64,
        /// Wall-clock seconds of this phase.
        seconds: f64,
    },
    /// The run reached a verdict.
    Verdict {
        /// `verified`, `refuted`, or `resource_limit`.
        verdict: String,
        /// Regions processed by the run.
        regions: usize,
        /// Total wall-clock seconds.
        seconds: f64,
    },
    /// A budget-limited run captured its undecided worklist.
    CheckpointSaved {
        /// Number of pending (undecided) regions in the checkpoint.
        pending: usize,
        /// Regions fully processed before the budget lapsed.
        regions_done: usize,
    },
    /// A deterministic fault-injection site fired (chaos testing only).
    FaultTriggered {
        /// The fault site, e.g. `worker_panic` or `attack_nan`.
        site: String,
        /// Region ordinal at which the fault fired.
        ordinal: usize,
    },
}

impl TraceEvent {
    /// The `snake_case` name of the variant, as used in the JSON `event`
    /// key.
    pub fn kind(&self) -> &'static str {
        match self {
            TraceEvent::RegionPushed { .. } => "region_pushed",
            TraceEvent::RegionPopped { .. } => "region_popped",
            TraceEvent::Bisection { .. } => "bisection",
            TraceEvent::Propagation { .. } => "propagation",
            TraceEvent::Attack { .. } => "attack",
            TraceEvent::Verdict { .. } => "verdict",
            TraceEvent::CheckpointSaved { .. } => "checkpoint_saved",
            TraceEvent::FaultTriggered { .. } => "fault_triggered",
        }
    }

    /// Serializes the event as one flat JSON object (no trailing
    /// newline).
    pub fn to_json(&self) -> String {
        let mut s = format!("{{\"event\": \"{}\"", self.kind());
        let num = |s: &mut String, key: &str, v: f64| {
            s.push_str(&format!(", \"{key}\": {}", json_f64(v)));
        };
        // Counters serialize as JSON integers, not `0.0`-style floats.
        let int = |s: &mut String, key: &str, v: usize| {
            s.push_str(&format!(", \"{key}\": {v}"));
        };
        match self {
            TraceEvent::RegionPushed { depth } => {
                int(&mut s, "depth", *depth);
            }
            TraceEvent::RegionPopped { ordinal, depth } => {
                int(&mut s, "ordinal", *ordinal);
                int(&mut s, "depth", *depth);
            }
            TraceEvent::Bisection {
                ordinal,
                dim,
                at,
                objective,
            } => {
                int(&mut s, "ordinal", *ordinal);
                int(&mut s, "dim", *dim);
                num(&mut s, "at", *at);
                num(&mut s, "objective", *objective);
            }
            TraceEvent::Propagation {
                ordinal,
                domain,
                seconds,
                outcome,
                layer_seconds,
            } => {
                int(&mut s, "ordinal", *ordinal);
                s.push_str(&format!(", \"domain\": {}", json_str(domain)));
                num(&mut s, "seconds", *seconds);
                s.push_str(&format!(", \"outcome\": {}", json_str(outcome)));
                let items: Vec<String> = layer_seconds.iter().map(|v| json_f64(*v)).collect();
                s.push_str(&format!(", \"layer_seconds\": [{}]", items.join(", ")));
            }
            TraceEvent::Attack {
                ordinal,
                phase,
                evals,
                best_objective,
                seconds,
            } => {
                int(&mut s, "ordinal", *ordinal);
                s.push_str(&format!(", \"phase\": {}", json_str(phase)));
                int(&mut s, "evals", *evals);
                num(&mut s, "best_objective", *best_objective);
                num(&mut s, "seconds", *seconds);
            }
            TraceEvent::Verdict {
                verdict,
                regions,
                seconds,
            } => {
                s.push_str(&format!(", \"verdict\": {}", json_str(verdict)));
                int(&mut s, "regions", *regions);
                num(&mut s, "seconds", *seconds);
            }
            TraceEvent::CheckpointSaved {
                pending,
                regions_done,
            } => {
                int(&mut s, "pending", *pending);
                int(&mut s, "regions_done", *regions_done);
            }
            TraceEvent::FaultTriggered { site, ordinal } => {
                s.push_str(&format!(", \"site\": {}", json_str(site)));
                int(&mut s, "ordinal", *ordinal);
            }
        }
        s.push('}');
        s
    }

    /// Parses one flat JSON object produced by [`TraceEvent::to_json`].
    ///
    /// # Errors
    ///
    /// Returns a message describing the first structural problem: not an
    /// object, unknown event kind, missing or mistyped field.
    pub fn from_json(line: &str) -> Result<TraceEvent, String> {
        let fields = parse_flat_object(line)?;
        let kind = fields.str_field("event")?;
        match kind.as_str() {
            "region_pushed" => Ok(TraceEvent::RegionPushed {
                depth: fields.usize_field("depth")?,
            }),
            "region_popped" => Ok(TraceEvent::RegionPopped {
                ordinal: fields.usize_field("ordinal")?,
                depth: fields.usize_field("depth")?,
            }),
            "bisection" => Ok(TraceEvent::Bisection {
                ordinal: fields.usize_field("ordinal")?,
                dim: fields.usize_field("dim")?,
                at: fields.f64_field("at")?,
                objective: fields.f64_field("objective")?,
            }),
            "propagation" => Ok(TraceEvent::Propagation {
                ordinal: fields.usize_field("ordinal")?,
                domain: fields.str_field("domain")?,
                seconds: fields.f64_field("seconds")?,
                outcome: fields.str_field("outcome")?,
                layer_seconds: fields.arr_field("layer_seconds")?,
            }),
            "attack" => Ok(TraceEvent::Attack {
                ordinal: fields.usize_field("ordinal")?,
                phase: fields.str_field("phase")?,
                evals: fields.usize_field("evals")?,
                best_objective: fields.f64_field("best_objective")?,
                seconds: fields.f64_field("seconds")?,
            }),
            "verdict" => Ok(TraceEvent::Verdict {
                verdict: fields.str_field("verdict")?,
                regions: fields.usize_field("regions")?,
                seconds: fields.f64_field("seconds")?,
            }),
            "checkpoint_saved" => Ok(TraceEvent::CheckpointSaved {
                pending: fields.usize_field("pending")?,
                regions_done: fields.usize_field("regions_done")?,
            }),
            "fault_triggered" => Ok(TraceEvent::FaultTriggered {
                site: fields.str_field("site")?,
                ordinal: fields.usize_field("ordinal")?,
            }),
            other => Err(format!("unknown event kind {other:?}")),
        }
    }
}

/// A consumer of [`TraceEvent`]s.
///
/// Implementations must be `Send + Sync`: the parallel and portfolio
/// drivers share one sink across worker threads, so `record` must accept
/// concurrent calls (events from different workers interleave at event
/// granularity).
///
/// Emission sites guard event *construction* behind [`TraceSink::enabled`]
/// — when it returns `false` no event is built at all, which is what
/// makes [`NullSink`] free.
pub trait TraceSink: Send + Sync {
    /// Whether callers should construct and record events at all.
    ///
    /// Defaults to `true`; [`NullSink`] overrides it to `false`.
    fn enabled(&self) -> bool {
        true
    }

    /// Consumes one event.
    fn record(&self, event: &TraceEvent);
}

/// Builds an event lazily and records it only if the sink is enabled.
///
/// This is the emission guard used throughout the verifier: with a
/// [`NullSink`] the closure never runs, so tracing costs one virtual call
/// per site and nothing else (no formatting, no allocation).
#[inline]
pub fn emit<F: FnOnce() -> TraceEvent>(sink: &dyn TraceSink, build: F) {
    if sink.enabled() {
        sink.record(&build());
    }
}

/// The default sink: tracing disabled, zero overhead.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn enabled(&self) -> bool {
        false
    }

    fn record(&self, _event: &TraceEvent) {}
}

/// Writes one JSON object per event to an underlying writer (JSON Lines).
///
/// Concurrent `record` calls serialize on an internal lock, so lines from
/// parallel workers never interleave mid-line. The writer is flushed when
/// the sink is dropped (and on every [`JsonlSink::flush`] call).
pub struct JsonlSink<W: Write + Send> {
    writer: Mutex<W>,
}

impl<W: Write + Send> JsonlSink<W> {
    /// Wraps a writer.
    pub fn new(writer: W) -> Self {
        JsonlSink {
            writer: Mutex::new(writer),
        }
    }

    /// Flushes the underlying writer.
    ///
    /// # Errors
    ///
    /// Propagates the writer's I/O error.
    pub fn flush(&self) -> std::io::Result<()> {
        self.writer.lock().flush()
    }
}

impl JsonlSink<std::io::BufWriter<std::fs::File>> {
    /// Creates (truncating) a JSONL trace file at `path`.
    ///
    /// # Errors
    ///
    /// Propagates the file-creation error.
    pub fn create(path: &std::path::Path) -> std::io::Result<Self> {
        Ok(JsonlSink::new(std::io::BufWriter::new(
            std::fs::File::create(path)?,
        )))
    }
}

impl<W: Write + Send> TraceSink for JsonlSink<W> {
    fn record(&self, event: &TraceEvent) {
        let mut w = self.writer.lock();
        // A full trace disk or broken pipe must never fail the
        // verification run; drop the event instead.
        let _ = writeln!(w, "{}", event.to_json());
    }
}

impl<W: Write + Send> Drop for JsonlSink<W> {
    fn drop(&mut self) {
        let _ = self.writer.lock().flush();
    }
}

/// In-memory aggregate of an event stream.
///
/// [`TraceSummary::merge`] is associative (and commutative up to
/// floating-point rounding of the second totals), so per-worker summaries
/// can be combined in any grouping.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TraceSummary {
    /// Total events absorbed.
    pub events: u64,
    /// `RegionPushed` events.
    pub regions_pushed: u64,
    /// `RegionPopped` events.
    pub regions_popped: u64,
    /// `Bisection` events.
    pub bisections: u64,
    /// `Propagation` events.
    pub propagations: u64,
    /// Summed `Propagation` seconds.
    pub propagation_seconds: f64,
    /// `Attack` events (one per attack phase).
    pub attack_phases: u64,
    /// Summed `Attack` seconds.
    pub attack_seconds: f64,
    /// Minimum `best_objective` over all `Attack` events (`+inf` when
    /// none were seen).
    pub best_objective: f64,
    /// `Verdict` events.
    pub verdicts: u64,
    /// `CheckpointSaved` events.
    pub checkpoints: u64,
    /// `FaultTriggered` events.
    pub faults: u64,
    /// Maximum depth over region push/pop events.
    pub max_depth: usize,
}

impl TraceSummary {
    /// Creates an empty summary (identity element of [`merge`]).
    ///
    /// [`merge`]: TraceSummary::merge
    pub fn new() -> Self {
        TraceSummary {
            best_objective: f64::INFINITY,
            ..TraceSummary::default()
        }
    }

    /// Folds one event into the summary.
    pub fn absorb(&mut self, event: &TraceEvent) {
        self.events += 1;
        match event {
            TraceEvent::RegionPushed { depth } => {
                self.regions_pushed += 1;
                self.max_depth = self.max_depth.max(*depth);
            }
            TraceEvent::RegionPopped { depth, .. } => {
                self.regions_popped += 1;
                self.max_depth = self.max_depth.max(*depth);
            }
            TraceEvent::Bisection { .. } => self.bisections += 1,
            TraceEvent::Propagation { seconds, .. } => {
                self.propagations += 1;
                self.propagation_seconds += seconds;
            }
            TraceEvent::Attack {
                seconds,
                best_objective,
                ..
            } => {
                self.attack_phases += 1;
                self.attack_seconds += seconds;
                if *best_objective < self.best_objective {
                    self.best_objective = *best_objective;
                }
            }
            TraceEvent::Verdict { .. } => self.verdicts += 1,
            TraceEvent::CheckpointSaved { .. } => self.checkpoints += 1,
            TraceEvent::FaultTriggered { .. } => self.faults += 1,
        }
    }

    /// Adds another summary into this one.
    pub fn merge(&mut self, other: &TraceSummary) {
        self.events += other.events;
        self.regions_pushed += other.regions_pushed;
        self.regions_popped += other.regions_popped;
        self.bisections += other.bisections;
        self.propagations += other.propagations;
        self.propagation_seconds += other.propagation_seconds;
        self.attack_phases += other.attack_phases;
        self.attack_seconds += other.attack_seconds;
        if other.best_objective < self.best_objective {
            self.best_objective = other.best_objective;
        }
        self.verdicts += other.verdicts;
        self.checkpoints += other.checkpoints;
        self.faults += other.faults;
        self.max_depth = self.max_depth.max(other.max_depth);
    }
}

/// A [`TraceSink`] that aggregates events into a [`TraceSummary`].
#[derive(Debug, Default)]
pub struct SummarySink {
    summary: Mutex<TraceSummary>,
}

impl SummarySink {
    /// Creates an empty summary sink.
    pub fn new() -> Self {
        SummarySink {
            summary: Mutex::new(TraceSummary::new()),
        }
    }

    /// A snapshot of the aggregate so far.
    pub fn snapshot(&self) -> TraceSummary {
        self.summary.lock().clone()
    }
}

impl TraceSink for SummarySink {
    fn record(&self, event: &TraceEvent) {
        self.summary.lock().absorb(event);
    }
}

/// A shareable trace sink handle, as stored on the verifiers.
pub type SharedSink = Arc<dyn TraceSink>;

/// Returns the default disabled sink.
pub fn null_sink() -> SharedSink {
    Arc::new(NullSink)
}

/// Fixed log-scale latency histogram (per-call seconds).
///
/// Bucket upper bounds run `1µs, 10µs, 100µs, 1ms, 10ms, 100ms, 1s, 10s`
/// with a final overflow bucket, matching the range from a single interval
/// propagation on a toy network up to a solver call against a deadline.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Histogram {
    counts: [u64; Self::BUCKETS],
}

impl Histogram {
    /// Number of buckets, including the overflow bucket.
    pub const BUCKETS: usize = 9;

    /// Upper bounds (exclusive) of each non-overflow bucket, in seconds.
    pub const BOUNDS: [f64; 8] = [1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0];

    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Counts one observation of `seconds`.
    pub fn observe(&mut self, seconds: f64) {
        let idx = Self::BOUNDS
            .iter()
            .position(|b| seconds < *b)
            .unwrap_or(Self::BUCKETS - 1);
        self.counts[idx] += 1;
    }

    /// Adds another histogram's counts into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
    }

    /// The per-bucket counts (index `BUCKETS - 1` is overflow).
    pub fn counts(&self) -> &[u64; Self::BUCKETS] {
        &self.counts
    }

    /// Total observations.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Human-readable label of bucket `idx`, e.g. `<1ms` or `>=10s`.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= Self::BUCKETS`.
    pub fn label(idx: usize) -> &'static str {
        const LABELS: [&str; Histogram::BUCKETS] = [
            "<1us", "<10us", "<100us", "<1ms", "<10ms", "<100ms", "<1s", "<10s", ">=10s",
        ];
        LABELS[idx]
    }
}

/// Per-node shard accounting for a coordinator-tier run: how many shards
/// a node was handed, how many it finished, how many had to be
/// re-dispatched elsewhere after the node died or dropped them, and how
/// long the node's dispatcher sat idle waiting for work.
///
/// Rows are merged by node name (see [`Metrics::merge`]), mirroring how
/// per-worker metrics merge inside one process.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct NodeRow {
    /// Node identity (its address as the coordinator dials it).
    pub name: String,
    /// Shards dispatched to this node.
    pub dispatched: u64,
    /// Shards the node completed with a usable result.
    pub completed: u64,
    /// Shards taken back from this node and re-dispatched (node death,
    /// timeout, or an injected shard drop).
    pub redispatched: u64,
    /// Wall-clock seconds the node's dispatcher spent idle.
    pub idle_seconds: f64,
}

/// Overload-resilience counters for a service tier: how much offered
/// work the tier refused or abandoned to protect the goodput of the
/// work it kept.
///
/// Both the single-node daemon and the coordinator render these through
/// [`OverloadStats::fields`], so the `stats` surface uses identical key
/// names in every tier — the "Overload triage" runbook in
/// `docs/OPERATIONS.md` reads them without caring which tier answered.
/// Rows from several nodes merge by summation (the `breaker_open` gauge
/// sums too: "how many breakers are open across the fleet").
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OverloadStats {
    /// Submissions refused by the sojourn-time shed controller (each
    /// was answered with a `busy` response, never admitted).
    pub shed: u64,
    /// Admitted jobs answered `deadline_expired` because their client
    /// deadline ran out before a worker could usefully start them.
    pub deadline_expired: u64,
    /// Circuit breakers currently open (gauge; zero on tiers without
    /// breakers, i.e. everything below the coordinator).
    pub breaker_open: u64,
    /// Cumulative breaker trips since the tier started.
    pub breaker_opens: u64,
}

impl OverloadStats {
    /// Sums another tier's counters into this one.
    pub fn merge(&mut self, other: &OverloadStats) {
        self.shed += other.shed;
        self.deadline_expired += other.deadline_expired;
        self.breaker_open += other.breaker_open;
        self.breaker_opens += other.breaker_opens;
    }

    /// Appends the counters to a flat stats object under their
    /// canonical key names.
    pub fn fields(&self, b: ObjectBuilder) -> ObjectBuilder {
        b.int("shed", self.shed)
            .int("deadline_expired", self.deadline_expired)
            .int("breaker_open", self.breaker_open)
            .int("breaker_opens", self.breaker_opens)
    }
}

/// Per-run engine metrics: phase counters, wall times, and latency
/// histograms.
///
/// One `Metrics` lives in each worker's [`crate::VerifyStats`];
/// `VerifyStats::absorb` merges them at join, so the totals surfaced in
/// [`crate::VerifyRun`] cover every worker — including workers that
/// exited early on the degradation ladder.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Metrics {
    /// Attack (minimization) calls.
    pub attack_calls: u64,
    /// Wall-clock seconds in the attack phase.
    pub attack_seconds: f64,
    /// Abstract-interpretation / solver calls on the main path.
    pub propagation_calls: u64,
    /// Wall-clock seconds in propagation (including degradation
    /// retries).
    pub propagation_seconds: f64,
    /// Policy decisions (domain selection + split planning).
    pub policy_calls: u64,
    /// Wall-clock seconds deciding domains and splits.
    pub policy_seconds: f64,
    /// Per-call attack latency distribution.
    pub attack_hist: Histogram,
    /// Per-call propagation latency distribution.
    pub propagation_hist: Histogram,
    /// Propagation calls that proved their region (precision numerator).
    pub propagation_proved: u64,
    /// Successful steal operations by the work-stealing scheduler.
    pub steals: u64,
    /// Regions moved between worker deques by those steals.
    pub stolen_regions: u64,
    /// Times a worker parked on the scheduler condvar for lack of work.
    pub parks: u64,
    /// Wall-clock seconds spent parked (scheduler idle time).
    pub idle_seconds: f64,
    /// Per-park idle latency distribution; a regression that starves
    /// workers shows up here as a shift toward the long buckets.
    pub idle_hist: Histogram,
    /// Per-node shard accounting (coordinator-tier runs only; empty for
    /// single-process runs).
    pub nodes: Vec<NodeRow>,
}

impl Metrics {
    /// Creates zeroed metrics.
    pub fn new() -> Self {
        Metrics::default()
    }

    /// Adds another worker's metrics into this one.
    pub fn merge(&mut self, other: &Metrics) {
        self.attack_calls += other.attack_calls;
        self.attack_seconds += other.attack_seconds;
        self.propagation_calls += other.propagation_calls;
        self.propagation_seconds += other.propagation_seconds;
        self.policy_calls += other.policy_calls;
        self.policy_seconds += other.policy_seconds;
        self.attack_hist.merge(&other.attack_hist);
        self.propagation_hist.merge(&other.propagation_hist);
        self.propagation_proved += other.propagation_proved;
        self.steals += other.steals;
        self.stolen_regions += other.stolen_regions;
        self.parks += other.parks;
        self.idle_seconds += other.idle_seconds;
        self.idle_hist.merge(&other.idle_hist);
        for row in &other.nodes {
            self.merge_node_row(row);
        }
    }

    /// Folds one per-node row in, summing into an existing row with the
    /// same name or appending a new one.
    pub fn merge_node_row(&mut self, row: &NodeRow) {
        match self.nodes.iter_mut().find(|n| n.name == row.name) {
            Some(existing) => {
                existing.dispatched += row.dispatched;
                existing.completed += row.completed;
                existing.redispatched += row.redispatched;
                existing.idle_seconds += row.idle_seconds;
            }
            None => self.nodes.push(row.clone()),
        }
    }

    /// Records one attack call.
    pub fn record_attack(&mut self, seconds: f64) {
        self.attack_calls += 1;
        self.attack_seconds += seconds;
        self.attack_hist.observe(seconds);
    }

    /// Records one propagation call and whether it proved its region.
    pub fn record_propagation(&mut self, seconds: f64, proved: bool) {
        self.propagation_calls += 1;
        self.propagation_seconds += seconds;
        self.propagation_hist.observe(seconds);
        if proved {
            self.propagation_proved += 1;
        }
    }

    /// Records one policy decision.
    pub fn record_policy(&mut self, seconds: f64) {
        self.policy_calls += 1;
        self.policy_seconds += seconds;
    }

    /// Records one successful steal moving `regions` regions.
    pub fn record_steal(&mut self, regions: u64) {
        self.steals += 1;
        self.stolen_regions += regions;
    }

    /// Records one condvar park of `seconds` idle time.
    pub fn record_park(&mut self, seconds: f64) {
        self.parks += 1;
        self.idle_seconds += seconds;
        self.idle_hist.observe(seconds);
    }

    /// Serializes the metrics as one flat JSON object (hand-rolled; the
    /// workspace has no serde_json). Used by the bench binaries to embed
    /// phase attribution in their BENCH files.
    pub fn to_json(&self) -> String {
        let mut s = format!(
            "{{\"attack_calls\": {}, \"attack_seconds\": {}, \
             \"propagation_calls\": {}, \"propagation_seconds\": {}, \
             \"policy_calls\": {}, \"policy_seconds\": {}, \
             \"propagation_proved\": {}, \"steals\": {}, \
             \"stolen_regions\": {}, \"parks\": {}, \"idle_seconds\": {}",
            self.attack_calls,
            json_f64(self.attack_seconds),
            self.propagation_calls,
            json_f64(self.propagation_seconds),
            self.policy_calls,
            json_f64(self.policy_seconds),
            self.propagation_proved,
            self.steals,
            self.stolen_regions,
            self.parks,
            json_f64(self.idle_seconds),
        );
        if !self.nodes.is_empty() {
            // The flat codec has no nested objects, so per-node rows
            // travel as a joined name string plus parallel numeric
            // arrays, index-aligned.
            let names: Vec<&str> = self.nodes.iter().map(|n| n.name.as_str()).collect();
            s.push_str(&format!(
                ", \"node_names\": {}",
                json_str(&names.join(","))
            ));
            let arr = |s: &mut String, key: &str, vals: Vec<String>| {
                s.push_str(&format!(", \"{key}\": [{}]", vals.join(", ")));
            };
            arr(
                &mut s,
                "node_dispatched",
                self.nodes.iter().map(|n| n.dispatched.to_string()).collect(),
            );
            arr(
                &mut s,
                "node_completed",
                self.nodes.iter().map(|n| n.completed.to_string()).collect(),
            );
            arr(
                &mut s,
                "node_redispatched",
                self.nodes
                    .iter()
                    .map(|n| n.redispatched.to_string())
                    .collect(),
            );
            arr(
                &mut s,
                "node_idle_seconds",
                self.nodes
                    .iter()
                    .map(|n| json_f64(n.idle_seconds))
                    .collect(),
            );
        }
        s.push('}');
        s
    }
}

/// A rendered per-run report: phase breakdown, throughput, and domain
/// precision.
///
/// Built from a completed [`crate::VerifyRun`] and rendered as a
/// fixed-width text table (`charon-cli verify --report`).
#[derive(Debug, Clone)]
pub struct RunReport {
    verdict: String,
    regions: usize,
    splits: usize,
    max_depth: usize,
    elapsed_seconds: f64,
    metrics: Metrics,
    domain_uses: Vec<(String, usize)>,
}

impl RunReport {
    /// Builds a report from a completed run.
    pub fn from_run(run: &crate::VerifyRun) -> Self {
        let verdict = match &run.verdict {
            crate::Verdict::Verified => "verified".to_string(),
            crate::Verdict::Refuted(_) => "refuted".to_string(),
            crate::Verdict::ResourceLimit => "resource_limit".to_string(),
        };
        RunReport {
            verdict,
            regions: run.stats.regions,
            splits: run.stats.splits,
            max_depth: run.stats.max_depth,
            elapsed_seconds: run.stats.elapsed.as_secs_f64(),
            metrics: run.stats.metrics.clone(),
            domain_uses: run.stats.domain_uses.clone(),
        }
    }

    /// Renders the report as a fixed-width text table.
    pub fn render(&self) -> String {
        let m = &self.metrics;
        let mut out = String::new();
        out.push_str(&format!(
            "run report: {} in {:.3}s ({} regions, {} splits, max depth {})\n",
            self.verdict, self.elapsed_seconds, self.regions, self.splits, self.max_depth
        ));
        let rps = if self.elapsed_seconds > 0.0 {
            self.regions as f64 / self.elapsed_seconds
        } else {
            0.0
        };
        out.push_str(&format!("  throughput: {rps:.1} regions/s\n"));

        // Per-phase breakdown. "other" is everything the phases do not
        // cover: worklist bookkeeping, validation, checkpointing.
        let accounted = m.attack_seconds + m.propagation_seconds + m.policy_seconds;
        let other = (self.elapsed_seconds - accounted).max(0.0);
        out.push_str("  phase          calls      seconds   share\n");
        let mut row = |name: &str, calls: u64, seconds: f64| {
            let share = if self.elapsed_seconds > 0.0 {
                100.0 * seconds / self.elapsed_seconds
            } else {
                0.0
            };
            out.push_str(&format!(
                "  {name:<12} {calls:>7} {seconds:>12.6} {share:>6.1}%\n"
            ));
        };
        row("attack", m.attack_calls, m.attack_seconds);
        row("propagation", m.propagation_calls, m.propagation_seconds);
        row("policy", m.policy_calls, m.policy_seconds);
        row("other", 0, other);

        if m.attack_seconds + m.propagation_seconds > 0.0 {
            out.push_str(&format!(
                "  attack/propagation split: {:.0}% / {:.0}%\n",
                100.0 * m.attack_seconds / (m.attack_seconds + m.propagation_seconds),
                100.0 * m.propagation_seconds / (m.attack_seconds + m.propagation_seconds),
            ));
        }
        if m.propagation_calls > 0 {
            out.push_str(&format!(
                "  domain precision: {}/{} propagations proved their region ({:.1}%)\n",
                m.propagation_proved,
                m.propagation_calls,
                100.0 * m.propagation_proved as f64 / m.propagation_calls as f64,
            ));
        }
        for (domain, count) in &self.domain_uses {
            out.push_str(&format!("  domain {domain}: {count} calls\n"));
        }
        if m.propagation_hist.total() > 0 {
            out.push_str("  propagation latency:");
            for (i, c) in m.propagation_hist.counts().iter().enumerate() {
                if *c > 0 {
                    out.push_str(&format!(" {}={c}", Histogram::label(i)));
                }
            }
            out.push('\n');
        }
        if m.steals > 0 || m.parks > 0 {
            out.push_str(&format!(
                "  scheduler: {} steals ({} regions moved), {} parks, {:.6}s idle\n",
                m.steals, m.stolen_regions, m.parks, m.idle_seconds
            ));
            if m.idle_hist.total() > 0 {
                out.push_str("  park latency:");
                for (i, c) in m.idle_hist.counts().iter().enumerate() {
                    if *c > 0 {
                        out.push_str(&format!(" {}={c}", Histogram::label(i)));
                    }
                }
                out.push('\n');
            }
        }
        if !m.nodes.is_empty() {
            out.push_str("  node                      dispatched  completed  redispatched     idle\n");
            for node in &m.nodes {
                out.push_str(&format!(
                    "  {:<24} {:>11} {:>10} {:>13} {:>7.3}s\n",
                    node.name, node.dispatched, node.completed, node.redispatched, node.idle_seconds
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_events() -> Vec<TraceEvent> {
        vec![
            TraceEvent::RegionPushed { depth: 1 },
            TraceEvent::RegionPopped {
                ordinal: 0,
                depth: 1,
            },
            TraceEvent::Bisection {
                ordinal: 0,
                dim: 3,
                at: 0.125,
                objective: 0.5,
            },
            TraceEvent::Propagation {
                ordinal: 0,
                domain: "(Z, 2)".to_string(),
                seconds: 0.25,
                outcome: "proved".to_string(),
                layer_seconds: vec![0.125, 0.0625, 0.0625],
            },
            TraceEvent::Propagation {
                ordinal: 1,
                domain: "deeppoly".to_string(),
                seconds: 0.5,
                outcome: "inconclusive".to_string(),
                layer_seconds: vec![],
            },
            TraceEvent::Attack {
                ordinal: 0,
                phase: "restarts".to_string(),
                evals: 42,
                best_objective: -0.75,
                seconds: 0.125,
            },
            TraceEvent::Attack {
                ordinal: 1,
                phase: "center".to_string(),
                evals: 7,
                best_objective: f64::INFINITY,
                seconds: 0.25,
            },
            TraceEvent::Verdict {
                verdict: "refuted".to_string(),
                regions: 2,
                seconds: 1.5,
            },
            TraceEvent::CheckpointSaved {
                pending: 4,
                regions_done: 9,
            },
            TraceEvent::FaultTriggered {
                site: "worker_panic".to_string(),
                ordinal: 3,
            },
        ]
    }

    #[test]
    fn every_event_round_trips_through_json() {
        for event in sample_events() {
            let json = event.to_json();
            let parsed = TraceEvent::from_json(&json)
                .unwrap_or_else(|e| panic!("parse failed for {json}: {e}"));
            assert_eq!(parsed, event, "round-trip mismatch for {json}");
        }
    }

    #[test]
    fn json_objects_carry_the_event_key_first() {
        for event in sample_events() {
            let json = event.to_json();
            assert!(
                json.starts_with(&format!("{{\"event\": \"{}\"", event.kind())),
                "bad prefix: {json}"
            );
            assert!(json.ends_with('}'));
        }
    }

    #[test]
    fn non_finite_floats_survive_the_round_trip() {
        for v in [f64::INFINITY, f64::NEG_INFINITY] {
            let event = TraceEvent::Attack {
                ordinal: 0,
                phase: "center".to_string(),
                evals: 1,
                best_objective: v,
                seconds: 0.0,
            };
            let parsed = TraceEvent::from_json(&event.to_json()).unwrap();
            assert_eq!(parsed, event);
        }
        // NaN compares unequal to itself; check the field directly.
        let event = TraceEvent::Bisection {
            ordinal: 0,
            dim: 0,
            at: f64::NAN,
            objective: 0.0,
        };
        match TraceEvent::from_json(&event.to_json()).unwrap() {
            TraceEvent::Bisection { at, .. } => assert!(at.is_nan()),
            other => panic!("wrong variant: {other:?}"),
        }
    }

    #[test]
    fn strings_with_quotes_and_escapes_round_trip() {
        let event = TraceEvent::Propagation {
            ordinal: 0,
            domain: "weird \"name\"\\with\nescapes".to_string(),
            seconds: 1.0,
            outcome: "proved".to_string(),
            layer_seconds: vec![],
        };
        assert_eq!(TraceEvent::from_json(&event.to_json()).unwrap(), event);
    }

    #[test]
    fn from_json_rejects_malformed_input() {
        for bad in [
            "",
            "not json",
            "{}",
            "{\"event\": \"no_such_event\"}",
            "{\"event\": \"region_pushed\"}",
            "{\"event\": \"region_pushed\", \"depth\": -1}",
            "{\"event\": \"region_pushed\", \"depth\": 1.5}",
            "{\"event\": \"region_pushed\", \"depth\": \"deep\"}",
            "{\"event\": \"region_pushed\", \"depth\": 1} trailing",
        ] {
            assert!(
                TraceEvent::from_json(bad).is_err(),
                "should reject {bad:?}"
            );
        }
    }

    #[test]
    fn null_sink_is_disabled() {
        assert!(!NullSink.enabled());
        // emit() must not invoke the builder when disabled.
        let mut built = false;
        emit(&NullSink, || {
            built = true;
            TraceEvent::RegionPushed { depth: 0 }
        });
        assert!(!built, "emit built an event for a disabled sink");
    }

    #[test]
    fn jsonl_sink_writes_one_valid_line_per_event() {
        let sink = JsonlSink::new(Vec::new());
        for event in sample_events() {
            sink.record(&event);
        }
        let text = String::from_utf8(sink.writer.lock().clone()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), sample_events().len());
        for (line, event) in lines.iter().zip(sample_events()) {
            assert_eq!(TraceEvent::from_json(line).unwrap(), event);
        }
    }

    #[test]
    fn summary_sink_aggregates() {
        let sink = SummarySink::new();
        for event in sample_events() {
            sink.record(&event);
        }
        let s = sink.snapshot();
        assert_eq!(s.events, sample_events().len() as u64);
        assert_eq!(s.regions_pushed, 1);
        assert_eq!(s.regions_popped, 1);
        assert_eq!(s.bisections, 1);
        assert_eq!(s.propagations, 2);
        assert_eq!(s.propagation_seconds, 0.75);
        assert_eq!(s.attack_phases, 2);
        assert_eq!(s.attack_seconds, 0.375);
        assert_eq!(s.best_objective, -0.75);
        assert_eq!(s.verdicts, 1);
        assert_eq!(s.checkpoints, 1);
        assert_eq!(s.faults, 1);
        assert_eq!(s.max_depth, 1);
    }

    #[test]
    fn summary_merge_is_associative() {
        // Power-of-two seconds are exact in f64, so + is associative on
        // them and the assertion below is an equality, not a tolerance.
        let events = sample_events();
        let chunks: Vec<TraceSummary> = events
            .chunks(2)
            .map(|chunk| {
                let mut s = TraceSummary::new();
                for e in chunk {
                    s.absorb(e);
                }
                s
            })
            .collect();

        // Left fold: ((a + b) + c) + ...
        let mut left = TraceSummary::new();
        for c in &chunks {
            left.merge(c);
        }
        // Right fold: a + (b + (c + ...))
        let mut right = TraceSummary::new();
        for c in chunks.iter().rev() {
            let mut acc = c.clone();
            acc.merge(&right);
            right = acc;
        }
        assert_eq!(left, right);

        // Identity element.
        let mut with_identity = left.clone();
        with_identity.merge(&TraceSummary::new());
        assert_eq!(with_identity, left);
    }

    #[test]
    fn histogram_buckets_and_merge() {
        let mut h = Histogram::new();
        h.observe(5e-7); // <1us
        h.observe(5e-4); // <1ms
        h.observe(0.5); // <1s
        h.observe(1e9); // overflow
        assert_eq!(h.total(), 4);
        assert_eq!(h.counts()[0], 1);
        assert_eq!(h.counts()[3], 1);
        assert_eq!(h.counts()[6], 1);
        assert_eq!(h.counts()[Histogram::BUCKETS - 1], 1);

        let mut other = Histogram::new();
        other.observe(5e-7);
        h.merge(&other);
        assert_eq!(h.counts()[0], 2);
        assert_eq!(Histogram::label(0), "<1us");
        assert_eq!(Histogram::label(Histogram::BUCKETS - 1), ">=10s");
    }

    #[test]
    fn metrics_merge_sums_counters_and_histograms() {
        let mut a = Metrics::new();
        a.record_attack(0.25);
        a.record_propagation(0.5, true);
        a.record_policy(0.125);
        let mut b = Metrics::new();
        b.record_attack(0.75);
        b.record_propagation(0.25, false);
        a.merge(&b);
        assert_eq!(a.attack_calls, 2);
        assert_eq!(a.attack_seconds, 1.0);
        assert_eq!(a.propagation_calls, 2);
        assert_eq!(a.propagation_seconds, 0.75);
        assert_eq!(a.propagation_proved, 1);
        assert_eq!(a.policy_calls, 1);
        assert_eq!(a.attack_hist.total(), 2);
        assert_eq!(a.propagation_hist.total(), 2);
    }

    #[test]
    fn metrics_json_is_flat_and_parseable() {
        let mut m = Metrics::new();
        m.record_attack(0.5);
        m.record_propagation(0.25, true);
        let json = m.to_json();
        let fields = parse_flat_object(&json).expect("metrics JSON parses");
        assert_eq!(fields.f64_field("attack_seconds").unwrap(), 0.5);
        assert_eq!(fields.usize_field("propagation_calls").unwrap(), 1);
        assert_eq!(fields.usize_field("propagation_proved").unwrap(), 1);
    }

    #[test]
    fn scheduler_counters_merge_serialize_and_render() {
        let mut a = Metrics::new();
        a.record_steal(3);
        a.record_park(0.002);
        let mut b = Metrics::new();
        b.record_steal(1);
        b.record_park(0.0004);
        b.record_park(0.02);
        a.merge(&b);
        assert_eq!(a.steals, 2);
        assert_eq!(a.stolen_regions, 4);
        assert_eq!(a.parks, 3);
        assert!((a.idle_seconds - 0.0224).abs() < 1e-12);
        assert_eq!(a.idle_hist.total(), 3);

        let fields = parse_flat_object(&a.to_json()).expect("metrics JSON parses");
        assert_eq!(fields.usize_field("steals").unwrap(), 2);
        assert_eq!(fields.usize_field("stolen_regions").unwrap(), 4);
        assert_eq!(fields.usize_field("parks").unwrap(), 3);
        assert!(fields.f64_field("idle_seconds").unwrap() > 0.0);

        let stats = crate::VerifyStats {
            metrics: a,
            ..crate::VerifyStats::default()
        };
        let run = crate::VerifyRun {
            verdict: crate::Verdict::Verified,
            stats,
            checkpoint: None,
            limit: None,
            certificate: None,
        };
        let text = RunReport::from_run(&run).render();
        assert!(
            text.contains("scheduler: 2 steals (4 regions moved), 3 parks"),
            "report: {text}"
        );
        assert!(text.contains("park latency:"), "report: {text}");
    }

    #[test]
    fn node_rows_merge_serialize_and_render() {
        let mut a = Metrics::new();
        a.merge_node_row(&NodeRow {
            name: "unix:/tmp/n0.sock".to_string(),
            dispatched: 4,
            completed: 3,
            redispatched: 1,
            idle_seconds: 0.5,
        });
        let mut b = Metrics::new();
        b.merge_node_row(&NodeRow {
            name: "unix:/tmp/n0.sock".to_string(),
            dispatched: 2,
            completed: 2,
            redispatched: 0,
            idle_seconds: 0.25,
        });
        b.merge_node_row(&NodeRow {
            name: "unix:/tmp/n1.sock".to_string(),
            dispatched: 5,
            completed: 5,
            redispatched: 0,
            idle_seconds: 0.125,
        });
        a.merge(&b);
        assert_eq!(a.nodes.len(), 2, "rows merge by name");
        assert_eq!(a.nodes[0].dispatched, 6);
        assert_eq!(a.nodes[0].completed, 5);
        assert_eq!(a.nodes[0].redispatched, 1);
        assert_eq!(a.nodes[0].idle_seconds, 0.75);

        let fields = parse_flat_object(&a.to_json()).expect("metrics JSON parses");
        assert_eq!(
            fields.str_field("node_names").unwrap(),
            "unix:/tmp/n0.sock,unix:/tmp/n1.sock"
        );
        assert_eq!(fields.arr_field("node_dispatched").unwrap(), vec![6.0, 5.0]);
        assert_eq!(
            fields.arr_field("node_redispatched").unwrap(),
            vec![1.0, 0.0]
        );

        let stats = crate::VerifyStats {
            metrics: a,
            ..crate::VerifyStats::default()
        };
        let run = crate::VerifyRun {
            verdict: crate::Verdict::Verified,
            stats,
            checkpoint: None,
            limit: None,
            certificate: None,
        };
        let text = RunReport::from_run(&run).render();
        assert!(text.contains("unix:/tmp/n0.sock"), "report: {text}");
        assert!(text.contains("redispatched"), "report: {text}");
    }

    #[test]
    fn run_report_renders_phases_and_throughput() {
        let mut stats = crate::VerifyStats {
            regions: 10,
            splits: 4,
            max_depth: 3,
            elapsed: std::time::Duration::from_secs(2),
            ..crate::VerifyStats::default()
        };
        stats.metrics.record_attack(0.5);
        stats.metrics.record_propagation(1.0, true);
        stats.metrics.record_policy(0.1);
        stats.domain_uses.push(("(Z, 1)".to_string(), 7));
        let run = crate::VerifyRun {
            verdict: crate::Verdict::Verified,
            stats,
            checkpoint: None,
            limit: None,
            certificate: None,
        };
        let text = RunReport::from_run(&run).render();
        assert!(text.contains("verified"), "report: {text}");
        assert!(text.contains("5.0 regions/s"), "report: {text}");
        assert!(text.contains("attack"), "report: {text}");
        assert!(text.contains("propagation"), "report: {text}");
        assert!(text.contains("policy"), "report: {text}");
        assert!(text.contains("other"), "report: {text}");
        assert!(text.contains("domain (Z, 1): 7 calls"), "report: {text}");
        assert!(
            text.contains("1/1 propagations proved their region (100.0%)"),
            "report: {text}"
        );
    }
}
