//! Serializable verification checkpoints.
//!
//! When a run stops on a budget (timeout, region cap, cancellation, or
//! the numeric splitting floor) the as-yet-undecided part of the region
//! worklist still represents real progress: every region *not* in it has
//! already been verified. A [`Checkpoint`] captures that worklist in a
//! line-oriented text format (in the same family as `nn::serialize` and
//! the `charon-prop` property format) so a later
//! [`crate::Verifier::resume`] can pick up exactly where the run
//! stopped, revisiting no already-verified region.
//!
//! ```text
//! charon-ckpt 1
//! target <class>
//! dim <n>
//! done <regions-processed-so-far>
//! region <depth> <l_1> <u_1> ... <l_n> <u_n>
//! ...
//! end
//! ```

use domains::Bounds;

use crate::error::VerifyError;

/// The resumable remainder of an interrupted verification run.
#[derive(Debug, Clone, PartialEq)]
pub struct Checkpoint {
    /// The property's target class.
    pub target: usize,
    /// Undecided regions with their split depths, in worklist order
    /// (the sequential verifier treats this as a stack, deepest last).
    pub pending: Vec<(Bounds, usize)>,
    /// Regions already processed before the interruption (carried for
    /// reporting; resumed stats start from zero).
    pub regions_done: usize,
}

impl Checkpoint {
    /// Serializes to the `charon-ckpt 1` text format.
    pub fn to_text(&self) -> String {
        use std::fmt::Write as _;
        let dim = self.pending.first().map_or(0, |(b, _)| b.dim());
        let mut out = String::new();
        writeln!(out, "charon-ckpt 1").unwrap();
        writeln!(out, "target {}", self.target).unwrap();
        writeln!(out, "dim {dim}").unwrap();
        writeln!(out, "done {}", self.regions_done).unwrap();
        for (region, depth) in &self.pending {
            write!(out, "region {depth}").unwrap();
            for (l, u) in region.lower().iter().zip(region.upper().iter()) {
                write!(out, " {l:?} {u:?}").unwrap();
            }
            out.push('\n');
        }
        out.push_str("end\n");
        out
    }

    /// Parses the text format produced by [`Checkpoint::to_text`].
    ///
    /// # Errors
    ///
    /// Returns [`VerifyError::CheckpointVersion`] if the header names a
    /// `charon-ckpt` version other than 1 (the file is recognizably a
    /// checkpoint, just from an incompatible build), and
    /// [`VerifyError::MalformedCheckpoint`] on any other syntactic
    /// problem.
    pub fn from_text(text: &str) -> Result<Self, VerifyError> {
        let malformed = |reason: &str| VerifyError::MalformedCheckpoint {
            reason: reason.to_string(),
        };
        let mut lines = text.lines().map(str::trim).filter(|l| !l.is_empty());
        match lines.next() {
            Some("charon-ckpt 1") => {}
            // A well-formed header with the wrong version is a
            // compatibility problem, not file corruption.
            Some(header) if header.starts_with("charon-ckpt ") => {
                return Err(VerifyError::CheckpointVersion {
                    found: header.to_string(),
                });
            }
            _ => return Err(malformed("bad header (expected 'charon-ckpt 1')")),
        }
        let target = lines
            .next()
            .and_then(|l| l.strip_prefix("target "))
            .and_then(|s| s.parse::<usize>().ok())
            .ok_or_else(|| malformed("bad target line"))?;
        let dim = lines
            .next()
            .and_then(|l| l.strip_prefix("dim "))
            .and_then(|s| s.parse::<usize>().ok())
            .ok_or_else(|| malformed("bad dim line"))?;
        let regions_done = lines
            .next()
            .and_then(|l| l.strip_prefix("done "))
            .and_then(|s| s.parse::<usize>().ok())
            .ok_or_else(|| malformed("bad done line"))?;
        let mut pending = Vec::new();
        loop {
            let line = lines.next().ok_or_else(|| malformed("missing end marker"))?;
            if line == "end" {
                break;
            }
            let rest = line
                .strip_prefix("region ")
                .ok_or_else(|| malformed("bad region line"))?;
            let mut parts = rest.split_whitespace();
            let depth: usize = parts
                .next()
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| malformed("bad region depth"))?;
            let values: Result<Vec<f64>, VerifyError> = parts
                .map(|s| {
                    s.parse::<f64>()
                        .map_err(|_| malformed(&format!("bad bound {s:?}")))
                })
                .collect();
            let values = values?;
            if values.len() != 2 * dim {
                return Err(malformed(&format!(
                    "region line has {} values, expected {}",
                    values.len(),
                    2 * dim
                )));
            }
            let mut lower = Vec::with_capacity(dim);
            let mut upper = Vec::with_capacity(dim);
            for pair in values.chunks_exact(2) {
                if pair[0] > pair[1] || pair[0].is_nan() || pair[1].is_nan() {
                    return Err(malformed(&format!(
                        "invalid bound pair [{}, {}]",
                        pair[0], pair[1]
                    )));
                }
                lower.push(pair[0]);
                upper.push(pair[1]);
            }
            pending.push((Bounds::new(lower, upper), depth));
        }
        Ok(Checkpoint {
            target,
            pending,
            regions_done,
        })
    }

    /// Merges another checkpoint into this one: pending worklists are
    /// concatenated and `regions_done` counts summed. Used by the
    /// coordinator tier to combine the resumable remainders of several
    /// shards (or straggler nodes) into one checkpoint for the whole
    /// property.
    ///
    /// # Errors
    ///
    /// Returns [`VerifyError::MalformedCheckpoint`] if the two
    /// checkpoints disagree on the target class — they then belong to
    /// different properties and combining them would be meaningless.
    pub fn merge(&mut self, other: Checkpoint) -> Result<(), VerifyError> {
        if !other.pending.is_empty() && !self.pending.is_empty() && other.target != self.target {
            return Err(VerifyError::MalformedCheckpoint {
                reason: format!(
                    "cannot merge checkpoints with different targets ({} vs {})",
                    self.target, other.target
                ),
            });
        }
        if self.pending.is_empty() {
            self.target = other.target;
        }
        self.pending.extend(other.pending);
        self.regions_done += other.regions_done;
        Ok(())
    }

    /// Saves the checkpoint to a file.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from writing the file.
    pub fn save(&self, path: &std::path::Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_text())
    }

    /// Loads a checkpoint from a file.
    ///
    /// # Errors
    ///
    /// Returns [`VerifyError::MalformedCheckpoint`] if the file cannot be
    /// read, plus everything [`Checkpoint::from_text`] reports.
    pub fn load(path: &std::path::Path) -> Result<Self, VerifyError> {
        let text =
            std::fs::read_to_string(path).map_err(|e| VerifyError::MalformedCheckpoint {
                reason: format!("cannot read {}: {e}", path.display()),
            })?;
        Checkpoint::from_text(&text)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Checkpoint {
        Checkpoint {
            target: 3,
            pending: vec![
                (Bounds::new(vec![0.1 + 0.2, -1.0], vec![0.5, 1e9]), 2),
                (Bounds::new(vec![0.5, 0.0], vec![1.0, 0.0]), 7),
            ],
            regions_done: 41,
        }
    }

    #[test]
    fn text_roundtrip_is_exact() {
        let ckpt = sample();
        let parsed = Checkpoint::from_text(&ckpt.to_text()).unwrap();
        assert_eq!(parsed, ckpt);
    }

    #[test]
    fn empty_worklist_roundtrips() {
        let ckpt = Checkpoint {
            target: 0,
            pending: vec![],
            regions_done: 5,
        };
        assert_eq!(Checkpoint::from_text(&ckpt.to_text()).unwrap(), ckpt);
    }

    #[test]
    fn rejects_malformed_inputs() {
        let cases = [
            ("", "empty"),
            ("bogus\nend", "bad header"),
            ("charon-ckpt 1\ntarget x\ndim 1\ndone 0\nend", "bad target"),
            ("charon-ckpt 1\ntarget 0\ndim 1\ndone 0\nregion 0 0.5\nend", "arity"),
            (
                "charon-ckpt 1\ntarget 0\ndim 1\ndone 0\nregion 0 2.0 1.0\nend",
                "inverted bounds",
            ),
            (
                "charon-ckpt 1\ntarget 0\ndim 1\ndone 0\nregion 0 NaN NaN\nend",
                "NaN bounds",
            ),
            ("charon-ckpt 1\ntarget 0\ndim 1\ndone 0", "missing end"),
        ];
        for (text, why) in cases {
            match Checkpoint::from_text(text) {
                Err(VerifyError::MalformedCheckpoint { reason }) => {
                    assert!(!reason.is_empty(), "{why}: empty diagnostic")
                }
                other => panic!("should reject {why} as MalformedCheckpoint, got {other:?}"),
            }
        }
    }

    #[test]
    fn merge_concatenates_and_sums() {
        let mut a = sample();
        let mut b = sample();
        b.regions_done = 9;
        b.pending.truncate(1);
        let expect_pending = a.pending.len() + b.pending.len();
        a.merge(b).unwrap();
        assert_eq!(a.pending.len(), expect_pending);
        assert_eq!(a.regions_done, 41 + 9);

        // Different targets on non-empty worklists must be refused.
        let mut c = sample();
        let mut d = sample();
        d.target = 0;
        assert!(matches!(
            c.merge(d),
            Err(VerifyError::MalformedCheckpoint { .. })
        ));

        // An empty receiver adopts the other side's target.
        let mut empty = Checkpoint {
            target: 0,
            pending: vec![],
            regions_done: 0,
        };
        empty.merge(sample()).unwrap();
        assert_eq!(empty.target, 3);
        assert_eq!(empty.regions_done, 41);
    }

    #[test]
    fn version_mismatch_is_a_typed_error_not_a_parse_failure() {
        // A checkpoint written by a hypothetical newer build must be
        // rejected as a version incompatibility with a clear message, so
        // operators do not chase a corruption that isn't there.
        let future = sample().to_text().replace("charon-ckpt 1", "charon-ckpt 2");
        match Checkpoint::from_text(&future) {
            Err(VerifyError::CheckpointVersion { found }) => {
                assert_eq!(found, "charon-ckpt 2");
            }
            other => panic!("expected CheckpointVersion, got {other:?}"),
        }
        let msg = Checkpoint::from_text(&future).unwrap_err().to_string();
        assert!(msg.contains("charon-ckpt 1"), "message names the supported version: {msg}");
        assert!(msg.contains("charon-ckpt 2"), "message names the found version: {msg}");

        // Garbage that merely mentions no version stays a parse failure.
        assert!(matches!(
            Checkpoint::from_text("bogus\nend"),
            Err(VerifyError::MalformedCheckpoint { .. })
        ));
    }
}
