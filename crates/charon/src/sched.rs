//! Work-stealing region scheduler.
//!
//! Replaces the shared-worklist polling loop of [`crate::parallel`] with
//! per-worker deques: each worker pushes split sub-regions onto its own
//! deque and pops from the same end (LIFO, so the search stays
//! depth-first and cache-warm), while an out-of-work worker steals *half*
//! of a victim's deque from the opposite end (FIFO, so thieves take the
//! oldest — shallowest, largest — regions, which amortizes the steal).
//!
//! Idle workers park on a condvar instead of spinning. The parking
//! protocol is the classic two-phase check: a parker advertises itself
//! (`parked += 1`, sequentially consistent) *before* re-checking the
//! queued count, and a pusher publishes work (`queued += n`) *before*
//! reading `parked`. Whichever side wins the race, the other observes it:
//! either the parker sees the new work and aborts the park, or the pusher
//! sees the parker and notifies. Parks are additionally bounded by a
//! short timeout so budget deadlines and external cancellation are
//! observed promptly even with no work in flight.
//!
//! Termination uses a single `tasks` counter covering queued *and*
//! in-flight regions: workers push children before completing the parent,
//! so `tasks == 0` is a stable "worklist drained" signal (never a
//! transient dip mid-split). Regions re-queued for checkpointing
//! (cancellation faults, unsplittable regions) do not re-increment the
//! counter — they were never completed.
//!
//! [`SchedulerMode::SharedQueue`] degenerates to one shared deque (the
//! pre-steal behaviour, minus the spinning) and is selected automatically
//! when `CHARON_FORCE_SCALAR` is set, so the scalar-kernel fallback
//! configuration is honoured end to end by one switch.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering::SeqCst};
use std::sync::{Condvar, Mutex as StdMutex};
use std::time::{Duration, Instant};

use domains::Bounds;
use parking_lot::Mutex;

use crate::telemetry::Metrics;

/// A region awaiting processing: bounds plus split depth.
pub(crate) type Region = (Bounds, usize);

/// Longest single park; bounds how stale a worker's view of the deadline
/// and the external cancel flag can get while it has no work.
const PARK_SLICE: Duration = Duration::from_millis(25);

/// Which scheduling discipline a [`crate::parallel::ParallelVerifier`]
/// uses to distribute regions across workers.
///
/// Both modes produce the same verdicts and the same merged statistics;
/// only the order in which regions are processed (and hence which
/// δ-counterexample a refutable run reports first) may differ.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedulerMode {
    /// Per-worker deques with steal-half balancing (the default).
    WorkStealing,
    /// One shared LIFO deque for all workers — the portable fallback,
    /// selected by default when `CHARON_FORCE_SCALAR` is set (the same
    /// switch that forces scalar tensor kernels).
    SharedQueue,
}

impl Default for SchedulerMode {
    /// [`SchedulerMode::WorkStealing`] unless `CHARON_FORCE_SCALAR` is
    /// set to a non-empty value other than `0`.
    fn default() -> Self {
        match std::env::var_os("CHARON_FORCE_SCALAR") {
            Some(v) if !v.is_empty() && v != "0" => SchedulerMode::SharedQueue,
            _ => SchedulerMode::WorkStealing,
        }
    }
}

impl SchedulerMode {
    /// Display name, as recorded in bench files and run reports.
    pub fn name(self) -> &'static str {
        match self {
            SchedulerMode::WorkStealing => "work_stealing",
            SchedulerMode::SharedQueue => "shared_queue",
        }
    }
}

/// The shared scheduler state of one parallel run.
pub(crate) struct Scheduler {
    /// One deque per worker (one total in shared-queue mode). Owners
    /// push/pop at the back; thieves drain from the front.
    deques: Vec<Mutex<VecDeque<Region>>>,
    /// Regions sitting in some deque (not in flight). Parking checks.
    queued: AtomicUsize,
    /// Queued + in-flight regions. Zero means the worklist is drained:
    /// children are pushed *before* the parent completes.
    tasks: AtomicUsize,
    /// Workers currently inside a park (or committing to one).
    parked: AtomicUsize,
    /// Guards the condvar; holds no data — all state is atomic.
    gate: StdMutex<()>,
    /// Signalled on push, on drain, and on stop.
    work: Condvar,
}

impl Scheduler {
    /// Builds a scheduler for `workers` workers seeded with `initial`
    /// regions (distributed round-robin so workers start on disjoint
    /// work). `SharedQueue` mode collapses to a single deque.
    pub(crate) fn new(workers: usize, mode: SchedulerMode, initial: Vec<Region>) -> Self {
        let slots = match mode {
            SchedulerMode::WorkStealing => workers.max(1),
            SchedulerMode::SharedQueue => 1,
        };
        let mut deques: Vec<VecDeque<Region>> = (0..slots).map(|_| VecDeque::new()).collect();
        let count = initial.len();
        for (i, region) in initial.into_iter().enumerate() {
            deques[i % slots].push_back(region);
        }
        Scheduler {
            deques: deques.into_iter().map(Mutex::new).collect(),
            queued: AtomicUsize::new(count),
            tasks: AtomicUsize::new(count),
            parked: AtomicUsize::new(0),
            gate: StdMutex::new(()),
            work: Condvar::new(),
        }
    }

    /// Pops a region for `worker`: its own deque first (LIFO), then a
    /// steal-half pass over the other deques. Steal counts land in the
    /// worker's [`Metrics`] so scheduler behaviour shows up in run
    /// reports. Returns `None` only if every deque was empty at the time
    /// it was inspected.
    pub(crate) fn try_pop(&self, worker: usize, metrics: &mut Metrics) -> Option<Region> {
        let slots = self.deques.len();
        let me = worker % slots;
        if let Some(region) = self.deques[me].lock().pop_back() {
            self.queued.fetch_sub(1, SeqCst);
            return Some(region);
        }
        if slots == 1 {
            return None;
        }
        for offset in 1..slots {
            let victim = (me + offset) % slots;
            let mut loot: VecDeque<Region> = {
                let mut deque = self.deques[victim].lock();
                let take = deque.len().div_ceil(2);
                if take == 0 {
                    continue;
                }
                deque.drain(..take).collect()
            };
            self.queued.fetch_sub(loot.len(), SeqCst);
            metrics.record_steal(loot.len() as u64);
            let first = loot.pop_front().expect("steal takes at least one region");
            if !loot.is_empty() {
                let surplus = loot.len();
                self.deques[me].lock().append(&mut loot);
                self.queued.fetch_add(surplus, SeqCst);
                // The surplus transiently vanished from `queued`; a
                // worker that parked during the dip needs a nudge.
                self.notify_if_parked();
            }
            return Some(first);
        }
        None
    }

    /// Pushes the two children of a split. The task counter grows before
    /// the regions become visible, so `tasks` never under-counts; the
    /// caller completes the parent *afterwards* (see
    /// [`Scheduler::complete_one`]).
    pub(crate) fn push_split(&self, worker: usize, a: Region, b: Region) {
        self.tasks.fetch_add(2, SeqCst);
        let me = worker % self.deques.len();
        {
            let mut deque = self.deques[me].lock();
            deque.push_back(a);
            deque.push_back(b);
        }
        self.queued.fetch_add(2, SeqCst);
        self.notify_if_parked();
    }

    /// Returns a popped region to the worklist *without* growing the task
    /// counter: the region was never completed, it just needs to be in
    /// the deques when the checkpoint drains them (cancellation faults,
    /// unsplittable regions).
    pub(crate) fn requeue(&self, worker: usize, region: Region) {
        let me = worker % self.deques.len();
        self.deques[me].lock().push_back(region);
        self.queued.fetch_add(1, SeqCst);
        self.notify_if_parked();
    }

    /// Marks one popped region as fully processed (verified, refuted, or
    /// errored — anything that does not re-queue it). On the last region
    /// every parked worker is woken so the run can finish.
    pub(crate) fn complete_one(&self) {
        if self.tasks.fetch_sub(1, SeqCst) == 1 {
            self.wake_all();
        }
    }

    /// True once every region has been completed (none queued, none in
    /// flight). Stable: `tasks` never dips to zero transiently.
    pub(crate) fn drained(&self) -> bool {
        self.tasks.load(SeqCst) == 0
    }

    /// Parks the calling worker until work arrives, the run drains, the
    /// `abort` condition holds, or `limit` elapses — whichever is first.
    /// The park (if it happens) is timed into the worker's [`Metrics`].
    pub(crate) fn park(&self, limit: Duration, metrics: &mut Metrics, abort: impl Fn() -> bool) {
        let limit = limit.min(PARK_SLICE);
        let guard = self.gate.lock().unwrap_or_else(|e| e.into_inner());
        // Advertise before re-checking: a pusher increments `queued`
        // before reading `parked` (both SeqCst), so either we see its
        // work here or it sees us and notifies under the gate.
        self.parked.fetch_add(1, SeqCst);
        if self.queued.load(SeqCst) > 0 || self.drained() || abort() {
            self.parked.fetch_sub(1, SeqCst);
            return;
        }
        let start = Instant::now();
        let _ = self.work.wait_timeout(guard, limit);
        self.parked.fetch_sub(1, SeqCst);
        metrics.record_park(start.elapsed().as_secs_f64());
    }

    /// Wakes every parked worker (stop, error, or drained worklist).
    pub(crate) fn wake_all(&self) {
        let _gate = self.gate.lock().unwrap_or_else(|e| e.into_inner());
        self.work.notify_all();
    }

    fn notify_if_parked(&self) {
        if self.parked.load(SeqCst) > 0 {
            // Taking the gate orders the notify after any in-progress
            // parker has reached its wait.
            let _gate = self.gate.lock().unwrap_or_else(|e| e.into_inner());
            self.work.notify_all();
        }
    }

    /// Consumes the scheduler, returning every region still queued (for
    /// checkpointing a budget-limited run). Deque order is preserved
    /// deque by deque; checkpoint consumers treat pending sets as
    /// unordered.
    pub(crate) fn into_pending(self) -> Vec<Region> {
        let mut pending = Vec::new();
        for deque in self.deques {
            pending.extend(deque.into_inner());
        }
        pending
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn region(tag: usize) -> Region {
        (Bounds::new(vec![0.0], vec![tag as f64 + 1.0]), tag)
    }

    #[test]
    fn seeds_round_robin_and_drains_in_lifo_order_per_deque() {
        let sched = Scheduler::new(2, SchedulerMode::WorkStealing, vec![region(0), region(1)]);
        let mut m = Metrics::new();
        // Worker 0's own deque holds region 0; worker 1's holds region 1.
        assert_eq!(sched.try_pop(0, &mut m).unwrap().1, 0);
        assert_eq!(sched.try_pop(1, &mut m).unwrap().1, 1);
        assert!(sched.try_pop(0, &mut m).is_none());
        assert_eq!(m.steals, 0);
    }

    #[test]
    fn steal_takes_half_from_the_front() {
        let sched = Scheduler::new(2, SchedulerMode::WorkStealing, vec![]);
        // Worker 0 splits twice: its deque is [s0, s1, s2, s3] back-most
        // newest. tasks bookkeeping: fake two outstanding parents.
        sched.push_split(0, region(10), region(11));
        sched.push_split(0, region(12), region(13));
        let mut m = Metrics::new();
        // Worker 1 steals ceil(4/2) = 2 oldest (10, 11), keeps the first,
        // deposits the second in its own deque.
        let got = sched.try_pop(1, &mut m).unwrap();
        assert_eq!(got.1, 10);
        assert_eq!(m.steals, 1);
        assert_eq!(m.stolen_regions, 2);
        assert_eq!(sched.try_pop(1, &mut m).unwrap().1, 11);
        // Worker 0 still owns its newest work.
        assert_eq!(sched.try_pop(0, &mut m).unwrap().1, 13);
        assert_eq!(sched.try_pop(0, &mut m).unwrap().1, 12);
    }

    #[test]
    fn shared_queue_mode_uses_one_deque_for_all_workers() {
        let sched = Scheduler::new(
            4,
            SchedulerMode::SharedQueue,
            vec![region(0), region(1), region(2)],
        );
        let mut m = Metrics::new();
        // All workers pop from the same LIFO deque; no steals ever.
        assert_eq!(sched.try_pop(3, &mut m).unwrap().1, 2);
        assert_eq!(sched.try_pop(1, &mut m).unwrap().1, 1);
        assert_eq!(sched.try_pop(2, &mut m).unwrap().1, 0);
        assert_eq!(m.steals, 0);
        assert!(!sched.drained());
    }

    #[test]
    fn tasks_counter_tracks_split_and_complete() {
        let sched = Scheduler::new(1, SchedulerMode::WorkStealing, vec![region(0)]);
        let mut m = Metrics::new();
        let parent = sched.try_pop(0, &mut m).unwrap();
        assert!(!sched.drained());
        sched.push_split(0, region(1), region(2));
        sched.complete_one(); // parent
        assert!(!sched.drained());
        let _ = sched.try_pop(0, &mut m).unwrap();
        sched.complete_one();
        let _ = sched.try_pop(0, &mut m).unwrap();
        sched.complete_one();
        assert!(sched.drained());
        drop(parent);
    }

    #[test]
    fn requeue_preserves_task_count_and_checkpoint_contents() {
        let sched = Scheduler::new(2, SchedulerMode::WorkStealing, vec![region(0), region(1)]);
        let mut m = Metrics::new();
        let popped = sched.try_pop(0, &mut m).unwrap();
        sched.requeue(0, popped);
        assert!(!sched.drained());
        let mut pending: Vec<usize> = sched.into_pending().into_iter().map(|(_, d)| d).collect();
        pending.sort_unstable();
        assert_eq!(pending, vec![0, 1]);
    }

    #[test]
    fn park_aborts_immediately_when_work_is_queued_or_drained() {
        let mut m = Metrics::new();
        // Queued work: park must return without waiting or counting.
        let busy = Scheduler::new(1, SchedulerMode::WorkStealing, vec![region(0)]);
        busy.park(Duration::from_secs(5), &mut m, || false);
        assert_eq!(m.parks, 0);
        // Drained: same.
        let done = Scheduler::new(1, SchedulerMode::WorkStealing, vec![]);
        done.park(Duration::from_secs(5), &mut m, || false);
        assert_eq!(m.parks, 0);
    }

    #[test]
    fn park_times_out_within_the_slice() {
        let sched = Scheduler::new(2, SchedulerMode::WorkStealing, vec![region(0)]);
        let mut m = Metrics::new();
        let _held = sched.try_pop(0, &mut m).unwrap(); // in flight, nothing queued
        let start = Instant::now();
        sched.park(Duration::from_secs(60), &mut m, || false);
        assert!(start.elapsed() < Duration::from_secs(5), "park overslept");
        assert_eq!(m.parks, 1);
        assert!(m.idle_seconds > 0.0);
    }

    #[test]
    fn pusher_wakes_a_parked_worker() {
        use std::sync::Arc;
        let sched = Arc::new(Scheduler::new(2, SchedulerMode::WorkStealing, vec![region(0)]));
        let mut m = Metrics::new();
        let parent = sched.try_pop(0, &mut m).unwrap();
        let thief = {
            let sched = Arc::clone(&sched);
            std::thread::spawn(move || {
                let mut m = Metrics::new();
                // Park (possibly several slices), then pop what arrives.
                while sched.queued.load(SeqCst) == 0 {
                    sched.park(Duration::from_secs(1), &mut m, || false);
                }
                sched.try_pop(1, &mut m).map(|(_, d)| d)
            })
        };
        std::thread::sleep(Duration::from_millis(20));
        sched.push_split(0, region(7), region(8));
        sched.complete_one();
        let got = thief.join().expect("thief thread panicked");
        assert!(got == Some(7) || got == Some(8), "thief got {got:?}");
        drop(parent);
    }

    #[test]
    fn mode_default_honours_force_scalar_convention() {
        // Cannot mutate the process environment safely under a threaded
        // test harness; check the parse rule directly instead.
        let rule = |v: Option<&str>| match v {
            Some(s) if !s.is_empty() && s != "0" => SchedulerMode::SharedQueue,
            _ => SchedulerMode::WorkStealing,
        };
        assert_eq!(rule(None), SchedulerMode::WorkStealing);
        assert_eq!(rule(Some("")), SchedulerMode::WorkStealing);
        assert_eq!(rule(Some("0")), SchedulerMode::WorkStealing);
        assert_eq!(rule(Some("1")), SchedulerMode::SharedQueue);
        assert_eq!(SchedulerMode::WorkStealing.name(), "work_stealing");
        assert_eq!(SchedulerMode::SharedQueue.name(), "shared_queue");
    }
}
