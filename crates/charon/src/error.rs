//! Structured failure taxonomy for the verification engine.
//!
//! The verifier distinguishes two very different kinds of "no answer":
//!
//! * **Couldn't decide** — the budget ran out or the region became
//!   numerically unsplittable. This is the δ-completeness escape hatch
//!   ([`crate::Verdict::ResourceLimit`]); the run is resumable from its
//!   checkpoint.
//! * **Engine broke** — a worker panicked twice, NaN poisoned both the
//!   chosen domain and the interval fallback, or the model itself is
//!   malformed. This is a [`VerifyError`]; no verdict can honestly be
//!   reported.
//!
//! The `Result`-based API ([`crate::Verifier::try_verify_run`] and
//! friends) keeps the two apart; the legacy [`crate::Verifier::verify`]
//! API maps engine failures to panics, as it always did.

/// Why a verification run stopped without a decisive verdict.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BudgetKind {
    /// The wall-clock timeout elapsed.
    Timeout,
    /// The region cap (`max_regions`) was reached.
    Regions,
    /// The cooperative cancellation flag was set.
    Cancelled,
    /// A region could not be split further at f64 precision and no
    /// domain could decide it.
    NumericPrecision,
}

impl std::fmt::Display for BudgetKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BudgetKind::Timeout => write!(f, "timeout"),
            BudgetKind::Regions => write!(f, "region budget"),
            BudgetKind::Cancelled => write!(f, "cancelled"),
            BudgetKind::NumericPrecision => write!(f, "numeric precision floor"),
        }
    }
}

/// A failure of the verification engine itself, as opposed to an
/// inconclusive verdict.
#[derive(Debug, Clone, PartialEq)]
pub enum VerifyError {
    /// A region's analyze/attack step panicked, and so did the coarse
    /// interval retry. The process survives; the run does not.
    WorkerPanic {
        /// Panic payload (if it was a string), for diagnostics.
        message: String,
    },
    /// NaN poisoned both the selected abstract domain and the interval
    /// fallback on some region; no sound statement is possible.
    NonFinitePoisoning {
        /// Which stage detected the poisoning (e.g. `"transformer"`,
        /// `"attack"`).
        stage: &'static str,
    },
    /// The run exhausted a resource budget before reaching a decision.
    ///
    /// Produced by the strict [`crate::Verifier::try_verify`] API, which
    /// folds [`crate::Verdict::ResourceLimit`] into the error channel;
    /// [`crate::Verifier::try_verify_run`] reports the same situation as
    /// an `Ok` run carrying a checkpoint instead.
    Budget {
        /// Which budget was exhausted.
        kind: BudgetKind,
    },
    /// The network or property is structurally unusable: dimension
    /// mismatch, out-of-range target class, or non-finite parameters.
    MalformedModel {
        /// Human-readable description of the defect.
        reason: String,
    },
    /// A checkpoint file declares a format version this build does not
    /// read. Distinct from [`VerifyError::MalformedCheckpoint`] so
    /// callers can tell "wrong tool version" from "corrupted file".
    CheckpointVersion {
        /// The header line found in the file.
        found: String,
    },
    /// A checkpoint file is syntactically unusable (truncated, bad
    /// bounds, wrong arity).
    MalformedCheckpoint {
        /// Human-readable description of the defect.
        reason: String,
    },
}

impl std::fmt::Display for VerifyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VerifyError::WorkerPanic { message } => {
                write!(f, "verification worker panicked: {message}")
            }
            VerifyError::NonFinitePoisoning { stage } => {
                write!(f, "non-finite values poisoned the {stage} stage")
            }
            VerifyError::Budget { kind } => write!(f, "budget exhausted: {kind}"),
            VerifyError::MalformedModel { reason } => write!(f, "malformed model: {reason}"),
            VerifyError::CheckpointVersion { found } => write!(
                f,
                "unsupported checkpoint version: found {found:?}, but this build reads \
                 'charon-ckpt 1' (was the checkpoint written by a newer build?)"
            ),
            VerifyError::MalformedCheckpoint { reason } => {
                write!(f, "malformed checkpoint: {reason}")
            }
        }
    }
}

impl std::error::Error for VerifyError {}

/// Extracts a printable message from a panic payload.
pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_one_line() {
        let errors = [
            VerifyError::WorkerPanic {
                message: "boom".into(),
            },
            VerifyError::NonFinitePoisoning {
                stage: "transformer",
            },
            VerifyError::Budget {
                kind: BudgetKind::Timeout,
            },
            VerifyError::MalformedModel {
                reason: "NaN weight".into(),
            },
            VerifyError::CheckpointVersion {
                found: "charon-ckpt 7".into(),
            },
            VerifyError::MalformedCheckpoint {
                reason: "missing end marker".into(),
            },
        ];
        for e in errors {
            let text = e.to_string();
            assert!(!text.is_empty());
            assert!(!text.contains('\n'));
        }
    }

    #[test]
    fn panic_message_handles_both_string_kinds() {
        assert_eq!(panic_message(&"static"), "static");
        assert_eq!(panic_message(&String::from("owned")), "owned");
        assert_eq!(panic_message(&42usize), "non-string panic payload");
    }
}
