//! Charon: a sound and δ-complete decision procedure for neural-network
//! robustness, combining gradient-based counterexample search with
//! abstraction-based proof search.
//!
//! This crate is the paper's primary contribution (Algorithm 1 plus the
//! learned verification policy of §4):
//!
//! * [`RobustnessProperty`] — a property `(I, K)`: every input in the
//!   region `I` must be classified as `K`.
//! * [`Verifier`] — the `Verify` procedure: alternate projected gradient
//!   descent (falsification) with abstract interpretation (verification),
//!   splitting the input region under the guidance of a
//!   [`policy::Policy`] when neither succeeds.
//! * [`policy`] — verification policies: the learned [`policy::LinearPolicy`]
//!   `π_θ = (π^α_θ, π^I_θ)` of Eq. 3 and a hand-crafted baseline for
//!   ablations.
//! * [`train`] — the training phase (§4.2): Bayesian optimization of the
//!   policy parameters θ against a corpus of training problems.
//! * [`parallel`] — a multi-threaded region solver, mirroring the
//!   parallelization described in §6.
//! * [`portfolio`] — races several policies on the same property, taking
//!   the first decisive verdict (an extension).
//! * [`report`] — certified-accuracy measurement over labelled point sets
//!   (the standard deployment-facing metric).
//!
//! # Guarantees
//!
//! The verifier is *sound*: `Verdict::Verified` implies every point of the
//! region is classified as the target class (assuming the abstract domains
//! are sound, which this workspace tests extensively). It is *δ-complete*
//! (Theorem 5.4): if the property is not verified within the resource
//! budget, the result is either a δ-counterexample (a point whose score
//! margin is at most δ, Definition 5.3) or an explicit resource-limit
//! verdict.
//!
//! # Failure model
//!
//! Engine faults are isolated per region: a panicking or NaN-poisoned
//! region step is retried once on the interval domain, and only a second
//! failure aborts the run with a structured [`VerifyError`] (via the
//! `Result`-based [`Verifier::try_verify_run`] API). Budget-limited runs
//! emit a [`Checkpoint`] from which [`Verifier::resume`] continues without
//! revisiting verified regions. The [`faults`] module provides the
//! deterministic fault-injection harness used by the chaos tests.
//!
//! # Certified verdicts
//!
//! With [`VerifierConfig::certificates`] set, fresh decisive runs emit a
//! proof [`Certificate`] (re-exported from the `cert` crate): the full
//! region split tree with per-leaf domains and margins for `Verified`,
//! the validated witness point for `Refuted`. The artifact can be saved,
//! shipped, and re-checked by the *independent* [`cert::audit`] checker —
//! which shares no transformer code with this crate and replays every
//! leaf with directed (outward) rounding — via `charon-cli audit`.
//!
//! # Observability
//!
//! The [`telemetry`] module provides structured tracing and metrics:
//! attach a [`telemetry::TraceSink`] with [`Verifier::with_trace`] (e.g.
//! a [`telemetry::JsonlSink`] writing one JSON object per event), read
//! per-phase [`telemetry::Metrics`] from any completed run via
//! [`VerifyRun::metrics`], and render them with
//! [`telemetry::RunReport`]. The default sink is
//! [`telemetry::NullSink`]: tracing disabled, zero overhead — metrics
//! counters are always on.
//!
//! # Examples
//!
//! ```
//! use charon::{RobustnessProperty, Verifier, Verdict};
//! use domains::Bounds;
//! use nn::samples;
//!
//! let net = samples::xor_network();
//! // Example 3.1: all of [0.3, 0.7]^2 must be classified 1.
//! let property = RobustnessProperty::new(
//!     Bounds::new(vec![0.3, 0.3], vec![0.7, 0.7]),
//!     1,
//! );
//! let verifier = Verifier::default();
//! assert!(matches!(verifier.verify(&net, &property), Verdict::Verified));
//! ```

#![warn(missing_docs)]

mod checkpoint;
mod error;
mod property;
mod verify;

pub mod deadline;
pub mod faults;
pub mod json;
pub mod parallel;
pub mod policy;
pub mod portfolio;
pub mod report;
pub mod sched;
pub mod telemetry;
pub mod train;

pub use checkpoint::Checkpoint;
pub use error::{BudgetKind, VerifyError};
pub use property::RobustnessProperty;
pub use sched::SchedulerMode;
pub use telemetry::{
    JsonlSink, Metrics, NodeRow, NullSink, OverloadStats, RunReport, SummarySink, TraceEvent,
    TraceSink,
};
pub use verify::{
    Counterexample, Verdict, Verifier, VerifierConfig, VerifyRun, VerifyStats,
};

pub use cert::{
    audit, AuditError, AuditOptions, AuditReport, CertError, CertVerdict, Certificate,
    Node as CertNode,
};
