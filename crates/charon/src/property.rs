use domains::Bounds;
use serde::{Deserialize, Serialize};

/// A local-robustness property `(I, K)` (§2.2): every input in the region
/// `I` must be assigned class `K`.
///
/// # Examples
///
/// ```
/// use charon::RobustnessProperty;
/// use domains::Bounds;
///
/// let p = RobustnessProperty::new(Bounds::new(vec![0.0], vec![1.0]), 1);
/// assert_eq!(p.target(), 1);
/// assert_eq!(p.region().dim(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RobustnessProperty {
    region: Bounds,
    target: usize,
}

impl RobustnessProperty {
    /// Creates a property from an input region and target class.
    pub fn new(region: Bounds, target: usize) -> Self {
        RobustnessProperty { region, target }
    }

    /// The input region `I`.
    pub fn region(&self) -> &Bounds {
        &self.region
    }

    /// The required class `K`.
    pub fn target(&self) -> usize {
        self.target
    }

    /// Returns the same property restricted to a sub-region.
    pub fn with_region(&self, region: Bounds) -> Self {
        RobustnessProperty {
            region,
            target: self.target,
        }
    }

    /// Checks the property on a single concrete point: is it classified as
    /// the target class?
    ///
    /// # Panics
    ///
    /// Panics if dimensions mismatch.
    pub fn holds_at(&self, net: &nn::Network, x: &[f64]) -> bool {
        net.classify(x) == self.target
    }

    /// Serializes the property to a line-oriented text format:
    ///
    /// ```text
    /// charon-prop 1
    /// target <class>
    /// dim <n>
    /// <lower_i> <upper_i>     (n lines)
    /// end
    /// ```
    pub fn to_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        writeln!(out, "charon-prop 1").unwrap();
        writeln!(out, "target {}", self.target).unwrap();
        writeln!(out, "dim {}", self.region.dim()).unwrap();
        for (l, u) in self.region.lower().iter().zip(self.region.upper().iter()) {
            writeln!(out, "{l:?} {u:?}").unwrap();
        }
        out.push_str(
            "end
",
        );
        out
    }

    /// Parses a property from the text format produced by
    /// [`RobustnessProperty::to_text`].
    ///
    /// # Errors
    ///
    /// Returns a human-readable message on any syntactic problem.
    pub fn from_text(text: &str) -> Result<Self, String> {
        let mut lines = text.lines().map(str::trim).filter(|l| !l.is_empty());
        if lines.next() != Some("charon-prop 1") {
            return Err("bad header (expected 'charon-prop 1')".into());
        }
        let target = lines
            .next()
            .and_then(|l| l.strip_prefix("target "))
            .and_then(|s| s.parse::<usize>().ok())
            .ok_or("bad target line")?;
        let dim = lines
            .next()
            .and_then(|l| l.strip_prefix("dim "))
            .and_then(|s| s.parse::<usize>().ok())
            .ok_or("bad dim line")?;
        let mut lower = Vec::with_capacity(dim);
        let mut upper = Vec::with_capacity(dim);
        for _ in 0..dim {
            let line = lines.next().ok_or("missing bound line")?;
            let mut parts = line.split_whitespace();
            let l: f64 = parts
                .next()
                .and_then(|s| s.parse().ok())
                .ok_or("bad lower bound")?;
            let u: f64 = parts
                .next()
                .and_then(|s| s.parse().ok())
                .ok_or("bad upper bound")?;
            if l > u {
                return Err(format!("inverted bounds [{l}, {u}]"));
            }
            lower.push(l);
            upper.push(u);
        }
        if lines.next() != Some("end") {
            return Err("missing end marker".into());
        }
        Ok(RobustnessProperty::new(Bounds::new(lower, upper), target))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nn::samples;

    #[test]
    fn holds_at_checks_classification() {
        let net = samples::xor_network();
        let p = RobustnessProperty::new(Bounds::new(vec![0.0, 0.0], vec![1.0, 1.0]), 1);
        assert!(p.holds_at(&net, &[1.0, 0.0]));
        assert!(!p.holds_at(&net, &[0.0, 0.0]));
    }

    #[test]
    fn text_roundtrip() {
        let p = RobustnessProperty::new(Bounds::new(vec![0.1 + 0.2, -1.0], vec![1.0, 1e9]), 7);
        let parsed = RobustnessProperty::from_text(&p.to_text()).unwrap();
        assert_eq!(parsed, p);
    }

    #[test]
    fn from_text_rejects_garbage() {
        assert!(RobustnessProperty::from_text("nonsense").is_err());
        assert!(RobustnessProperty::from_text(
            "charon-prop 1
target 0
dim 1
2 1
end"
        )
        .is_err());
        assert!(RobustnessProperty::from_text(
            "charon-prop 1
target 0
dim 2
0 1
end"
        )
        .is_err());
    }

    #[test]
    fn with_region_keeps_target() {
        let p = RobustnessProperty::new(Bounds::new(vec![0.0], vec![1.0]), 3);
        let q = p.with_region(Bounds::new(vec![0.0], vec![0.5]));
        assert_eq!(q.target(), 3);
        assert_eq!(q.region().upper(), &[0.5]);
    }
}
