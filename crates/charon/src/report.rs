//! Certified-accuracy reports: batch verification over a labelled set.
//!
//! The headline metric of the robustness literature is *certified
//! accuracy at ε*: the fraction of test points that are (a) classified
//! correctly and (b) provably stable under every L∞ perturbation of
//! radius ε. This module turns the verifier into that measurement tool.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use domains::Bounds;
use nn::Network;
use parking_lot::Mutex;

use crate::policy::{LinearPolicy, Policy};
use crate::verify::{Verdict, Verifier, VerifierConfig};
use crate::RobustnessProperty;

/// Outcome of one point in a certification run.
#[derive(Debug, Clone, PartialEq)]
pub enum PointOutcome {
    /// Misclassified even without perturbation; not counted as certified.
    Misclassified,
    /// Correct and provably stable on the ε-ball.
    Certified,
    /// Correct at the center but a perturbation flips the class.
    Vulnerable(Vec<f64>),
    /// The verifier ran out of budget.
    Undecided,
}

/// Aggregate result of [`certify`].
#[derive(Debug, Clone)]
pub struct CertificationReport {
    /// Per-point outcomes, in input order.
    pub outcomes: Vec<PointOutcome>,
    /// The ε used.
    pub epsilon: f64,
    /// Total verification wall-clock time.
    pub elapsed: Duration,
}

impl CertificationReport {
    fn count(&self, f: impl Fn(&PointOutcome) -> bool) -> usize {
        self.outcomes.iter().filter(|o| f(o)).count()
    }

    /// Points correct and certified robust.
    pub fn certified(&self) -> usize {
        self.count(|o| matches!(o, PointOutcome::Certified))
    }

    /// Points with a concrete adversarial example.
    pub fn vulnerable(&self) -> usize {
        self.count(|o| matches!(o, PointOutcome::Vulnerable(_)))
    }

    /// Points misclassified without any perturbation.
    pub fn misclassified(&self) -> usize {
        self.count(|o| matches!(o, PointOutcome::Misclassified))
    }

    /// Points the verifier could not decide within budget.
    pub fn undecided(&self) -> usize {
        self.count(|o| matches!(o, PointOutcome::Undecided))
    }

    /// Certified accuracy: certified points over all points.
    pub fn certified_accuracy(&self) -> f64 {
        if self.outcomes.is_empty() {
            return 0.0;
        }
        self.certified() as f64 / self.outcomes.len() as f64
    }

    /// Standard (unperturbed) accuracy implied by the outcomes.
    pub fn clean_accuracy(&self) -> f64 {
        if self.outcomes.is_empty() {
            return 0.0;
        }
        (self.outcomes.len() - self.misclassified()) as f64 / self.outcomes.len() as f64
    }
}

/// Configuration of a certification run.
#[derive(Clone)]
pub struct CertifyConfig {
    /// Per-point verifier configuration (timeout applies per point).
    pub verifier: VerifierConfig,
    /// Policy used by every verifier instance.
    pub policy: Arc<dyn Policy>,
    /// Worker threads (0 = all CPUs).
    pub threads: usize,
    /// Input clipping range for the ε-balls (e.g. `(0.0, 1.0)` for
    /// images), or `None` for unclipped balls.
    pub clip: Option<(f64, f64)>,
}

impl Default for CertifyConfig {
    fn default() -> Self {
        CertifyConfig {
            verifier: VerifierConfig {
                timeout: Duration::from_secs(5),
                ..VerifierConfig::default()
            },
            policy: Arc::new(LinearPolicy::default()),
            threads: 0,
            clip: Some((0.0, 1.0)),
        }
    }
}

/// Certifies ε-robustness of `net` on a labelled point set.
///
/// # Panics
///
/// Panics if `points` and `labels` lengths differ, any point dimension
/// mismatches the network, or `epsilon < 0`.
pub fn certify(
    net: &Network,
    points: &[Vec<f64>],
    labels: &[usize],
    epsilon: f64,
    config: &CertifyConfig,
) -> CertificationReport {
    assert_eq!(points.len(), labels.len(), "points/labels length mismatch");
    assert!(epsilon >= 0.0, "epsilon must be non-negative");
    let start = std::time::Instant::now();
    let threads = if config.threads == 0 {
        std::thread::available_parallelism().map_or(4, |n| n.get())
    } else {
        config.threads
    };

    let next = AtomicUsize::new(0);
    let outcomes: Mutex<Vec<Option<PointOutcome>>> = Mutex::new(vec![None; points.len()]);
    crossbeam::scope(|scope| {
        for _ in 0..threads.min(points.len().max(1)) {
            let next = &next;
            let outcomes = &outcomes;
            let config = config.clone();
            scope.spawn(move |_| loop {
                let idx = next.fetch_add(1, Ordering::Relaxed);
                if idx >= points.len() {
                    return;
                }
                let point = &points[idx];
                let label = labels[idx];
                let outcome = if net.classify(point) != label {
                    PointOutcome::Misclassified
                } else {
                    let region = Bounds::linf_ball(point, epsilon, config.clip);
                    let property = RobustnessProperty::new(region, label);
                    let verifier =
                        Verifier::new(Arc::clone(&config.policy), config.verifier.clone());
                    match verifier.verify(net, &property) {
                        Verdict::Verified => PointOutcome::Certified,
                        Verdict::Refuted(cex) => PointOutcome::Vulnerable(cex.point),
                        Verdict::ResourceLimit => PointOutcome::Undecided,
                    }
                };
                outcomes.lock()[idx] = Some(outcome);
            });
        }
    })
    .expect("certification worker panicked");

    CertificationReport {
        outcomes: outcomes
            .into_inner()
            .into_iter()
            .map(|o| o.expect("every point processed"))
            .collect(),
        epsilon,
        elapsed: start.elapsed(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nn::samples;

    fn xor_points() -> (Vec<Vec<f64>>, Vec<usize>) {
        (
            vec![
                vec![0.0, 0.0],
                vec![0.0, 1.0],
                vec![1.0, 0.0],
                vec![1.0, 1.0],
                vec![0.5, 0.5],
            ],
            vec![0, 1, 1, 0, 1],
        )
    }

    #[test]
    fn certifies_xor_at_small_epsilon() {
        let net = samples::xor_network();
        let (points, labels) = xor_points();
        let report = certify(&net, &points, &labels, 0.05, &CertifyConfig::default());
        assert_eq!(report.outcomes.len(), 5);
        assert_eq!(report.misclassified(), 0);
        assert_eq!(report.undecided(), 0);
        assert_eq!(report.certified(), 5, "outcomes: {:?}", report.outcomes);
        assert!((report.certified_accuracy() - 1.0).abs() < 1e-12);
        assert!((report.clean_accuracy() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn large_epsilon_produces_vulnerable_points() {
        let net = samples::xor_network();
        let (points, labels) = xor_points();
        // ε = 0.6 lets the center point reach differently-classified
        // corners.
        let report = certify(&net, &points, &labels, 0.6, &CertifyConfig::default());
        assert!(report.vulnerable() > 0, "outcomes: {:?}", report.outcomes);
        assert!(report.certified_accuracy() < 1.0);
        // Every vulnerable point carries a valid counterexample.
        for (point, outcome) in points.iter().zip(report.outcomes.iter()) {
            if let PointOutcome::Vulnerable(cex) = outcome {
                let region = Bounds::linf_ball(point, 0.6, Some((0.0, 1.0)));
                assert!(region.contains(cex));
            }
        }
    }

    #[test]
    fn misclassified_points_are_not_certified() {
        let net = samples::xor_network();
        let points = vec![vec![0.0, 0.0]];
        let labels = vec![1]; // wrong label on purpose
        let report = certify(&net, &points, &labels, 0.01, &CertifyConfig::default());
        assert_eq!(report.misclassified(), 1);
        assert_eq!(report.certified(), 0);
        assert_eq!(report.clean_accuracy(), 0.0);
    }

    #[test]
    fn epsilon_zero_degenerates_to_clean_accuracy() {
        let net = samples::xor_network();
        let (points, labels) = xor_points();
        let report = certify(&net, &points, &labels, 0.0, &CertifyConfig::default());
        assert_eq!(report.certified_accuracy(), report.clean_accuracy());
    }
}
