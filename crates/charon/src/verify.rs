//! The `Verify` procedure (Algorithm 1) with the δ-complete modification
//! (Eq. 4), hardened against engine faults.
//!
//! Fault tolerance is layered around the per-region work (see
//! `DESIGN.md`, "Failure model & degradation ladder"):
//!
//! 1. every region step runs under [`std::panic::catch_unwind`];
//! 2. a panicking or NaN-poisoned step is retried once on the coarsest
//!    (interval) domain, trading precision for survival;
//! 3. if the retry also fails, the run — not the process — dies with a
//!    structured [`VerifyError`];
//! 4. budget-limited runs emit a [`Checkpoint`] from which
//!    [`Verifier::resume`] continues without revisiting verified regions.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};

use attack::Minimizer;
use cert::{CertVerdict, Certificate, LeafRecord, SplitRecord};
use domains::{
    analyze_margin_checked_ws, AnalysisOutcome, Bounds, DomainChoice, Workspace,
};
use nn::Network;

use crate::checkpoint::Checkpoint;
use crate::error::{panic_message, BudgetKind, VerifyError};
use crate::faults::{FaultPlan, FaultSite};
use crate::policy::{DomainSelection, LinearPolicy, Policy, PolicyContext};
use crate::telemetry::{emit, Metrics, SharedSink, TraceEvent, TraceSink};
use crate::RobustnessProperty;

/// A δ-counterexample (Definition 5.3): a point whose score margin for the
/// target class is strictly below δ.
///
/// Acceptance uses the *directed upper bound* `F_up(point) < δ` (see
/// [`cert::objective_upper`]), the same check the independent certificate
/// auditor replays — so a witness the verifier reports can never be
/// rejected by a later `charon-cli audit`.
#[derive(Debug, Clone, PartialEq)]
pub struct Counterexample {
    /// The input point, always inside the property's region.
    pub point: Vec<f64>,
    /// The round-to-nearest objective value `F(point)`; strictly below δ,
    /// and `< 0` for a true counterexample.
    pub objective: f64,
}

impl Counterexample {
    /// Whether this is a true counterexample (misclassification), not
    /// merely a δ-near-violation. Exact ties (`F(x*) == 0`) do not count.
    pub fn is_true_violation(&self) -> bool {
        self.objective < 0.0
    }
}

/// Result of running the verifier on a property.
#[derive(Debug, Clone, PartialEq)]
pub enum Verdict {
    /// Every point in the region is classified as the target class.
    Verified,
    /// A δ-counterexample was found.
    Refuted(Counterexample),
    /// The time or region budget was exhausted before a decision.
    ResourceLimit,
}

impl Verdict {
    /// Whether the verdict is [`Verdict::Verified`].
    pub fn is_verified(&self) -> bool {
        matches!(self, Verdict::Verified)
    }

    /// Whether the verdict is [`Verdict::Refuted`].
    pub fn is_refuted(&self) -> bool {
        matches!(self, Verdict::Refuted(_))
    }
}

/// Configuration of the [`Verifier`].
#[derive(Debug, Clone)]
pub struct VerifierConfig {
    /// The δ of the δ-complete check `F(x*) <= δ` (Eq. 4).
    pub delta: f64,
    /// Wall-clock budget for one property.
    pub timeout: Duration,
    /// Maximum number of regions processed (safety cap, counts towards
    /// `ResourceLimit`).
    pub max_regions: usize,
    /// Random restarts for each counterexample search.
    pub restarts: usize,
    /// Base RNG seed (kept fixed for reproducibility).
    pub seed: u64,
    /// If false, skip gradient-based counterexample search entirely (the
    /// RQ2 ablation); refutation then only happens through the δ-check at
    /// region centers.
    pub counterexample_search: bool,
    /// If true, regions whose center margin already exceeds the network's
    /// Lipschitz bound times the region radius are verified without any
    /// abstract interpretation (a FastLin-style pre-filter; an extension
    /// beyond the paper, off by default).
    pub lipschitz_prefilter: bool,
    /// Cooperative cancellation flag: when set (by e.g. the portfolio
    /// runner), the verifier stops at the next region boundary with
    /// [`Verdict::ResourceLimit`].
    pub cancel: Option<std::sync::Arc<std::sync::atomic::AtomicBool>>,
    /// Deterministic fault-injection schedule, for chaos testing only.
    /// Production configurations leave this `None`.
    pub faults: Option<Arc<FaultPlan>>,
    /// If true, fresh (non-resumed) runs that reach a decisive verdict
    /// emit a proof [`Certificate`] in [`VerifyRun::certificate`]: the
    /// full split tree with per-leaf domains and margins for `Verified`,
    /// the validated witness for `Refuted`. Off by default.
    pub certificates: bool,
}

impl Default for VerifierConfig {
    fn default() -> Self {
        VerifierConfig {
            delta: 1e-9,
            timeout: Duration::from_secs(60),
            max_regions: 200_000,
            restarts: 2,
            seed: 0,
            counterexample_search: true,
            lipschitz_prefilter: false,
            cancel: None,
            faults: None,
            certificates: false,
        }
    }
}

/// Statistics collected during one verification run.
#[derive(Debug, Clone, Default)]
pub struct VerifyStats {
    /// Regions popped from the worklist.
    pub regions: usize,
    /// Regions discharged by abstract interpretation.
    pub verified_regions: usize,
    /// Abstract-interpretation calls.
    pub analyze_calls: usize,
    /// Gradient-based minimization runs.
    pub attacks: usize,
    /// Region splits performed.
    pub splits: usize,
    /// Deepest recursion depth reached.
    pub max_depth: usize,
    /// Total wall-clock time.
    pub elapsed: Duration,
    /// Uses of each abstract domain, keyed by `(base, disjuncts)` display
    /// string.
    pub domain_uses: Vec<(String, usize)>,
    /// Per-phase timing and latency metrics (always on; merged across
    /// workers at join in parallel runs).
    pub metrics: Metrics,
}

impl VerifyStats {
    /// Adds another worker's counters into this one (parallel runs).
    pub(crate) fn absorb(&mut self, other: &VerifyStats) {
        self.regions += other.regions;
        self.verified_regions += other.verified_regions;
        self.analyze_calls += other.analyze_calls;
        self.attacks += other.attacks;
        self.splits += other.splits;
        self.max_depth = self.max_depth.max(other.max_depth);
        self.metrics.merge(&other.metrics);
        for (key, count) in &other.domain_uses {
            if let Some(entry) = self.domain_uses.iter_mut().find(|(k, _)| k == key) {
                entry.1 += count;
            } else {
                self.domain_uses.push((key.clone(), *count));
            }
        }
    }

    fn record_domain(&mut self, choice: DomainSelection) {
        let key = choice.to_string();
        if let Some(entry) = self.domain_uses.iter_mut().find(|(k, _)| *k == key) {
            entry.1 += 1;
        } else {
            self.domain_uses.push((key, 1));
        }
    }
}

/// Outcome of a completed (possibly budget-limited) verification run.
///
/// `ResourceLimit` verdicts carry the budget class that was hit and a
/// [`Checkpoint`] of the unexplored worklist, so callers can report *why*
/// the run stopped and resume it later.
#[derive(Debug, Clone)]
pub struct VerifyRun {
    /// The verdict (all three classic variants are `Ok` outcomes).
    pub verdict: Verdict,
    /// Statistics for this run only (a resumed run restarts from zero).
    pub stats: VerifyStats,
    /// For [`Verdict::ResourceLimit`]: the undecided remainder of the
    /// worklist, suitable for [`Verifier::resume`].
    pub checkpoint: Option<Checkpoint>,
    /// For [`Verdict::ResourceLimit`]: which budget stopped the run.
    pub limit: Option<BudgetKind>,
    /// The proof certificate, when [`VerifierConfig::certificates`] is set
    /// and the run was fresh (not resumed) and decisive. `None` for
    /// resource-limited runs and whenever emission was not requested.
    pub certificate: Option<Certificate>,
}

impl VerifyRun {
    /// The run's per-phase engine metrics (merged across all workers for
    /// parallel runs). See [`crate::telemetry::RunReport`] for a rendered
    /// view.
    pub fn metrics(&self) -> &Metrics {
        &self.stats.metrics
    }
}

/// The Charon verifier: Algorithm 1 driven by a verification policy.
///
/// See the [crate-level documentation](crate) for an example.
#[derive(Clone)]
pub struct Verifier {
    policy: Arc<dyn Policy>,
    config: VerifierConfig,
    trace: SharedSink,
}

impl std::fmt::Debug for Verifier {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Verifier")
            .field("config", &self.config)
            .finish_non_exhaustive()
    }
}

impl Default for Verifier {
    fn default() -> Self {
        Verifier {
            policy: Arc::new(LinearPolicy::default()),
            config: VerifierConfig::default(),
            trace: crate::telemetry::null_sink(),
        }
    }
}

impl Verifier {
    /// Creates a verifier with an explicit policy and configuration.
    pub fn new(policy: Arc<dyn Policy>, config: VerifierConfig) -> Self {
        Verifier {
            policy,
            config,
            trace: crate::telemetry::null_sink(),
        }
    }

    /// Creates a verifier with the given policy and default configuration.
    pub fn with_policy(policy: Arc<dyn Policy>) -> Self {
        Verifier {
            policy,
            config: VerifierConfig::default(),
            trace: crate::telemetry::null_sink(),
        }
    }

    /// Attaches a trace sink; subsequent runs emit
    /// [`crate::telemetry::TraceEvent`]s into it. The default sink is
    /// [`crate::telemetry::NullSink`] (tracing off, zero overhead).
    #[must_use]
    pub fn with_trace(mut self, sink: SharedSink) -> Self {
        self.trace = sink;
        self
    }

    /// The verifier's configuration.
    pub fn config(&self) -> &VerifierConfig {
        &self.config
    }

    /// Mutable access to the configuration.
    pub fn config_mut(&mut self) -> &mut VerifierConfig {
        &mut self.config
    }

    /// Runs Algorithm 1 on a property.
    ///
    /// # Panics
    ///
    /// Panics if the property's region dimension differs from the
    /// network's input dimension, the target class is out of range, or the
    /// engine fails irrecoverably (see [`Verifier::try_verify_run`] for
    /// the non-panicking API).
    pub fn verify(&self, net: &Network, property: &RobustnessProperty) -> Verdict {
        self.verify_with_stats(net, property).0
    }

    /// Runs Algorithm 1, also returning run statistics.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`Verifier::verify`].
    pub fn verify_with_stats(
        &self,
        net: &Network,
        property: &RobustnessProperty,
    ) -> (Verdict, VerifyStats) {
        assert_eq!(
            property.region().dim(),
            net.input_dim(),
            "region dimension must match network input"
        );
        assert!(
            property.target() < net.output_dim(),
            "target class out of range"
        );
        match self.try_verify_run(net, property) {
            Ok(run) => (run.verdict, run.stats),
            Err(e) => panic!("verification engine failure: {e}"),
        }
    }

    /// Runs Algorithm 1, separating verdicts from engine failures.
    ///
    /// All three [`Verdict`] variants are `Ok` outcomes; budget-limited
    /// runs additionally carry a [`Checkpoint`] and the [`BudgetKind`]
    /// that was hit.
    ///
    /// # Errors
    ///
    /// Returns [`VerifyError::MalformedModel`] for structurally unusable
    /// inputs, [`VerifyError::WorkerPanic`] if a region step panicked and
    /// the interval retry panicked too, and
    /// [`VerifyError::NonFinitePoisoning`] if NaN poisoned both the
    /// selected domain and the interval fallback.
    pub fn try_verify_run(
        &self,
        net: &Network,
        property: &RobustnessProperty,
    ) -> Result<VerifyRun, VerifyError> {
        let mut ws = Workspace::new();
        self.try_verify_run_ws(net, property, &mut ws)
    }

    /// As [`Verifier::try_verify_run`], but propagating through a
    /// caller-owned [`Workspace`] scratch arena.
    ///
    /// Long-lived callers that verify many properties back to back (the
    /// verification server's worker pool, batch certification) keep one
    /// arena per worker thread so layer buffers recycle across *jobs*,
    /// not just across the regions of one run.
    ///
    /// # Errors
    ///
    /// As [`Verifier::try_verify_run`].
    pub fn try_verify_run_ws(
        &self,
        net: &Network,
        property: &RobustnessProperty,
        ws: &mut Workspace,
    ) -> Result<VerifyRun, VerifyError> {
        validate_problem(net, property.region(), property.target())?;
        let cert_root = self
            .config
            .certificates
            .then(|| property.region().clone());
        self.run_worklist(
            net,
            property.target(),
            vec![(property.region().clone(), 0)],
            cert_root,
            ws,
        )
    }

    /// Strict variant of [`Verifier::try_verify_run`]: budget exhaustion
    /// is folded into the error channel as [`VerifyError::Budget`], so
    /// `Ok` always means a decisive verdict.
    ///
    /// # Errors
    ///
    /// As [`Verifier::try_verify_run`], plus [`VerifyError::Budget`] for
    /// [`Verdict::ResourceLimit`] outcomes.
    pub fn try_verify(
        &self,
        net: &Network,
        property: &RobustnessProperty,
    ) -> Result<Verdict, VerifyError> {
        let run = self.try_verify_run(net, property)?;
        match run.limit {
            Some(kind) => Err(VerifyError::Budget { kind }),
            None => Ok(run.verdict),
        }
    }

    /// Continues an interrupted run from a [`Checkpoint`], processing only
    /// the regions the earlier run left undecided.
    ///
    /// Budgets (timeout, region cap) start afresh for the resumed run;
    /// `checkpoint.regions_done` is informational. With identical
    /// configuration and seeds the union of the interrupted run's regions
    /// and the resumed run's regions equals a fresh uninterrupted run.
    ///
    /// # Errors
    ///
    /// As [`Verifier::try_verify_run`].
    pub fn resume(&self, net: &Network, checkpoint: &Checkpoint) -> Result<VerifyRun, VerifyError> {
        let mut ws = Workspace::new();
        self.resume_ws(net, checkpoint, &mut ws)
    }

    /// As [`Verifier::resume`], but propagating through a caller-owned
    /// [`Workspace`] scratch arena (see [`Verifier::try_verify_run_ws`]).
    ///
    /// # Errors
    ///
    /// As [`Verifier::try_verify_run`].
    pub fn resume_ws(
        &self,
        net: &Network,
        checkpoint: &Checkpoint,
        ws: &mut Workspace,
    ) -> Result<VerifyRun, VerifyError> {
        if checkpoint.target >= net.output_dim() {
            return Err(VerifyError::MalformedModel {
                reason: format!(
                    "checkpoint target class {} out of range for {} outputs",
                    checkpoint.target,
                    net.output_dim()
                ),
            });
        }
        for (region, _) in &checkpoint.pending {
            validate_problem(net, region, checkpoint.target)?;
        }
        // A resumed run cannot account for the regions the interrupted run
        // already discharged, so it never emits a certificate.
        self.run_worklist(net, checkpoint.target, checkpoint.pending.clone(), None, ws)
    }

    /// The shared depth-first driver behind every entry point.
    ///
    /// `cert_root` is `Some(root region)` when this is a fresh single-root
    /// run that should emit a proof certificate; resumed runs pass `None`.
    fn run_worklist(
        &self,
        net: &Network,
        target: usize,
        mut stack: Vec<(Bounds, usize)>,
        cert_root: Option<Bounds>,
        ws: &mut Workspace,
    ) -> Result<VerifyRun, VerifyError> {
        let start = Instant::now();
        let deadline = start + self.config.timeout;
        let mut stats = VerifyStats::default();
        let mut recorder = cert_root.map(CertRecorder::new);
        let minimizer = Minimizer::new(self.config.seed).with_restarts(self.config.restarts);
        // The objective F is a difference of two M-Lipschitz outputs, so
        // it is 2M-Lipschitz; computed once per verification run.
        let objective_lipschitz = if self.config.lipschitz_prefilter {
            2.0 * net.lipschitz_bound()
        } else {
            f64::INFINITY
        };
        let env = StepEnv {
            net,
            target,
            minimizer: &minimizer,
            policy: self.policy.as_ref(),
            config: &self.config,
            deadline,
            objective_lipschitz,
            trace: self.trace.as_ref(),
        };
        // The caller-provided scratch arena spans the whole run (and, for
        // long-lived callers, many runs): per-region propagation reuses
        // layer buffers instead of reallocating them.
        let outcome = loop {
            let Some((region, depth)) = stack.pop() else {
                break Ok((Verdict::Verified, None, None));
            };
            let ordinal = match &self.config.faults {
                Some(plan) => plan.next_region(),
                None => stats.regions,
            };
            emit(env.trace, || TraceEvent::RegionPopped { ordinal, depth });
            let mut limit = if Instant::now() >= deadline {
                Some(BudgetKind::Timeout)
            } else if stats.regions >= self.config.max_regions {
                Some(BudgetKind::Regions)
            } else if self
                .config
                .cancel
                .as_ref()
                .is_some_and(|flag| flag.load(Ordering::Relaxed))
            {
                Some(BudgetKind::Cancelled)
            } else {
                None
            };
            if limit.is_none() {
                if let Some(plan) = &self.config.faults {
                    if plan.fire(FaultSite::Cancel, ordinal) {
                        emit(env.trace, || TraceEvent::FaultTriggered {
                            site: FaultSite::Cancel.as_str().to_string(),
                            ordinal,
                        });
                        if let Some(flag) = &self.config.cancel {
                            flag.store(true, Ordering::Relaxed);
                        }
                        limit = Some(BudgetKind::Cancelled);
                    }
                }
            }
            if let Some(kind) = limit {
                stack.push((region, depth));
                let ckpt = Checkpoint {
                    target,
                    pending: stack.clone(),
                    regions_done: stats.regions,
                };
                emit(env.trace, || TraceEvent::CheckpointSaved {
                    pending: ckpt.pending.len(),
                    regions_done: ckpt.regions_done,
                });
                break Ok((Verdict::ResourceLimit, Some(kind), Some(ckpt)));
            }
            stats.regions += 1;
            stats.max_depth = stats.max_depth.max(depth);

            match guarded_region_step(&env, &region, ordinal, &mut stats, ws) {
                Err(e) => break Err(e),
                Ok(RegionOutcome::Verified { domain, margin }) => {
                    stats.verified_regions += 1;
                    if let Some(rec) = &mut recorder {
                        rec.leaf(&region, domain, margin);
                    }
                }
                Ok(RegionOutcome::Refuted(cex)) => {
                    break Ok((Verdict::Refuted(cex), None, None));
                }
                Ok(RegionOutcome::Split {
                    left,
                    right,
                    dim,
                    at,
                }) => {
                    emit(env.trace, || TraceEvent::RegionPushed { depth: depth + 1 });
                    emit(env.trace, || TraceEvent::RegionPushed { depth: depth + 1 });
                    if let Some(rec) = &mut recorder {
                        rec.split(&region, dim, at);
                    }
                    stack.push((right, depth + 1));
                    stack.push((left, depth + 1));
                }
                Ok(RegionOutcome::Unsplittable) => {
                    stack.push((region, depth));
                    let ckpt = Checkpoint {
                        target,
                        pending: stack.clone(),
                        regions_done: stats.regions,
                    };
                    emit(env.trace, || TraceEvent::CheckpointSaved {
                        pending: ckpt.pending.len(),
                        regions_done: ckpt.regions_done,
                    });
                    break Ok((
                        Verdict::ResourceLimit,
                        Some(BudgetKind::NumericPrecision),
                        Some(ckpt),
                    ));
                }
            }
        };

        let (verdict, limit, checkpoint) = outcome?;
        stats.elapsed = start.elapsed();
        emit(self.trace.as_ref(), || TraceEvent::Verdict {
            verdict: verdict_name(&verdict).to_string(),
            regions: stats.regions,
            seconds: stats.elapsed.as_secs_f64(),
        });
        let certificate =
            recorder.and_then(|rec| rec.finish(net, target, self.config.delta, &verdict));
        Ok(VerifyRun {
            verdict,
            stats,
            checkpoint,
            limit,
            certificate,
        })
    }
}

/// Collects the flat leaf/split records of one run and assembles them
/// into a [`Certificate`] once the verdict is known.
///
/// Shared by the sequential driver (one recorder per run) and the
/// parallel driver (one per worker, merged under the shared lock like
/// [`VerifyStats`]).
#[derive(Debug, Default)]
pub(crate) struct CertRecorder {
    root: Option<Bounds>,
    leaves: Vec<LeafRecord>,
    splits: Vec<SplitRecord>,
}

impl CertRecorder {
    pub(crate) fn new(root: Bounds) -> Self {
        CertRecorder {
            root: Some(root),
            leaves: Vec::new(),
            splits: Vec::new(),
        }
    }

    pub(crate) fn leaf(&mut self, region: &Bounds, domain: String, margin: f64) {
        // The certificate format requires a finite non-negative margin;
        // the audit replay is authoritative, so clamping here never makes
        // an unsound claim pass (a bogus leaf still fails its replay).
        let margin = if margin.is_finite() { margin.max(0.0) } else { 0.0 };
        self.leaves.push(LeafRecord {
            region: region.clone(),
            domain,
            margin,
        });
    }

    pub(crate) fn split(&mut self, region: &Bounds, dim: usize, at: f64) {
        self.splits.push(SplitRecord {
            region: region.clone(),
            dim,
            at,
        });
    }

    /// Folds another worker's records into this one (parallel runs).
    pub(crate) fn absorb(&mut self, other: CertRecorder) {
        self.leaves.extend(other.leaves);
        self.splits.extend(other.splits);
    }

    /// Builds the certificate for a decisive verdict; `None` for
    /// resource-limited runs or if the records do not tile the root
    /// (best-effort emission, never a panic).
    pub(crate) fn finish(
        self,
        net: &Network,
        target: usize,
        delta: f64,
        verdict: &Verdict,
    ) -> Option<Certificate> {
        let root = self.root?;
        let net_hash = nn::serialize::content_hash(net);
        match verdict {
            Verdict::Verified => Certificate::assemble_verified(
                net_hash,
                target,
                delta,
                root,
                &self.leaves,
                &self.splits,
            ),
            Verdict::Refuted(cex) => Some(Certificate {
                net_hash,
                target,
                delta,
                root,
                verdict: CertVerdict::Refuted {
                    witness: cex.point.clone(),
                    objective: cex.objective,
                },
            }),
            Verdict::ResourceLimit => None,
        }
    }
}

/// Stable `snake_case` name of a verdict, as used in trace events.
pub(crate) fn verdict_name(verdict: &Verdict) -> &'static str {
    match verdict {
        Verdict::Verified => "verified",
        Verdict::Refuted(_) => "refuted",
        Verdict::ResourceLimit => "resource_limit",
    }
}

/// Checks that a (network, region, target) triple is structurally usable.
pub(crate) fn validate_problem(
    net: &Network,
    region: &Bounds,
    target: usize,
) -> Result<(), VerifyError> {
    if region.dim() != net.input_dim() {
        return Err(VerifyError::MalformedModel {
            reason: format!(
                "region dimension {} does not match network input dimension {}",
                region.dim(),
                net.input_dim()
            ),
        });
    }
    if target >= net.output_dim() {
        return Err(VerifyError::MalformedModel {
            reason: format!(
                "target class {target} out of range for {} outputs",
                net.output_dim()
            ),
        });
    }
    if !region.is_finite() {
        return Err(VerifyError::MalformedModel {
            reason: "property region has non-finite bounds".to_string(),
        });
    }
    if !net.params_finite() {
        return Err(VerifyError::MalformedModel {
            reason: "network has non-finite parameters".to_string(),
        });
    }
    Ok(())
}

/// Everything a region step needs, shared by the sequential and parallel
/// drivers.
pub(crate) struct StepEnv<'a> {
    pub net: &'a Network,
    pub target: usize,
    pub minimizer: &'a Minimizer,
    pub policy: &'a dyn Policy,
    pub config: &'a VerifierConfig,
    pub deadline: Instant,
    pub objective_lipschitz: f64,
    pub trace: &'a dyn TraceSink,
}

/// What processing one region concluded.
#[derive(Debug)]
pub(crate) enum RegionOutcome {
    /// The region was proved safe; carries the discharging domain's
    /// display name and its certified margin lower bound (`> 0`, except
    /// for complete-solver proofs which report `0.0` and lean on the
    /// auditor's replay), for certificate leaf records.
    Verified { domain: String, margin: f64 },
    /// A validated δ-counterexample was found inside the region.
    Refuted(Counterexample),
    /// Undecided; recurse on the two halves. `dim`/`at` describe the cut
    /// (for certificate split records).
    Split {
        left: Bounds,
        right: Bounds,
        dim: usize,
        at: f64,
    },
    /// Undecided and numerically unsplittable: the driver must report
    /// [`Verdict::ResourceLimit`] (never a fabricated refutation).
    Unsplittable,
}

/// Result of one *attempt* at a region step, before the degradation
/// ladder is applied.
enum StepResult {
    Outcome(RegionOutcome),
    /// NaN reached the named stage; the caller retries on intervals.
    Poisoned(&'static str),
}

/// Runs a region step under panic isolation with the degradation ladder:
/// a panicking or poisoned full-precision step is retried once on the
/// coarsest (interval) domain; only a second failure aborts the run.
///
/// `ws` is the caller's scratch arena (one per sequential run / parallel
/// worker). It only ever holds buffers whose contents are overwritten
/// before use, so unwinding mid-step cannot leave observable state behind
/// (`AssertUnwindSafe` is justified).
pub(crate) fn guarded_region_step(
    env: &StepEnv<'_>,
    region: &Bounds,
    ordinal: usize,
    stats: &mut VerifyStats,
    ws: &mut Workspace,
) -> Result<RegionOutcome, VerifyError> {
    let first = catch_unwind(AssertUnwindSafe(|| {
        region_step(env, region, ordinal, stats, ws)
    }));
    match first {
        Ok(StepResult::Outcome(outcome)) => Ok(outcome),
        Ok(StepResult::Poisoned(_)) | Err(_) => {
            let retry = catch_unwind(AssertUnwindSafe(|| {
                coarse_region_step(env, region, ordinal, stats, ws)
            }));
            match retry {
                Ok(StepResult::Outcome(outcome)) => Ok(outcome),
                Ok(StepResult::Poisoned(stage)) => Err(VerifyError::NonFinitePoisoning { stage }),
                Err(payload) => Err(VerifyError::WorkerPanic {
                    message: panic_message(payload.as_ref()),
                }),
            }
        }
    }
}

/// One full-precision region step (Algorithm 1 lines 2-12). May panic;
/// always called through [`guarded_region_step`].
fn region_step(
    env: &StepEnv<'_>,
    region: &Bounds,
    ordinal: usize,
    stats: &mut VerifyStats,
    ws: &mut Workspace,
) -> StepResult {
    let config = env.config;
    let net = env.net;
    let target = env.target;

    if let Some(plan) = &config.faults {
        if plan.fire(FaultSite::WorkerPanic, ordinal) {
            emit(env.trace, || TraceEvent::FaultTriggered {
                site: FaultSite::WorkerPanic.as_str().to_string(),
                ordinal,
            });
            panic!("injected fault: worker panic at region {ordinal}");
        }
        if plan.fire(FaultSite::Delay, ordinal) {
            emit(env.trace, || TraceEvent::FaultTriggered {
                site: FaultSite::Delay.as_str().to_string(),
                ordinal,
            });
            std::thread::sleep(Duration::from_millis(25));
        }
    }

    // Line 2: x* <- Minimize(I, F).
    let (mut x_star, mut objective) = if config.counterexample_search {
        stats.attacks += 1;
        let attack_start = Instant::now();
        let result = if env.trace.enabled() {
            // Traced path: per-phase events carry evals, best objective,
            // and wall time for each attack stage.
            let (result, phases) = env.minimizer.minimize_traced(net, region, target);
            for p in &phases.phases {
                env.trace.record(&TraceEvent::Attack {
                    ordinal,
                    phase: p.phase.to_string(),
                    evals: p.evals,
                    best_objective: p.best_objective,
                    seconds: p.seconds,
                });
            }
            result
        } else {
            env.minimizer.minimize(net, region, target)
        };
        stats
            .metrics
            .record_attack(attack_start.elapsed().as_secs_f64());
        (result.point, result.objective)
    } else {
        let center = region.center();
        let f = net.objective(&center, target);
        (center, f)
    };
    if let Some(plan) = &config.faults {
        if plan.fire(FaultSite::AttackNan, ordinal) {
            emit(env.trace, || TraceEvent::FaultTriggered {
                site: FaultSite::AttackNan.as_str().to_string(),
                ordinal,
            });
            // A poisoned gradient run claiming an impossible objective:
            // the validation below must reject it.
            x_star = vec![f64::NAN; region.dim()];
            objective = f64::NEG_INFINITY;
        }
    }

    // Line 3 (Eq. 4): F(x*) < δ refutes — but only counterexamples that
    // survive validation (finite, clamped in-region, margin re-checked
    // with a directed upper bound) are ever reported. The `<=` here is a
    // cheap gate only: validation is strict, so a tie cannot slip through.
    if objective <= config.delta {
        if let Some(cex) = validated_counterexample(net, region, target, &x_star, config.delta) {
            return StepResult::Outcome(RegionOutcome::Refuted(cex));
        }
    }

    // Numeric guard: a non-finite attack result must not reach the policy
    // featurization. Degrade to the region center; if even that evaluates
    // non-finite, the network itself is emitting NaN on this region.
    if !objective.is_finite() || x_star.iter().any(|v| !v.is_finite()) {
        let center = region.center();
        let f = net.objective(&center, target);
        if !f.is_finite() {
            return StepResult::Poisoned("attack");
        }
        x_star = center;
        objective = f;
        if objective <= config.delta {
            if let Some(cex) = validated_counterexample(net, region, target, &x_star, config.delta)
            {
                return StepResult::Outcome(RegionOutcome::Refuted(cex));
            }
        }
    }

    // Lipschitz pre-filter: if the center margin dominates the worst-case
    // change across the region, the region is safe.
    if config.lipschitz_prefilter {
        let center = region.center();
        let center_margin = net.objective(&center, target);
        let slack = center_margin - env.objective_lipschitz * 0.5 * region.diameter();
        if slack > 0.0 {
            return StepResult::Outcome(RegionOutcome::Verified {
                domain: "lipschitz".to_string(),
                margin: slack,
            });
        }
    }

    // Degenerate regions are decided exactly by the interval domain (the
    // box is a point along every zero-width axis).
    if region.widths().iter().all(|w| *w <= f64::EPSILON) {
        stats.analyze_calls += 1;
        return match timed_interval_analysis(env, region, ordinal, stats, ws) {
            (AnalysisOutcome::Proved, margin) => StepResult::Outcome(RegionOutcome::Verified {
                domain: DomainChoice::interval().to_string(),
                margin,
            }),
            (AnalysisOutcome::Poisoned, _) => StepResult::Poisoned("transformer"),
            (AnalysisOutcome::Inconclusive, _) => {
                // Exact analysis failed on a point region: its center is a
                // true counterexample (modulo validation).
                match validated_counterexample(net, region, target, &region.center(), config.delta)
                {
                    Some(cex) => StepResult::Outcome(RegionOutcome::Refuted(cex)),
                    None => StepResult::Outcome(RegionOutcome::Unsplittable),
                }
            }
        };
    }

    // Lines 5-7: pick a domain and try to prove the region.
    let ctx = PolicyContext {
        net,
        region,
        target,
        x_star: &x_star,
        objective,
    };
    let policy_start = Instant::now();
    let choice = env.policy.choose_domain(&ctx);
    stats
        .metrics
        .record_policy(policy_start.elapsed().as_secs_f64());
    stats.analyze_calls += 1;
    stats.record_domain(choice);
    let forced_nan = config
        .faults
        .as_ref()
        .is_some_and(|plan| plan.fire(FaultSite::TransformerNan, ordinal));
    if forced_nan {
        emit(env.trace, || TraceEvent::FaultTriggered {
            site: FaultSite::TransformerNan.as_str().to_string(),
            ordinal,
        });
    }
    let propagation_start = Instant::now();
    let mut layer_seconds = Vec::new();
    let selection = if forced_nan {
        SelectionResult::Poisoned
    } else {
        let layer_times = env.trace.enabled().then_some(&mut layer_seconds);
        run_selection(net, region, target, choice, env.deadline, ws, layer_times)
    };
    let propagation_seconds = propagation_start.elapsed().as_secs_f64();
    stats.metrics.record_propagation(
        propagation_seconds,
        matches!(selection, SelectionResult::Verified { .. }),
    );
    emit(env.trace, || TraceEvent::Propagation {
        ordinal,
        domain: choice.to_string(),
        seconds: propagation_seconds,
        outcome: selection_name(&selection).to_string(),
        layer_seconds: layer_seconds.clone(),
    });
    match selection {
        SelectionResult::Verified { margin } => {
            return StepResult::Outcome(RegionOutcome::Verified {
                domain: choice.to_string(),
                margin,
            })
        }
        SelectionResult::Violated(point) => {
            if let Some(cex) = validated_counterexample(net, region, target, &point, config.delta) {
                return StepResult::Outcome(RegionOutcome::Refuted(cex));
            }
            // The solver's witness did not validate; treat as
            // inconclusive and fall through to the split.
        }
        SelectionResult::Poisoned => {
            // First rung of the degradation ladder: retry this region on
            // the interval domain before splitting or giving up.
            stats.analyze_calls += 1;
            match timed_interval_analysis(env, region, ordinal, stats, ws) {
                (AnalysisOutcome::Proved, margin) => {
                    return StepResult::Outcome(RegionOutcome::Verified {
                        domain: DomainChoice::interval().to_string(),
                        margin,
                    })
                }
                (AnalysisOutcome::Poisoned, _) => return StepResult::Poisoned("transformer"),
                (AnalysisOutcome::Inconclusive, _) => {}
            }
        }
        SelectionResult::Inconclusive => {}
    }

    // Lines 8-12: split and recurse on both halves.
    let policy_start = Instant::now();
    let plan = env.policy.choose_split(&ctx);
    stats
        .metrics
        .record_policy(policy_start.elapsed().as_secs_f64());
    let at = crate::policy::clamp_split(region, plan.dim, plan.at);
    let (dim, at) = if at > region.lower()[plan.dim] && at < region.upper()[plan.dim] {
        (plan.dim, at)
    } else {
        // Zero-width split dimension: fall back to the widest dimension.
        let dim = region.longest_dim();
        (dim, 0.5 * (region.lower()[dim] + region.upper()[dim]))
    };
    if at <= region.lower()[dim] || at >= region.upper()[dim] {
        return StepResult::Outcome(RegionOutcome::Unsplittable);
    }
    stats.splits += 1;
    emit(env.trace, || TraceEvent::Bisection {
        ordinal,
        dim,
        at,
        objective,
    });
    let (a, b) = region.split_at(dim, at);
    StepResult::Outcome(RegionOutcome::Split {
        left: a,
        right: b,
        dim,
        at,
    })
}

/// Interval analysis with metrics timing and a `Propagation` trace event
/// — the shared instrumentation for the degenerate-region path and the
/// degradation ladder's interval retry.
fn timed_interval_analysis(
    env: &StepEnv<'_>,
    region: &Bounds,
    ordinal: usize,
    stats: &mut VerifyStats,
    ws: &mut Workspace,
) -> (AnalysisOutcome, f64) {
    let start = Instant::now();
    let (outcome, margin) = analyze_margin_checked_ws(
        env.net,
        region,
        env.target,
        DomainChoice::interval(),
        ws,
    );
    let seconds = start.elapsed().as_secs_f64();
    stats
        .metrics
        .record_propagation(seconds, matches!(outcome, AnalysisOutcome::Proved));
    emit(env.trace, || TraceEvent::Propagation {
        ordinal,
        domain: DomainChoice::interval().to_string(),
        seconds,
        outcome: outcome_name(outcome).to_string(),
        layer_seconds: Vec::new(),
    });
    (outcome, margin)
}

/// Stable name of an [`AnalysisOutcome`], as used in trace events.
fn outcome_name(outcome: AnalysisOutcome) -> &'static str {
    match outcome {
        AnalysisOutcome::Proved => "proved",
        AnalysisOutcome::Inconclusive => "inconclusive",
        AnalysisOutcome::Poisoned => "poisoned",
    }
}

/// Stable name of a [`SelectionResult`], as used in trace events.
fn selection_name(selection: &SelectionResult) -> &'static str {
    match selection {
        SelectionResult::Verified { .. } => "proved",
        SelectionResult::Violated(_) => "violated",
        SelectionResult::Inconclusive => "inconclusive",
        SelectionResult::Poisoned => "poisoned",
    }
}

/// The coarse retry: interval analysis plus a midpoint split, with no
/// attack, no policy, and no faults. Used after a panic or poisoning.
fn coarse_region_step(
    env: &StepEnv<'_>,
    region: &Bounds,
    ordinal: usize,
    stats: &mut VerifyStats,
    ws: &mut Workspace,
) -> StepResult {
    stats.analyze_calls += 1;
    match timed_interval_analysis(env, region, ordinal, stats, ws) {
        (AnalysisOutcome::Proved, margin) => StepResult::Outcome(RegionOutcome::Verified {
            domain: DomainChoice::interval().to_string(),
            margin,
        }),
        (AnalysisOutcome::Poisoned, _) => StepResult::Poisoned("transformer"),
        (AnalysisOutcome::Inconclusive, _) => {
            // Cheap δ-check at the center before splitting.
            if let Some(cex) = validated_counterexample(
                env.net,
                region,
                env.target,
                &region.center(),
                env.config.delta,
            ) {
                return StepResult::Outcome(RegionOutcome::Refuted(cex));
            }
            let dim = region.longest_dim();
            let mid = 0.5 * (region.lower()[dim] + region.upper()[dim]);
            if mid > region.lower()[dim] && mid < region.upper()[dim] {
                stats.splits += 1;
                let (a, b) = region.split_at(dim, mid);
                StepResult::Outcome(RegionOutcome::Split {
                    left: a,
                    right: b,
                    dim,
                    at: mid,
                })
            } else {
                StepResult::Outcome(RegionOutcome::Unsplittable)
            }
        }
    }
}

/// Validates a claimed counterexample before it is reported: the point
/// must be finite, is clamped into the region, and the objective is
/// recomputed from scratch with a *directed upper bound* that must land
/// strictly below δ — the exact check the certificate auditor replays.
///
/// Strictness matters: `F_up(x*) == δ` ties and non-finite objectives are
/// rejected, so the verifier never reports a witness that
/// `charon-cli audit` (which applies the same `F_up(x*) < δ` rule with
/// outward rounding) would later refuse.
///
/// This is the sole path by which a [`Counterexample`] is constructed, so
/// a poisoned attack or solver can never fabricate a refutation.
pub(crate) fn validated_counterexample(
    net: &Network,
    region: &Bounds,
    target: usize,
    candidate: &[f64],
    delta: f64,
) -> Option<Counterexample> {
    if candidate.len() != region.dim() || candidate.iter().any(|v| !v.is_finite()) {
        return None;
    }
    let mut point = candidate.to_vec();
    region.clamp(&mut point);
    let objective = net.objective(&point, target);
    // NaN fails both comparisons, so a poisoned evaluation cannot refute.
    // `objective_upper` dominates the round-to-nearest objective, so the
    // reported `objective` also satisfies `objective < delta`.
    if objective.is_finite() && cert::objective_upper(net, &point, target) < delta {
        Some(Counterexample { point, objective })
    } else {
        None
    }
}

/// Outcome of running one policy-selected analysis on a region.
pub(crate) enum SelectionResult {
    /// The region was proved safe; `margin` is the analysis's certified
    /// lower bound on the objective (`0.0` when the proving method does
    /// not expose one, e.g. the complete solver).
    Verified { margin: f64 },
    /// The (complete) analysis produced a concrete counterexample.
    Violated(Vec<f64>),
    /// The analysis could not decide the region.
    Inconclusive,
    /// NaN poisoned the analysis; the result is meaningless.
    Poisoned,
}

/// Dispatches a [`DomainSelection`] on a region. The deadline bounds the
/// complete solver; the abstract domains run to completion (they are fast
/// relative to a region budget).
///
/// When `layer_times` is `Some`, abstract-domain propagations record
/// per-layer wall-clock seconds into it (tracing only; the untimed path
/// is byte-for-byte the PR 2 hot path).
pub(crate) fn run_selection(
    net: &Network,
    region: &Bounds,
    target: usize,
    choice: DomainSelection,
    deadline: Instant,
    ws: &mut Workspace,
    layer_times: Option<&mut Vec<f64>>,
) -> SelectionResult {
    let from_outcome = |(outcome, margin): (AnalysisOutcome, f64)| match outcome {
        AnalysisOutcome::Proved => SelectionResult::Verified { margin },
        AnalysisOutcome::Inconclusive => SelectionResult::Inconclusive,
        AnalysisOutcome::Poisoned => SelectionResult::Poisoned,
    };
    match choice {
        DomainSelection::Abstract(c) => match layer_times {
            Some(times) => {
                // The traced path does not expose the margin; leaf records
                // from traced runs lean on the auditor's replay.
                let outcome = domains::analyze_checked_traced(net, region, target, c, ws, times);
                from_outcome((outcome, 0.0))
            }
            None => from_outcome(analyze_margin_checked_ws(net, region, target, c, ws)),
        },
        DomainSelection::DeepPoly => {
            // DeepPoly's margin comparison is NaN-safe (NaN reads as
            // "not verified"), so a poisoned run is merely inconclusive.
            let margin =
                domains::deeppoly::DeepPoly::analyze(net, region).margin_lower_bound(target);
            if margin > 0.0 {
                SelectionResult::Verified { margin }
            } else {
                SelectionResult::Inconclusive
            }
        }
        DomainSelection::RefinedZonotope { lp_per_layer } => {
            if !complete::supports(net) {
                // Architectures the LP cannot encode use the plain domain.
                return from_outcome(analyze_margin_checked_ws(
                    net,
                    region,
                    target,
                    DomainChoice::zonotope(),
                    ws,
                ));
            }
            let Some(refined) =
                complete::refine::refined_relu_bounds(net, region, deadline, lp_per_layer)
            else {
                return SelectionResult::Inconclusive;
            };
            // Propagate a zonotope, meeting each ReLU input with the
            // LP-refined box (sound: both over-approximate the truth).
            // Superseded elements are recycled into the worker workspace.
            use domains::AbstractElement as _;
            let mut element = domains::Zonotope::from_bounds(region);
            let mut relu_idx = 0;
            for layer in net.layers() {
                let next = match layer {
                    nn::Layer::Affine(a) => element.affine_ws(a, ws),
                    nn::Layer::Relu => {
                        if let Some(met) = element.meet_box(&refined.relu_inputs[relu_idx]) {
                            let old = std::mem::replace(&mut element, met);
                            old.recycle(ws);
                        }
                        relu_idx += 1;
                        element.relu()
                    }
                    nn::Layer::MaxPool(p) => element.max_pool(p),
                };
                let old = std::mem::replace(&mut element, next);
                old.recycle(ws);
            }
            let margin = element.margin_lower_bound(target);
            let poisoned = element.is_poisoned();
            element.recycle(ws);
            if poisoned || margin.is_nan() {
                SelectionResult::Poisoned
            } else if margin > 0.0 {
                SelectionResult::Verified { margin }
            } else {
                SelectionResult::Inconclusive
            }
        }
        DomainSelection::Solver { node_budget } => {
            if !complete::supports(net) {
                // Fall back to the strongest classic domain for
                // architectures the solver cannot encode.
                return from_outcome(analyze_margin_checked_ws(
                    net,
                    region,
                    target,
                    DomainChoice::zonotope(),
                    ws,
                ));
            }
            let solver = complete::CompleteSolver::with_node_budget(node_budget);
            match solver.decide(net, region, target, deadline) {
                complete::Decision::Proved => SelectionResult::Verified { margin: 0.0 },
                complete::Decision::Violated(x) => SelectionResult::Violated(x),
                complete::Decision::Budget => SelectionResult::Inconclusive,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::FixedPolicy;
    use domains::DomainChoice;
    use nn::samples;

    fn property(lo: Vec<f64>, hi: Vec<f64>, target: usize) -> RobustnessProperty {
        RobustnessProperty::new(Bounds::new(lo, hi), target)
    }

    #[test]
    fn verifies_xor_example_3_1() {
        let net = samples::xor_network();
        let prop = property(vec![0.3, 0.3], vec![0.7, 0.7], 1);
        let (verdict, stats) = Verifier::default().verify_with_stats(&net, &prop);
        assert_eq!(verdict, Verdict::Verified);
        assert!(stats.regions >= 1);
        assert!(stats.analyze_calls >= 1);
    }

    #[test]
    fn refutes_xor_on_unit_square() {
        let net = samples::xor_network();
        let prop = property(vec![0.0, 0.0], vec![1.0, 1.0], 1);
        match Verifier::default().verify(&net, &prop) {
            Verdict::Refuted(cex) => {
                assert!(prop.region().contains(&cex.point));
                assert!(cex.objective <= 1e-9);
                assert!(cex.is_true_violation());
                assert_ne!(net.classify(&cex.point), 1);
            }
            other => panic!("expected refutation, got {other:?}"),
        }
    }

    #[test]
    fn verifies_example_2_2() {
        let net = samples::example_2_2_network();
        let prop = property(vec![-1.0], vec![1.0], 1);
        assert_eq!(Verifier::default().verify(&net, &prop), Verdict::Verified);
    }

    #[test]
    fn refutes_example_2_2_extended() {
        let net = samples::example_2_2_network();
        let prop = property(vec![-1.0], vec![2.0], 1);
        assert!(Verifier::default().verify(&net, &prop).is_refuted());
    }

    #[test]
    fn verifies_example_2_3_needing_disjunction_or_split() {
        let net = samples::example_2_3_network();
        let prop = property(vec![0.0, 0.0], vec![1.0, 1.0], 1);
        assert_eq!(Verifier::default().verify(&net, &prop), Verdict::Verified);
    }

    #[test]
    fn interval_only_policy_needs_more_splits_than_zonotope() {
        let net = samples::xor_network();
        let prop = property(vec![0.3, 0.3], vec![0.7, 0.7], 1);
        let zono = Verifier::with_policy(Arc::new(FixedPolicy::new(DomainChoice::zonotope())));
        let intv = Verifier::with_policy(Arc::new(FixedPolicy::new(DomainChoice::interval())));
        let (vz, sz) = zono.verify_with_stats(&net, &prop);
        let (vi, si) = intv.verify_with_stats(&net, &prop);
        assert_eq!(vz, Verdict::Verified);
        assert_eq!(vi, Verdict::Verified);
        assert!(
            si.splits >= sz.splits,
            "intervals ({}) should need at least as many splits as zonotopes ({})",
            si.splits,
            sz.splits
        );
    }

    #[test]
    fn ablation_without_counterexample_search_still_sound() {
        let net = samples::xor_network();
        let prop = property(vec![0.0, 0.0], vec![1.0, 1.0], 1);
        let mut verifier = Verifier::default();
        verifier.config_mut().counterexample_search = false;
        // Must still refute (via δ-checks at region centers), though it
        // may take more work.
        let verdict = verifier.verify(&net, &prop);
        match verdict {
            Verdict::Refuted(cex) => assert!(cex.objective <= 1e-9),
            other => panic!("expected refutation, got {other:?}"),
        }
    }

    #[test]
    fn timeout_reports_resource_limit() {
        let net = nn::train::random_mlp(6, &[24, 24, 24], 4, 3);
        let prop = property(vec![-1.0; 6], vec![1.0; 6], 0);
        let mut verifier = Verifier::default();
        verifier.config_mut().timeout = Duration::from_millis(1);
        // Either it instantly refutes (possible: random net may
        // misclassify the center) or it hits the budget; both are
        // acceptable, but Verified in 1 ms on [-1,1]^6 would be suspect.
        let verdict = verifier.verify(&net, &prop);
        assert!(
            !verdict.is_verified(),
            "unexpected instant verification: {verdict:?}"
        );
    }

    #[test]
    fn stats_track_domain_usage() {
        let net = samples::xor_network();
        let prop = property(vec![0.3, 0.3], vec![0.7, 0.7], 1);
        let (_, stats) = Verifier::default().verify_with_stats(&net, &prop);
        let total: usize = stats.domain_uses.iter().map(|(_, c)| c).sum();
        assert_eq!(total, stats.analyze_calls);
    }

    #[test]
    fn solver_domain_policy_verifies_and_refutes() {
        /// A policy that always asks for the complete solver.
        struct SolverPolicy;
        impl crate::policy::Policy for SolverPolicy {
            fn choose_domain(&self, _ctx: &crate::policy::PolicyContext<'_>) -> DomainSelection {
                DomainSelection::Solver { node_budget: 1000 }
            }
            fn choose_split(
                &self,
                ctx: &crate::policy::PolicyContext<'_>,
            ) -> crate::policy::SplitPlan {
                let dim = ctx.region.longest_dim();
                crate::policy::SplitPlan {
                    dim,
                    at: 0.5 * (ctx.region.lower()[dim] + ctx.region.upper()[dim]),
                }
            }
        }
        let verifier = Verifier::with_policy(Arc::new(SolverPolicy));
        let net = samples::xor_network();
        let robust = property(vec![0.3, 0.3], vec![0.7, 0.7], 1);
        assert_eq!(verifier.verify(&net, &robust), Verdict::Verified);
        let broken = property(vec![0.0, 0.0], vec![1.0, 1.0], 1);
        assert!(verifier.verify(&net, &broken).is_refuted());
    }

    #[test]
    fn refined_zonotope_policy_verifies() {
        struct RefinedPolicy;
        impl crate::policy::Policy for RefinedPolicy {
            fn choose_domain(&self, _ctx: &crate::policy::PolicyContext<'_>) -> DomainSelection {
                DomainSelection::RefinedZonotope { lp_per_layer: 8 }
            }
            fn choose_split(
                &self,
                ctx: &crate::policy::PolicyContext<'_>,
            ) -> crate::policy::SplitPlan {
                let dim = ctx.region.longest_dim();
                crate::policy::SplitPlan {
                    dim,
                    at: 0.5 * (ctx.region.lower()[dim] + ctx.region.upper()[dim]),
                }
            }
        }
        let verifier = Verifier::with_policy(Arc::new(RefinedPolicy));
        let net = samples::example_2_3_network();
        let prop = property(vec![0.0, 0.0], vec![1.0, 1.0], 1);
        assert_eq!(verifier.verify(&net, &prop), Verdict::Verified);
        // Refutation still flows through the δ-check.
        let net2 = samples::example_2_2_network();
        let broken = property(vec![-1.0], vec![2.0], 1);
        assert!(verifier.verify(&net2, &broken).is_refuted());
    }

    #[test]
    fn deeppoly_policy_verifies() {
        struct DeepPolyPolicy;
        impl crate::policy::Policy for DeepPolyPolicy {
            fn choose_domain(&self, _ctx: &crate::policy::PolicyContext<'_>) -> DomainSelection {
                DomainSelection::DeepPoly
            }
            fn choose_split(
                &self,
                ctx: &crate::policy::PolicyContext<'_>,
            ) -> crate::policy::SplitPlan {
                let dim = ctx.region.longest_dim();
                crate::policy::SplitPlan {
                    dim,
                    at: 0.5 * (ctx.region.lower()[dim] + ctx.region.upper()[dim]),
                }
            }
        }
        let verifier = Verifier::with_policy(Arc::new(DeepPolyPolicy));
        let net = samples::example_2_3_network();
        let prop = property(vec![0.0, 0.0], vec![1.0, 1.0], 1);
        assert_eq!(verifier.verify(&net, &prop), Verdict::Verified);
    }

    #[test]
    fn lipschitz_prefilter_sound_and_helps_on_tiny_regions() {
        let net = samples::xor_network();
        // A tiny region far from any decision boundary.
        let prop = property(vec![0.49, 0.49], vec![0.51, 0.51], 1);
        let mut with = Verifier::default();
        with.config_mut().lipschitz_prefilter = true;
        let (v1, s1) = with.verify_with_stats(&net, &prop);
        assert_eq!(v1, Verdict::Verified);
        // The prefilter discharges the region without any analyze call.
        assert_eq!(s1.analyze_calls, 0, "stats: {s1:?}");

        // Still sound on falsifiable properties.
        let broken = property(vec![0.0, 0.0], vec![1.0, 1.0], 1);
        assert!(with.verify(&net, &broken).is_refuted());
    }

    #[test]
    fn delta_counterexample_on_near_violation() {
        // Build a property whose margin dips to exactly ~0.1 somewhere and
        // use δ = 0.2: the verifier must refute with a δ-counterexample
        // that is not a true violation.
        let net = samples::xor_network();
        // On [0.3, 0.7]^2 the margin minimum is 0.2 (at the corners).
        let prop = property(vec![0.3, 0.3], vec![0.7, 0.7], 1);
        let mut verifier = Verifier::default();
        verifier.config_mut().delta = 0.25;
        match verifier.verify(&net, &prop) {
            Verdict::Refuted(cex) => {
                assert!(cex.objective <= 0.25);
                assert!(!cex.is_true_violation());
            }
            other => panic!("expected δ-refutation, got {other:?}"),
        }
    }

    #[test]
    fn try_verify_folds_budget_into_error() {
        let net = nn::train::random_mlp(6, &[24, 24, 24], 4, 3);
        let prop = property(vec![-1.0; 6], vec![1.0; 6], 0);
        let mut verifier = Verifier::default();
        verifier.config_mut().timeout = Duration::ZERO;
        match verifier.try_verify(&net, &prop) {
            Err(VerifyError::Budget {
                kind: BudgetKind::Timeout,
            }) => {}
            other => panic!("expected timeout budget error, got {other:?}"),
        }
    }

    #[test]
    fn try_verify_run_rejects_malformed_problems() {
        let net = samples::xor_network();
        let verifier = Verifier::default();
        // Dimension mismatch.
        let bad_dim = property(vec![0.0], vec![1.0], 1);
        assert!(matches!(
            verifier.try_verify_run(&net, &bad_dim),
            Err(VerifyError::MalformedModel { .. })
        ));
        // Target class out of range.
        let bad_target = property(vec![0.0, 0.0], vec![1.0, 1.0], 9);
        assert!(matches!(
            verifier.try_verify_run(&net, &bad_target),
            Err(VerifyError::MalformedModel { .. })
        ));
        // Non-finite region.
        let bad_region = property(vec![0.0, 0.0], vec![f64::INFINITY, 1.0], 1);
        assert!(matches!(
            verifier.try_verify_run(&net, &bad_region),
            Err(VerifyError::MalformedModel { .. })
        ));
    }

    #[test]
    fn try_verify_run_rejects_nan_weights() {
        let layers = vec![
            nn::Layer::Affine(nn::AffineLayer::new(
                tensor::Matrix::from_rows(&[&[f64::NAN, 1.0], &[1.0, 0.0]]),
                vec![0.0, 0.0],
            )),
        ];
        let net = Network::new(2, layers).unwrap();
        let prop = property(vec![0.0, 0.0], vec![1.0, 1.0], 1);
        match Verifier::default().try_verify_run(&net, &prop) {
            Err(VerifyError::MalformedModel { reason }) => {
                assert!(reason.contains("non-finite"), "reason: {reason}");
            }
            other => panic!("expected malformed model, got {other:?}"),
        }
    }

    #[test]
    fn budget_limited_run_carries_checkpoint_and_resume_finishes() {
        // Interval-only policy so the property needs several splits.
        let net = samples::xor_network();
        let prop = property(vec![0.3, 0.3], vec![0.7, 0.7], 1);
        let fresh =
            Verifier::with_policy(Arc::new(FixedPolicy::new(DomainChoice::interval())));
        let full = fresh.try_verify_run(&net, &prop).unwrap();
        assert_eq!(full.verdict, Verdict::Verified);
        assert!(
            full.stats.regions > 2,
            "need a multi-region run for this test, got {}",
            full.stats.regions
        );

        let mut limited = fresh.clone();
        limited.config_mut().max_regions = 2;
        let first = limited.try_verify_run(&net, &prop).unwrap();
        assert_eq!(first.verdict, Verdict::ResourceLimit);
        assert_eq!(first.limit, Some(BudgetKind::Regions));
        let ckpt = first.checkpoint.expect("budget-limited run checkpoints");
        assert!(!ckpt.pending.is_empty());
        assert_eq!(first.stats.regions, 2);

        // Resume with the original budget: reaches the fresh verdict and
        // revisits no already-verified region (exact region-count split).
        let resumed = fresh.resume(&net, &ckpt).unwrap();
        assert_eq!(resumed.verdict, Verdict::Verified);
        assert_eq!(
            first.stats.regions + resumed.stats.regions,
            full.stats.regions,
            "resume must not revisit already-verified regions"
        );
    }

    #[test]
    fn checkpoint_survives_text_roundtrip_mid_run() {
        let net = samples::xor_network();
        let prop = property(vec![0.3, 0.3], vec![0.7, 0.7], 1);
        let verifier =
            Verifier::with_policy(Arc::new(FixedPolicy::new(DomainChoice::interval())));
        let mut limited = verifier.clone();
        limited.config_mut().max_regions = 1;
        let first = limited.try_verify_run(&net, &prop).unwrap();
        let ckpt = first.checkpoint.expect("checkpoint");
        let reloaded = Checkpoint::from_text(&ckpt.to_text()).unwrap();
        assert_eq!(reloaded, ckpt);
        let resumed = verifier.resume(&net, &reloaded).unwrap();
        assert_eq!(resumed.verdict, Verdict::Verified);
    }

    #[test]
    fn strict_witness_semantics_reject_ties_and_non_finite_objectives() {
        // A network whose objective is identically zero: every point is an
        // exact tie `F(x*) == 0 == δ`, and none of them may validate — the
        // auditor's strict `F_up(x*) < δ` check could never confirm one.
        let tie = Network::new(
            1,
            vec![nn::Layer::Affine(nn::AffineLayer::new(
                tensor::Matrix::from_rows(&[&[1.0], &[1.0]]),
                vec![0.0, 0.0],
            ))],
        )
        .unwrap();
        let region = Bounds::new(vec![-1.0], vec![1.0]);
        assert!(validated_counterexample(&tie, &region, 0, &[0.5], 0.0).is_none());
        assert!(validated_counterexample(&tie, &region, 0, &[0.0], 0.0).is_none());

        // An objective that overflows to -inf "refutes" numerically but
        // must be rejected: non-finite objectives are never witnesses.
        let overflow = Network::new(
            1,
            vec![nn::Layer::Affine(nn::AffineLayer::new(
                tensor::Matrix::from_rows(&[&[0.0], &[1e308]]),
                vec![0.0, 0.0],
            ))],
        )
        .unwrap();
        let wide = Bounds::new(vec![0.0], vec![10.0]);
        assert!(!overflow.objective(&[10.0], 0).is_finite());
        assert!(validated_counterexample(&overflow, &wide, 0, &[10.0], 1e-9).is_none());
    }

    #[test]
    fn emitted_certificates_always_satisfy_the_independent_auditor() {
        let net = samples::xor_network();
        let mut verifier = Verifier::default();
        verifier.config_mut().certificates = true;

        // Verified property: the split tree replays cleanly under the
        // auditor's directed-rounding checker.
        let robust = property(vec![0.3, 0.3], vec![0.7, 0.7], 1);
        let run = verifier.try_verify_run(&net, &robust).unwrap();
        assert_eq!(run.verdict, Verdict::Verified);
        let certificate = run.certificate.expect("verified run emits a certificate");
        let report = cert::audit(&certificate, &net, &cert::AuditOptions::default())
            .expect("audit accepts the emitted certificate");
        assert!(report.verified);
        assert_eq!(report.leaves, run.stats.verified_regions);

        // Refuted property: the witness passes the same strict directed
        // re-evaluation the verifier used to accept it (satellite of the
        // strict-semantics change: the two can never disagree).
        let broken = property(vec![0.0, 0.0], vec![1.0, 1.0], 1);
        let run = verifier.try_verify_run(&net, &broken).unwrap();
        assert!(run.verdict.is_refuted());
        let certificate = run.certificate.expect("refuted run emits a certificate");
        let report = cert::audit(&certificate, &net, &cert::AuditOptions::default())
            .expect("audit accepts the witness");
        assert!(!report.verified);

        // And the emitted artifact round-trips through the text format.
        let reparsed = Certificate::from_text(&certificate.to_text()).unwrap();
        assert_eq!(reparsed, certificate);
    }

    #[test]
    fn no_certificate_without_opt_in_or_for_limited_and_resumed_runs() {
        let net = samples::xor_network();
        let prop = property(vec![0.3, 0.3], vec![0.7, 0.7], 1);
        let run = Verifier::default().try_verify_run(&net, &prop).unwrap();
        assert!(run.certificate.is_none(), "emission is opt-in");

        let mut limited =
            Verifier::with_policy(Arc::new(FixedPolicy::new(DomainChoice::interval())));
        limited.config_mut().certificates = true;
        limited.config_mut().max_regions = 2;
        let first = limited.try_verify_run(&net, &prop).unwrap();
        assert_eq!(first.verdict, Verdict::ResourceLimit);
        assert!(first.certificate.is_none(), "limited runs cannot certify");

        let mut full = limited.clone();
        full.config_mut().max_regions = 200_000;
        let resumed = full.resume(&net, &first.checkpoint.unwrap()).unwrap();
        assert_eq!(resumed.verdict, Verdict::Verified);
        assert!(resumed.certificate.is_none(), "resumed runs cannot certify");
    }

    #[test]
    fn validated_counterexample_rejects_nan_and_out_of_region() {
        let net = samples::xor_network();
        let region = Bounds::new(vec![0.0, 0.0], vec![1.0, 1.0]);
        // NaN point: rejected outright.
        assert!(validated_counterexample(&net, &region, 1, &[f64::NAN, 0.5], 1e-9).is_none());
        // Wrong arity: rejected.
        assert!(validated_counterexample(&net, &region, 1, &[0.5], 1e-9).is_none());
        // A genuine violation (corner of the unit square) is accepted and
        // clamped into the region even if slightly outside.
        let cex = validated_counterexample(&net, &region, 1, &[-0.1, -0.1], 1e-9)
            .expect("corner violates");
        assert!(region.contains(&cex.point));
        assert!(cex.objective <= 1e-9);
        // A point with a healthy positive margin does not validate.
        assert!(validated_counterexample(&net, &region, 1, &[0.5, 0.5], 1e-9).is_none());
    }
}
