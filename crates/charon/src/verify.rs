//! The `Verify` procedure (Algorithm 1) with the δ-complete modification
//! (Eq. 4).

use std::sync::Arc;
use std::time::{Duration, Instant};

use attack::Minimizer;
use domains::{analyze, Bounds};
use nn::Network;

use crate::policy::{DomainSelection, LinearPolicy, Policy, PolicyContext};
use crate::RobustnessProperty;

/// A δ-counterexample (Definition 5.3): a point whose score margin for the
/// target class is at most δ.
#[derive(Debug, Clone, PartialEq)]
pub struct Counterexample {
    /// The input point, always inside the property's region.
    pub point: Vec<f64>,
    /// The objective value `F(point)`; at most δ, and `<= 0` for a true
    /// counterexample.
    pub objective: f64,
}

impl Counterexample {
    /// Whether this is a true counterexample (misclassification), not
    /// merely a δ-near-violation.
    pub fn is_true_violation(&self) -> bool {
        self.objective <= 0.0
    }
}

/// Result of running the verifier on a property.
#[derive(Debug, Clone, PartialEq)]
pub enum Verdict {
    /// Every point in the region is classified as the target class.
    Verified,
    /// A δ-counterexample was found.
    Refuted(Counterexample),
    /// The time or region budget was exhausted before a decision.
    ResourceLimit,
}

impl Verdict {
    /// Whether the verdict is [`Verdict::Verified`].
    pub fn is_verified(&self) -> bool {
        matches!(self, Verdict::Verified)
    }

    /// Whether the verdict is [`Verdict::Refuted`].
    pub fn is_refuted(&self) -> bool {
        matches!(self, Verdict::Refuted(_))
    }
}

/// Configuration of the [`Verifier`].
#[derive(Debug, Clone)]
pub struct VerifierConfig {
    /// The δ of the δ-complete check `F(x*) <= δ` (Eq. 4).
    pub delta: f64,
    /// Wall-clock budget for one property.
    pub timeout: Duration,
    /// Maximum number of regions processed (safety cap, counts towards
    /// `ResourceLimit`).
    pub max_regions: usize,
    /// Random restarts for each counterexample search.
    pub restarts: usize,
    /// Base RNG seed (kept fixed for reproducibility).
    pub seed: u64,
    /// If false, skip gradient-based counterexample search entirely (the
    /// RQ2 ablation); refutation then only happens through the δ-check at
    /// region centers.
    pub counterexample_search: bool,
    /// If true, regions whose center margin already exceeds the network's
    /// Lipschitz bound times the region radius are verified without any
    /// abstract interpretation (a FastLin-style pre-filter; an extension
    /// beyond the paper, off by default).
    pub lipschitz_prefilter: bool,
    /// Cooperative cancellation flag: when set (by e.g. the portfolio
    /// runner), the verifier stops at the next region boundary with
    /// [`Verdict::ResourceLimit`].
    pub cancel: Option<std::sync::Arc<std::sync::atomic::AtomicBool>>,
}

impl Default for VerifierConfig {
    fn default() -> Self {
        VerifierConfig {
            delta: 1e-9,
            timeout: Duration::from_secs(60),
            max_regions: 200_000,
            restarts: 2,
            seed: 0,
            counterexample_search: true,
            lipschitz_prefilter: false,
            cancel: None,
        }
    }
}

/// Statistics collected during one verification run.
#[derive(Debug, Clone, Default)]
pub struct VerifyStats {
    /// Regions popped from the worklist.
    pub regions: usize,
    /// Regions discharged by abstract interpretation.
    pub verified_regions: usize,
    /// Abstract-interpretation calls.
    pub analyze_calls: usize,
    /// Gradient-based minimization runs.
    pub attacks: usize,
    /// Region splits performed.
    pub splits: usize,
    /// Deepest recursion depth reached.
    pub max_depth: usize,
    /// Total wall-clock time.
    pub elapsed: Duration,
    /// Uses of each abstract domain, keyed by `(base, disjuncts)` display
    /// string.
    pub domain_uses: Vec<(String, usize)>,
}

impl VerifyStats {
    fn record_domain(&mut self, choice: DomainSelection) {
        let key = choice.to_string();
        if let Some(entry) = self.domain_uses.iter_mut().find(|(k, _)| *k == key) {
            entry.1 += 1;
        } else {
            self.domain_uses.push((key, 1));
        }
    }
}

/// The Charon verifier: Algorithm 1 driven by a verification policy.
///
/// See the [crate-level documentation](crate) for an example.
#[derive(Clone)]
pub struct Verifier {
    policy: Arc<dyn Policy>,
    config: VerifierConfig,
}

impl std::fmt::Debug for Verifier {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Verifier")
            .field("config", &self.config)
            .finish_non_exhaustive()
    }
}

impl Default for Verifier {
    fn default() -> Self {
        Verifier {
            policy: Arc::new(LinearPolicy::default()),
            config: VerifierConfig::default(),
        }
    }
}

impl Verifier {
    /// Creates a verifier with an explicit policy and configuration.
    pub fn new(policy: Arc<dyn Policy>, config: VerifierConfig) -> Self {
        Verifier { policy, config }
    }

    /// Creates a verifier with the given policy and default configuration.
    pub fn with_policy(policy: Arc<dyn Policy>) -> Self {
        Verifier {
            policy,
            config: VerifierConfig::default(),
        }
    }

    /// The verifier's configuration.
    pub fn config(&self) -> &VerifierConfig {
        &self.config
    }

    /// Mutable access to the configuration.
    pub fn config_mut(&mut self) -> &mut VerifierConfig {
        &mut self.config
    }

    /// Runs Algorithm 1 on a property.
    ///
    /// # Panics
    ///
    /// Panics if the property's region dimension differs from the
    /// network's input dimension, or the target class is out of range.
    pub fn verify(&self, net: &Network, property: &RobustnessProperty) -> Verdict {
        self.verify_with_stats(net, property).0
    }

    /// Runs Algorithm 1, also returning run statistics.
    pub fn verify_with_stats(
        &self,
        net: &Network,
        property: &RobustnessProperty,
    ) -> (Verdict, VerifyStats) {
        assert_eq!(
            property.region().dim(),
            net.input_dim(),
            "region dimension must match network input"
        );
        assert!(
            property.target() < net.output_dim(),
            "target class out of range"
        );

        let start = Instant::now();
        let deadline = start + self.config.timeout;
        let mut stats = VerifyStats::default();
        let target = property.target();
        let minimizer = Minimizer::new(self.config.seed).with_restarts(self.config.restarts);
        // The objective F is a difference of two M-Lipschitz outputs, so
        // it is 2M-Lipschitz; computed once per verification run.
        let objective_lipschitz = if self.config.lipschitz_prefilter {
            2.0 * net.lipschitz_bound()
        } else {
            f64::INFINITY
        };

        // Depth-first worklist, equivalent to the recursion in Algorithm 1.
        let mut stack: Vec<(Bounds, usize)> = vec![(property.region().clone(), 0)];
        let verdict = loop {
            let Some((region, depth)) = stack.pop() else {
                break Verdict::Verified;
            };
            if Instant::now() >= deadline || stats.regions >= self.config.max_regions {
                break Verdict::ResourceLimit;
            }
            if let Some(flag) = &self.config.cancel {
                if flag.load(std::sync::atomic::Ordering::Relaxed) {
                    break Verdict::ResourceLimit;
                }
            }
            stats.regions += 1;
            stats.max_depth = stats.max_depth.max(depth);

            // Line 2: x* <- Minimize(I, F).
            let (x_star, objective) = if self.config.counterexample_search {
                stats.attacks += 1;
                let result = minimizer.minimize(net, &region, target);
                (result.point, result.objective)
            } else {
                let center = region.center();
                let f = net.objective(&center, target);
                (center, f)
            };

            // Line 3 (Eq. 4): F(x*) <= δ refutes.
            if objective <= self.config.delta {
                break Verdict::Refuted(Counterexample {
                    point: x_star,
                    objective,
                });
            }

            // Lipschitz pre-filter: if the center margin dominates the
            // worst-case change across the region, the region is safe.
            if self.config.lipschitz_prefilter {
                let center = region.center();
                let center_margin = net.objective(&center, target);
                if center_margin - objective_lipschitz * 0.5 * region.diameter() > 0.0 {
                    stats.verified_regions += 1;
                    continue;
                }
            }

            // Degenerate regions are decided exactly by the interval
            // domain (the box is a point along every zero-width axis).
            if region.widths().iter().all(|w| *w <= f64::EPSILON) {
                stats.analyze_calls += 1;
                if analyze(net, &region, target, domains::DomainChoice::interval()) {
                    stats.verified_regions += 1;
                    continue;
                }
                // Exact analysis failed on a point region: its center is a
                // true counterexample.
                break Verdict::Refuted(Counterexample {
                    point: x_star,
                    objective,
                });
            }

            // Lines 5-7: pick a domain and try to prove the region.
            let ctx = PolicyContext {
                net,
                region: &region,
                target,
                x_star: &x_star,
                objective,
            };
            let choice = self.policy.choose_domain(&ctx);
            stats.analyze_calls += 1;
            stats.record_domain(choice);
            match run_selection(net, &region, target, choice, deadline) {
                SelectionResult::Verified => {
                    stats.verified_regions += 1;
                    continue;
                }
                SelectionResult::Violated(point) => {
                    let objective = net.objective(&point, target);
                    break Verdict::Refuted(Counterexample { point, objective });
                }
                SelectionResult::Inconclusive => {}
            }

            // Lines 8-12: split and recurse on both halves.
            let plan = self.policy.choose_split(&ctx);
            let at = crate::policy::clamp_split(&region, plan.dim, plan.at);
            if at <= region.lower()[plan.dim] || at >= region.upper()[plan.dim] {
                // Zero-width split dimension: fall back to the widest
                // dimension; if everything is (numerically) degenerate,
                // the degenerate-region branch above will catch it next
                // iteration.
                let dim = region.longest_dim();
                let mid = 0.5 * (region.lower()[dim] + region.upper()[dim]);
                if mid > region.lower()[dim] && mid < region.upper()[dim] {
                    let (a, b) = region.split_at(dim, mid);
                    stats.splits += 1;
                    stack.push((b, depth + 1));
                    stack.push((a, depth + 1));
                    continue;
                }
                break Verdict::ResourceLimit;
            }
            let (a, b) = region.split_at(plan.dim, at);
            stats.splits += 1;
            stack.push((b, depth + 1));
            stack.push((a, depth + 1));
        };

        stats.elapsed = start.elapsed();
        (verdict, stats)
    }
}

/// Outcome of running one policy-selected analysis on a region.
pub(crate) enum SelectionResult {
    /// The region was proved safe.
    Verified,
    /// The (complete) analysis produced a concrete counterexample.
    Violated(Vec<f64>),
    /// The analysis could not decide the region.
    Inconclusive,
}

/// Dispatches a [`DomainSelection`] on a region. The deadline bounds the
/// complete solver; the abstract domains run to completion (they are fast
/// relative to a region budget).
pub(crate) fn run_selection(
    net: &Network,
    region: &Bounds,
    target: usize,
    choice: DomainSelection,
    deadline: Instant,
) -> SelectionResult {
    match choice {
        DomainSelection::Abstract(c) => {
            if analyze(net, region, target, c) {
                SelectionResult::Verified
            } else {
                SelectionResult::Inconclusive
            }
        }
        DomainSelection::DeepPoly => {
            if domains::deeppoly::verifies(net, region, target) {
                SelectionResult::Verified
            } else {
                SelectionResult::Inconclusive
            }
        }
        DomainSelection::RefinedZonotope { lp_per_layer } => {
            if !complete::supports(net) {
                // Architectures the LP cannot encode use the plain domain.
                return if analyze(net, region, target, domains::DomainChoice::zonotope()) {
                    SelectionResult::Verified
                } else {
                    SelectionResult::Inconclusive
                };
            }
            let Some(refined) =
                complete::refine::refined_relu_bounds(net, region, deadline, lp_per_layer)
            else {
                return SelectionResult::Inconclusive;
            };
            // Propagate a zonotope, meeting each ReLU input with the
            // LP-refined box (sound: both over-approximate the truth).
            let mut element = <domains::Zonotope as domains::AbstractElement>::from_bounds(region);
            let mut relu_idx = 0;
            for layer in net.layers() {
                use domains::AbstractElement as _;
                match layer {
                    nn::Layer::Affine(a) => element = element.affine(a),
                    nn::Layer::Relu => {
                        if let Some(met) = element.meet_box(&refined.relu_inputs[relu_idx]) {
                            element = met;
                        }
                        relu_idx += 1;
                        element = element.relu();
                    }
                    nn::Layer::MaxPool(p) => element = element.max_pool(p),
                }
            }
            use domains::AbstractElement as _;
            if element.margin_lower_bound(target) > 0.0 {
                SelectionResult::Verified
            } else {
                SelectionResult::Inconclusive
            }
        }
        DomainSelection::Solver { node_budget } => {
            if !complete::supports(net) {
                // Fall back to the strongest classic domain for
                // architectures the solver cannot encode.
                return if analyze(net, region, target, domains::DomainChoice::zonotope()) {
                    SelectionResult::Verified
                } else {
                    SelectionResult::Inconclusive
                };
            }
            let solver = complete::CompleteSolver::with_node_budget(node_budget);
            match solver.decide(net, region, target, deadline) {
                complete::Decision::Proved => SelectionResult::Verified,
                complete::Decision::Violated(x) => SelectionResult::Violated(x),
                complete::Decision::Budget => SelectionResult::Inconclusive,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::FixedPolicy;
    use domains::DomainChoice;
    use nn::samples;

    fn property(lo: Vec<f64>, hi: Vec<f64>, target: usize) -> RobustnessProperty {
        RobustnessProperty::new(Bounds::new(lo, hi), target)
    }

    #[test]
    fn verifies_xor_example_3_1() {
        let net = samples::xor_network();
        let prop = property(vec![0.3, 0.3], vec![0.7, 0.7], 1);
        let (verdict, stats) = Verifier::default().verify_with_stats(&net, &prop);
        assert_eq!(verdict, Verdict::Verified);
        assert!(stats.regions >= 1);
        assert!(stats.analyze_calls >= 1);
    }

    #[test]
    fn refutes_xor_on_unit_square() {
        let net = samples::xor_network();
        let prop = property(vec![0.0, 0.0], vec![1.0, 1.0], 1);
        match Verifier::default().verify(&net, &prop) {
            Verdict::Refuted(cex) => {
                assert!(prop.region().contains(&cex.point));
                assert!(cex.objective <= 1e-9);
                assert!(cex.is_true_violation());
                assert_ne!(net.classify(&cex.point), 1);
            }
            other => panic!("expected refutation, got {other:?}"),
        }
    }

    #[test]
    fn verifies_example_2_2() {
        let net = samples::example_2_2_network();
        let prop = property(vec![-1.0], vec![1.0], 1);
        assert_eq!(Verifier::default().verify(&net, &prop), Verdict::Verified);
    }

    #[test]
    fn refutes_example_2_2_extended() {
        let net = samples::example_2_2_network();
        let prop = property(vec![-1.0], vec![2.0], 1);
        assert!(Verifier::default().verify(&net, &prop).is_refuted());
    }

    #[test]
    fn verifies_example_2_3_needing_disjunction_or_split() {
        let net = samples::example_2_3_network();
        let prop = property(vec![0.0, 0.0], vec![1.0, 1.0], 1);
        assert_eq!(Verifier::default().verify(&net, &prop), Verdict::Verified);
    }

    #[test]
    fn interval_only_policy_needs_more_splits_than_zonotope() {
        let net = samples::xor_network();
        let prop = property(vec![0.3, 0.3], vec![0.7, 0.7], 1);
        let zono = Verifier::with_policy(Arc::new(FixedPolicy::new(DomainChoice::zonotope())));
        let intv = Verifier::with_policy(Arc::new(FixedPolicy::new(DomainChoice::interval())));
        let (vz, sz) = zono.verify_with_stats(&net, &prop);
        let (vi, si) = intv.verify_with_stats(&net, &prop);
        assert_eq!(vz, Verdict::Verified);
        assert_eq!(vi, Verdict::Verified);
        assert!(
            si.splits >= sz.splits,
            "intervals ({}) should need at least as many splits as zonotopes ({})",
            si.splits,
            sz.splits
        );
    }

    #[test]
    fn ablation_without_counterexample_search_still_sound() {
        let net = samples::xor_network();
        let prop = property(vec![0.0, 0.0], vec![1.0, 1.0], 1);
        let mut verifier = Verifier::default();
        verifier.config_mut().counterexample_search = false;
        // Must still refute (via δ-checks at region centers), though it
        // may take more work.
        let verdict = verifier.verify(&net, &prop);
        match verdict {
            Verdict::Refuted(cex) => assert!(cex.objective <= 1e-9),
            other => panic!("expected refutation, got {other:?}"),
        }
    }

    #[test]
    fn timeout_reports_resource_limit() {
        let net = nn::train::random_mlp(6, &[24, 24, 24], 4, 3);
        let prop = property(vec![-1.0; 6], vec![1.0; 6], 0);
        let mut verifier = Verifier::default();
        verifier.config_mut().timeout = Duration::from_millis(1);
        // Either it instantly refutes (possible: random net may
        // misclassify the center) or it hits the budget; both are
        // acceptable, but Verified in 1 ms on [-1,1]^6 would be suspect.
        let verdict = verifier.verify(&net, &prop);
        assert!(
            !verdict.is_verified(),
            "unexpected instant verification: {verdict:?}"
        );
    }

    #[test]
    fn stats_track_domain_usage() {
        let net = samples::xor_network();
        let prop = property(vec![0.3, 0.3], vec![0.7, 0.7], 1);
        let (_, stats) = Verifier::default().verify_with_stats(&net, &prop);
        let total: usize = stats.domain_uses.iter().map(|(_, c)| c).sum();
        assert_eq!(total, stats.analyze_calls);
    }

    #[test]
    fn solver_domain_policy_verifies_and_refutes() {
        /// A policy that always asks for the complete solver.
        struct SolverPolicy;
        impl crate::policy::Policy for SolverPolicy {
            fn choose_domain(&self, _ctx: &crate::policy::PolicyContext<'_>) -> DomainSelection {
                DomainSelection::Solver { node_budget: 1000 }
            }
            fn choose_split(
                &self,
                ctx: &crate::policy::PolicyContext<'_>,
            ) -> crate::policy::SplitPlan {
                let dim = ctx.region.longest_dim();
                crate::policy::SplitPlan {
                    dim,
                    at: 0.5 * (ctx.region.lower()[dim] + ctx.region.upper()[dim]),
                }
            }
        }
        let verifier = Verifier::with_policy(Arc::new(SolverPolicy));
        let net = samples::xor_network();
        let robust = property(vec![0.3, 0.3], vec![0.7, 0.7], 1);
        assert_eq!(verifier.verify(&net, &robust), Verdict::Verified);
        let broken = property(vec![0.0, 0.0], vec![1.0, 1.0], 1);
        assert!(verifier.verify(&net, &broken).is_refuted());
    }

    #[test]
    fn refined_zonotope_policy_verifies() {
        struct RefinedPolicy;
        impl crate::policy::Policy for RefinedPolicy {
            fn choose_domain(&self, _ctx: &crate::policy::PolicyContext<'_>) -> DomainSelection {
                DomainSelection::RefinedZonotope { lp_per_layer: 8 }
            }
            fn choose_split(
                &self,
                ctx: &crate::policy::PolicyContext<'_>,
            ) -> crate::policy::SplitPlan {
                let dim = ctx.region.longest_dim();
                crate::policy::SplitPlan {
                    dim,
                    at: 0.5 * (ctx.region.lower()[dim] + ctx.region.upper()[dim]),
                }
            }
        }
        let verifier = Verifier::with_policy(Arc::new(RefinedPolicy));
        let net = samples::example_2_3_network();
        let prop = property(vec![0.0, 0.0], vec![1.0, 1.0], 1);
        assert_eq!(verifier.verify(&net, &prop), Verdict::Verified);
        // Refutation still flows through the δ-check.
        let net2 = samples::example_2_2_network();
        let broken = property(vec![-1.0], vec![2.0], 1);
        assert!(verifier.verify(&net2, &broken).is_refuted());
    }

    #[test]
    fn deeppoly_policy_verifies() {
        struct DeepPolyPolicy;
        impl crate::policy::Policy for DeepPolyPolicy {
            fn choose_domain(&self, _ctx: &crate::policy::PolicyContext<'_>) -> DomainSelection {
                DomainSelection::DeepPoly
            }
            fn choose_split(
                &self,
                ctx: &crate::policy::PolicyContext<'_>,
            ) -> crate::policy::SplitPlan {
                let dim = ctx.region.longest_dim();
                crate::policy::SplitPlan {
                    dim,
                    at: 0.5 * (ctx.region.lower()[dim] + ctx.region.upper()[dim]),
                }
            }
        }
        let verifier = Verifier::with_policy(Arc::new(DeepPolyPolicy));
        let net = samples::example_2_3_network();
        let prop = property(vec![0.0, 0.0], vec![1.0, 1.0], 1);
        assert_eq!(verifier.verify(&net, &prop), Verdict::Verified);
    }

    #[test]
    fn lipschitz_prefilter_sound_and_helps_on_tiny_regions() {
        let net = samples::xor_network();
        // A tiny region far from any decision boundary.
        let prop = property(vec![0.49, 0.49], vec![0.51, 0.51], 1);
        let mut with = Verifier::default();
        with.config_mut().lipschitz_prefilter = true;
        let (v1, s1) = with.verify_with_stats(&net, &prop);
        assert_eq!(v1, Verdict::Verified);
        // The prefilter discharges the region without any analyze call.
        assert_eq!(s1.analyze_calls, 0, "stats: {s1:?}");

        // Still sound on falsifiable properties.
        let broken = property(vec![0.0, 0.0], vec![1.0, 1.0], 1);
        assert!(with.verify(&net, &broken).is_refuted());
    }

    #[test]
    fn delta_counterexample_on_near_violation() {
        // Build a property whose margin dips to exactly ~0.1 somewhere and
        // use δ = 0.2: the verifier must refute with a δ-counterexample
        // that is not a true violation.
        let net = samples::xor_network();
        // On [0.3, 0.7]^2 the margin minimum is 0.2 (at the corners).
        let prop = property(vec![0.3, 0.3], vec![0.7, 0.7], 1);
        let mut verifier = Verifier::default();
        verifier.config_mut().delta = 0.25;
        match verifier.verify(&net, &prop) {
            Verdict::Refuted(cex) => {
                assert!(cex.objective <= 0.25);
                assert!(!cex.is_true_violation());
            }
            other => panic!("expected δ-refutation, got {other:?}"),
        }
    }
}
