//! Saturating deadline arithmetic shared by every service tier.
//!
//! The service answers one recurring question at admission, at dequeue,
//! at shard dispatch, and inside each worker: *how much verification
//! budget is left before the client stops waiting?* Getting it wrong in
//! either direction is expensive — an underflow panic takes a worker
//! down with it, while an optimistic clamp burns worker time on an
//! answer nobody will read. These helpers are deliberately total: no
//! subtraction underflows, no `Duration` overflows, and every boundary
//! case returns an answer instead of panicking. The saturation
//! invariants are proptest-covered in `server/tests/overload_prop.rs`.
//!
//! The clamp feeds the paper's anytime design: a shrinking deadline
//! does not kill a job, it shortens [`crate::VerifierConfig::timeout`]
//! so the degradation ladder (cheaper domain, coarser splits,
//! checkpoint-and-report) absorbs the pressure and still returns a
//! sound — if less precise — verdict.

use std::time::Duration;

/// Milliseconds of a client deadline left after `elapsed` has already
/// passed. Saturates at zero; never underflows.
///
/// ```
/// use std::time::Duration;
/// assert_eq!(charon::deadline::remaining_ms(500, Duration::from_millis(200)), 300);
/// assert_eq!(charon::deadline::remaining_ms(500, Duration::from_secs(9)), 0);
/// ```
pub fn remaining_ms(deadline_ms: u64, elapsed: Duration) -> u64 {
    let elapsed_ms = elapsed.as_millis().min(u128::from(u64::MAX)) as u64;
    deadline_ms.saturating_sub(elapsed_ms)
}

/// Clamps a verification budget to what a client deadline leaves after
/// reserving `reply_margin` for result delivery (serialization, the
/// socket write, coordinator merging).
///
/// Returns `None` when nothing useful remains — the remaining deadline
/// is not strictly larger than the reply margin — in which case the
/// caller should answer `deadline_expired` without starting the
/// verifier at all.
///
/// ```
/// use std::time::Duration;
/// use charon::deadline::clamp_budget;
/// let budget = Duration::from_secs(10);
/// let margin = Duration::from_millis(50);
/// // Plenty of deadline: the configured budget stands.
/// assert_eq!(clamp_budget(budget, 60_000, margin), Some(budget));
/// // Tight deadline: the budget shrinks to remaining minus margin.
/// assert_eq!(clamp_budget(budget, 250, margin), Some(Duration::from_millis(200)));
/// // Spent deadline: do not start at all.
/// assert_eq!(clamp_budget(budget, 50, margin), None);
/// assert_eq!(clamp_budget(budget, 0, margin), None);
/// ```
pub fn clamp_budget(
    budget: Duration,
    remaining_ms: u64,
    reply_margin: Duration,
) -> Option<Duration> {
    let margin_ms = reply_margin.as_millis().min(u128::from(u64::MAX)) as u64;
    let usable_ms = remaining_ms.saturating_sub(margin_ms);
    if usable_ms == 0 {
        return None;
    }
    Some(budget.min(Duration::from_millis(usable_ms)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn remaining_saturates_instead_of_underflowing() {
        assert_eq!(remaining_ms(100, Duration::from_millis(100)), 0);
        assert_eq!(remaining_ms(100, Duration::from_millis(101)), 0);
        assert_eq!(remaining_ms(0, Duration::ZERO), 0);
        // An absurd elapsed value (beyond u64 milliseconds) still
        // answers zero rather than truncating into a bogus remainder.
        assert_eq!(remaining_ms(u64::MAX, Duration::MAX), 0);
    }

    #[test]
    fn clamp_respects_margin_at_the_boundary() {
        let margin = Duration::from_millis(50);
        let budget = Duration::from_secs(1);
        // remaining == margin: nothing usable.
        assert_eq!(clamp_budget(budget, 50, margin), None);
        // One millisecond past the margin is a real (tiny) budget.
        assert_eq!(
            clamp_budget(budget, 51, margin),
            Some(Duration::from_millis(1))
        );
    }

    #[test]
    fn clamp_never_exceeds_the_configured_budget() {
        let clamped = clamp_budget(Duration::from_millis(10), u64::MAX, Duration::ZERO);
        assert_eq!(clamped, Some(Duration::from_millis(10)));
    }

    #[test]
    fn extreme_margins_saturate() {
        // A margin beyond u64 milliseconds swallows any deadline.
        assert_eq!(
            clamp_budget(Duration::from_secs(1), u64::MAX, Duration::MAX),
            None
        );
    }
}
