//! Multi-threaded region solving.
//!
//! The original implementation runs independent abstract-interpretation
//! calls on as many threads as the host provides (§6). This module
//! parallelizes Algorithm 1 over a shared region worklist: workers pop
//! regions, run counterexample search and abstract interpretation, and
//! push split sub-regions back. The first δ-counterexample found aborts
//! the whole run.
//!
//! Fault tolerance matches the sequential verifier: every region step is
//! panic-isolated with an interval-domain retry, so a single bad region
//! degrades precision instead of killing a worker thread (or the
//! process). Budget-limited runs drain the worklist into a
//! [`Checkpoint`] for [`ParallelVerifier::resume`].
//!
//! Regions are distributed by the work-stealing scheduler in
//! [`crate::sched`]: per-worker deques with steal-half balancing, and
//! condvar parking (never spinning) when a worker runs out of work while
//! regions are still in flight elsewhere.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use attack::Minimizer;
use domains::{Bounds, Workspace};
use nn::Network;
use parking_lot::Mutex;

use crate::checkpoint::Checkpoint;
use crate::error::{BudgetKind, VerifyError};
use crate::faults::FaultSite;
use crate::policy::Policy;
use crate::sched::{Scheduler, SchedulerMode};
use crate::telemetry::{emit, SharedSink, TraceEvent};
use crate::verify::{
    guarded_region_step, validate_problem, verdict_name, CertRecorder, RegionOutcome, StepEnv,
    Verdict, VerifierConfig, VerifyRun, VerifyStats,
};
use crate::RobustnessProperty;

/// A parallel variant of the [`crate::Verifier`].
///
/// Semantics match the sequential verifier (same soundness and
/// δ-completeness); only scheduling differs, so which δ-counterexample is
/// reported may vary between runs.
#[derive(Clone)]
pub struct ParallelVerifier {
    policy: Arc<dyn Policy>,
    config: VerifierConfig,
    threads: usize,
    sched_mode: SchedulerMode,
    trace: SharedSink,
}

/// State shared by every worker of one parallel run.
struct Shared<'a> {
    sched: &'a Scheduler,
    regions_done: &'a AtomicUsize,
    stop: &'a AtomicBool,
    found: &'a Mutex<Option<(Verdict, Option<BudgetKind>)>>,
    error: &'a Mutex<Option<VerifyError>>,
}

/// The engine's record-and-stop verdict preference rule: whether an
/// `incoming` verdict should replace the `current` one.
///
/// First writer wins, with one exception: a validated refutation replaces
/// an already-recorded `ResourceLimit`. A worker (or shard node) mid-step
/// when another hits a budget may still find a real counterexample;
/// dropping it would checkpoint a worklist without the refuted region,
/// and resuming that checkpoint could flip the verdict to `Verified`.
///
/// This single rule is shared by the in-process [`ParallelVerifier`] and
/// the coordinator tier's cross-node shard merge, so the two scheduling
/// layers cannot drift apart semantically.
pub fn verdict_supersedes(current: Option<&Verdict>, incoming: &Verdict) -> bool {
    match current {
        None => true,
        Some(Verdict::ResourceLimit) => matches!(incoming, Verdict::Refuted(_)),
        Some(_) => false,
    }
}

impl Shared<'_> {
    /// Records a verdict and tells everyone to stop, following
    /// [`verdict_supersedes`].
    fn record_and_stop(&self, verdict: Verdict, limit: Option<BudgetKind>) {
        let mut slot = self.found.lock();
        if verdict_supersedes(slot.as_ref().map(|(v, _)| v), &verdict) {
            *slot = Some((verdict, limit));
        }
        self.stop.store(true, Ordering::Release);
        // Parked workers observe `stop` only when awake; wake them so the
        // run winds down promptly instead of after a park slice.
        self.sched.wake_all();
    }

    /// Records an engine error (first writer wins) and stops the run.
    fn record_error(&self, e: VerifyError) {
        let mut slot = self.error.lock();
        if slot.is_none() {
            *slot = Some(e);
        }
        self.stop.store(true, Ordering::Release);
        self.sched.wake_all();
    }
}

impl ParallelVerifier {
    /// Creates a parallel verifier.
    ///
    /// `threads = 0` selects the number of available CPUs.
    pub fn new(policy: Arc<dyn Policy>, config: VerifierConfig, threads: usize) -> Self {
        let threads = if threads == 0 {
            std::thread::available_parallelism().map_or(4, |n| n.get())
        } else {
            threads
        };
        ParallelVerifier {
            policy,
            config,
            threads,
            sched_mode: SchedulerMode::default(),
            trace: crate::telemetry::null_sink(),
        }
    }

    /// Attaches a trace sink shared by all workers; events from different
    /// workers interleave at event granularity. The default sink is
    /// [`crate::telemetry::NullSink`] (tracing off, zero overhead).
    #[must_use]
    pub fn with_trace(mut self, sink: SharedSink) -> Self {
        self.trace = sink;
        self
    }

    /// Overrides the scheduling discipline. The default is
    /// [`SchedulerMode::default`], which selects work stealing unless
    /// `CHARON_FORCE_SCALAR` forces the shared-queue fallback.
    #[must_use]
    pub fn with_scheduler(mut self, mode: SchedulerMode) -> Self {
        self.sched_mode = mode;
        self
    }

    /// The scheduling discipline this verifier will use.
    pub fn scheduler_mode(&self) -> SchedulerMode {
        self.sched_mode
    }

    /// Number of worker threads used.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Verifies a property using all worker threads.
    ///
    /// # Panics
    ///
    /// Panics if the property's region dimension differs from the
    /// network's input dimension, the target class is out of range, or
    /// the engine fails irrecoverably (see
    /// [`ParallelVerifier::try_verify_run`] for the non-panicking API).
    pub fn verify(&self, net: &Network, property: &RobustnessProperty) -> Verdict {
        assert_eq!(
            property.region().dim(),
            net.input_dim(),
            "region dimension must match network input"
        );
        assert!(
            property.target() < net.output_dim(),
            "target class out of range"
        );
        match self.try_verify_run(net, property) {
            Ok(run) => run.verdict,
            Err(e) => panic!("verification engine failure: {e}"),
        }
    }

    /// Parallel analogue of [`crate::Verifier::try_verify_run`].
    ///
    /// # Errors
    ///
    /// As the sequential variant: structured [`VerifyError`]s for
    /// malformed inputs and irrecoverable engine failures.
    pub fn try_verify_run(
        &self,
        net: &Network,
        property: &RobustnessProperty,
    ) -> Result<VerifyRun, VerifyError> {
        validate_problem(net, property.region(), property.target())?;
        let cert_root = self
            .config
            .certificates
            .then(|| property.region().clone());
        self.run_worklist(
            net,
            property.target(),
            vec![(property.region().clone(), 0)],
            cert_root,
        )
    }

    /// Continues an interrupted run from a [`Checkpoint`] (see
    /// [`crate::Verifier::resume`]).
    ///
    /// # Errors
    ///
    /// As [`ParallelVerifier::try_verify_run`].
    pub fn resume(&self, net: &Network, checkpoint: &Checkpoint) -> Result<VerifyRun, VerifyError> {
        if checkpoint.target >= net.output_dim() {
            return Err(VerifyError::MalformedModel {
                reason: format!(
                    "checkpoint target class {} out of range for {} outputs",
                    checkpoint.target,
                    net.output_dim()
                ),
            });
        }
        for (region, _) in &checkpoint.pending {
            validate_problem(net, region, checkpoint.target)?;
        }
        // Resumed runs never certify (the interrupted run's discharged
        // regions are unaccounted for); see the sequential driver.
        self.run_worklist(net, checkpoint.target, checkpoint.pending.clone(), None)
    }

    fn run_worklist(
        &self,
        net: &Network,
        target: usize,
        initial: Vec<(Bounds, usize)>,
        cert_root: Option<Bounds>,
    ) -> Result<VerifyRun, VerifyError> {
        let start = Instant::now();
        let deadline = start + self.config.timeout;
        let sched = Scheduler::new(self.threads, self.sched_mode, initial);
        let regions_done = AtomicUsize::new(0);
        let stop = AtomicBool::new(false);
        let found: Mutex<Option<(Verdict, Option<BudgetKind>)>> = Mutex::new(None);
        let error: Mutex<Option<VerifyError>> = Mutex::new(None);
        let total_stats: Mutex<VerifyStats> = Mutex::new(VerifyStats::default());
        // Per-worker leaf/split records merge here (like the stats) and
        // are assembled into a certificate once the verdict is known.
        let recording = cert_root.is_some();
        let total_records: Mutex<CertRecorder> = Mutex::new(match cert_root {
            Some(root) => CertRecorder::new(root),
            None => CertRecorder::default(),
        });
        let objective_lipschitz = if self.config.lipschitz_prefilter {
            2.0 * net.lipschitz_bound()
        } else {
            f64::INFINITY
        };

        let scope_result = crossbeam::scope(|scope| {
            for worker in 0..self.threads {
                let shared = Shared {
                    sched: &sched,
                    regions_done: &regions_done,
                    stop: &stop,
                    found: &found,
                    error: &error,
                };
                let total_stats = &total_stats;
                let total_records = &total_records;
                let policy = Arc::clone(&self.policy);
                let config = self.config.clone();
                let trace = Arc::clone(&self.trace);
                scope.spawn(move |_| {
                    let minimizer = Minimizer::new(config.seed.wrapping_add(worker as u64))
                        .with_restarts(config.restarts);
                    let env = StepEnv {
                        net,
                        target,
                        minimizer: &minimizer,
                        policy: policy.as_ref(),
                        config: &config,
                        deadline,
                        objective_lipschitz,
                        trace: trace.as_ref(),
                    };
                    let mut stats = VerifyStats::default();
                    let mut records = recording.then(CertRecorder::default);
                    // Per-worker scratch arena: buffers recycle across the
                    // regions this worker processes, never across threads.
                    let mut ws = Workspace::new();
                    worker_loop(worker, &env, &shared, &mut stats, &mut records, &mut ws);
                    total_stats.lock().absorb(&stats);
                    if let Some(records) = records {
                        total_records.lock().absorb(records);
                    }
                });
            }
        });
        if scope_result.is_err() {
            // Workers are panic-isolated, so this is a bug in the driver
            // itself; surface it as an engine error, not a process abort.
            return Err(VerifyError::WorkerPanic {
                message: "parallel worker panicked outside the isolation boundary".to_string(),
            });
        }

        let found = found.into_inner();
        let (verdict, limit) = match (error.into_inner(), found) {
            // A validated refutation outranks a late engine error: the
            // counterexample is real regardless of what broke elsewhere.
            (Some(_), Some((Verdict::Refuted(cex), _))) => (Verdict::Refuted(cex), None),
            (Some(e), _) => return Err(e),
            (None, Some((verdict, limit))) => (verdict, limit),
            (None, None) => (Verdict::Verified, None),
        };
        let mut stats = total_stats.into_inner();
        stats.elapsed = start.elapsed();
        // The checkpoint is built from the *merged* worker stats, not the
        // `regions_done` atomic: a worker that exits on the degradation
        // ladder (or mid-step on a panic retry) has counted a region in
        // its local stats that never reached the atomic, so the atomic
        // can run stale by the time the workers have joined. The merged
        // counters absorb every worker on every exit path.
        let checkpoint = if verdict == Verdict::ResourceLimit {
            Some(Checkpoint {
                target,
                pending: sched.into_pending(),
                regions_done: stats.regions,
            })
        } else {
            None
        };
        if let Some(ckpt) = &checkpoint {
            emit(self.trace.as_ref(), || TraceEvent::CheckpointSaved {
                pending: ckpt.pending.len(),
                regions_done: ckpt.regions_done,
            });
        }
        emit(self.trace.as_ref(), || TraceEvent::Verdict {
            verdict: verdict_name(&verdict).to_string(),
            regions: stats.regions,
            seconds: stats.elapsed.as_secs_f64(),
        });
        let certificate = if recording {
            total_records
                .into_inner()
                .finish(net, target, self.config.delta, &verdict)
        } else {
            None
        };
        Ok(VerifyRun {
            verdict,
            stats,
            checkpoint,
            limit,
            certificate,
        })
    }
}

/// One worker: pop (or steal) regions, run the guarded step, push splits
/// back onto its own deque.
fn worker_loop(
    worker: usize,
    env: &StepEnv<'_>,
    shared: &Shared<'_>,
    stats: &mut VerifyStats,
    records: &mut Option<CertRecorder>,
    ws: &mut Workspace,
) {
    loop {
        if shared.stop.load(Ordering::Acquire) {
            return;
        }
        let budget = if Instant::now() >= env.deadline {
            Some(BudgetKind::Timeout)
        } else if shared.regions_done.load(Ordering::Relaxed) >= env.config.max_regions {
            Some(BudgetKind::Regions)
        } else if env
            .config
            .cancel
            .as_ref()
            .is_some_and(|flag| flag.load(Ordering::Relaxed))
        {
            Some(BudgetKind::Cancelled)
        } else {
            None
        };
        if let Some(kind) = budget {
            // A budget lapsing after the worklist drained is a completed
            // run, not a resource limit: report nothing and let the
            // driver conclude `Verified`. `drained` is stable — split
            // children enter the task count before their parent leaves
            // it — so this check cannot race a mid-split worker.
            if !shared.sched.drained() {
                shared.record_and_stop(Verdict::ResourceLimit, Some(kind));
            }
            return;
        }
        let Some((region, depth)) = shared.sched.try_pop(worker, &mut stats.metrics) else {
            // Every deque is empty: finished if nothing is in flight,
            // otherwise park until an in-flight region splits (the
            // scheduler wakes us) or a park slice elapses (so deadlines
            // and external cancellation stay observed).
            if shared.sched.drained() {
                return;
            }
            let now = Instant::now();
            if now < env.deadline {
                shared.sched.park(env.deadline - now, &mut stats.metrics, || {
                    shared.stop.load(Ordering::Acquire)
                });
            }
            continue;
        };
        let ordinal = match &env.config.faults {
            Some(plan) => plan.next_region(),
            None => shared.regions_done.load(Ordering::Relaxed),
        };
        emit(env.trace, || TraceEvent::RegionPopped { ordinal, depth });
        if env
            .config
            .faults
            .as_ref()
            .is_some_and(|plan| plan.fire(FaultSite::Cancel, ordinal))
        {
            emit(env.trace, || TraceEvent::FaultTriggered {
                site: FaultSite::Cancel.as_str().to_string(),
                ordinal,
            });
            if let Some(flag) = &env.config.cancel {
                flag.store(true, Ordering::Relaxed);
            }
            // Re-queue without completing: the region stays in the task
            // count and lands in the checkpoint.
            shared.sched.requeue(worker, (region, depth));
            shared.record_and_stop(Verdict::ResourceLimit, Some(BudgetKind::Cancelled));
            return;
        }
        stats.regions += 1;
        stats.max_depth = stats.max_depth.max(depth);
        let outcome = guarded_region_step(env, &region, ordinal, stats, ws);
        shared.regions_done.fetch_add(1, Ordering::Relaxed);
        match outcome {
            Ok(RegionOutcome::Verified { domain, margin }) => {
                stats.verified_regions += 1;
                if let Some(rec) = records {
                    rec.leaf(&region, domain, margin);
                }
                shared.sched.complete_one();
            }
            Ok(RegionOutcome::Refuted(cex)) => {
                shared.record_and_stop(Verdict::Refuted(cex), None);
                shared.sched.complete_one();
            }
            Ok(RegionOutcome::Split {
                left,
                right,
                dim,
                at,
            }) => {
                emit(env.trace, || TraceEvent::RegionPushed { depth: depth + 1 });
                emit(env.trace, || TraceEvent::RegionPushed { depth: depth + 1 });
                if let Some(rec) = records {
                    rec.split(&region, dim, at);
                }
                // Children enter the worklist before the parent completes,
                // so the drained signal never dips mid-split.
                shared
                    .sched
                    .push_split(worker, (left, depth + 1), (right, depth + 1));
                shared.sched.complete_one();
            }
            Ok(RegionOutcome::Unsplittable) => {
                // Undecidable at f64 precision: an honest resource limit,
                // never a fabricated refutation. Keep the region in the
                // worklist so the checkpoint records it.
                shared.sched.requeue(worker, (region, depth));
                shared.record_and_stop(
                    Verdict::ResourceLimit,
                    Some(BudgetKind::NumericPrecision),
                );
            }
            Err(e) => {
                shared.record_error(e);
                shared.sched.complete_one();
            }
        }
    }
}

/// Solves a batch of `(network, property)` pairs in parallel, one property
/// per thread, with a per-property timeout. Returns the verdicts in input
/// order. This mirrors the MPI-parallel training setup of §6.
pub fn verify_batch(
    problems: &[(Network, RobustnessProperty)],
    policy: Arc<dyn Policy>,
    config: &VerifierConfig,
    threads: usize,
) -> Vec<(Verdict, Duration)> {
    let threads = if threads == 0 {
        std::thread::available_parallelism().map_or(4, |n| n.get())
    } else {
        threads
    };
    let next = AtomicUsize::new(0);
    let results: Mutex<Vec<Option<(Verdict, Duration)>>> = Mutex::new(vec![None; problems.len()]);

    crossbeam::scope(|scope| {
        for _ in 0..threads.min(problems.len().max(1)) {
            let next = &next;
            let results = &results;
            let policy = Arc::clone(&policy);
            let config = config.clone();
            scope.spawn(move |_| loop {
                let idx = next.fetch_add(1, Ordering::Relaxed);
                if idx >= problems.len() {
                    return;
                }
                let (net, prop) = &problems[idx];
                let verifier = crate::Verifier::new(Arc::clone(&policy), config.clone());
                let start = Instant::now();
                let verdict = verifier.verify(net, prop);
                let elapsed = start.elapsed();
                results.lock()[idx] = Some((verdict, elapsed));
            });
        }
    })
    .expect("worker thread panicked");

    results
        .into_inner()
        .into_iter()
        .map(|r| r.expect("every problem processed"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{FixedPolicy, LinearPolicy};
    use domains::DomainChoice;
    use nn::samples;

    fn default_parallel(threads: usize) -> ParallelVerifier {
        ParallelVerifier::new(
            Arc::new(LinearPolicy::default()),
            VerifierConfig::default(),
            threads,
        )
    }

    #[test]
    fn parallel_verifies_xor_property() {
        let net = samples::xor_network();
        let prop = RobustnessProperty::new(Bounds::new(vec![0.3, 0.3], vec![0.7, 0.7]), 1);
        assert_eq!(default_parallel(4).verify(&net, &prop), Verdict::Verified);
    }

    #[test]
    fn parallel_refutes_unit_square() {
        let net = samples::xor_network();
        let prop = RobustnessProperty::new(Bounds::new(vec![0.0, 0.0], vec![1.0, 1.0]), 1);
        match default_parallel(4).verify(&net, &prop) {
            Verdict::Refuted(cex) => {
                assert!(prop.region().contains(&cex.point));
                assert!(cex.objective <= 1e-9);
            }
            other => panic!("expected refutation, got {other:?}"),
        }
    }

    #[test]
    fn parallel_agrees_with_sequential_on_examples() {
        let cases = [
            (samples::example_2_2_network(), vec![-1.0], vec![1.0], true),
            (samples::example_2_2_network(), vec![-1.0], vec![2.0], false),
        ];
        for (net, lo, hi, expect_verified) in cases {
            let prop = RobustnessProperty::new(Bounds::new(lo, hi), 1);
            let par = default_parallel(3).verify(&net, &prop);
            let seq = crate::Verifier::default().verify(&net, &prop);
            assert_eq!(par.is_verified(), expect_verified);
            assert_eq!(seq.is_verified(), expect_verified);
        }
    }

    #[test]
    fn single_thread_parallel_works() {
        let net = samples::example_2_3_network();
        let prop = RobustnessProperty::new(Bounds::new(vec![0.0, 0.0], vec![1.0, 1.0]), 1);
        assert_eq!(default_parallel(1).verify(&net, &prop), Verdict::Verified);
    }

    #[test]
    fn parallel_budget_run_checkpoints_and_resumes() {
        let net = samples::xor_network();
        let prop = RobustnessProperty::new(Bounds::new(vec![0.3, 0.3], vec![0.7, 0.7]), 1);
        let config = VerifierConfig {
            max_regions: 1,
            ..VerifierConfig::default()
        };
        let limited = ParallelVerifier::new(
            Arc::new(FixedPolicy::new(DomainChoice::interval())),
            config.clone(),
            2,
        );
        let first = limited.try_verify_run(&net, &prop).unwrap();
        assert_eq!(first.verdict, Verdict::ResourceLimit);
        assert_eq!(first.limit, Some(BudgetKind::Regions));
        let ckpt = first.checkpoint.expect("budget run checkpoints");
        assert!(!ckpt.pending.is_empty());

        let full = ParallelVerifier::new(
            Arc::new(FixedPolicy::new(DomainChoice::interval())),
            VerifierConfig::default(),
            2,
        );
        let resumed = full.resume(&net, &ckpt).unwrap();
        assert_eq!(resumed.verdict, Verdict::Verified);
    }

    #[test]
    fn refutation_outranks_recorded_resource_limit() {
        use crate::verify::Counterexample;

        let sched = Scheduler::new(1, SchedulerMode::WorkStealing, Vec::new());
        let regions_done = AtomicUsize::new(0);
        let stop = AtomicBool::new(false);
        let found: Mutex<Option<(Verdict, Option<BudgetKind>)>> = Mutex::new(None);
        let error: Mutex<Option<VerifyError>> = Mutex::new(None);
        let shared = Shared {
            sched: &sched,
            regions_done: &regions_done,
            stop: &stop,
            found: &found,
            error: &error,
        };
        let cex = Counterexample {
            point: vec![0.0, 0.0],
            objective: 0.0,
        };

        // A worker mid-step when the budget lapses may still validate a
        // counterexample; it must replace the budget verdict.
        shared.record_and_stop(Verdict::ResourceLimit, Some(BudgetKind::Timeout));
        shared.record_and_stop(Verdict::Refuted(cex.clone()), None);
        assert_eq!(*found.lock(), Some((Verdict::Refuted(cex.clone()), None)));

        // A later budget verdict never downgrades the refutation, and a
        // second refutation does not replace the first.
        shared.record_and_stop(Verdict::ResourceLimit, Some(BudgetKind::Regions));
        shared.record_and_stop(
            Verdict::Refuted(Counterexample {
                point: vec![1.0, 1.0],
                objective: -1.0,
            }),
            None,
        );
        assert_eq!(*found.lock(), Some((Verdict::Refuted(cex), None)));
        assert!(stop.load(Ordering::Acquire));
    }

    #[test]
    fn lapsed_budget_with_drained_worklist_reports_verified() {
        // A worklist that completes exactly as the deadline lapses (here:
        // resuming a checkpoint whose pending set is already empty under a
        // zero timeout) is a finished proof, not a resource limit.
        let net = samples::xor_network();
        let ckpt = Checkpoint {
            target: 1,
            pending: vec![],
            regions_done: 7,
        };
        let config = VerifierConfig {
            timeout: Duration::ZERO,
            ..VerifierConfig::default()
        };
        let verifier = ParallelVerifier::new(Arc::new(LinearPolicy::default()), config, 2);
        let run = verifier.resume(&net, &ckpt).unwrap();
        assert_eq!(run.verdict, Verdict::Verified);
        assert!(run.checkpoint.is_none());
        assert!(run.limit.is_none());
    }

    #[test]
    fn resource_limited_refutable_run_never_resumes_to_verified() {
        // Budget-starve a refutable property so workers race budgets
        // against the refutation; whatever interleaving happens, chasing
        // checkpoints must end in Refuted, never flip to Verified.
        let net = samples::xor_network();
        let prop = RobustnessProperty::new(Bounds::new(vec![0.0, 0.0], vec![1.0, 1.0]), 1);
        for seed in 0..4 {
            let starved = ParallelVerifier::new(
                Arc::new(FixedPolicy::new(DomainChoice::interval())),
                VerifierConfig {
                    max_regions: 1,
                    counterexample_search: false,
                    seed,
                    ..VerifierConfig::default()
                },
                4,
            );
            let full = ParallelVerifier::new(
                Arc::new(FixedPolicy::new(DomainChoice::interval())),
                VerifierConfig::default(),
                4,
            );
            let mut run = starved.try_verify_run(&net, &prop).unwrap();
            let mut hops = 0;
            loop {
                match run.verdict {
                    Verdict::Refuted(ref cex) => {
                        assert!(prop.region().contains(&cex.point));
                        break;
                    }
                    Verdict::ResourceLimit => {
                        let ckpt = run.checkpoint.expect("budget runs checkpoint");
                        run = full.resume(&net, &ckpt).unwrap();
                    }
                    Verdict::Verified => panic!("verdict flip on refutable property (seed {seed})"),
                }
                hops += 1;
                assert!(hops < 8, "resume chain did not converge");
            }
        }
    }

    #[test]
    fn parallel_merged_certificate_passes_audit() {
        let net = samples::xor_network();
        let config = VerifierConfig {
            certificates: true,
            ..VerifierConfig::default()
        };
        let verifier = ParallelVerifier::new(Arc::new(LinearPolicy::default()), config, 4);

        // Verified: worker-interleaved records assemble into one tree.
        let prop = RobustnessProperty::new(Bounds::new(vec![0.3, 0.3], vec![0.7, 0.7]), 1);
        let run = verifier.try_verify_run(&net, &prop).unwrap();
        assert_eq!(run.verdict, Verdict::Verified);
        let certificate = run.certificate.expect("parallel run emits a certificate");
        let report = cert::audit(&certificate, &net, &cert::AuditOptions::default())
            .expect("audit accepts the merged certificate");
        assert!(report.verified);
        assert_eq!(report.leaves, run.stats.verified_regions);

        // Refuted: the witness certificate audits, whichever worker won.
        let broken = RobustnessProperty::new(Bounds::new(vec![0.0, 0.0], vec![1.0, 1.0]), 1);
        let run = verifier.try_verify_run(&net, &broken).unwrap();
        assert!(run.verdict.is_refuted());
        let certificate = run.certificate.expect("refuted parallel run emits a certificate");
        let report = cert::audit(&certificate, &net, &cert::AuditOptions::default())
            .expect("audit accepts the witness");
        assert!(!report.verified);
    }

    #[test]
    fn parallel_collects_aggregate_stats() {
        let net = samples::xor_network();
        let prop = RobustnessProperty::new(Bounds::new(vec![0.3, 0.3], vec![0.7, 0.7]), 1);
        let run = default_parallel(3).try_verify_run(&net, &prop).unwrap();
        assert_eq!(run.verdict, Verdict::Verified);
        assert!(run.stats.regions >= 1);
        assert!(run.stats.analyze_calls >= 1);
    }

    #[test]
    fn batch_returns_results_in_order() {
        let problems = vec![
            (
                samples::xor_network(),
                RobustnessProperty::new(Bounds::new(vec![0.3, 0.3], vec![0.7, 0.7]), 1),
            ),
            (
                samples::xor_network(),
                RobustnessProperty::new(Bounds::new(vec![0.0, 0.0], vec![1.0, 1.0]), 1),
            ),
            (
                samples::example_2_2_network(),
                RobustnessProperty::new(Bounds::new(vec![-1.0], vec![1.0]), 1),
            ),
        ];
        let results = verify_batch(
            &problems,
            Arc::new(LinearPolicy::default()),
            &VerifierConfig::default(),
            2,
        );
        assert_eq!(results.len(), 3);
        assert!(results[0].0.is_verified());
        assert!(results[1].0.is_refuted());
        assert!(results[2].0.is_verified());
    }
}
