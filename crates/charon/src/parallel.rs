//! Multi-threaded region solving.
//!
//! The original implementation runs independent abstract-interpretation
//! calls on as many threads as the host provides (§6). This module
//! parallelizes Algorithm 1 over a shared region worklist: workers pop
//! regions, run counterexample search and abstract interpretation, and
//! push split sub-regions back. The first δ-counterexample found aborts
//! the whole run.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use attack::Minimizer;
use domains::{analyze, Bounds};
use nn::Network;
use parking_lot::Mutex;

use crate::policy::{Policy, PolicyContext};
use crate::verify::{Counterexample, Verdict, VerifierConfig};
use crate::RobustnessProperty;

/// A parallel variant of the [`crate::Verifier`].
///
/// Semantics match the sequential verifier (same soundness and
/// δ-completeness); only scheduling differs, so which δ-counterexample is
/// reported may vary between runs.
#[derive(Clone)]
pub struct ParallelVerifier {
    policy: Arc<dyn Policy>,
    config: VerifierConfig,
    threads: usize,
}

impl ParallelVerifier {
    /// Creates a parallel verifier.
    ///
    /// `threads = 0` selects the number of available CPUs.
    pub fn new(policy: Arc<dyn Policy>, config: VerifierConfig, threads: usize) -> Self {
        let threads = if threads == 0 {
            std::thread::available_parallelism().map_or(4, |n| n.get())
        } else {
            threads
        };
        ParallelVerifier {
            policy,
            config,
            threads,
        }
    }

    /// Number of worker threads used.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Verifies a property using all worker threads.
    ///
    /// # Panics
    ///
    /// Panics if the property's region dimension differs from the
    /// network's input dimension.
    pub fn verify(&self, net: &Network, property: &RobustnessProperty) -> Verdict {
        assert_eq!(
            property.region().dim(),
            net.input_dim(),
            "region dimension must match network input"
        );
        let deadline = Instant::now() + self.config.timeout;
        let target = property.target();

        let queue: Mutex<Vec<Bounds>> = Mutex::new(vec![property.region().clone()]);
        let in_flight = AtomicUsize::new(0);
        let regions_done = AtomicUsize::new(0);
        let stop = AtomicBool::new(false);
        let found: Mutex<Option<Verdict>> = Mutex::new(None);

        crossbeam::scope(|scope| {
            for worker in 0..self.threads {
                let queue = &queue;
                let in_flight = &in_flight;
                let regions_done = &regions_done;
                let stop = &stop;
                let found = &found;
                let policy = Arc::clone(&self.policy);
                let config = self.config.clone();
                scope.spawn(move |_| {
                    let minimizer = Minimizer::new(config.seed.wrapping_add(worker as u64))
                        .with_restarts(config.restarts);
                    loop {
                        if stop.load(Ordering::Acquire) {
                            return;
                        }
                        if Instant::now() >= deadline
                            || regions_done.load(Ordering::Relaxed) >= config.max_regions
                        {
                            let mut slot = found.lock();
                            if slot.is_none() {
                                *slot = Some(Verdict::ResourceLimit);
                            }
                            stop.store(true, Ordering::Release);
                            return;
                        }
                        let region = {
                            let mut q = queue.lock();
                            match q.pop() {
                                Some(r) => {
                                    in_flight.fetch_add(1, Ordering::AcqRel);
                                    Some(r)
                                }
                                None => None,
                            }
                        };
                        let Some(region) = region else {
                            // Queue empty: finished only if no worker is
                            // still processing (it may push new regions).
                            if in_flight.load(Ordering::Acquire) == 0 {
                                return;
                            }
                            std::thread::yield_now();
                            continue;
                        };

                        let outcome = process_region(
                            net,
                            &region,
                            target,
                            &minimizer,
                            policy.as_ref(),
                            &config,
                            deadline,
                        );
                        regions_done.fetch_add(1, Ordering::Relaxed);
                        match outcome {
                            RegionOutcome::Verified => {}
                            RegionOutcome::Refuted(cex) => {
                                let mut slot = found.lock();
                                if slot.is_none() {
                                    *slot = Some(Verdict::Refuted(cex));
                                }
                                stop.store(true, Ordering::Release);
                            }
                            RegionOutcome::Split(a, b) => {
                                let mut q = queue.lock();
                                q.push(a);
                                q.push(b);
                            }
                        }
                        in_flight.fetch_sub(1, Ordering::AcqRel);
                    }
                });
            }
        })
        .expect("worker thread panicked");

        let slot = found.into_inner();
        slot.unwrap_or(Verdict::Verified)
    }
}

enum RegionOutcome {
    Verified,
    Refuted(Counterexample),
    Split(Bounds, Bounds),
}

fn process_region(
    net: &Network,
    region: &Bounds,
    target: usize,
    minimizer: &Minimizer,
    policy: &dyn Policy,
    config: &VerifierConfig,
    deadline: Instant,
) -> RegionOutcome {
    let (x_star, objective) = if config.counterexample_search {
        let result = minimizer.minimize(net, region, target);
        (result.point, result.objective)
    } else {
        let center = region.center();
        let f = net.objective(&center, target);
        (center, f)
    };
    if objective <= config.delta {
        return RegionOutcome::Refuted(Counterexample {
            point: x_star,
            objective,
        });
    }
    if region.widths().iter().all(|w| *w <= f64::EPSILON) {
        return if analyze(net, region, target, domains::DomainChoice::interval()) {
            RegionOutcome::Verified
        } else {
            RegionOutcome::Refuted(Counterexample {
                point: x_star,
                objective,
            })
        };
    }
    let ctx = PolicyContext {
        net,
        region,
        target,
        x_star: &x_star,
        objective,
    };
    let choice = policy.choose_domain(&ctx);
    match crate::verify::run_selection(net, region, target, choice, deadline) {
        crate::verify::SelectionResult::Verified => return RegionOutcome::Verified,
        crate::verify::SelectionResult::Violated(point) => {
            let objective = net.objective(&point, target);
            return RegionOutcome::Refuted(Counterexample { point, objective });
        }
        crate::verify::SelectionResult::Inconclusive => {}
    }
    let plan = policy.choose_split(&ctx);
    let at = crate::policy::clamp_split(region, plan.dim, plan.at);
    let (dim, at) = if at > region.lower()[plan.dim] && at < region.upper()[plan.dim] {
        (plan.dim, at)
    } else {
        let dim = region.longest_dim();
        (dim, 0.5 * (region.lower()[dim] + region.upper()[dim]))
    };
    if at <= region.lower()[dim] || at >= region.upper()[dim] {
        // Numerically unsplittable but not degenerate enough for the exact
        // branch; treat as a refutation candidate via the center check.
        return RegionOutcome::Refuted(Counterexample {
            point: x_star,
            objective,
        });
    }
    let (a, b) = region.split_at(dim, at);
    RegionOutcome::Split(a, b)
}

/// Solves a batch of `(network, property)` pairs in parallel, one property
/// per thread, with a per-property timeout. Returns the verdicts in input
/// order. This mirrors the MPI-parallel training setup of §6.
pub fn verify_batch(
    problems: &[(Network, RobustnessProperty)],
    policy: Arc<dyn Policy>,
    config: &VerifierConfig,
    threads: usize,
) -> Vec<(Verdict, Duration)> {
    let threads = if threads == 0 {
        std::thread::available_parallelism().map_or(4, |n| n.get())
    } else {
        threads
    };
    let next = AtomicUsize::new(0);
    let results: Mutex<Vec<Option<(Verdict, Duration)>>> = Mutex::new(vec![None; problems.len()]);

    crossbeam::scope(|scope| {
        for _ in 0..threads.min(problems.len().max(1)) {
            let next = &next;
            let results = &results;
            let policy = Arc::clone(&policy);
            let config = config.clone();
            scope.spawn(move |_| loop {
                let idx = next.fetch_add(1, Ordering::Relaxed);
                if idx >= problems.len() {
                    return;
                }
                let (net, prop) = &problems[idx];
                let verifier = crate::Verifier::new(Arc::clone(&policy), config.clone());
                let start = Instant::now();
                let verdict = verifier.verify(net, prop);
                let elapsed = start.elapsed();
                results.lock()[idx] = Some((verdict, elapsed));
            });
        }
    })
    .expect("worker thread panicked");

    results
        .into_inner()
        .into_iter()
        .map(|r| r.expect("every problem processed"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::LinearPolicy;
    use nn::samples;

    fn default_parallel(threads: usize) -> ParallelVerifier {
        ParallelVerifier::new(
            Arc::new(LinearPolicy::default()),
            VerifierConfig::default(),
            threads,
        )
    }

    #[test]
    fn parallel_verifies_xor_property() {
        let net = samples::xor_network();
        let prop = RobustnessProperty::new(Bounds::new(vec![0.3, 0.3], vec![0.7, 0.7]), 1);
        assert_eq!(default_parallel(4).verify(&net, &prop), Verdict::Verified);
    }

    #[test]
    fn parallel_refutes_unit_square() {
        let net = samples::xor_network();
        let prop = RobustnessProperty::new(Bounds::new(vec![0.0, 0.0], vec![1.0, 1.0]), 1);
        match default_parallel(4).verify(&net, &prop) {
            Verdict::Refuted(cex) => {
                assert!(prop.region().contains(&cex.point));
                assert!(cex.objective <= 1e-9);
            }
            other => panic!("expected refutation, got {other:?}"),
        }
    }

    #[test]
    fn parallel_agrees_with_sequential_on_examples() {
        let cases = [
            (samples::example_2_2_network(), vec![-1.0], vec![1.0], true),
            (samples::example_2_2_network(), vec![-1.0], vec![2.0], false),
        ];
        for (net, lo, hi, expect_verified) in cases {
            let prop = RobustnessProperty::new(Bounds::new(lo, hi), 1);
            let par = default_parallel(3).verify(&net, &prop);
            let seq = crate::Verifier::default().verify(&net, &prop);
            assert_eq!(par.is_verified(), expect_verified);
            assert_eq!(seq.is_verified(), expect_verified);
        }
    }

    #[test]
    fn single_thread_parallel_works() {
        let net = samples::example_2_3_network();
        let prop = RobustnessProperty::new(Bounds::new(vec![0.0, 0.0], vec![1.0, 1.0]), 1);
        assert_eq!(default_parallel(1).verify(&net, &prop), Verdict::Verified);
    }

    #[test]
    fn batch_returns_results_in_order() {
        let problems = vec![
            (
                samples::xor_network(),
                RobustnessProperty::new(Bounds::new(vec![0.3, 0.3], vec![0.7, 0.7]), 1),
            ),
            (
                samples::xor_network(),
                RobustnessProperty::new(Bounds::new(vec![0.0, 0.0], vec![1.0, 1.0]), 1),
            ),
            (
                samples::example_2_2_network(),
                RobustnessProperty::new(Bounds::new(vec![-1.0], vec![1.0]), 1),
            ),
        ];
        let results = verify_batch(
            &problems,
            Arc::new(LinearPolicy::default()),
            &VerifierConfig::default(),
            2,
        );
        assert_eq!(results.len(), 3);
        assert!(results[0].0.is_verified());
        assert!(results[1].0.is_refuted());
        assert!(results[2].0.is_verified());
    }
}
