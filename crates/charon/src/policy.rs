//! Verification policies: how to choose abstract domains and region splits.
//!
//! A policy `π_θ = (π^α_θ, π^I_θ)` (§4.1) maps the current verification
//! context to (a) an abstract domain and (b) a splitting hyperplane. The
//! learned [`LinearPolicy`] follows Eq. 3: a selection function applied to
//! `θ · ρ(ι)` where `ρ` is the featurization of §6. The hand-crafted
//! [`FixedPolicy`] serves as the ablation baseline of RQ3.

use domains::{symbolic, BaseDomain, Bounds, DomainChoice};
use nn::Network;
use serde::{Deserialize, Serialize};
use tensor::Matrix;

/// Everything a policy may inspect when making a decision: the network,
/// the property, and the result of counterexample search.
#[derive(Debug, Clone)]
pub struct PolicyContext<'a> {
    /// The network under analysis.
    pub net: &'a Network,
    /// The current input region.
    pub region: &'a Bounds,
    /// The target class of the property.
    pub target: usize,
    /// The minimizer of the robustness objective over the region (`x*`).
    pub x_star: &'a [f64],
    /// The objective value `F(x*)`.
    pub objective: f64,
}

/// A split decision: cut the region with the hyperplane `x_dim = at`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SplitPlan {
    /// Dimension to split along.
    pub dim: usize,
    /// Position of the splitting hyperplane.
    pub at: f64,
}

/// The analysis a domain policy can select for a region.
///
/// Besides the paper's interval/zonotope powerset lattice, two extensions
/// from §9 are selectable: the DeepPoly back-substitution domain
/// ("a broader set of abstract domains") and the complete LP-based solver
/// viewed as "a perfectly precise abstract domain" with a node budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DomainSelection {
    /// One of the classic domains: intervals/zonotopes with a disjunct
    /// budget.
    Abstract(DomainChoice),
    /// The DeepPoly back-substitution domain.
    DeepPoly,
    /// The zonotope domain with LP-refined pre-activation bounds
    /// (RefineZono-style; the §9 "combine solvers and numerical domains"
    /// idea).
    RefinedZonotope {
        /// Maximum number of refined neurons per ReLU layer.
        lp_per_layer: usize,
    },
    /// The complete solver, bounded by a search-node budget.
    Solver {
        /// Maximum number of case-split nodes to explore.
        node_budget: usize,
    },
}

impl std::fmt::Display for DomainSelection {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DomainSelection::Abstract(c) => write!(f, "{c}"),
            DomainSelection::DeepPoly => write!(f, "(DP, 1)"),
            DomainSelection::RefinedZonotope { lp_per_layer } => {
                write!(f, "(RZ, {lp_per_layer})")
            }
            DomainSelection::Solver { node_budget } => write!(f, "(LP, {node_budget})"),
        }
    }
}

/// A verification policy: chooses abstract domains (π^α) and region
/// splits (π^I).
pub trait Policy: Send + Sync {
    /// The domain policy π^α: which analysis to try on this region.
    fn choose_domain(&self, ctx: &PolicyContext<'_>) -> DomainSelection;

    /// The partition policy π^I: how to split the region in two.
    ///
    /// Implementations must satisfy Assumption 1: both halves strictly
    /// smaller in diameter (i.e. the split plane stays away from the
    /// region boundary).
    fn choose_split(&self, ctx: &PolicyContext<'_>) -> SplitPlan;
}

/// The featurization function ρ of §6. Produces the five features:
///
/// 1. distance between the region center and `x*`,
/// 2. the objective value `F(x*)`,
/// 3. the gradient magnitude of the network objective at `x*`,
/// 4. the mean width of the region,
/// 5. a constant bias term.
pub fn featurize(ctx: &PolicyContext<'_>) -> [f64; NUM_FEATURES] {
    let center = ctx.region.center();
    let dist = tensor::ops::distance(&center, ctx.x_star);
    let grad = ctx.net.objective_gradient(ctx.x_star, ctx.target);
    [
        dist,
        ctx.objective,
        tensor::ops::norm2(&grad),
        ctx.region.mean_width(),
        1.0,
    ]
}

/// Number of features produced by [`featurize`].
pub const NUM_FEATURES: usize = 5;

/// Rows of θ consumed by the domain selection function φ^α.
pub const DOMAIN_OUTPUTS: usize = 2;

/// Rows of θ consumed by the partition selection function φ^I.
pub const PARTITION_OUTPUTS: usize = 3;

/// Total number of learnable parameters of a [`LinearPolicy`].
pub const NUM_PARAMS: usize = (DOMAIN_OUTPUTS + PARTITION_OUTPUTS) * NUM_FEATURES;

/// Disjunct budgets selectable by φ^α, in selection order.
const DISJUNCT_LEVELS: [usize; 4] = [1, 2, 4, 8];

/// Case-split node budget when the policy selects the complete solver.
const SOLVER_NODE_BUDGET: usize = 64;

/// Per-layer LP budget when the policy selects the refined zonotope.
const REFINE_LP_BUDGET: usize = 8;

/// Fraction of the region width kept clear of the boundary when placing a
/// split plane (enforces Assumption 1).
const SPLIT_MARGIN: f64 = 0.05;

/// The learned linear policy of Eq. 3: `φ(θ ρ(ι))`.
///
/// `θ` is a `(DOMAIN_OUTPUTS + PARTITION_OUTPUTS) x NUM_FEATURES` matrix;
/// [`train`](crate::train) fits it with Bayesian optimization.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LinearPolicy {
    theta: Vec<f64>,
}

impl LinearPolicy {
    /// Creates a policy from a flat parameter vector.
    ///
    /// # Panics
    ///
    /// Panics if `params.len() != NUM_PARAMS`.
    pub fn from_params(params: Vec<f64>) -> Self {
        assert_eq!(params.len(), NUM_PARAMS, "bad parameter vector length");
        LinearPolicy { theta: params }
    }

    /// The flat parameter vector (row-major θ).
    pub fn params(&self) -> &[f64] {
        &self.theta
    }

    /// A reasonable hand-initialized starting point: prefers zonotopes
    /// with a small disjunct budget and splits the longest dimension at
    /// the midpoint.
    pub fn default_params() -> Vec<f64> {
        let mut theta = vec![0.0; NUM_PARAMS];
        // Domain row 0 (base selection): bias towards zonotope (>= 0.5).
        theta[4] = 0.8;
        // Domain row 1 (disjuncts): bias towards 2 disjuncts.
        theta[NUM_FEATURES + 4] = 0.3;
        // Partition rows 0/1 (longest vs influence): slight preference
        // for the longest dimension.
        theta[2 * NUM_FEATURES + 4] = 0.6;
        theta[3 * NUM_FEATURES + 4] = 0.4;
        // Partition row 2 (offset): bisection (0 => midpoint).
        theta[4 * NUM_FEATURES + 4] = 0.0;
        theta
    }

    /// Serializes the policy parameters to a one-line-per-value text
    /// format with an identifying header.
    pub fn to_text(&self) -> String {
        let mut out = String::from("charon-policy 1\n");
        for v in &self.theta {
            out.push_str(&format!("{v:?}\n"));
        }
        out
    }

    /// Parses a policy saved by [`LinearPolicy::to_text`].
    ///
    /// # Errors
    ///
    /// Returns a message if the header or the parameter count is wrong.
    pub fn from_text(text: &str) -> Result<Self, String> {
        let mut lines = text.lines().map(str::trim).filter(|l| !l.is_empty());
        if lines.next() != Some("charon-policy 1") {
            return Err("bad header (expected 'charon-policy 1')".into());
        }
        let params: Result<Vec<f64>, _> = lines.map(|l| l.parse::<f64>()).collect();
        let params = params.map_err(|e| format!("bad parameter: {e}"))?;
        if params.len() != NUM_PARAMS {
            return Err(format!(
                "expected {NUM_PARAMS} parameters, got {}",
                params.len()
            ));
        }
        Ok(LinearPolicy::from_params(params))
    }

    fn theta_matrix(&self) -> Matrix {
        Matrix::from_vec(
            DOMAIN_OUTPUTS + PARTITION_OUTPUTS,
            NUM_FEATURES,
            self.theta.clone(),
        )
    }

    fn raw_outputs(&self, ctx: &PolicyContext<'_>) -> Vec<f64> {
        let feats = featurize(ctx);
        self.theta_matrix().matvec(&feats)
    }
}

impl Default for LinearPolicy {
    fn default() -> Self {
        LinearPolicy::from_params(Self::default_params())
    }
}

impl Policy for LinearPolicy {
    fn choose_domain(&self, ctx: &PolicyContext<'_>) -> DomainSelection {
        let out = self.raw_outputs(ctx);
        // φ^α: clip and discretize (§6). The [0, 1] range is carved into
        // interval / zonotope / DeepPoly / solver bands; the §9 extension
        // domains occupy the top of the range so that the paper's
        // original policy space is a sub-space of this one.
        let selector = out[0].clamp(0.0, 1.0);
        if selector >= 0.97 {
            return DomainSelection::Solver {
                node_budget: SOLVER_NODE_BUDGET,
            };
        }
        if selector >= 0.93 {
            return DomainSelection::RefinedZonotope {
                lp_per_layer: REFINE_LP_BUDGET,
            };
        }
        if selector >= 0.85 {
            return DomainSelection::DeepPoly;
        }
        let base = if selector < 0.35 {
            BaseDomain::Interval
        } else {
            BaseDomain::Zonotope
        };
        let level = (out[1].clamp(0.0, 1.0) * (DISJUNCT_LEVELS.len() as f64 - 1e-9)) as usize;
        DomainSelection::Abstract(DomainChoice::powerset(
            base,
            DISJUNCT_LEVELS[level.min(DISJUNCT_LEVELS.len() - 1)],
        ))
    }

    fn choose_split(&self, ctx: &PolicyContext<'_>) -> SplitPlan {
        let out = self.raw_outputs(ctx);
        let (a, b, offset_raw) = (
            out[DOMAIN_OUTPUTS],
            out[DOMAIN_OUTPUTS + 1],
            out[DOMAIN_OUTPUTS + 2],
        );
        // φ^I: pick between the longest dimension and the most influential
        // dimension (§6), whichever of the two scores is larger.
        let dim = if a >= b {
            ctx.region.longest_dim()
        } else {
            symbolic::influence_dim(ctx.net, ctx.region, ctx.target)
        };
        // The offset is a ratio of the distance from the region center to
        // x*: 0 bisects, 1 passes through x*.
        let ratio = offset_raw.clamp(0.0, 1.0);
        let center = ctx.region.center();
        let desired = center[dim] + ratio * (ctx.x_star[dim] - center[dim]);
        SplitPlan {
            dim,
            at: clamp_split(ctx.region, dim, desired),
        }
    }
}

/// Clamps a proposed split position away from the region boundary so that
/// both halves strictly shrink (Assumption 1). Falls back to the midpoint
/// for degenerate widths.
pub fn clamp_split(region: &Bounds, dim: usize, desired: f64) -> f64 {
    let lo = region.lower()[dim];
    let hi = region.upper()[dim];
    let width = hi - lo;
    if width <= 0.0 {
        return lo;
    }
    let margin = SPLIT_MARGIN * width;
    desired.clamp(lo + margin, hi - margin)
}

/// Partitions a region into `n` disjoint shards by repeated bisection of
/// the longest dimension (midpoint splits, so Assumption 1 holds for
/// every shard: each is strictly smaller than the original in diameter
/// whenever any dimension has positive width).
///
/// The shards cover the region exactly — their union is the input and
/// their interiors are disjoint — so a property verified on every shard
/// is verified on the whole region, and a counterexample in any shard is
/// a counterexample for the whole region. This is the decomposition the
/// coordinator tier uses to fan a property out across shard-worker
/// nodes.
///
/// `n == 0` is treated as 1. When `n` is not a power of two the widest
/// shards are bisected preferentially, so shard volumes differ by at
/// most a factor of two.
pub fn shard_region(region: &Bounds, n: usize) -> Vec<Bounds> {
    let mut shards = vec![region.clone()];
    while shards.len() < n.max(1) {
        // Split the shard with the longest edge; ties go to the earliest,
        // keeping the decomposition deterministic.
        let (widest, _) = shards
            .iter()
            .enumerate()
            .map(|(i, b)| {
                let d = b.longest_dim();
                (i, b.upper()[d] - b.lower()[d])
            })
            .fold((0, f64::NEG_INFINITY), |best, cand| {
                if cand.1 > best.1 {
                    cand
                } else {
                    best
                }
            });
        let shard = shards.swap_remove(widest);
        let dim = shard.longest_dim();
        let mid = 0.5 * (shard.lower()[dim] + shard.upper()[dim]);
        if !(shard.lower()[dim] < mid && mid < shard.upper()[dim]) {
            // Degenerate (zero-width or sub-ulp) region: cannot split
            // further, return what we have.
            shards.push(shard);
            break;
        }
        let (left, right) = shard.split_at(dim, mid);
        shards.push(left);
        shards.push(right);
    }
    shards
}

/// A hand-crafted policy: fixed analysis selection, bisection of the
/// longest dimension. This is the "no learning" ablation baseline (RQ3)
/// and also mirrors how AI2 must be driven with a user-chosen domain.
#[derive(Debug, Clone)]
pub struct FixedPolicy {
    /// Analysis used for every region.
    pub selection: DomainSelection,
    /// If true, split the most influential dimension instead of the
    /// longest one.
    pub split_influence: bool,
}

impl FixedPolicy {
    /// Fixed policy using the given classic abstract domain and
    /// longest-dimension bisection.
    pub fn new(domain: DomainChoice) -> Self {
        FixedPolicy {
            selection: DomainSelection::Abstract(domain),
            split_influence: false,
        }
    }

    /// Fixed policy using an arbitrary [`DomainSelection`].
    pub fn with_selection(selection: DomainSelection) -> Self {
        FixedPolicy {
            selection,
            split_influence: false,
        }
    }
}

impl Policy for FixedPolicy {
    fn choose_domain(&self, _ctx: &PolicyContext<'_>) -> DomainSelection {
        self.selection
    }

    fn choose_split(&self, ctx: &PolicyContext<'_>) -> SplitPlan {
        let dim = if self.split_influence {
            symbolic::influence_dim(ctx.net, ctx.region, ctx.target)
        } else {
            ctx.region.longest_dim()
        };
        let mid = 0.5 * (ctx.region.lower()[dim] + ctx.region.upper()[dim]);
        SplitPlan {
            dim,
            at: clamp_split(ctx.region, dim, mid),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nn::samples;

    fn ctx_for<'a>(net: &'a Network, region: &'a Bounds, x_star: &'a [f64]) -> PolicyContext<'a> {
        PolicyContext {
            net,
            region,
            target: 1,
            x_star,
            objective: net.objective(x_star, 1),
        }
    }

    #[test]
    fn featurize_produces_expected_shape() {
        let net = samples::xor_network();
        let region = Bounds::new(vec![0.3, 0.3], vec![0.7, 0.7]);
        let x_star = vec![0.5, 0.5];
        let f = featurize(&ctx_for(&net, &region, &x_star));
        assert_eq!(f.len(), NUM_FEATURES);
        assert_eq!(f[0], 0.0, "x* at center => zero distance");
        assert!((f[3] - 0.4).abs() < 1e-12, "mean width");
        assert_eq!(f[4], 1.0, "bias");
    }

    #[test]
    fn default_policy_chooses_zonotope() {
        let net = samples::xor_network();
        let region = Bounds::new(vec![0.3, 0.3], vec![0.7, 0.7]);
        let x_star = vec![0.5, 0.5];
        let policy = LinearPolicy::default();
        let choice = policy.choose_domain(&ctx_for(&net, &region, &x_star));
        match choice {
            DomainSelection::Abstract(c) => {
                assert_eq!(c.base, BaseDomain::Zonotope);
                assert!(c.disjuncts >= 1);
            }
            other => panic!("default policy should pick a classic domain, got {other}"),
        }
    }

    #[test]
    fn split_respects_assumption_1() {
        let net = samples::xor_network();
        let region = Bounds::new(vec![0.0, 0.0], vec![1.0, 1.0]);
        // x* at the very corner: the raw split would hit the boundary.
        let x_star = vec![1.0, 1.0];
        let mut params = LinearPolicy::default_params();
        // Force offset ratio 1 (split through x*).
        params[4 * NUM_FEATURES + 4] = 10.0;
        let policy = LinearPolicy::from_params(params);
        let plan = policy.choose_split(&ctx_for(&net, &region, &x_star));
        let (l, r) = region.split_at(plan.dim, plan.at);
        assert!(l.diameter() < region.diameter());
        assert!(r.diameter() < region.diameter());
    }

    #[test]
    fn policy_text_roundtrip() {
        let policy = LinearPolicy::default();
        let parsed = LinearPolicy::from_text(&policy.to_text()).unwrap();
        assert_eq!(parsed.params(), policy.params());
        assert!(LinearPolicy::from_text("charon-policy 1\n1.0\n").is_err());
        assert!(LinearPolicy::from_text("junk").is_err());
    }

    #[test]
    fn fixed_policy_bisects() {
        let net = samples::xor_network();
        let region = Bounds::new(vec![0.0, 0.0], vec![2.0, 1.0]);
        let x_star = vec![0.3, 0.3];
        let policy = FixedPolicy::new(DomainChoice::zonotope());
        let plan = policy.choose_split(&ctx_for(&net, &region, &x_star));
        assert_eq!(plan.dim, 0, "longest dimension");
        assert!((plan.at - 1.0).abs() < 1e-12, "midpoint");
    }

    #[test]
    fn extension_domains_selectable() {
        let net = samples::xor_network();
        let region = Bounds::new(vec![0.3, 0.3], vec![0.7, 0.7]);
        let x_star = vec![0.5, 0.5];
        // Sweep the base-domain output band via its bias weight.
        let select_with = |bias: f64| {
            let mut params = LinearPolicy::default_params();
            params[4] = bias;
            LinearPolicy::from_params(params).choose_domain(&ctx_for(&net, &region, &x_star))
        };
        assert!(matches!(
            select_with(0.1),
            DomainSelection::Abstract(c) if c.base == BaseDomain::Interval
        ));
        assert!(matches!(
            select_with(0.5),
            DomainSelection::Abstract(c) if c.base == BaseDomain::Zonotope
        ));
        assert_eq!(select_with(0.9), DomainSelection::DeepPoly);
        assert!(matches!(
            select_with(0.95),
            DomainSelection::RefinedZonotope { .. }
        ));
        assert!(matches!(select_with(5.0), DomainSelection::Solver { .. }));
    }

    #[test]
    fn clamp_split_margins() {
        let region = Bounds::new(vec![0.0], vec![1.0]);
        assert_eq!(clamp_split(&region, 0, -5.0), 0.05);
        assert_eq!(clamp_split(&region, 0, 5.0), 0.95);
        assert_eq!(clamp_split(&region, 0, 0.5), 0.5);
    }

    #[test]
    fn shard_region_partitions_exactly() {
        let region = Bounds::new(vec![0.0, 0.0], vec![4.0, 1.0]);
        for n in [1usize, 2, 3, 4, 5, 8] {
            let shards = shard_region(&region, n);
            assert_eq!(shards.len(), n, "requested {n} shards");
            // Total volume is preserved (the shards tile the region).
            let volume = |b: &Bounds| {
                b.lower()
                    .iter()
                    .zip(b.upper())
                    .map(|(l, u)| u - l)
                    .product::<f64>()
            };
            let total: f64 = shards.iter().map(volume).sum();
            assert!((total - 4.0).abs() < 1e-9, "n={n}: total volume {total}");
            // Every shard stays inside the region and strictly shrinks.
            for shard in &shards {
                assert!(region.contains(&shard.center()));
                if n > 1 {
                    assert!(shard.diameter() < region.diameter());
                }
            }
            // Shard interiors are pairwise disjoint: centers of one shard
            // are not contained in any other.
            for (i, a) in shards.iter().enumerate() {
                for (j, b) in shards.iter().enumerate() {
                    if i != j {
                        assert!(!b.contains(&a.center()), "shards {i} and {j} overlap");
                    }
                }
            }
        }
    }

    #[test]
    fn shard_region_handles_degenerate_inputs() {
        // A zero-width region cannot be split: best effort, no panic.
        let point = Bounds::new(vec![0.5, 0.5], vec![0.5, 0.5]);
        assert_eq!(shard_region(&point, 4).len(), 1);
        // n = 0 is treated as 1.
        let region = Bounds::new(vec![0.0], vec![1.0]);
        assert_eq!(shard_region(&region, 0).len(), 1);
    }

    #[test]
    fn disjunct_levels_cover_selection_range() {
        let net = samples::xor_network();
        let region = Bounds::new(vec![0.3, 0.3], vec![0.7, 0.7]);
        let x_star = vec![0.5, 0.5];
        // Sweep the disjunct output via the bias weight.
        let mut seen = std::collections::HashSet::new();
        for bias in [-1.0, 0.1, 0.3, 0.6, 0.9, 2.0] {
            let mut params = LinearPolicy::default_params();
            params[NUM_FEATURES + 4] = bias;
            let p = LinearPolicy::from_params(params);
            if let DomainSelection::Abstract(c) = p.choose_domain(&ctx_for(&net, &region, &x_star))
            {
                seen.insert(c.disjuncts);
            }
        }
        assert!(seen.contains(&1) && seen.contains(&8), "seen {seen:?}");
    }
}
